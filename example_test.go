package specmatch_test

import (
	"fmt"

	"specmatch"
)

// ExampleMatch runs the paper's worked toy market (Fig. 3) through the
// two-stage algorithm.
func ExampleMatch() {
	m, err := specmatch.NewMarket(specmatch.MarketSpec{
		Prices: [][]float64{
			{7, 6, 9, 8, 1},  // channel a
			{6, 5, 10, 9, 2}, // channel b
			{3, 4, 8, 7, 3},  // channel c
		},
		Edges: [][][2]int{
			{{0, 1}, {0, 3}},
			{{0, 2}, {1, 2}, {2, 3}},
			{{1, 4}},
		},
	})
	if err != nil {
		fmt.Println("market:", err)
		return
	}
	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		fmt.Println("match:", err)
		return
	}
	fmt.Println("welfare:", res.Welfare)
	fmt.Println("matching:", res.Matching)
	// Output:
	// welfare: 30
	// matching: µ(0)=[1 3] µ(1)=[2] µ(2)=[0 4]
}

// ExampleGenerateMarket builds a random market in the paper's evaluation
// setup and checks the algorithm's stability guarantees on it.
func ExampleGenerateMarket() {
	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 4, Buyers: 20, Seed: 7})
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		fmt.Println("match:", err)
		return
	}
	rep := specmatch.CheckStability(m, res.Matching)
	fmt.Println("interference-free:", rep.InterferenceFree)
	fmt.Println("nash-stable:", rep.NashStable)
	// Output:
	// interference-free: true
	// nash-stable: true
}

// ExampleMatchAsync runs the asynchronous §IV protocol with local
// transition rules; on a reliable network it reproduces the synchronous
// result.
func ExampleMatchAsync() {
	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 3, Buyers: 12, Seed: 5})
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	sync, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		fmt.Println("match:", err)
		return
	}
	async, err := specmatch.MatchAsync(m, specmatch.AsyncConfig{
		BuyerRule:  specmatch.BuyerRuleII,
		SellerRule: specmatch.SellerProbabilistic,
	})
	if err != nil {
		fmt.Println("async:", err)
		return
	}
	fmt.Println("terminated:", async.Terminated)
	fmt.Println("same welfare as synchronous:", async.Welfare == sync.Welfare)
	// Output:
	// terminated: true
	// same welfare as synchronous: true
}

// ExampleOptimal compares the distributed result with the centralized
// benchmark on the toy market: 30 vs 33, the paper's ≈90% story in one
// instance.
func ExampleOptimal() {
	m, err := specmatch.NewMarket(specmatch.MarketSpec{
		Prices: [][]float64{
			{7, 6, 9, 8, 1},
			{6, 5, 10, 9, 2},
			{3, 4, 8, 7, 3},
		},
		Edges: [][][2]int{
			{{0, 1}, {0, 3}},
			{{0, 2}, {1, 2}, {2, 3}},
			{{1, 4}},
		},
	})
	if err != nil {
		fmt.Println("market:", err)
		return
	}
	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		fmt.Println("match:", err)
		return
	}
	_, opt, err := specmatch.Optimal(m)
	if err != nil {
		fmt.Println("optimal:", err)
		return
	}
	fmt.Printf("distributed %.0f of optimal %.0f (%.1f%%)\n", res.Welfare, opt, 100*res.Welfare/opt)
	// Output:
	// distributed 30 of optimal 33 (90.9%)
}
