# Developer entry points. Everything is plain `go` underneath; the targets
# just pin the invocations the README documents.

GO ?= go

.PHONY: all build test test-short race bench benchcheck baseline figures check fmt vet clean serve-smoke trace-smoke crash-smoke churn-smoke compat-smoke replica-smoke mon-smoke soak-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the multi-second soak tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Guard the committed engine baseline: exact welfare goldens plus
# side-by-side timing checks on this machine (default engine within 2x of
# plain sequential; instrumented engine within 2x of instrumentation off;
# incremental churn engine at least 4x faster than full recompute with
# bit-identical per-step output; WAL-on serving within 1.25x of WAL-off
# under a saturating workload).
benchcheck:
	RUN_BENCHCHECK=1 $(GO) test -run 'TestBenchBaseline|TestInstrumentationOverhead|TestChurnBaseline' -count=1 -v .
	RUN_BENCHCHECK=1 $(GO) test -run 'TestWALOverhead' -count=1 -v ./internal/server/

# Regenerate BENCH_BASELINE.json (run after an intentional behavior change).
baseline:
	$(GO) run ./cmd/specbench -baseline BENCH_BASELINE.json

# Regenerate every evaluation figure and verify the published shapes.
figures:
	$(GO) run ./cmd/specbench -figure all -reps 20 -check

# End-to-end smoke of the serving path: specserved + specload at ≥1000
# req/s, zero lost events, clean SIGTERM drain, non-empty metrics dump.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end smoke of the tracing path: specserved under specload, SIGQUIT
# flight-recorder dump while serving, specstrace -check reassembles it with
# zero orphan spans and the full request chain present.
trace-smoke:
	./scripts/trace_smoke.sh

# End-to-end crash injection of the durable path: specserved with a WAL,
# SIGKILLed under ≥1000 acked events/s of specload churn, restarted over the
# same data dir, and verified against the client's ledger — every acked
# event durable, recovered state bit-for-bit equal to a replay.
crash-smoke:
	./scripts/crash_smoke.sh

# End-to-end smoke of the incremental churn engine: specserved under a
# churn-heavy specload mix, accepted == applied reconciliation, live
# core.incremental.* counters, and the -disable-incremental escape hatch.
churn-smoke:
	./scripts/churn_smoke.sh

# End-to-end failover injection of the replication path: a leader plus a
# WAL-streaming follower, the leader SIGKILLed under ≥2000 acked events/s
# of cluster-routed specload churn, the follower promoted over HTTP, and
# the ledger verified against the promoted node — zero acked-and-lost
# events across the failover, both data dirs specwal-clean.
replica-smoke:
	./scripts/replica_smoke.sh

# Fleet-telemetry smoke: leader + follower under churny specload, specmon
# -check green against the live cluster, a provoked overload captured as an
# anomaly evidence pair (flight dump + CPU profile) listed by /debug/evidence
# and specmon, clean drains, and specwal-clean data dirs afterwards.
mon-smoke:
	./scripts/mon_smoke.sh

# Long-run scenario soak: leader + follower under a 5-minute specload
# -scenario mobile,diurnal,flash workload (diurnal Poisson waves, flash
# crowds, random-waypoint Move events), specmon -check green mid-soak,
# zero lost events, ledger verified, a rebuild-policy welfare drift report,
# and both data dirs specwal-clean. SOAK_DURATION/SOAK_PERIOD/SOAK_RPS
# shrink or scale the soak.
soak-smoke:
	./scripts/soak_smoke.sh

# Schema-compatibility smoke: recover the committed v0-generation data dir
# with the current binary, check it against its pinned state, drive the v1
# binary wire format and a fork against it, and run `specwal` verify on
# both generations of the same directory.
compat-smoke:
	./scripts/compat_smoke.sh

check: vet test-short

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
