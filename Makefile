# Developer entry points. Everything is plain `go` underneath; the targets
# just pin the invocations the README documents.

GO ?= go

.PHONY: all build test test-short race bench figures check fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the multi-second soak tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation figure and verify the published shapes.
figures:
	$(GO) run ./cmd/specbench -figure all -reps 20 -check

check: vet test-short

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
