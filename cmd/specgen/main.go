// Command specgen generates a random spectrum market (the §V-A setup) and
// writes it as JSON, for piping into specmatch or pinning as a fixture.
//
// Usage:
//
//	specgen -sellers 4 -buyers 10 -seed 7 > market.json
//	specgen -sellers 8 -buyers 100 -similarity-permute 3
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"specmatch"
	"specmatch/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specgen", flag.ContinueOnError)
	var (
		sellers  = fs.Int("sellers", 5, "number of physical sellers")
		buyers   = fs.Int("buyers", 40, "number of physical buyers")
		seed     = fs.Int64("seed", 1, "generation seed")
		permuteM = fs.Int("similarity-permute", -1, "similarity control: permute this many sorted entries (-1 = raw i.i.d.)")
		area     = fs.Float64("area", 10, "deployment area side")
		rangeMax = fs.Float64("range", 5, "max channel transmission range")
		channels = fs.String("channels", "", "comma-separated per-seller channel counts (dummy expansion)")
		demands  = fs.String("demands", "", "comma-separated per-buyer channel demands (dummy expansion)")
		metrics  = fs.String("metrics-json", "", "write a metrics snapshot JSON (gen.* instance-shape gauges) to this path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}

	cfg := specmatch.MarketConfig{
		Sellers:  *sellers,
		Buyers:   *buyers,
		Seed:     *seed,
		AreaSide: *area,
		RangeMax: *rangeMax,
	}
	if *permuteM >= 0 {
		cfg.Similarity = &specmatch.SimilarityConfig{PermuteM: *permuteM}
	}
	var err error
	if cfg.SellerChannels, err = parseCounts(*channels); err != nil {
		return fmt.Errorf("-channels: %w", err)
	}
	if cfg.BuyerDemands, err = parseCounts(*demands); err != nil {
		return fmt.Errorf("-demands: %w", err)
	}

	m, err := specmatch.GenerateMarket(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return err
	}
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.Gauge("gen.virtual_sellers").Set(int64(m.M()))
		reg.Gauge("gen.virtual_buyers").Set(int64(m.N()))
		edges := 0
		for i := 0; i < m.M(); i++ {
			edges += m.Graph(i).M()
		}
		reg.Gauge("gen.interference_edges").Set(int64(edges))
		// Stderr keeps the snapshot out of the market JSON when both go to
		// stdout.
		return obs.WriteSnapshotFile(reg, *metrics, os.Stderr)
	}
	return nil
}

func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
