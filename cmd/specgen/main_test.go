package main

import (
	"encoding/json"
	"strings"
	"testing"

	"specmatch/internal/market"
)

func TestGenerateRoundTrip(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "3", "-buyers", "6", "-seed", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	var m market.Market
	if err := json.Unmarshal([]byte(out.String()), &m); err != nil {
		t.Fatalf("output is not a valid market: %v", err)
	}
	if m.M() != 3 || m.N() != 6 {
		t.Errorf("dims (%d,%d), want (3,6)", m.M(), m.N())
	}
}

func TestGenerateWithExpansion(t *testing.T) {
	var out strings.Builder
	args := []string{"-sellers", "2", "-buyers", "2", "-channels", "2,1", "-demands", "1,3"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var m market.Market
	if err := json.Unmarshal([]byte(out.String()), &m); err != nil {
		t.Fatal(err)
	}
	if m.M() != 3 || m.N() != 4 {
		t.Errorf("dims (%d,%d), want (3,4)", m.M(), m.N())
	}
}

func TestGenerateErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-channels", "x"}, &out); err == nil {
		t.Error("bad channel list should fail")
	}
	if err := run([]string{"-sellers", "0"}, &out); err == nil {
		t.Error("empty market should fail")
	}
	if err := run([]string{"-channels", "1,2,3"}, &out); err == nil {
		t.Error("mismatched channel count should fail")
	}
}
