// Command specwal inspects the unified event stream wherever it lives: the
// per-shard write-ahead logs and checkpoints under a specserved -data-dir,
// or any standalone file of framed eventlog records — a copied log, a
// checkpoint, or a captured binary batch body from POST .../events (the wire
// format is byte-compatible with a log file by design). It decodes the same
// framing and bodies the server recovers from, both generations (v0 JSON and
// v1 binary), so what it reports is exactly what a restart would see.
//
//	specwal -data-dir /var/lib/specserved            # verify: per-shard summary
//	specwal -data-dir /var/lib/specserved -mode dump # every log record as JSON lines
//	specwal -data-dir /var/lib/specserved -mode snap # decoded checkpoint bodies
//	specwal -file capture.bin                        # records of one file/capture
//
// verify exits non-zero on mid-log corruption (the condition specserved
// refuses to start on without -wal-repair), including bodies that fail to
// decode inside intact frames; a torn tail is reported but is not an error —
// it is the expected signature of a crash mid-write and recovery truncates
// it safely.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"specmatch/internal/eventlog"
	"specmatch/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specwal:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specwal", flag.ContinueOnError)
	var (
		dataDir = fs.String("data-dir", "", "specserved data directory (holds shard-* subdirectories)")
		file    = fs.String("file", "", "inspect one standalone file of framed records (log, checkpoint, or captured binary batch) instead of a data dir")
		mode    = fs.String("mode", "verify", "verify | dump | snap")
		shard   = fs.Int("shard", -1, "restrict to one shard (-1 = all)")
		asJSON  = fs.Bool("json", false, "verify: emit the summary as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}
	if *file != "" {
		return dumpFile(*file, out)
	}
	if *dataDir == "" {
		return fmt.Errorf("-data-dir or -file is required")
	}
	dirs, err := shardDirs(*dataDir, *shard)
	if err != nil {
		return err
	}
	switch *mode {
	case "verify":
		return verify(dirs, *asJSON, out)
	case "dump":
		return dump(dirs, out)
	case "snap":
		return dumpSnapshots(dirs, out)
	}
	return fmt.Errorf("unknown -mode %q (want verify, dump, or snap)", *mode)
}

// shardDirs lists the shard directories under dataDir, sorted, optionally
// restricted to one.
func shardDirs(dataDir string, only int) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			if only >= 0 && e.Name() != fmt.Sprintf("shard-%03d", only) {
				continue
			}
			dirs = append(dirs, filepath.Join(dataDir, e.Name()))
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no shard directories under %s", dataDir)
	}
	return dirs, nil
}

// fileReport summarizes one log or checkpoint file.
type fileReport struct {
	File    string `json:"file"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	MinLSN  uint64 `json:"min_lsn,omitempty"`
	MaxLSN  uint64 `json:"max_lsn,omitempty"`
	Torn    string `json:"torn,omitempty"`
	Corrupt string `json:"corrupt,omitempty"`
	// BadBodies counts records whose body fails to decode under the event
	// schema despite an intact frame — corruption-class damage (the CRC
	// already passed, so it cannot be a torn write).
	BadBodies int `json:"bad_bodies,omitempty"`
}

type shardReport struct {
	Dir         string       `json:"dir"`
	Checkpoints []fileReport `json:"checkpoints"`
	Logs        []fileReport `json:"logs"`
}

// scanDir reads every WAL file in one shard directory.
func scanDir(dir string) (shardReport, error) {
	rep := shardReport{Dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rep, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		isSnap := strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".ckpt")
		isLog := strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")
		if !isSnap && !isLog {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return rep, err
		}
		fr := fileReport{File: name, Bytes: int64(len(data))}
		recs, _, scanErr := wal.ScanFile(data)
		fr.Records = len(recs)
		for _, r := range recs {
			if fr.MinLSN == 0 || r.LSN < fr.MinLSN {
				fr.MinLSN = r.LSN
			}
			if r.LSN > fr.MaxLSN {
				fr.MaxLSN = r.LSN
			}
			if _, err := eventlog.JSONView(r.Type, r.Body); err != nil {
				fr.BadBodies++
			}
		}
		switch {
		case scanErr == nil:
		case errors.Is(scanErr, wal.ErrTornTail):
			fr.Torn = scanErr.Error()
		default:
			fr.Corrupt = scanErr.Error()
		}
		if isSnap {
			rep.Checkpoints = append(rep.Checkpoints, fr)
		} else {
			rep.Logs = append(rep.Logs, fr)
		}
	}
	return rep, nil
}

func verify(dirs []string, asJSON bool, out io.Writer) error {
	var reports []shardReport
	corrupt, torn, files, records := 0, 0, 0, 0
	var bytes int64
	var maxLSN uint64
	for _, dir := range dirs {
		rep, err := scanDir(dir)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		for _, fr := range append(append([]fileReport{}, rep.Checkpoints...), rep.Logs...) {
			if fr.Corrupt != "" {
				corrupt++
			}
			corrupt += fr.BadBodies
			if fr.Torn != "" {
				torn++
			}
			files++
			records += fr.Records
			bytes += fr.Bytes
			if fr.MaxLSN > maxLSN {
				maxLSN = fr.MaxLSN
			}
		}
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, rep := range reports {
			fmt.Fprintf(out, "%s:\n", rep.Dir)
			for _, fr := range append(append([]fileReport{}, rep.Checkpoints...), rep.Logs...) {
				status := "ok"
				if fr.Torn != "" {
					status = "TORN TAIL (recoverable): " + fr.Torn
				}
				if fr.Corrupt != "" {
					status = "CORRUPT: " + fr.Corrupt
				}
				if fr.BadBodies > 0 {
					status = fmt.Sprintf("CORRUPT: %d undecodable record bodies; %s", fr.BadBodies, status)
				}
				fmt.Fprintf(out, "  %-28s %8d bytes  %5d records  lsn [%d,%d]  %s\n",
					fr.File, fr.Bytes, fr.Records, fr.MinLSN, fr.MaxLSN, status)
			}
		}
	}
	// One aggregate line a script (or a replica operator comparing two data
	// dirs) can grep: total coverage plus the LSN high-water mark.
	if !asJSON {
		fmt.Fprintf(out, "verify: %d shards, %d files, %d records, %d bytes, max_lsn=%d, torn=%d, corrupt=%d\n",
			len(reports), files, records, bytes, maxLSN, torn, corrupt)
	}
	if corrupt > 0 {
		return fmt.Errorf("%d corrupt file(s); specserved will refuse these without -wal-repair", corrupt)
	}
	return nil
}

// dumpRecord is one log record as specwal prints it.
type dumpRecord struct {
	Shard string          `json:"shard"`
	File  string          `json:"file"`
	Type  string          `json:"type"`
	LSN   uint64          `json:"lsn"`
	Body  json.RawMessage `json:"body"`
}

func dump(dirs []string, out io.Writer) error {
	enc := json.NewEncoder(out)
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			recs, _, scanErr := wal.ScanFile(data)
			for _, r := range recs {
				if err := enc.Encode(dumpRecord{
					Shard: filepath.Base(dir), File: name,
					Type: r.Type.String(), LSN: r.LSN, Body: bodyView(r),
				}); err != nil {
					return err
				}
			}
			if scanErr != nil && !errors.Is(scanErr, wal.ErrTornTail) {
				return fmt.Errorf("%s/%s: %w", dir, name, scanErr)
			}
		}
	}
	return nil
}

func dumpSnapshots(dirs []string, out io.Writer) error {
	enc := json.NewEncoder(out)
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".ckpt") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			recs, _, scanErr := wal.ScanFile(data)
			if scanErr != nil {
				return fmt.Errorf("%s/%s: %w", dir, name, scanErr)
			}
			for _, r := range recs {
				if err := enc.Encode(dumpRecord{
					Shard: filepath.Base(dir), File: name,
					Type: r.Type.String(), LSN: r.LSN, Body: bodyView(r),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// bodyView decodes a record body to its JSON view (either generation); a
// body that fails to decode is shown as a quoted string so the dump still
// renders every intact frame.
func bodyView(r wal.Record) json.RawMessage {
	view, err := eventlog.JSONView(r.Type, r.Body)
	if err != nil {
		quoted, _ := json.Marshal(string(r.Body))
		return quoted
	}
	return view
}

// dumpFile inspects one standalone file of framed records — a shard log, a
// checkpoint, or a captured binary batch body (they share the format) —
// printing each record as a JSON line and classifying any tail damage.
// Mid-file corruption (or an undecodable body in an intact frame) is an
// error; a torn tail is reported on stderr but, as in recovery, is not.
func dumpFile(path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	recs, _, scanErr := wal.ScanFile(data)
	enc := json.NewEncoder(out)
	badBodies := 0
	for _, r := range recs {
		if _, err := eventlog.JSONView(r.Type, r.Body); err != nil {
			badBodies++
		}
		if err := enc.Encode(dumpRecord{
			File: filepath.Base(path),
			Type: r.Type.String(), LSN: r.LSN, Body: bodyView(r),
		}); err != nil {
			return err
		}
	}
	switch {
	case scanErr == nil:
	case errors.Is(scanErr, wal.ErrTornTail):
		fmt.Fprintf(os.Stderr, "specwal: %s: torn tail (recoverable): %v\n", path, scanErr)
	default:
		return fmt.Errorf("%s: %w", path, scanErr)
	}
	if badBodies > 0 {
		return fmt.Errorf("%s: %d undecodable record bodies in intact frames", path, badBodies)
	}
	return nil
}
