// Command specsim runs the asynchronous distributed matching protocol (§IV)
// over a simulated network, with selectable local transition rules and fault
// injection, and compares the outcome against the synchronous engine.
//
// Usage:
//
//	specsim -sellers 5 -buyers 40 -buyer-rule rule-ii -seller-rule probabilistic
//	specsim -drop 0.1 -delay 2 -seed 7
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"specmatch"
	"specmatch/internal/agent"
	"specmatch/internal/obs"
	"specmatch/internal/simnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specsim", flag.ContinueOnError)
	var (
		sellers     = fs.Int("sellers", 5, "number of sellers (channels)")
		buyers      = fs.Int("buyers", 40, "number of buyers")
		seed        = fs.Int64("seed", 1, "generation seed")
		buyerRule   = fs.String("buyer-rule", "default", "buyer transition rule: default, rule-i, rule-ii")
		sellerRule  = fs.String("seller-rule", "default", "seller transition rule: default, probabilistic")
		buyerThres  = fs.Float64("buyer-threshold", 0.05, "P^k threshold for rule-ii")
		sellerThres = fs.Float64("seller-threshold", 0.05, "Q^k threshold for the probabilistic seller rule")
		drop        = fs.Float64("drop", 0, "message drop probability")
		delay       = fs.Int("delay", 0, "max extra delivery delay in slots")
		netSeed     = fs.Int64("net-seed", 1, "network fault seed")
		concurrent  = fs.Bool("concurrent", false, "run one goroutine per agent instead of the sequential loop")
		learnCDF    = fs.Bool("learn-cdf", false, "buyers estimate the price CDF from their own vectors (no common prior)")
		metricsJSON = fs.String("metrics-json", "", "write an agent/simnet metrics snapshot JSON to this path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}

	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: *sellers, Buyers: *buyers, Seed: *seed})
	if err != nil {
		return err
	}

	br, err := agent.ParseBuyerRule(*buyerRule)
	if err != nil {
		return err
	}
	sr, err := agent.ParseSellerRule(*sellerRule)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	acfg := specmatch.AsyncConfig{
		Net:             simnet.Config{DropProb: *drop, DelayMax: *delay, Seed: *netSeed, Metrics: reg},
		BuyerRule:       br,
		SellerRule:      sr,
		BuyerThreshold:  *buyerThres,
		SellerThreshold: *sellerThres,
		LearnCDF:        *learnCDF,
		Metrics:         reg,
	}
	runner := specmatch.MatchAsync
	if *concurrent {
		runner = specmatch.MatchAsyncConcurrent
	}
	res, err := runner(m, acfg)
	if err != nil {
		return err
	}

	sync, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		return err
	}
	rep := specmatch.CheckStability(m, res.Matching)

	fmt.Fprintf(out, "market: %d sellers × %d buyers\n", m.M(), m.N())
	fmt.Fprintf(out, "rules: buyer %v (thr %.3g), seller %v (thr %.3g)\n", br, *buyerThres, sr, *sellerThres)
	fmt.Fprintf(out, "network: drop %.3f, delay ≤ %d slots\n", *drop, *delay)
	fmt.Fprintf(out, "terminated: %v after %d slots\n", res.Terminated, res.Slots)
	fmt.Fprintf(out, "welfare: %.4f (synchronous baseline %.4f, ratio %.3f)\n",
		res.Welfare, sync.Welfare, safeRatio(res.Welfare, sync.Welfare))
	fmt.Fprintf(out, "transitions: buyers mean slot %.1f (last %d, %d early), sellers mean slot %.1f (last %d, %d early)\n",
		res.MeanBuyerTransition, res.LastBuyerTransition, res.EarlyBuyerTransitions,
		res.MeanSellerTransition, res.LastSellerTransition, res.EarlySellerTransitions)
	fmt.Fprintf(out, "network stats: sent %d, delivered %d, dropped %d\n",
		res.Net.Sent, res.Net.Delivered, res.Net.Dropped)
	if res.DisagreedPairs > 0 {
		fmt.Fprintf(out, "voided pairings (stale views under loss): %d\n", res.DisagreedPairs)
	}
	fmt.Fprintf(out, "stability:\n%v\n", rep)
	if *metricsJSON != "" {
		return obs.WriteSnapshotFile(reg, *metricsJSON, out)
	}
	return nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
