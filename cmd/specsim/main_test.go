package main

import (
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "3", "-buyers", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"terminated: true", "welfare:", "network stats:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRulesAndFaults(t *testing.T) {
	var out strings.Builder
	args := []string{
		"-sellers", "3", "-buyers", "12",
		"-buyer-rule", "rule-ii", "-seller-rule", "probabilistic",
		"-drop", "0.1", "-delay", "1",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rules: buyer rule-ii") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunBadRule(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-buyer-rule", "bogus"}, &out); err == nil {
		t.Error("bogus rule should fail")
	}
	if err := run([]string{"-seller-rule", "bogus"}, &out); err == nil {
		t.Error("bogus seller rule should fail")
	}
}

func TestRunConcurrentAndLearnCDF(t *testing.T) {
	var out strings.Builder
	args := []string{
		"-sellers", "3", "-buyers", "10",
		"-buyer-rule", "rule-ii", "-concurrent", "-learn-cdf",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "terminated: true") {
		t.Errorf("output:\n%s", out.String())
	}
}
