// Command specbench regenerates the paper's evaluation figures (§V) and this
// reproduction's ablations as printed series.
//
// Usage:
//
//	specbench -figure all            # every panel, paper-level replication
//	specbench -figure 6a -reps 50
//	specbench -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"specmatch/internal/experiment"
	"specmatch/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specbench", flag.ContinueOnError)
	var (
		figure      = fs.String("figure", "all", "figure id (6a..8c, ablation-*) or 'all'")
		reps        = fs.Int("reps", 20, "replications per sweep point")
		seed        = fs.Int64("seed", 1, "base seed")
		workers     = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		engineW     = fs.Int("engine-workers", 0, "per-round seller fan-out inside each replication (0 = sequential; results identical at every setting)")
		list        = fs.Bool("list", false, "list available figures and exit")
		format      = fs.String("format", "table", "output format: table, csv, json")
		plot        = fs.Bool("plot", false, "render an ASCII chart under each table")
		check       = fs.Bool("check", false, "verify each figure against the paper's published shape")
		basePth     = fs.String("baseline", "", "write an engine benchmark baseline (welfare goldens + timings) to this path and exit")
		metricsJSON = fs.String("metrics-json", "", "write an aggregate engine metrics snapshot JSON ('-' = stdout) after the run")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}

	if *basePth != "" {
		return writeBaseline(*basePth, *seed, out)
	}

	catalog := experiment.Catalog()
	if *list {
		for _, id := range experiment.IDs() {
			fmt.Fprintf(out, "%-16s %s\n", id, catalog[id].Description)
		}
		return nil
	}

	ids := experiment.IDs()
	if *figure != "all" {
		spec, ok := catalog[*figure]
		if !ok {
			return fmt.Errorf("unknown figure %q (try -list)", *figure)
		}
		ids = []string{spec.ID}
	}

	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	cfg := experiment.RunConfig{Seed: *seed, Reps: *reps, Workers: *workers, EngineWorkers: *engineW, Metrics: reg}
	failures := 0
	for _, id := range ids {
		start := time.Now()
		fig, err := catalog[id].Run(cfg)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		switch *format {
		case "table":
			fmt.Fprintf(out, "%s", fig.Format())
			if *plot {
				fmt.Fprintf(out, "\n%s", fig.Plot(56, 14))
			}
			if *check {
				if violations := experiment.VerifyShapes(fig); len(violations) == 0 {
					fmt.Fprintln(out, "shape check: PASS (matches the paper's published shape)")
				} else {
					failures++
					fmt.Fprintln(out, "shape check: FAIL")
					for _, v := range violations {
						fmt.Fprintf(out, "  - %s\n", v)
					}
				}
			}
			fmt.Fprintf(out, "(%d reps/point, seed %d, %v)\n\n", *reps, *seed, time.Since(start).Round(time.Millisecond))
		case "csv":
			s, err := fig.CSV()
			if err != nil {
				return err
			}
			fmt.Fprint(out, s)
		case "json":
			s, err := fig.JSON()
			if err != nil {
				return err
			}
			fmt.Fprint(out, s)
		default:
			return fmt.Errorf("unknown format %q (want table, csv or json)", *format)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d figure(s) failed the published-shape check", failures)
	}
	if reg != nil {
		// The engine's own round-latency histogram, summarized with the
		// bucket-interpolated quantile estimator — no raw samples kept.
		if h := reg.Histogram("core.round_seconds", obs.TimeBuckets()); h.Count() > 0 {
			fmt.Fprintf(out, "engine rounds: %d, round ms: p50=%.4f p90=%.4f p99=%.4f\n",
				h.Count(), h.Quantile(0.50)*1e3, h.Quantile(0.90)*1e3, h.Quantile(0.99)*1e3)
		}
	}
	if *metricsJSON != "" {
		return obs.WriteSnapshotFile(reg, *metricsJSON, out)
	}
	return nil
}
