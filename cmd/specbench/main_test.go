package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"6a", "8c", "ablation-mwis"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestSingleFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-figure", "6b", "-reps", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 6b", "sellers M", "optimal", "proposed"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-figure", "99z"}, &out); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestCSVFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-figure", "6b", "-reps", "2", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "sellers M,optimal mean,optimal ci95") {
		t.Errorf("csv header wrong:\n%s", out.String())
	}
}

func TestJSONFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-figure", "6b", "-reps", "2", "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"id": "6b"`) {
		t.Errorf("json output wrong:\n%s", out.String())
	}
}

func TestPlotFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-figure", "6b", "-reps", "2", "-plot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a = optimal") {
		t.Errorf("plot legend missing:\n%s", out.String())
	}
}

func TestBadFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-figure", "6b", "-reps", "1", "-format", "xml"}, &out); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestCheckFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-figure", "6a", "-reps", "6", "-check"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shape check: PASS") {
		t.Errorf("output missing shape verdict:\n%s", out.String())
	}
}
