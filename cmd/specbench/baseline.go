package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
)

// Baseline is the engine benchmark record committed as BENCH_BASELINE.json.
// The welfare/matched/rounds fields are exact goldens: the engine is
// deterministic, so any drift is a behavior change, not noise. The timings
// are informational (they depend on the recording machine); the benchguard
// test re-measures both configurations side by side on the current machine
// instead of trusting them.
type Baseline struct {
	GeneratedBy string              `json:"generated_by"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	Cases       []BaselineCase      `json:"cases"`
	Churn       []ChurnBaselineCase `json:"churn"`
}

// BaselineCase records one market scale from the paper's evaluation (§V).
type BaselineCase struct {
	Name    string `json:"name"`
	Sellers int    `json:"sellers"`
	Buyers  int    `json:"buyers"`
	Seed    int64  `json:"seed"`

	// Exact goldens, identical at every Workers/cache setting.
	Welfare float64 `json:"welfare"`
	Matched int     `json:"matched"`
	Rounds  int     `json:"rounds"`

	// Informational timings from the recording machine: the engine's default
	// configuration (parallel + coalition cache) versus the pre-optimization
	// configuration (sequential, cache disabled), best of three runs each.
	// InstrumentedNs times the default configuration with a live obs
	// registry attached, recording what the observability layer costs.
	DefaultNs      int64   `json:"default_ns"`
	SeqNs          int64   `json:"seq_ns"`
	InstrumentedNs int64   `json:"instrumented_ns"`
	Speedup        float64 `json:"speedup"`
	CacheHits      int     `json:"cache_hits"`
	CacheIndep     int     `json:"cache_independent"`
	CacheMiss      int     `json:"cache_misses"`
}

// BaselineCases returns the market scales the baseline records: the largest
// points of Figs. 7(a)/8(a) and 7(b)/8(b), plus a mid-size market.
func BaselineCases(seed int64) []BaselineCase {
	return []BaselineCase{
		{Name: "fig7a-max", Sellers: 10, Buyers: 320, Seed: seed},
		{Name: "fig7b-max", Sellers: 16, Buyers: 500, Seed: seed},
		{Name: "mid", Sellers: 8, Buyers: 200, Seed: seed},
	}
}

// ChurnBaselineCase records one churn-heavy online workload: a deterministic
// online.SyntheticChurn trace replayed through a session on the incremental
// engine and on the full-recompute shadow path (DisableIncremental). The
// final welfare and matched count are exact goldens — both paths must
// reproduce them bit-for-bit, and the recording run additionally verifies
// per-step StepStats equality between the two paths.
type ChurnBaselineCase struct {
	Name    string `json:"name"`
	Sellers int    `json:"sellers"`
	Buyers  int    `json:"buyers"`
	Seed    int64  `json:"seed"`
	Steps   int    `json:"steps"`

	// Exact goldens after replaying the whole trace, identical on both paths.
	Welfare float64 `json:"welfare"`
	Matched int     `json:"matched"`

	// Informational timings from the recording machine, best of three full
	// trace replays each; the per-step figures divide by Steps. The benchguard
	// test re-measures both paths side by side instead of trusting them.
	IncrementalStepNs int64   `json:"incremental_step_ns"`
	FullStepNs        int64   `json:"full_step_ns"`
	StepSpeedup       float64 `json:"step_speedup"`
}

// ChurnBaselineCases returns the churn workloads the baseline records: the
// fig7a-scale market plus a mid-size one, each under 64 mixed churn steps,
// and a mobility case whose trace adds random-waypoint Move events (buyer
// rewires) on top of the same churn mix.
func ChurnBaselineCases(seed int64) []ChurnBaselineCase {
	return []ChurnBaselineCase{
		{Name: "churn-fig7a", Sellers: 10, Buyers: 320, Seed: seed, Steps: 64},
		{Name: "churn-mid", Sellers: 8, Buyers: 200, Seed: seed, Steps: 64},
		{Name: "churn-mobile-fig7a", Sellers: 10, Buyers: 320, Seed: seed, Steps: 64},
	}
}

// ChurnTrace derives a case's event trace from its name: cases named
// *-mobile-* replay online.SyntheticMobileChurn, the rest plain
// online.SyntheticChurn. Both the recorder here and the benchguard replayer
// call this, keeping the never-derive-independently contract intact.
func ChurnTrace(c ChurnBaselineCase, m *market.Market) []online.Event {
	if strings.Contains(c.Name, "-mobile") {
		return online.SyntheticMobileChurn(m, c.Seed, c.Steps)
	}
	return online.SyntheticChurn(m, c.Seed, c.Steps)
}

// MeasureChurnBaselineCase replays the case's synthetic churn trace through
// both engine paths, verifies they agree step for step, and fills in the
// goldens and timings.
func MeasureChurnBaselineCase(c *ChurnBaselineCase) error {
	m, err := market.Generate(market.Config{Sellers: c.Sellers, Buyers: c.Buyers, Seed: c.Seed})
	if err != nil {
		return fmt.Errorf("generating %s: %w", c.Name, err)
	}
	events := ChurnTrace(*c, m)

	replay := func(disable bool) (time.Duration, *online.Session, []online.StepStats, error) {
		bestD := time.Duration(0)
		var bestSess *online.Session
		var bestStats []online.StepStats
		for iter := 0; iter < 3; iter++ {
			s, err := online.NewSession(m, core.Options{DisableIncremental: disable})
			if err != nil {
				return 0, nil, nil, err
			}
			stats := make([]online.StepStats, 0, len(events))
			start := time.Now()
			for _, ev := range events {
				st, err := s.Step(ev)
				if err != nil {
					return 0, nil, nil, err
				}
				stats = append(stats, st)
			}
			d := time.Since(start)
			if bestSess == nil || d < bestD {
				bestD, bestSess, bestStats = d, s, stats
			}
		}
		return bestD, bestSess, bestStats, nil
	}

	incDur, incSess, incStats, err := replay(false)
	if err != nil {
		return fmt.Errorf("%s incremental replay: %w", c.Name, err)
	}
	fullDur, fullSess, fullStats, err := replay(true)
	if err != nil {
		return fmt.Errorf("%s full-path replay: %w", c.Name, err)
	}
	for k := range incStats {
		if incStats[k] != fullStats[k] {
			return fmt.Errorf("%s: step %d stats diverge between paths:\n incremental %+v\n full        %+v",
				c.Name, k, incStats[k], fullStats[k])
		}
	}
	if incSess.Welfare() != fullSess.Welfare() {
		return fmt.Errorf("%s: final welfare diverges: incremental %v, full %v",
			c.Name, incSess.Welfare(), fullSess.Welfare())
	}
	if !incSess.Matching().Equal(fullSess.Matching()) {
		return fmt.Errorf("%s: final matchings diverge between paths", c.Name)
	}

	c.Welfare = incSess.Welfare()
	c.Matched = incSess.Matching().MatchedCount()
	c.IncrementalStepNs = incDur.Nanoseconds() / int64(c.Steps)
	c.FullStepNs = fullDur.Nanoseconds() / int64(c.Steps)
	if incDur > 0 {
		c.StepSpeedup = float64(fullDur) / float64(incDur)
	}
	return nil
}

// MeasureBaselineCase fills in one case's goldens and timings, verifying
// along the way that the optimized default configuration and the plain
// sequential configuration produce identical results.
func MeasureBaselineCase(c *BaselineCase) error {
	m, err := market.Generate(market.Config{Sellers: c.Sellers, Buyers: c.Buyers, Seed: c.Seed})
	if err != nil {
		return fmt.Errorf("generating %s: %w", c.Name, err)
	}
	defaultOpts := core.Options{}
	seqOpts := core.Options{Workers: 1, DisableCoalitionCache: true}

	var defRes *core.Result
	best := func(opts core.Options) (time.Duration, *core.Result, error) {
		bestD := time.Duration(0)
		var res *core.Result
		for iter := 0; iter < 3; iter++ {
			start := time.Now()
			r, err := core.Run(m, opts)
			d := time.Since(start)
			if err != nil {
				return 0, nil, err
			}
			if res == nil || d < bestD {
				bestD, res = d, r
			}
		}
		return bestD, res, nil
	}

	defDur, defRes, err := best(defaultOpts)
	if err != nil {
		return fmt.Errorf("%s default run: %w", c.Name, err)
	}
	seqDur, seqRes, err := best(seqOpts)
	if err != nil {
		return fmt.Errorf("%s sequential run: %w", c.Name, err)
	}
	instDur, instRes, err := best(core.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		return fmt.Errorf("%s instrumented run: %w", c.Name, err)
	}
	if defRes.Welfare != seqRes.Welfare || defRes.Matched != seqRes.Matched ||
		defRes.TotalRounds() != seqRes.TotalRounds() {
		return fmt.Errorf("%s: default and sequential configurations disagree (welfare %v vs %v)",
			c.Name, defRes.Welfare, seqRes.Welfare)
	}
	if instRes.Welfare != defRes.Welfare {
		return fmt.Errorf("%s: instrumentation changed welfare (%v vs %v)",
			c.Name, instRes.Welfare, defRes.Welfare)
	}

	c.Welfare = defRes.Welfare
	c.Matched = defRes.Matched
	c.Rounds = defRes.TotalRounds()
	c.DefaultNs = defDur.Nanoseconds()
	c.SeqNs = seqDur.Nanoseconds()
	c.InstrumentedNs = instDur.Nanoseconds()
	if defDur > 0 {
		c.Speedup = float64(seqDur) / float64(defDur)
	}
	c.CacheHits = defRes.Cache.Hits
	c.CacheIndep = defRes.Cache.Independent
	c.CacheMiss = defRes.Cache.Misses
	return nil
}

// writeBaseline measures every baseline case and writes the JSON record.
func writeBaseline(path string, seed int64, out io.Writer) error {
	b := Baseline{
		GeneratedBy: "specbench -baseline",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Cases:       BaselineCases(seed),
		Churn:       ChurnBaselineCases(seed),
	}
	for k := range b.Cases {
		c := &b.Cases[k]
		if err := MeasureBaselineCase(c); err != nil {
			return err
		}
		fmt.Fprintf(out, "%-12s M=%-3d N=%-4d welfare %.4f matched %d rounds %d  default %s seq %s instrumented %s (%.2fx)  cache %d/%d/%d\n",
			c.Name, c.Sellers, c.Buyers, c.Welfare, c.Matched, c.Rounds,
			time.Duration(c.DefaultNs), time.Duration(c.SeqNs), time.Duration(c.InstrumentedNs), c.Speedup,
			c.CacheHits, c.CacheIndep, c.CacheMiss)
	}
	for k := range b.Churn {
		c := &b.Churn[k]
		if err := MeasureChurnBaselineCase(c); err != nil {
			return err
		}
		fmt.Fprintf(out, "%-12s M=%-3d N=%-4d welfare %.4f matched %d steps %d  incremental %s/step full %s/step (%.2fx)\n",
			c.Name, c.Sellers, c.Buyers, c.Welfare, c.Matched, c.Steps,
			time.Duration(c.IncrementalStepNs), time.Duration(c.FullStepNs), c.StepSpeedup)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing baseline: %w", err)
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}
