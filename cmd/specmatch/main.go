// Command specmatch runs the two-stage distributed spectrum matching
// algorithm on a market — randomly generated or loaded from JSON — and
// prints the matching, per-stage statistics, a stability report, and
// (optionally, for small markets) the gap to the centralized optimum.
//
// Usage:
//
//	specmatch -sellers 5 -buyers 40 -seed 1
//	specmatch -market market.json -mwis exact -optimal
//	specgen -sellers 4 -buyers 10 | specmatch -market - -optimal
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"specmatch"
	"specmatch/internal/market"
	"specmatch/internal/mwis"
	"specmatch/internal/obs"
	"specmatch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specmatch:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specmatch", flag.ContinueOnError)
	var (
		sellers     = fs.Int("sellers", 5, "number of sellers (channels) to generate")
		buyers      = fs.Int("buyers", 40, "number of buyers to generate")
		seed        = fs.Int64("seed", 1, "generation seed")
		permuteM    = fs.Int("similarity-permute", -1, "similarity control: sort vectors then permute this many entries (-1 = raw i.i.d.)")
		marketPath  = fs.String("market", "", "load market JSON from this path ('-' = stdin) instead of generating")
		mwisName    = fs.String("mwis", "gwmin", "coalition solver: gwmin, gwmin2, gwmax, greedy-best, exact")
		skipP1      = fs.Bool("skip-transfer", false, "ablation: skip Stage II Phase 1")
		skipP2      = fs.Bool("skip-invitation", false, "ablation: skip Stage II Phase 2")
		doSwap      = fs.Bool("swap", false, "extension: run the coordinated-exchange stage after Stage II")
		verify      = fs.Bool("verify", false, "record the protocol trace and lint it against Algorithms 1-2")
		compareOpt  = fs.Bool("optimal", false, "also solve the centralized optimum (small markets only)")
		jsonOut     = fs.Bool("json", false, "emit the result as JSON")
		workers     = fs.Int("workers", 0, "per-round seller fan-out goroutines (0 = GOMAXPROCS, 1 = sequential; output is identical at every setting)")
		noCache     = fs.Bool("no-cache", false, "disable the per-seller coalition cache (identical output; for benchmarking)")
		metricsJSON = fs.String("metrics-json", "", "write an engine metrics snapshot JSON to this path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}

	m, err := loadOrGenerate(*marketPath, *sellers, *buyers, *seed, *permuteM)
	if err != nil {
		return err
	}

	alg, err := mwis.ParseAlgorithm(*mwisName)
	if err != nil {
		return err
	}
	var rec *trace.Recorder
	if *verify {
		rec = trace.NewRecorder()
	}
	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	res, err := specmatch.Match(m, specmatch.MatchOptions{
		MWIS:                  alg,
		Workers:               *workers,
		DisableCoalitionCache: *noCache,
		SkipTransfer:          *skipP1,
		SkipInvitation:        *skipP2,
		Recorder:              rec,
		Metrics:               reg,
	})
	if err != nil {
		return err
	}
	if *metricsJSON != "" {
		if err := obs.WriteSnapshotFile(reg, *metricsJSON, out); err != nil {
			return err
		}
	}
	var traceViolations []string
	if *verify {
		traceViolations = trace.Verify(rec.Events(), trace.VerifyOptions{})
	}
	var swapStats specmatch.SwapStats
	if *doSwap {
		swapStats, err = specmatch.ImproveSwaps(m, res.Matching, specmatch.SwapOptions{})
		if err != nil {
			return fmt.Errorf("swap stage: %w", err)
		}
		res.Welfare = swapStats.FinalWelfare
	}
	rep := specmatch.CheckStability(m, res.Matching)

	if *jsonOut {
		payload := map[string]any{
			"market":  map[string]int{"sellers": m.M(), "buyers": m.N()},
			"welfare": res.Welfare,
			"matched": res.Matched,
			"stage_i": res.StageI,
			"phase_1": res.Phase1,
			"phase_2": res.Phase2,
			"cache":   res.Cache,
			"stability": map[string]bool{
				"interference_free":     rep.InterferenceFree,
				"individually_rational": rep.IndividuallyRational,
				"nash_stable":           rep.NashStable,
				"pairwise_stable":       rep.PairwiseStable,
			},
		}
		if *doSwap {
			payload["swap"] = swapStats
		}
		if *compareOpt {
			_, opt, err := specmatch.Optimal(m)
			if err != nil {
				return fmt.Errorf("optimal benchmark: %w", err)
			}
			payload["optimal_welfare"] = opt
			payload["ratio"] = res.Welfare / opt
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(payload)
	}

	fmt.Fprintf(out, "market: %d sellers × %d buyers\n", m.M(), m.N())
	fmt.Fprintf(out, "matching: %v\n", res.Matching)
	fmt.Fprintf(out, "welfare: %.4f (matched %d/%d buyers)\n", res.Welfare, res.Matched, m.N())
	fmt.Fprintf(out, "rounds: stage I %d, phase 1 %d, phase 2 %d\n",
		res.StageI.Rounds, res.Phase1.Rounds, res.Phase2.Rounds)
	fmt.Fprintf(out, "welfare by stage: %.4f → %.4f → %.4f\n",
		res.StageI.Welfare, res.Phase1.Welfare, res.Phase2.Welfare)
	if !*noCache {
		fmt.Fprintf(out, "coalition cache: %d memo hits, %d independent fast paths, %d solves\n",
			res.Cache.Hits, res.Cache.Independent, res.Cache.Misses)
	}
	if *doSwap {
		fmt.Fprintf(out, "swap stage: %d swaps, %d relocations, welfare +%.4f\n",
			swapStats.Swaps, swapStats.Relocations, swapStats.WelfareGain)
	}
	fmt.Fprintf(out, "stability:\n%v\n", rep)
	if *verify {
		if len(traceViolations) == 0 {
			fmt.Fprintf(out, "protocol trace: OK (%d events linted)\n", rec.Len())
		} else {
			fmt.Fprintf(out, "protocol trace: %d violations\n", len(traceViolations))
			for _, v := range traceViolations {
				fmt.Fprintf(out, "  - %s\n", v)
			}
		}
	}
	if *compareOpt {
		_, opt, err := specmatch.Optimal(m)
		if err != nil {
			return fmt.Errorf("optimal benchmark: %w", err)
		}
		fmt.Fprintf(out, "optimal welfare: %.4f (ratio %.3f)\n", opt, res.Welfare/opt)
	}
	return nil
}

func loadOrGenerate(path string, sellers, buyers int, seed int64, permuteM int) (*specmatch.Market, error) {
	if path == "" {
		cfg := specmatch.MarketConfig{Sellers: sellers, Buyers: buyers, Seed: seed}
		if permuteM >= 0 {
			cfg.Similarity = &specmatch.SimilarityConfig{PermuteM: permuteM}
		}
		return specmatch.GenerateMarket(cfg)
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, fmt.Errorf("reading market: %w", err)
	}
	var m market.Market
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("decoding market: %w", err)
	}
	return &m, nil
}
