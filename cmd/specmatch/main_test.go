package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specmatch"
)

func TestRunGenerated(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "3", "-buyers", "10", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"market: 3 sellers × 10 buyers", "welfare:", "nash-stable: yes"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWithOptimal(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "3", "-buyers", "7", "-optimal"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "optimal welfare:") {
		t.Errorf("output missing optimal line:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "3", "-buyers", "8", "-json", "-optimal"}, &out); err != nil {
		t.Fatal(err)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(out.String()), &payload); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	for _, key := range []string{"welfare", "stage_i", "stability", "ratio"} {
		if _, ok := payload[key]; !ok {
			t.Errorf("JSON missing key %q", key)
		}
	}
}

func TestRunFromMarketFile(t *testing.T) {
	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 2, Buyers: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "market.json")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-market", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "market: 2 sellers × 5 buyers") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mwis", "bogus"}, &out); err == nil {
		t.Error("bogus MWIS algorithm should fail")
	}
	if err := run([]string{"-market", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing market file should fail")
	}
	if err := run([]string{"-sellers", "0"}, &out); err == nil {
		t.Error("empty market should fail")
	}
}

func TestRunVerifyFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "3", "-buyers", "8", "-verify"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "protocol trace: OK") {
		t.Errorf("output missing trace verdict:\n%s", out.String())
	}
}

func TestRunSwapFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "3", "-buyers", "8", "-swap"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "swap stage:") {
		t.Errorf("output missing swap line:\n%s", out.String())
	}
}
