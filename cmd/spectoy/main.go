// Command spectoy replays the paper's worked examples with a full protocol
// trace: the Fig. 1–3 toy market (Stage I round by round, then Stage II's
// transfer and invitation) and the Fig. 4–5 counterexample (Nash-stable but
// neither pairwise stable nor buyer-optimal, and how the coordinated-swap
// extension repairs it). Useful for studying the algorithm's mechanics
// against the published figures.
//
// Usage:
//
//	spectoy            # the Fig. 1–3 toy example
//	spectoy -counter   # the Fig. 4–5 counterexample
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"specmatch"
	"specmatch/internal/core"
	"specmatch/internal/obs"
	"specmatch/internal/paperexample"
	"specmatch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spectoy:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spectoy", flag.ContinueOnError)
	counter := fs.Bool("counter", false, "replay the Fig. 4–5 counterexample instead of the toy")
	metricsJSON := fs.String("metrics-json", "", "write an engine metrics snapshot JSON to this path ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}
	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	var err error
	if *counter {
		err = runCounterexample(out, reg)
	} else {
		err = runToy(out, reg)
	}
	if err != nil {
		return err
	}
	if *metricsJSON != "" {
		return obs.WriteSnapshotFile(reg, *metricsJSON, out)
	}
	return nil
}

func runToy(out io.Writer, reg *obs.Registry) error {
	m := paperexample.Toy()
	fmt.Fprintln(out, "The paper's toy market (Fig. 3): 5 buyers, 3 sellers (channels a=0, b=1, c=2).")
	fmt.Fprintln(out, "Utility vectors (channel a, b, c) per buyer:")
	for j := 0; j < m.N(); j++ {
		fmt.Fprintf(out, "  buyer %d: (%.0f, %.0f, %.0f)\n", j+1, m.Price(0, j), m.Price(1, j), m.Price(2, j))
	}
	fmt.Fprintln(out)

	rec := trace.NewRecorder()
	res, err := core.Run(m, core.Options{Recorder: rec, Metrics: reg})
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "Protocol trace (buyers and sellers 0-indexed):")
	lastRound := 0
	stage := "Stage I — adapted deferred acceptance (Fig. 1)"
	fmt.Fprintf(out, "\n%s\n", stage)
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindTransferApply, trace.KindTransferAccept, trace.KindTransferReject:
			if stage != "Stage II Phase 1 — transfer (Fig. 2)" {
				stage = "Stage II Phase 1 — transfer (Fig. 2)"
				fmt.Fprintf(out, "\n%s\n", stage)
				lastRound = 0
			}
		case trace.KindInvite, trace.KindInviteAccept, trace.KindInviteDecline:
			if stage != "Stage II Phase 2 — invitation (Fig. 2)" {
				stage = "Stage II Phase 2 — invitation (Fig. 2)"
				fmt.Fprintf(out, "\n%s\n", stage)
				lastRound = 0
			}
		}
		if e.Round != lastRound {
			fmt.Fprintf(out, " round %d:\n", e.Round)
			lastRound = e.Round
		}
		fmt.Fprintf(out, "   %-16s buyer %d ↔ seller %d\n", e.Kind, e.Buyer, e.Seller)
	}

	fmt.Fprintf(out, "\nStage I result (Fig. 1e): welfare %.0f\n", res.StageI.Welfare)
	fmt.Fprintf(out, "Final matching (Fig. 2d): %v — welfare %.0f\n", res.Matching, res.Welfare)

	_, opt, err := specmatch.Optimal(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Centralized optimum: %.0f → the stable matching attains %.1f%%.\n", opt, 100*res.Welfare/opt)
	return nil
}

func runCounterexample(out io.Writer, reg *obs.Registry) error {
	m := paperexample.Counterexample()
	fmt.Fprintln(out, "The paper's counterexample (Figs. 4–5): 9 buyers, 3 sellers.")
	res, err := core.Run(m, core.Options{Metrics: reg})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Algorithm output (Fig. 4e): %v — welfare %.1f\n\n", res.Matching, res.Welfare)

	rep := specmatch.CheckStability(m, res.Matching)
	fmt.Fprintf(out, "Nash-stable: %v (Prop. 4 holds)\n", rep.NashStable)
	fmt.Fprintf(out, "Pairwise-stable: %v — blocking pairs:\n", rep.PairwiseStable)
	for _, bp := range rep.Blocking {
		fmt.Fprintf(out, "  %v\n", bp)
	}

	fmt.Fprintln(out, "\nThe paper's §III-D remedy (future work there, implemented here): a")
	fmt.Fprintln(out, "coordinated swap of buyers 2 and 4 across sellers b and c.")
	st, err := specmatch.ImproveSwaps(m, res.Matching, specmatch.SwapOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Swap stage: %d swap(s), welfare %.1f → %.1f\n", st.Swaps, st.FinalWelfare-st.WelfareGain, st.FinalWelfare)
	fmt.Fprintf(out, "Improved matching: %v\n", res.Matching)
	rep = specmatch.CheckStability(m, res.Matching)
	fmt.Fprintf(out, "Still Nash-stable: %v; both swapped buyers and both sellers gained.\n", rep.NashStable)
	return nil
}
