package main

import (
	"strings"
	"testing"
)

func TestToyReplay(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Stage I — adapted deferred acceptance",
		"Stage II Phase 1 — transfer",
		"Stage II Phase 2 — invitation",
		"welfare 27",
		"welfare 30",
		"90.9%",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCounterexampleReplay(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-counter"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"welfare 62.5",
		"Nash-stable: true",
		"Pairwise-stable: false",
		"1 swap(s), welfare 62.5 → 64.5",
		"Still Nash-stable: true",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
