// Command specserved hosts live spectrum-market sessions behind an
// HTTP/JSON API: create a market, stream churn events into it, trigger
// rebuilds, and read the current matching — the paper's mechanism run as a
// continuously operating, multi-tenant service instead of a one-shot batch.
//
// Sessions live in a sharded store (one event-loop goroutine per shard, so
// per-session operations stay deterministic), shard queues are bounded with
// 429 + Retry-After on overload, every request carries a deadline, and
// SIGTERM drains gracefully: stop accepting, flush the queues, then exit.
// With -data-dir the store is durable: every mutation is written to a
// per-shard write-ahead log and acknowledged only after it is fsynced,
// checkpoints bound replay time, and startup recovers every session —
// kill -9 loses nothing a client was told succeeded. Log records, the
// event wire format, and checkpoints all share one versioned schema
// (internal/eventlog), so cmd/specwal inspects any of them offline and
// pre-schema (v0 JSON) data dirs recover unchanged.
//
// Durable stores also support point-in-time forks: POST
// /v1/sessions/{id}/fork?lsn=N replays the session's durable prefix up to
// shard LSN N (0 or omitted = the current tail) into a brand-new live
// session, so a past state can be re-branched without disturbing the
// original.
//
//	specserved -addr 127.0.0.1:7937
//	curl -XPOST localhost:7937/v1/sessions -d "{\"spec\": $(specgen -sellers 3 -buyers 8)}"
//	curl -XPOST localhost:7937/v1/sessions/m00000001/events -d '{"arrive":[0,1,2]}'
//	curl -XPOST localhost:7937/v1/sessions/m00000001/fork?lsn=12
//	curl localhost:7937/v1/sessions/m00000001
//	curl localhost:7937/debug/metrics
//
// Routes, payloads, and the server.* metric names are documented in
// PROTOCOL.md; cmd/specload drives this server at a target rate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"specmatch/internal/core"
	"specmatch/internal/obs"
	"specmatch/internal/replica"
	"specmatch/internal/server"
	"specmatch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specserved:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specserved", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", "127.0.0.1:7937", "listen address (port 0 = ephemeral, printed on startup)")
		shards         = fs.Int("shards", 0, "session shards, one event-loop goroutine each (0 = GOMAXPROCS)")
		queueDepth     = fs.Int("queue-depth", 256, "per-shard pending-operation bound; beyond it requests get 429")
		maxSessions    = fs.Int("max-sessions", 16384, "cap on live sessions across all shards")
		requestTimeout = fs.Duration("request-timeout", 5*time.Second, "per-request deadline")
		drainTimeout   = fs.Duration("drain-timeout", 10*time.Second, "bound on the SIGTERM graceful drain")
		engineWorkers  = fs.Int("engine-workers", 1, "core engine fan-out per session step (1 = sequential; shards already parallelize)")
		disableInc     = fs.Bool("disable-incremental", false, "run every event through a full repair instead of the incremental churn engine (escape hatch; output is bit-identical either way)")
		metricsJSON    = fs.String("metrics-json", "", "write a final metrics snapshot JSON to this path ('-' = stdout) on clean exit")
		flightCap      = fs.Int("flight", 1<<16, "flight-recorder capacity in spans, a bounded ring always recording (0 disables tracing)")
		traceDump      = fs.String("trace-dump", "specserved-trace.json", "flight-recorder dump path, written on SIGQUIT, on any 5xx (rate-limited), and at drain")
		sessionEvents  = fs.Int("session-events", 4096, "per-session protocol-event bound; overflow is counted as dropped (-1 disables)")
		dataDir        = fs.String("data-dir", "", "durable session state: per-shard WAL + checkpoints under this directory; events ack only after fsync, startup recovers every session (empty = in-memory only)")
		fsyncInterval  = fs.Duration("fsync-interval", 0, "WAL fsync batching interval (0 = 2ms default; negative = fsync every append)")
		checkpointEach = fs.Int("checkpoint-every", 4096, "checkpoint + truncate a shard's WAL after this many durable records (negative = only at startup and drain)")
		walRepair      = fs.Bool("wal-repair", false, "on recovery, truncate at mid-log corruption instead of refusing to start (data past the corruption is lost)")
		follow         = fs.String("follow", "", "run as a read-only replica of this leader URL (e.g. http://127.0.0.1:7937): tail every shard's WAL stream, apply locally, serve reads; requires -data-dir. POST /v1/replica/promote turns the node into a leader")
		sampleInterval = fs.Duration("sample-interval", time.Second, "metrics sampling interval for /debug/metrics/series and the anomaly watchdog (negative = disable the sampler)")
		seriesWindows  = fs.Int("series-windows", 300, "delta windows retained by the series ring")
		evidenceDir    = fs.String("evidence-dir", "", "where anomaly evidence (flight dump + CPU profile) lands, served at /debug/evidence (empty = <data-dir>/evidence; no data dir disables capture)")
		anomP99        = fs.Float64("anomaly-p99-factor", 0, "anomaly trigger: interval p99 above this multiple of the trailing baseline (0 = default 4)")
		anomQueue      = fs.Float64("anomaly-queue-frac", 0, "anomaly trigger: any shard queue above this fraction of -queue-depth (0 = default 0.9)")
		anomLag        = fs.Int64("anomaly-lag-lsn", 0, "anomaly trigger: follower lag above this many LSNs (0 = default 65536, negative = off)")
		anomSustain    = fs.Int("anomaly-sustain", 0, "consecutive anomalous windows before evidence capture (0 = default 3)")
		anomRate       = fs.Duration("anomaly-rate-limit", 0, "per-trigger-type evidence capture budget (0 = default 60s, negative = unlimited)")
		anomOff        = fs.Bool("anomaly-off", false, "disable the anomaly watchdog")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}

	reg := obs.NewRegistry()
	var fl *trace.Flight
	if *flightCap > 0 {
		fl = trace.NewFlight(*flightCap)
	}
	dump := newTraceDumper(fl, *traceDump, out)
	if *follow != "" {
		// A follower's shard count must match its leader's (records are
		// streamed per shard), so learn it from the leader before the store
		// opens. This also verifies the leader is up and durable.
		*follow = strings.TrimRight(*follow, "/")
		n, err := leaderShards(*follow)
		if err != nil {
			return err
		}
		if *dataDir == "" {
			return fmt.Errorf("-follow requires -data-dir: a replica appends the leader's records to its own WAL")
		}
		if *shards != 0 && *shards != n {
			return fmt.Errorf("-shards %d does not match the leader's %d shards (session ids are sharded by hash, so the counts must match)", *shards, n)
		}
		*shards = n
	}
	srv, err := server.New(server.Config{
		Shards:          *shards,
		QueueDepth:      *queueDepth,
		MaxSessions:     *maxSessions,
		RequestTimeout:  *requestTimeout,
		Engine:          core.Options{Workers: *engineWorkers, DisableIncremental: *disableInc},
		Metrics:         reg,
		Flight:          fl,
		OnServerError:   dump.onServerError,
		SessionEvents:   *sessionEvents,
		DataDir:         *dataDir,
		FsyncInterval:   *fsyncInterval,
		CheckpointEvery: *checkpointEach,
		WALRepair:       *walRepair,
		SampleInterval:  *sampleInterval,
		SeriesWindows:   *seriesWindows,
		EvidenceDir:     *evidenceDir,
		Anomaly: server.AnomalyConfig{
			Disabled:  *anomOff,
			P99Factor: *anomP99,
			QueueFrac: *anomQueue,
			LagLSN:    *anomLag,
			Sustain:   *anomSustain,
			RateLimit: *anomRate,
		},
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		rec := srv.Store().Recovery
		fmt.Fprintf(out, "recovered %d sessions from %s (%d events replayed, %d torn records dropped, %d repaired away)\n",
			rec.Sessions, *dataDir, rec.Records, rec.TornRecords, rec.RepairedRecords)
	}
	var fol *replica.Follower
	if *follow != "" {
		// Resume each shard's stream from this store's own durable tail:
		// everything below it survived our recovery, everything above comes
		// from the leader.
		from := make([]uint64, 0, *shards)
		for _, sl := range srv.Store().ShardStatuses() {
			from = append(from, sl.DurableLSN)
		}
		fol, err = replica.Start(replica.Config{
			Leader:  *follow,
			Shards:  *shards,
			From:    from,
			Apply:   srv.Store().ApplyReplicated,
			Metrics: reg,
			Flight:  fl,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(out, format+"\n", args...)
			},
		})
		if err != nil {
			srv.Drain()
			return err
		}
		srv.BecomeFollower(*follow, fol.Status, fol.Stop)
		fmt.Fprintf(out, "following %s (%d shards); writes are gated until promote\n", *follow, *shards)
	}
	hs, err := server.ListenAndServe(*addr, srv.Handler())
	if err != nil {
		srv.Drain() // close the WAL cleanly; the listener never started
		return err
	}
	fmt.Fprintf(out, "specserved listening on http://%s\n", hs.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stopQuit := dump.onSIGQUIT()
	defer stopQuit()
	select {
	case <-ctx.Done():
		// Signal received: drain below.
	case err := <-hs.ServeErr():
		if fol != nil {
			fol.Stop()
		}
		srv.Drain()
		return fmt.Errorf("serve: %w", err)
	}
	stop()

	fmt.Fprintln(out, "draining: refusing new work, flushing shard queues")
	if fol != nil {
		// Stop tailing before the drain barrier so no replicated apply
		// races the final checkpoints. Idempotent if promote already ran.
		fol.Stop()
	}
	srv.StopStreams()
	sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := hs.Shutdown(sdCtx)
	srv.Drain()

	fmt.Fprintf(out, "drained: %d live sessions, %d events applied\n",
		srv.Store().Len(), reg.CounterValue("server.events.applied"))
	dump.dump("drain")
	if *metricsJSON != "" {
		if err := obs.WriteSnapshotFile(reg, *metricsJSON, out); err != nil {
			return err
		}
	}
	return shutdownErr
}

// leaderShards asks a leader's /v1/status for its shard count, retrying for
// a few seconds so a follower can start alongside a still-booting leader.
func leaderShards(leader string) (int, error) {
	client := &http.Client{}
	var lastErr error
	for attempt := 0; attempt < 40; attempt++ {
		if attempt > 0 {
			time.Sleep(250 * time.Millisecond)
		}
		st, err := replica.FetchStatus(context.Background(), client, leader)
		if err != nil {
			lastErr = err
			continue
		}
		if !st.Durable {
			return 0, fmt.Errorf("leader %s runs in-memory; -follow needs a leader started with -data-dir", leader)
		}
		if len(st.Shards) == 0 {
			return 0, fmt.Errorf("leader %s reports no shards", leader)
		}
		return len(st.Shards), nil
	}
	return 0, fmt.Errorf("leader %s unreachable: %w", leader, lastErr)
}

// traceDumper writes crash-safe flight-recorder dumps: atomically (tmp +
// rename, so a reader never sees a torn file) and rate-limited *per trigger
// type* — 5xx, SIGQUIT, and drain each get their own budget (one dump per
// 10s), so a 5xx storm cannot starve an operator's SIGQUIT dump, and
// neither can starve the watchdog's anomaly captures (which budget
// separately again, inside internal/server). All methods are safe with a
// nil Flight or empty path — they do nothing.
type traceDumper struct {
	fl   *trace.Flight
	path string
	out  io.Writer
	gate *server.RateGate
}

func newTraceDumper(fl *trace.Flight, path string, out io.Writer) *traceDumper {
	return &traceDumper{fl: fl, path: path, out: out, gate: server.NewRateGate(10 * time.Second)}
}

// dump writes the current snapshot; reason is echoed in the log line and
// keys the rate limit.
func (d *traceDumper) dump(reason string) {
	if d.fl == nil || d.path == "" {
		return
	}
	if !d.gate.Allow(reason) {
		return
	}
	tmp := d.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fmt.Fprintf(d.out, "flight recorder: dump failed: %v\n", err)
		return
	}
	werr := trace.WriteChromeFlight(f, d.fl)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, d.path)
	}
	if werr != nil {
		_ = os.Remove(tmp)
		fmt.Fprintf(d.out, "flight recorder: dump failed: %v\n", werr)
		return
	}
	n := len(d.fl.Snapshot())
	fmt.Fprintf(d.out, "flight recorder: dumped %d spans to %s (%s)\n", n, d.path, reason)
}

// onServerError is the server's 5xx hook; dump() itself applies the
// per-trigger budget.
func (d *traceDumper) onServerError() {
	d.dump("5xx")
}

// onSIGQUIT installs a handler goroutine that dumps on each SIGQUIT without
// exiting — the classic flight-recorder inspection signal. The returned stop
// function uninstalls it.
func (d *traceDumper) onSIGQUIT() func() {
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-quit:
				d.dump("SIGQUIT")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(quit)
		close(done)
	}
}
