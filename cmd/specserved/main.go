// Command specserved hosts live spectrum-market sessions behind an
// HTTP/JSON API: create a market, stream churn events into it, trigger
// rebuilds, and read the current matching — the paper's mechanism run as a
// continuously operating, multi-tenant service instead of a one-shot batch.
//
// Sessions live in a sharded store (one event-loop goroutine per shard, so
// per-session operations stay deterministic), shard queues are bounded with
// 429 + Retry-After on overload, every request carries a deadline, and
// SIGTERM drains gracefully: stop accepting, flush the queues, then exit.
//
//	specserved -addr 127.0.0.1:7937
//	curl -XPOST localhost:7937/v1/sessions -d "{\"spec\": $(specgen -sellers 3 -buyers 8)}"
//	curl -XPOST localhost:7937/v1/sessions/m00000001/events -d '{"arrive":[0,1,2]}'
//	curl localhost:7937/v1/sessions/m00000001
//	curl localhost:7937/debug/metrics
//
// Routes, payloads, and the server.* metric names are documented in
// PROTOCOL.md; cmd/specload drives this server at a target rate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specmatch/internal/core"
	"specmatch/internal/obs"
	"specmatch/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specserved:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specserved", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", "127.0.0.1:7937", "listen address (port 0 = ephemeral, printed on startup)")
		shards         = fs.Int("shards", 0, "session shards, one event-loop goroutine each (0 = GOMAXPROCS)")
		queueDepth     = fs.Int("queue-depth", 256, "per-shard pending-operation bound; beyond it requests get 429")
		maxSessions    = fs.Int("max-sessions", 16384, "cap on live sessions across all shards")
		requestTimeout = fs.Duration("request-timeout", 5*time.Second, "per-request deadline")
		drainTimeout   = fs.Duration("drain-timeout", 10*time.Second, "bound on the SIGTERM graceful drain")
		engineWorkers  = fs.Int("engine-workers", 1, "core engine fan-out per session step (1 = sequential; shards already parallelize)")
		metricsJSON    = fs.String("metrics-json", "", "write a final metrics snapshot JSON to this path ('-' = stdout) on clean exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}

	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		Shards:         *shards,
		QueueDepth:     *queueDepth,
		MaxSessions:    *maxSessions,
		RequestTimeout: *requestTimeout,
		Engine:         core.Options{Workers: *engineWorkers},
		Metrics:        reg,
	})
	hs, err := server.ListenAndServe(*addr, srv.Handler())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "specserved listening on http://%s\n", hs.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Signal received: drain below.
	case err := <-hs.ServeErr():
		srv.Drain()
		return fmt.Errorf("serve: %w", err)
	}
	stop()

	fmt.Fprintln(out, "draining: refusing new work, flushing shard queues")
	sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := hs.Shutdown(sdCtx)
	srv.Drain()

	fmt.Fprintf(out, "drained: %d live sessions, %d events applied\n",
		srv.Store().Len(), reg.CounterValue("server.events.applied"))
	if *metricsJSON != "" {
		if err := obs.WriteSnapshotFile(reg, *metricsJSON, out); err != nil {
			return err
		}
	}
	return shutdownErr
}
