package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specmatch"
	"specmatch/internal/matching"
	"specmatch/internal/paperexample"
)

func writeJSON(t *testing.T, name string, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeAlgorithmOutput(t *testing.T) {
	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 3, Buyers: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	marketPath := writeJSON(t, "market.json", m)
	var out strings.Builder
	if err := run([]string{"-market", marketPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"interference-free:     OK", "nash-stable:           OK", "welfare:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeGivenMatching(t *testing.T) {
	m := paperexample.Toy()
	marketPath := writeJSON(t, "market.json", m)
	// An intentionally unstable matching: everyone unmatched except one
	// suboptimal pairing.
	mu := matching.New(m.M(), m.N())
	if err := mu.Assign(2, 0); err != nil { // buyer 1 on channel c (worth 3 < 7 on a)
		t.Fatal(err)
	}
	matchingPath := writeJSON(t, "matching.json", mu)
	var out strings.Builder
	if err := run([]string{"-market", marketPath, "-matching", matchingPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "nash-stable:           VIOLATED") {
		t.Errorf("expected Nash violations:\n%s", s)
	}
	if !strings.Contains(s, "two-stage algorithm on this market") {
		t.Errorf("expected algorithm comparison:\n%s", s)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -market should fail")
	}
	if err := run([]string{"-market", "/nope.json"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	m := paperexample.Toy()
	marketPath := writeJSON(t, "market.json", m)
	wrong := matching.New(9, 9)
	matchingPath := writeJSON(t, "matching.json", wrong)
	if err := run([]string{"-market", marketPath, "-matching", matchingPath}, &out); err == nil {
		t.Error("dimension mismatch should fail")
	}
}
