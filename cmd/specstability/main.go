// Command specstability analyzes an arbitrary matching against a market: it
// verifies every solution concept of the paper's §III (interference-freeness,
// individual rationality, Nash stability, pairwise stability), prints the
// witnessing violations, and reports welfare against the matching the
// two-stage algorithm would produce.
//
// Usage:
//
//	specgen -sellers 3 -buyers 8 > market.json
//	specstability -market market.json -matching matching.json
//	specstability -market market.json            # analyze the algorithm's own output
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"specmatch"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specstability:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specstability", flag.ContinueOnError)
	var (
		marketPath   = fs.String("market", "", "market JSON path ('-' = stdin); required")
		matchingPath = fs.String("matching", "", "matching JSON path; empty = run the two-stage algorithm")
		maxWitness   = fs.Int("max-witnesses", 5, "cap on printed violations per property")
		metricsJSON  = fs.String("metrics-json", "", "write an engine metrics snapshot JSON to this path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}
	if *marketPath == "" {
		return fmt.Errorf("-market is required")
	}

	m, err := readJSON[market.Market](*marketPath)
	if err != nil {
		return fmt.Errorf("market: %w", err)
	}

	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	var mu *matching.Matching
	if *matchingPath == "" {
		res, err := specmatch.Match(m, specmatch.MatchOptions{Metrics: reg})
		if err != nil {
			return err
		}
		mu = res.Matching
		fmt.Fprintln(out, "analyzing the two-stage algorithm's own output")
	} else {
		mu, err = readJSON[matching.Matching](*matchingPath)
		if err != nil {
			return fmt.Errorf("matching: %w", err)
		}
		if mu.M() != m.M() || mu.N() != m.N() {
			return fmt.Errorf("matching dims (%d,%d) do not fit market (%d,%d)", mu.M(), mu.N(), m.M(), m.N())
		}
	}

	welfare := specmatch.Welfare(m, mu)
	fmt.Fprintf(out, "market: %d sellers × %d buyers\n", m.M(), m.N())
	fmt.Fprintf(out, "matching: %v\n", mu)
	fmt.Fprintf(out, "welfare: %.4f (matched %d/%d)\n\n", welfare, mu.MatchedCount(), mu.N())

	rep := specmatch.CheckStability(m, mu)
	printProperty(out, "interference-free", rep.InterferenceFree, len(rep.Interference))
	for k, v := range rep.Interference {
		if k >= *maxWitness {
			break
		}
		fmt.Fprintf(out, "    %v\n", v)
	}
	printProperty(out, "individually rational", rep.IndividuallyRational, len(rep.IR))
	for k, v := range rep.IR {
		if k >= *maxWitness {
			break
		}
		fmt.Fprintf(out, "    %v\n", v)
	}
	printProperty(out, "nash-stable", rep.NashStable, len(rep.Nash))
	for k, v := range rep.Nash {
		if k >= *maxWitness {
			break
		}
		fmt.Fprintf(out, "    %v\n", v)
	}
	printProperty(out, "pairwise-stable", rep.PairwiseStable, len(rep.Blocking))
	for k, v := range rep.Blocking {
		if k >= *maxWitness {
			break
		}
		fmt.Fprintf(out, "    %v\n", v)
	}

	if *matchingPath != "" {
		res, err := specmatch.Match(m, specmatch.MatchOptions{Metrics: reg})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntwo-stage algorithm on this market: welfare %.4f", res.Welfare)
		if welfare > 0 {
			fmt.Fprintf(out, " (given matching is %.1f%% of it)", 100*welfare/res.Welfare)
		}
		fmt.Fprintln(out)
	}
	if *metricsJSON != "" {
		return obs.WriteSnapshotFile(reg, *metricsJSON, out)
	}
	return nil
}

func printProperty(out io.Writer, name string, ok bool, violations int) {
	status := "OK"
	if !ok {
		status = fmt.Sprintf("VIOLATED (%d)", violations)
	}
	fmt.Fprintf(out, "%-22s %s\n", name+":", status)
}

// readJSON loads a JSON value from a path or stdin.
func readJSON[T any](path string) (*T, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	v := new(T)
	if err := json.Unmarshal(data, v); err != nil {
		return nil, err
	}
	return v, nil
}
