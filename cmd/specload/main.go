// Command specload is a closed-loop load generator for specserved: it
// creates a fleet of market sessions, drives churn events at a target rate
// from concurrent workers, and reports throughput and latency percentiles.
// After the run it reconciles its client-side view against the server's
// /debug/metrics counters — every event request the server acknowledged
// with 200 must appear in server.events.applied, so "zero lost events" is
// checked end to end, not assumed.
//
//	specserved -addr 127.0.0.1:7937 &
//	specload -addr 127.0.0.1:7937 -sessions 8 -concurrency 8 -duration 5s -report -
//
// Exit status is non-zero when events were lost or the measured rate falls
// short of -min-rps, which is what lets `make serve-smoke` assert the
// serving path instead of eyeballing it. -binary switches the event posts
// to the canonical binary eventlog batch format (the same bytes the server
// logs to its WAL), exercising the unified schema end to end.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"specmatch/internal/eventlog"
	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/server"
	"specmatch/internal/trace"
	"specmatch/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specload:", err)
		os.Exit(1)
	}
}

// Report is the JSON document -report writes.
type Report struct {
	DurationSeconds float64 `json:"duration_seconds"`
	Sessions        int     `json:"sessions"`
	Concurrency     int     `json:"concurrency"`
	TargetRPS       float64 `json:"target_rps,omitempty"`
	Scenario        string  `json:"scenario,omitempty"`

	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Rejected    int64   `json:"rejected_429"`
	Errors      int64   `json:"errors"`
	Throughput  float64 `json:"throughput_rps"`
	LatencyMS   Latency `json:"latency_ms"`
	EventsOK    int64   `json:"events_accepted"`
	Applied     int64   `json:"server_events_applied"`
	LostEvents  int64   `json:"lost_events"`
	Reconciled  bool    `json:"reconciled"`
	FinalActive int     `json:"final_active_buyers"`

	// Nodes holds every node's /v1/status document (one entry even without
	// -cluster), so the report records each node's role and durable LSNs.
	Nodes []NodeReport `json:"nodes,omitempty"`

	// Timeline is the per-interval series -timeline records: the same delta
	// machinery as the server's /debug/metrics/series, so a load run's
	// client-side view lines up tick for tick with a specmon timeline.
	Timeline []TimelinePoint `json:"timeline,omitempty"`
}

// TimelinePoint is one -timeline interval: client-side throughput and
// interval latency quantiles computed from histogram bucket deltas.
type TimelinePoint struct {
	StartMS  int64   `json:"start_ms"`
	EndMS    int64   `json:"end_ms"`
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Rejected int64   `json:"rejected_429"`
	Errors   int64   `json:"errors"`
	OKPerSec float64 `json:"ok_per_sec"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	// Empty marks a window that saw no requests at all. Scenario valleys
	// (a diurnal trough at low -rps) legitimately produce such windows;
	// they stay in the series as explicit gaps so a plotted timeline shows
	// the trough instead of silently splicing the peaks together.
	Empty bool `json:"empty,omitempty"`
}

// Latency summarizes the merged per-request latency distribution: the
// percentiles are bucket-interpolated estimates from a shared
// obs.Histogram (LatencyBuckets resolution, ~12% error), the max is exact.
type Latency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// scenario is the -scenario workload shape: a combination of components
// that turn the steady closed-loop load into a time-varying open-loop one.
// Requests form a nonhomogeneous Poisson process — workers draw exponential
// gaps at the peak rate and thin them by the curve's current factor, so
// arrivals and departures are Poisson at every instant and the rate follows
// the curve exactly.
type scenario struct {
	diurnal bool // sinusoidal rate curve, one cycle per period
	flash   bool // flash-crowd burst pinning the rate to peak late in each cycle
	mobile  bool // random-waypoint mobility riding on churn events
	period  time.Duration
	start   time.Time
}

// parseScenario accepts a comma-separated component list: "diurnal",
// "flash", "mobile" in any combination (e.g. "mobile,diurnal,flash").
func parseScenario(spec string, period time.Duration) (*scenario, error) {
	sc := &scenario{period: period}
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(tok) {
		case "diurnal":
			sc.diurnal = true
		case "flash":
			sc.flash = true
		case "mobile":
			sc.mobile = true
		case "":
		default:
			return nil, fmt.Errorf("unknown -scenario component %q (want diurnal, flash, mobile)", tok)
		}
	}
	if !sc.diurnal && !sc.flash && !sc.mobile {
		return nil, fmt.Errorf("-scenario %q selects no components", spec)
	}
	if sc.period <= 0 {
		return nil, fmt.Errorf("-scenario-period must be positive")
	}
	return sc, nil
}

// phase maps a wall-clock instant to [0,1) within the current cycle.
func (sc *scenario) phase(now time.Time) float64 {
	ph := math.Mod(now.Sub(sc.start).Seconds()/sc.period.Seconds(), 1)
	if ph < 0 {
		ph += 1
	}
	return ph
}

// inFlash reports whether the instant falls inside the flash-crowd burst —
// the [0.70, 0.80) slice of each cycle.
func (sc *scenario) inFlash(now time.Time) bool {
	ph := sc.phase(now)
	return sc.flash && ph >= 0.70 && ph < 0.80
}

// factor is the rate multiplier in (0, 1]: -rps is the peak aggregate rate
// and the curve only ever thins it. The diurnal curve swings [0.10, 1.00];
// flash without diurnal idles at 0.35; the burst pins to 1.0 either way.
func (sc *scenario) factor(now time.Time) float64 {
	f := 1.0
	if sc.diurnal {
		f = 0.55 + 0.45*math.Sin(2*math.Pi*sc.phase(now))
	} else if sc.flash {
		f = 0.35
	}
	if sc.inFlash(now) {
		f = 1.0
	}
	return f
}

// worker is one closed-loop client: it owns a slice of the session fleet
// and a local belief of each session's active buyers and channel states, so
// it can generate plausible churn without querying the server on the hot
// path. Beliefs may drift when sessions are shared — harmless, since
// duplicate arrivals and departures are idempotent no-ops server-side.
type worker struct {
	r        *rand.Rand
	client   *http.Client
	rt       *router
	sessions []*sessionState
	interval time.Duration

	// lat is shared by every worker (Histogram is atomic); maxSec is this
	// worker's exact maximum, merged at the end — buckets can't recover it.
	lat    *obs.Histogram
	maxSec float64

	// Shared outcome counters feeding the -timeline rollup; nil (no-op)
	// handles when the timeline is off. The per-worker int64 fields below
	// stay authoritative for the whole-run report.
	cReq, cOK, cRej, cErr *obs.Counter

	// Scenario mode (-scenario): the workload shape, the per-worker peak
	// event rate the curve thins, and the probability a churn event also
	// carries random-waypoint moves.
	sc       *scenario
	peakRate float64
	moveProb float64

	// record enables the per-session acked/unacked ledger (-ledger).
	record bool
	// binary posts events as canonical eventlog batches (-binary) instead
	// of JSON; responses come back in the batch shape.
	binary bool

	requests, ok, rejected, errors int64
}

type sessionState struct {
	id       string
	buyers   int
	channels int
	active   []bool
	offline  []bool

	// Ledger recording (-ledger). Only the single owning worker touches
	// these; the -sessions >= -concurrency requirement guarantees exclusive
	// ownership, so the lists are the exact order events hit the server.
	spec      market.Spec
	acked     []AckedEvent
	unacked   []online.Event
	ambiguous int

	// Random-waypoint mobility state (-scenario with the mobile component;
	// exclusive ownership guaranteed the same way as the ledger's): pos
	// mirrors the server-side buyer positions, wp is each buyer's current
	// waypoint. Empty when the market carries no geometry.
	pos []geom.Point
	wp  []geom.Point
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7937", "specserved address (host:port or URL)")
		clusterList = fs.String("cluster", "", "comma-separated node addresses (leader first); overrides -addr. Requests fail over to the next node on connection refusal or a follower's 503 write gate, so a SIGKILLed leader plus a promoted follower keeps the run going; -verify picks the first reachable non-follower node")
		sessions    = fs.Int("sessions", 8, "market sessions to create")
		sellers     = fs.Int("sellers", 4, "sellers per generated market")
		buyers      = fs.Int("buyers", 24, "buyers per generated market")
		seed        = fs.Int64("seed", 1, "generation and churn seed")
		duration    = fs.Duration("duration", 5*time.Second, "load duration")
		concurrency = fs.Int("concurrency", 8, "concurrent closed-loop workers")
		rps         = fs.Float64("rps", 0, "target aggregate request rate (0 = unthrottled)")
		chanChurn   = fs.Float64("channel-churn", 0.05, "probability an event is a channel up/down instead of buyer churn")
		batch       = fs.Int("batch", 3, "buyers toggled per churn event")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-request client timeout")
		reportPath  = fs.String("report", "", "write the JSON report to this path ('-' = stdout)")
		minRPS      = fs.Float64("min-rps", 0, "fail unless the sustained OK rate reaches this")
		binary      = fs.Bool("binary", false, "post events as canonical binary eventlog batches instead of JSON (exercises the unified wire format end to end)")
		ledgerPath  = fs.String("ledger", "", "record every acknowledged event (with stats) per session to this JSON file; requires -sessions >= -concurrency so each session has one writer; tolerates the server dying mid-run")
		verifyPath  = fs.String("verify", "", "verify a recovered server against this ledger instead of generating load: acked events must be durable and recovered state must equal a replay of the ledger")
		diffPath    = fs.String("diff", "", "with -verify: write a recovered-vs-expected diff artifact here on failure")
		timeline    = fs.Duration("timeline", 0, "record a per-interval throughput/latency series at this sampling interval and embed it in the JSON report (0 = off)")
		scenarioStr = fs.String("scenario", "", "drive a time-varying open-loop workload instead of steady closed-loop churn: comma-separated components from diurnal (sinusoidal rate curve), flash (flash-crowd bursts), mobile (random-waypoint buyer mobility). Requests become a Poisson process whose rate follows the curve; -rps sets the peak and is required; needs -sessions >= -concurrency")
		scenPeriod  = fs.Duration("scenario-period", time.Minute, "diurnal/flash cycle length for -scenario")
		moveProb    = fs.Float64("move-prob", 0.25, "with -scenario mobile: probability a churn event also carries random-waypoint moves")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}
	if *sessions < 1 || *concurrency < 1 {
		return fmt.Errorf("-sessions and -concurrency must be positive")
	}
	if *ledgerPath != "" && *sessions < *concurrency {
		return fmt.Errorf("-ledger needs -sessions >= -concurrency (%d < %d): each session must have exactly one writer for the ledger to be an exact event order", *sessions, *concurrency)
	}
	var sc *scenario
	if *scenarioStr != "" {
		var err error
		if sc, err = parseScenario(*scenarioStr, *scenPeriod); err != nil {
			return err
		}
		if *rps <= 0 {
			return fmt.Errorf("-scenario needs -rps > 0: the curve thins a peak rate, it cannot scale an unthrottled one")
		}
		if *sessions < *concurrency {
			return fmt.Errorf("-scenario needs -sessions >= -concurrency (%d < %d): mobility state must have exactly one writer per session", *sessions, *concurrency)
		}
	}
	nodes := []string{normalizeNode(*addr)}
	if *clusterList != "" {
		var err error
		if nodes, err = parseCluster(*clusterList); err != nil {
			return err
		}
	}
	rt := newRouter(nodes)
	client := &http.Client{Timeout: *timeout}

	if *verifyPath != "" {
		return runVerify(client, pickVerifyNode(client, rt), *verifyPath, *diffPath, out)
	}

	// Create the session fleet.
	states := make([]*sessionState, *sessions)
	for k := range states {
		m, err := market.Generate(market.Config{Sellers: *sellers, Buyers: *buyers, Seed: xrand.Split(*seed, k)})
		if err != nil {
			return err
		}
		body, err := json.Marshal(server.CreateRequest{Spec: m.Spec()})
		if err != nil {
			return err
		}
		resp, err := postCluster(client, rt, "/v1/sessions", "application/json", body)
		if err != nil {
			return fmt.Errorf("creating session %d: %w", k, err)
		}
		var created server.CreateResponse
		decodeErr := json.NewDecoder(resp.Body).Decode(&created)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("creating session %d: HTTP %d", k, resp.StatusCode)
		}
		if decodeErr != nil {
			return fmt.Errorf("creating session %d: %w", k, decodeErr)
		}
		states[k] = &sessionState{
			id:       created.ID,
			buyers:   created.Buyers,
			channels: created.Channels,
			active:   make([]bool, created.Buyers),
			offline:  make([]bool, created.Channels),
			spec:     m.Spec(),
		}
		if sc != nil && sc.mobile {
			if spec := states[k].spec; len(spec.BuyerPos) == created.Buyers {
				states[k].pos = append([]geom.Point(nil), spec.BuyerPos...)
				states[k].wp = make([]geom.Point, created.Buyers)
				wpr := xrand.New(xrand.Split(*seed, 1000+k))
				for j := range states[k].wp {
					states[k].wp[j] = geom.PaperArea().RandomPoint(wpr)
				}
			}
		}
	}

	// Partition sessions across workers; with fewer sessions than workers
	// they are shared round-robin.
	workers := make([]*worker, *concurrency)
	var interval time.Duration
	if *rps > 0 {
		interval = time.Duration(float64(*concurrency) / *rps * float64(time.Second))
	}
	// One registry holds the client-side instrumentation: the shared latency
	// histogram and, when -timeline is on, the outcome counters the rollup
	// samples into per-interval windows.
	reg := obs.NewRegistry()
	lat := reg.Histogram("specload.request_seconds", obs.LatencyBuckets())
	var rollup *obs.Rollup
	if *timeline > 0 {
		rollup = obs.NewRollup(reg, *timeline, int(*duration / *timeline)+16)
		rollup.Start()
	}
	for w := range workers {
		wk := &worker{
			r:        xrand.NewStream(*seed, w+1),
			client:   client,
			rt:       rt,
			interval: interval,
			lat:      lat,
			sc:       sc,
			peakRate: *rps / float64(*concurrency),
			moveProb: *moveProb,
			record:   *ledgerPath != "",
			binary:   *binary,
		}
		if *timeline > 0 {
			wk.cReq = reg.Counter("specload.requests")
			wk.cOK = reg.Counter("specload.ok")
			wk.cRej = reg.Counter("specload.rejected")
			wk.cErr = reg.Counter("specload.errors")
		}
		for k := w; k < len(states); k += *concurrency {
			wk.sessions = append(wk.sessions, states[k])
		}
		if len(wk.sessions) == 0 {
			wk.sessions = append(wk.sessions, states[w%len(states)])
		}
		workers[w] = wk
	}

	start := time.Now()
	if sc != nil {
		sc.start = start
	}
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for _, wk := range workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			wk.loop(deadline, *chanChurn, *batch)
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rollup.Stop() // final flush catches the tail interval

	rep := Report{
		DurationSeconds: elapsed.Seconds(),
		Sessions:        *sessions,
		Concurrency:     *concurrency,
		TargetRPS:       *rps,
		Scenario:        *scenarioStr,
	}
	maxSec := 0.0
	for _, wk := range workers {
		rep.Requests += wk.requests
		rep.OK += wk.ok
		rep.Rejected += wk.rejected
		rep.Errors += wk.errors
		if wk.maxSec > maxSec {
			maxSec = wk.maxSec
		}
	}
	rep.EventsOK = rep.OK
	rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	if lat.Count() > 0 {
		rep.LatencyMS = Latency{
			P50: lat.Quantile(0.50) * 1e3,
			P90: lat.Quantile(0.90) * 1e3,
			P99: lat.Quantile(0.99) * 1e3,
			Max: maxSec * 1e3,
		}
	}
	rep.Timeline = buildTimeline(rollup)

	// Persist the ledger before talking to the server again: in a crash run
	// the server is already dead and the ledger is the whole point.
	if *ledgerPath != "" {
		led := buildLedger(*seed, states)
		if err := writeLedger(*ledgerPath, led); err != nil {
			return fmt.Errorf("writing ledger: %w", err)
		}
		acked, unacked := 0, 0
		for _, sl := range led.Sessions {
			acked += len(sl.Acked)
			unacked += len(sl.Unacked)
		}
		fmt.Fprintf(out, "ledger: %d sessions, %d acked events, %d unknown-fate tail events -> %s\n",
			len(led.Sessions), acked, unacked, *ledgerPath)
	}

	// Reconcile: every 200 the server sent us must be an applied event.
	// The server can apply slightly more than we count (a request whose
	// response we abandoned at the client timeout), never fewer. With
	// -ledger the server may be gone by now (crash runs kill it mid-load);
	// the ledger verification pass covers what reconciliation would have.
	snap, err := fetchSnapshot(client, rt.base())
	if err != nil {
		if *ledgerPath == "" {
			return fmt.Errorf("metrics reconciliation: %w", err)
		}
		fmt.Fprintf(out, "reconcile skipped (server unreachable: %v); use -verify against the ledger after restart\n", err)
	} else {
		rep.Applied = snap.Counters["server.events.applied"]
		rep.LostEvents = rep.EventsOK - rep.Applied
		if rep.LostEvents < 0 {
			rep.LostEvents = 0
		}
		rep.Reconciled = true
		rep.FinalActive = finalActive(client, rt.base(), states)
	}
	rep.Nodes = fetchNodeStatuses(client, rt)

	if *reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *reportPath == "-" {
			_, _ = out.Write(data)
		} else if err := os.WriteFile(*reportPath, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "specload: %d requests in %.2fs (%.0f ok/s), ok=%d rejected=%d errors=%d\n",
		rep.Requests, rep.DurationSeconds, rep.Throughput, rep.OK, rep.Rejected, rep.Errors)
	fmt.Fprintf(out, "latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		rep.LatencyMS.P50, rep.LatencyMS.P90, rep.LatencyMS.P99, rep.LatencyMS.Max)
	if rep.Reconciled {
		fmt.Fprintf(out, "reconcile: accepted=%d applied=%d lost=%d\n", rep.EventsOK, rep.Applied, rep.LostEvents)
	}
	printNodeStatuses(out, rep.Nodes)

	if rep.LostEvents > 0 {
		return fmt.Errorf("%d events accepted but not applied", rep.LostEvents)
	}
	if *minRPS > 0 && rep.Throughput < *minRPS {
		return fmt.Errorf("throughput %.0f ok/s below -min-rps %.0f", rep.Throughput, *minRPS)
	}
	return nil
}

// loop issues event requests until the deadline. Steady mode paces to the
// worker's share of the target rate; scenario mode draws exponential gaps at
// the peak rate and thins each arrival by the curve's instantaneous factor —
// the textbook construction of a nonhomogeneous Poisson process, so event
// arrivals and departures are Poisson at every point of the curve.
func (wk *worker) loop(deadline time.Time, chanChurn float64, batch int) {
	next := time.Now()
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		if wk.sc != nil {
			gap := time.Duration(wk.r.ExpFloat64() / wk.peakRate * float64(time.Second))
			if now.Add(gap).After(deadline) {
				return
			}
			time.Sleep(gap)
			if wk.r.Float64() >= wk.sc.factor(time.Now()) {
				continue // thinned: this candidate arrival is off-curve
			}
		} else if wk.interval > 0 {
			if now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(wk.interval)
		}
		ss := wk.sessions[wk.r.Intn(len(wk.sessions))]
		ev := wk.makeEvent(ss, chanChurn, batch)
		wk.post(ss, ev)
	}
}

// makeEvent generates one churn event from the worker's belief of the
// session state and updates the belief optimistically. In scenario mode a
// flash-crowd burst biases churn to pure arrivals (the crowd shows up; it
// drains through normal churn afterwards) and the mobile component attaches
// random-waypoint moves to a slice of events.
func (wk *worker) makeEvent(ss *sessionState, chanChurn float64, batch int) online.Event {
	var ev online.Event
	flash := wk.sc != nil && wk.sc.inFlash(time.Now())
	if !flash && wk.r.Float64() < chanChurn && ss.channels > 0 {
		i := wk.r.Intn(ss.channels)
		if ss.offline[i] {
			ev.ChannelUp = append(ev.ChannelUp, i)
		} else {
			ev.ChannelDown = append(ev.ChannelDown, i)
		}
		ss.offline[i] = !ss.offline[i]
		return ev
	}
	for b := 0; b < batch; b++ {
		j := wk.r.Intn(ss.buyers)
		if flash && ss.active[j] {
			continue // burst traffic only joins; never kicks anyone out
		}
		if ss.active[j] {
			ev.Depart = append(ev.Depart, j)
		} else {
			ev.Arrive = append(ev.Arrive, j)
		}
		ss.active[j] = !ss.active[j]
	}
	if wk.sc != nil && wk.sc.mobile && len(ss.pos) > 0 && wk.r.Float64() < wk.moveProb {
		ev.Move = wk.makeMoves(ss)
	}
	return ev
}

// makeMoves advances one to three buyers a stride along their waypoint legs,
// redrawing a fresh waypoint whenever one is reached — the random-waypoint
// model over the deployment area, tracked client-side so the posted
// positions form coherent trajectories rather than teleports.
func (wk *worker) makeMoves(ss *sessionState) []online.BuyerMove {
	const stride = 1.25
	moves := make([]online.BuyerMove, 0, 3)
	for n := 1 + wk.r.Intn(3); n > 0; n-- {
		j := wk.r.Intn(len(ss.pos))
		p, dst := ss.pos[j], ss.wp[j]
		dx, dy := dst.X-p.X, dst.Y-p.Y
		if d := math.Hypot(dx, dy); d <= stride {
			p = dst
			ss.wp[j] = geom.PaperArea().RandomPoint(wk.r)
		} else {
			p = geom.Point{X: p.X + dx/d*stride, Y: p.Y + dy/d*stride}
		}
		ss.pos[j] = p
		moves = append(moves, online.BuyerMove{Buyer: j, To: p})
	}
	return moves
}

// post delivers one event, failing over across cluster nodes when there
// are any. Every attempt whose fate is unknown (transport error after the
// request left, or a non-503 5xx) joins the unacked ledger tail before the
// next attempt — each attempt can have been applied at most once, so the
// verify bounds stay sound even when a retry later succeeds (recordAck
// then demotes the tail to the ambiguity count). Connection refusal and
// the follower's 503 write gate are definitely-not-applied, so they retry
// cleanly without touching the ledger. With a single node the budget is
// one attempt and the behavior is exactly the pre-cluster one.
func (wk *worker) post(ss *sessionState, ev online.Event) {
	var body []byte
	contentType := "application/json"
	if wk.binary {
		body = eventlog.EncodeBatch([]online.Event{ev})
		contentType = eventlog.ContentType
	} else {
		var err error
		if body, err = json.Marshal(ev); err != nil {
			wk.errors++
			wk.cErr.Inc()
			return
		}
	}
	for try := 0; try < wk.rt.attempts(); try++ {
		if try > 0 {
			time.Sleep(25 * time.Millisecond) // failover pause: let a promote land
		}
		base := wk.rt.base()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions/"+ss.id+"/events", bytes.NewReader(body))
		if err != nil {
			wk.errors++
			wk.cErr.Inc()
			return
		}
		req.Header.Set("Content-Type", contentType)
		// A fresh traceparent per request makes each event a distinct trace in
		// the server's flight recorder, findable by the echoed X-Request-Id.
		req.Header.Set("traceparent", trace.FormatTraceparent(trace.SpanContext{
			Trace: trace.NewTraceID(), Span: trace.NewSpanID(),
		}))
		wk.requests++
		wk.cReq.Inc()
		start := time.Now()
		resp, err := wk.client.Do(req)
		lat := time.Since(start).Seconds()
		if err != nil {
			// The request may have been applied before the connection died —
			// unknown fate, so it joins the unacked ledger tail. Connection
			// refused proves the server never saw it.
			if wk.record && !definitelyNotSent(err) {
				ss.unacked = append(ss.unacked, ev)
			}
			wk.rt.advance(base, "")
			continue
		}
		respBody, readErr := io.ReadAll(resp.Body)
		leaderHint := resp.Header.Get("X-Leader")
		resp.Body.Close()
		wk.lat.Observe(lat)
		if lat > wk.maxSec {
			wk.maxSec = lat
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			wk.ok++
			wk.cOK.Inc()
			if wk.record {
				wk.recordAck(ss, ev, respBody, readErr)
			}
			return
		case resp.StatusCode == http.StatusTooManyRequests:
			wk.rejected++
			wk.cRej.Inc()
			time.Sleep(2 * time.Millisecond) // brief backoff on admission rejects
			return
		case resp.StatusCode == http.StatusServiceUnavailable && wk.rt.clustered():
			// Follower write gate or a draining node: rejected before any
			// mutation, so retry against the next node (or the leader the
			// follower named in X-Leader) without widening the ledger.
			wk.rt.advance(base, leaderHint)
			continue
		case resp.StatusCode >= 500 && wk.rt.clustered():
			// No durability promise either way: unknown fate, then retry.
			if wk.record {
				ss.unacked = append(ss.unacked, ev)
			}
			wk.rt.advance(base, leaderHint)
			continue
		default:
			wk.errors++
			wk.cErr.Inc()
			// 4xx/429/503 mean rejected before mutation. 5xx is not a durability
			// promise either way, so treat it like a lost response.
			if wk.record && resp.StatusCode >= 500 {
				ss.unacked = append(ss.unacked, ev)
			}
			return
		}
	}
	// Budget exhausted without an ack; any unknown-fate attempts are
	// already in the unacked tail.
	wk.errors++
	wk.cErr.Inc()
}

// recordAck appends an acknowledged event to the session's ledger. An ack
// arriving while earlier events sit in the unknown tail makes those events
// unplaceable in the applied order — they are demoted to an ambiguity count
// and the session loses bit-for-bit verification (never happens in a crash
// run: a dead server acks nothing).
func (wk *worker) recordAck(ss *sessionState, ev online.Event, respBody []byte, readErr error) {
	var stats online.StepStats
	if readErr == nil {
		if wk.binary {
			// Binary posts always come back in the batch shape.
			var br server.BatchResponse
			readErr = json.Unmarshal(respBody, &br)
			if readErr == nil && len(br.Results) != 1 {
				readErr = fmt.Errorf("batch response has %d results, want 1", len(br.Results))
			}
			if readErr == nil {
				stats = br.Results[0].StepStats
			}
		} else {
			readErr = json.Unmarshal(respBody, &stats)
		}
	}
	if readErr != nil {
		// Acked but stats unreadable: the event is durable, but without its
		// stats the replay cross-check would false-fail.
		ss.ambiguous += len(ss.unacked) + 1
		ss.unacked = nil
		return
	}
	if n := len(ss.unacked); n > 0 {
		ss.ambiguous += n
		ss.unacked = nil
	}
	ss.acked = append(ss.acked, AckedEvent{Event: ev, Stats: stats})
}

// buildTimeline reduces the rollup's delta windows to report points (nil
// rollup, -timeline off, produces nothing).
func buildTimeline(rollup *obs.Rollup) []TimelinePoint {
	return timelinePoints(rollup.Windows(0))
}

// timelinePoints is buildTimeline's pure core. Leading idle windows (fleet
// creation before any load) are trimmed as noise, but zero-request windows
// after load has started are kept and marked Empty: a scenario valley that
// produced no requests is data, and silently dropping the window would
// splice its neighbors into a series that never dipped.
func timelinePoints(ws []obs.Window) []TimelinePoint {
	var points []TimelinePoint
	for _, w := range ws {
		p := TimelinePoint{
			StartMS:  w.StartMS,
			EndMS:    w.EndMS,
			Requests: w.Counters["specload.requests"],
			OK:       w.Counters["specload.ok"],
			Rejected: w.Counters["specload.rejected"],
			Errors:   w.Counters["specload.errors"],
			OKPerSec: w.Rate("specload.ok"),
		}
		if p.Requests == 0 {
			if len(points) == 0 {
				continue // leading idle windows (fleet creation) are noise
			}
			p.Empty = true
		}
		if hs := w.Histograms["specload.request_seconds"]; hs.Count > 0 {
			p.P50MS = hs.Quantile(0.50) * 1e3
			p.P99MS = hs.Quantile(0.99) * 1e3
		}
		points = append(points, p)
	}
	return points
}

func fetchSnapshot(client *http.Client, base string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := client.Get(base + "/debug/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// finalActive sums active buyers across the fleet from the server's own
// snapshots — a sanity signal that the sessions really churned.
func finalActive(client *http.Client, base string, states []*sessionState) int {
	total := 0
	for _, ss := range states {
		resp, err := client.Get(base + "/v1/sessions/" + ss.id)
		if err != nil {
			continue
		}
		var got server.CreateResponse
		if json.NewDecoder(resp.Body).Decode(&got) == nil {
			total += got.Active
		}
		resp.Body.Close()
	}
	return total
}
