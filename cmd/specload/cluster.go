package main

// Cluster routing: the client side of failover. With -cluster, specload
// knows every node of a replicated deployment and routes all traffic at one
// of them at a time. When that node refuses connections (crashed) or gates
// writes with 503 (it is a follower), the router advances to the next node,
// so a leader SIGKILL plus promote shows up as a brief error burst followed
// by acks from the new leader — and the ledger keeps its guarantees across
// the switch: an attempt whose fate is unknown joins the unacked tail once
// per attempt (each attempt can have been applied at most once), and a
// retry that later succeeds demotes that tail to the ambiguity count via
// the normal recordAck path, so acked-and-lost stays a hard failure while
// duplicated-by-retry merely loses bit-for-bit precision for that session.
//
// Single-node runs (no -cluster, or one entry) take exactly one attempt per
// request, preserving the pre-cluster behavior.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"specmatch/internal/replica"
)

// router tracks which node requests currently target. Workers share one
// router; advance is CAS-guarded so concurrent failures move past a dead
// node once instead of racing around the ring.
type router struct {
	nodes []string
	cur   atomic.Int32
}

func newRouter(nodes []string) *router { return &router{nodes: nodes} }

func (rt *router) base() string { return rt.nodes[rt.cur.Load()] }

func (rt *router) clustered() bool { return len(rt.nodes) > 1 }

// attempts is the per-request try budget: twice around the ring, so a
// request issued mid-failover can reach the promoted node after bouncing
// off both the dead leader and the not-yet-promoted follower, without
// spinning forever when the whole cluster is down.
func (rt *router) attempts() int {
	if len(rt.nodes) == 1 {
		return 1
	}
	return 2 * len(rt.nodes)
}

// advance moves to the next node after a failure against from, preferring
// an explicit leader hint (the X-Leader header a gated follower returns)
// when it names a different known node. If another worker already moved
// on, this is a no-op.
func (rt *router) advance(from, hint string) {
	cur := rt.cur.Load()
	if rt.nodes[cur] != from {
		return
	}
	if hint != "" {
		h := normalizeNode(hint)
		for i, n := range rt.nodes {
			if n == h && n != from {
				rt.cur.CompareAndSwap(cur, int32(i))
				return
			}
		}
	}
	rt.cur.CompareAndSwap(cur, (cur+1)%int32(len(rt.nodes)))
}

// normalizeNode canonicalizes a node address so -cluster entries, -addr,
// and X-Leader hints compare equal.
func normalizeNode(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// parseCluster splits a -cluster list into normalized node URLs.
func parseCluster(list string) ([]string, error) {
	var nodes []string
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nodes = append(nodes, normalizeNode(part))
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-cluster has no nodes")
	}
	return nodes, nil
}

// postCluster posts to the router's current node, failing over on
// connection refusal or a follower's write gate. It serves the sequential
// setup and verify paths; the worker hot path has its own ledger-aware
// loop in post.
func postCluster(client *http.Client, rt *router, path, contentType string, body []byte) (*http.Response, error) {
	var lastErr error
	for try := 0; try < rt.attempts(); try++ {
		if try > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		base := rt.base()
		resp, err := client.Post(base+path, contentType, bytes.NewReader(body))
		if err != nil {
			lastErr = err
			if rt.clustered() {
				rt.advance(base, "")
				continue
			}
			return nil, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable && rt.clustered() {
			hint := resp.Header.Get("X-Leader")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("HTTP 503 from %s%s", base, path)
			rt.advance(base, hint)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// NodeReport surfaces one node's /v1/status document in the specload
// report, so a run's output shows each node's role and durable position.
type NodeReport struct {
	URL    string              `json:"url"`
	Error  string              `json:"error,omitempty"`
	Status *replica.NodeStatus `json:"status,omitempty"`
}

// fetchNodeStatuses asks every node for /v1/status. Unreachable nodes
// (e.g. the SIGKILLed leader in a failover run) report the error instead.
func fetchNodeStatuses(client *http.Client, rt *router) []NodeReport {
	reports := make([]NodeReport, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		nr := NodeReport{URL: n}
		st, err := replica.FetchStatus(context.Background(), client, n)
		if err != nil {
			nr.Error = err.Error()
		} else {
			nr.Status = st
		}
		reports = append(reports, nr)
	}
	return reports
}

// printNodeStatuses writes one summary line per node.
func printNodeStatuses(out io.Writer, reports []NodeReport) {
	for _, nr := range reports {
		if nr.Status == nil {
			fmt.Fprintf(out, "node %s: unreachable (%s)\n", nr.URL, nr.Error)
			continue
		}
		st := nr.Status
		var maxDurable, maxCkpt uint64
		for _, sh := range st.Shards {
			if sh.DurableLSN > maxDurable {
				maxDurable = sh.DurableLSN
			}
			if sh.CheckpointLSN > maxCkpt {
				maxCkpt = sh.CheckpointLSN
			}
		}
		fmt.Fprintf(out, "node %s: role=%s durable=%t sessions=%d shards=%d max_durable_lsn=%d max_checkpoint_lsn=%d\n",
			nr.URL, st.Role, st.Durable, st.Sessions, len(st.Shards), maxDurable, maxCkpt)
	}
}

// pickVerifyNode returns the node -verify should target: the first
// reachable one, preferring a node that does not report itself follower —
// verification creates replay sessions, which a follower's write gate
// rejects.
func pickVerifyNode(client *http.Client, rt *router) string {
	first := ""
	for _, n := range rt.nodes {
		st, err := replica.FetchStatus(context.Background(), client, n)
		if err != nil {
			continue
		}
		if first == "" {
			first = n
		}
		if st.Role != replica.RoleFollower {
			return n
		}
	}
	if first != "" {
		return first
	}
	return rt.base()
}
