package main

import (
	"testing"
	"time"

	"specmatch/internal/obs"
)

// Zero-request windows after load has started must survive into the series
// as explicit Empty points — a scenario valley is data, not noise — while
// leading idle windows are still trimmed.
func TestTimelineKeepsEmptyWindows(t *testing.T) {
	win := func(start int64, requests, ok int64) obs.Window {
		return obs.Window{
			StartMS:  start,
			EndMS:    start + 1000,
			Counters: map[string]int64{"specload.requests": requests, "specload.ok": ok},
		}
	}
	points := timelinePoints([]obs.Window{
		win(0, 0, 0),    // pre-load: trimmed
		win(1000, 0, 0), // pre-load: trimmed
		win(2000, 5, 5),
		win(3000, 0, 0), // valley: kept, Empty
		win(4000, 0, 0), // valley: kept, Empty
		win(5000, 8, 7),
	})
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4 (2 trimmed): %+v", len(points), points)
	}
	wantEmpty := []bool{false, true, true, false}
	for i, p := range points {
		if p.Empty != wantEmpty[i] {
			t.Errorf("point %d (start %d): Empty=%v, want %v", i, p.StartMS, p.Empty, wantEmpty[i])
		}
	}
	if points[1].OKPerSec != 0 || points[1].Requests != 0 {
		t.Errorf("empty point carries traffic: %+v", points[1])
	}
	if points[3].OK != 7 {
		t.Errorf("last point OK=%d, want 7", points[3].OK)
	}
}

func TestTimelineAllIdle(t *testing.T) {
	ws := []obs.Window{
		{StartMS: 0, EndMS: 1000, Counters: map[string]int64{}},
		{StartMS: 1000, EndMS: 2000, Counters: map[string]int64{}},
	}
	if points := timelinePoints(ws); len(points) != 0 {
		t.Fatalf("all-idle rollup produced %d points, want 0", len(points))
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := parseScenario("mobile,diurnal,flash", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.mobile || !sc.diurnal || !sc.flash {
		t.Fatalf("components not all set: %+v", sc)
	}
	for _, bad := range []string{"", "tsunami", "diurnal,tsunami"} {
		if _, err := parseScenario(bad, time.Minute); err == nil {
			t.Errorf("parseScenario(%q) accepted", bad)
		}
	}
	if _, err := parseScenario("diurnal", 0); err == nil {
		t.Error("zero period accepted")
	}
}

// The curve is a thinning factor: always in (0, 1], hitting 1.0 inside a
// flash burst and dipping through a diurnal valley.
func TestScenarioFactorBounds(t *testing.T) {
	sc, err := parseScenario("diurnal,flash", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	sc.start = time.Unix(0, 0)
	minF, maxF := 2.0, 0.0
	for s := 0; s < 60; s++ {
		f := sc.factor(sc.start.Add(time.Duration(s) * time.Second))
		if f <= 0 || f > 1 {
			t.Fatalf("factor at +%ds = %v, out of (0,1]", s, f)
		}
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if maxF != 1.0 {
		t.Errorf("flash burst never pinned the rate to peak: max factor %v", maxF)
	}
	if minF > 0.2 {
		t.Errorf("diurnal valley too shallow: min factor %v", minF)
	}
	if !sc.inFlash(sc.start.Add(45 * time.Second)) {
		t.Error("+45s (phase 0.75) should be inside the flash burst")
	}
	if sc.inFlash(sc.start.Add(10 * time.Second)) {
		t.Error("+10s (phase 0.17) should be outside the flash burst")
	}
}
