package main

// Ledger recording and replay verification: the client side of the crash
// test. With -ledger, specload keeps an exact, ordered record of every event
// the server acknowledged per session (plus the tail whose fate is unknown —
// in flight when the server died). With -verify, a later specload run checks
// a restarted server against that ledger: every acked event must have
// survived, and the recovered session state must be bit-for-bit what
// replaying the ledger produces. The engine is deterministic (same events →
// same matching), so verification replays the acked sequence into a fresh
// session on the recovered server and deep-compares snapshots — welfare,
// assignment, active buyers, step count — instead of trusting any summary
// statistic alone.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"syscall"

	"specmatch/internal/market"
	"specmatch/internal/online"
	"specmatch/internal/server"
)

// Ledger is the JSON document -ledger writes and -verify reads.
type Ledger struct {
	Seed     int64           `json:"seed"`
	Sessions []SessionLedger `json:"sessions"`
}

// SessionLedger is one session's event history as the client saw it.
type SessionLedger struct {
	ID   string      `json:"id"`
	Spec market.Spec `json:"spec"`
	// Acked holds every event the server answered 200 for, in post order,
	// with the StepStats it returned. These are durable by contract: the
	// server fsyncs before acknowledging.
	Acked []AckedEvent `json:"acked"`
	// Unacked holds events posted after the last ack whose fate is unknown
	// (timeout, connection reset — the request may or may not have been
	// applied before the crash). Recovery may legally contain any prefix of
	// this tail on top of the acked sequence, and nothing else.
	Unacked []online.Event `json:"unacked,omitempty"`
	// Ambiguous counts unknown-fate events that were later followed by an
	// ack on the same session. Their position in the applied sequence cannot
	// be pinned down client-side, so bit-for-bit verification is skipped for
	// the session (step-count bounds still apply). Zero in a clean crash
	// run: once the server dies, nothing acks afterwards.
	Ambiguous int `json:"ambiguous,omitempty"`
}

// AckedEvent pairs an acknowledged event with the stats the server returned.
type AckedEvent struct {
	Event online.Event     `json:"event"`
	Stats online.StepStats `json:"stats"`
}

// definitelyNotSent reports whether a request error proves the server never
// saw the request (so it must not enter the unacked ledger). Connection
// refused means no byte left this process.
func definitelyNotSent(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// buildLedger assembles the ledger document from the per-session records.
func buildLedger(seed int64, states []*sessionState) Ledger {
	led := Ledger{Seed: seed}
	for _, ss := range states {
		sl := SessionLedger{
			ID:        ss.id,
			Spec:      ss.spec,
			Acked:     ss.acked,
			Unacked:   ss.unacked,
			Ambiguous: ss.ambiguous,
		}
		if sl.Acked == nil {
			sl.Acked = []AckedEvent{}
		}
		led.Sessions = append(led.Sessions, sl)
	}
	return led
}

func writeLedger(path string, led Ledger) error {
	data, err := json.MarshalIndent(led, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// verifyDiff is the artifact written to -diff when verification fails: one
// entry per failed session, with both sides of the comparison so the
// mismatch can be inspected offline.
type verifyDiff struct {
	Session   string           `json:"session"`
	Reason    string           `json:"reason"`
	Acked     int              `json:"acked_events"`
	Unacked   int              `json:"unacked_events"`
	Recovered *online.Snapshot `json:"recovered,omitempty"`
	Replayed  *online.Snapshot `json:"replayed,omitempty"`
}

// runVerify checks a (typically just-restarted) server against a ledger.
// For every session: the recovered step count S must lie in
// [acked, acked+unacked] — fewer means acked events were lost, more means
// events appeared from nowhere — and replaying the acked sequence plus the
// first S-acked unacked events into a fresh session must reproduce the
// recovered snapshot exactly. Mismatches are written to diffPath (when set)
// and make the run fail.
func runVerify(client *http.Client, base, ledgerPath, diffPath string, out io.Writer) error {
	data, err := os.ReadFile(ledgerPath)
	if err != nil {
		return err
	}
	var led Ledger
	if err := json.Unmarshal(data, &led); err != nil {
		return fmt.Errorf("parsing ledger %s: %w", ledgerPath, err)
	}

	var diffs []verifyDiff
	fail := func(sl SessionLedger, reason string, recovered, replayed *online.Snapshot) {
		diffs = append(diffs, verifyDiff{
			Session: sl.ID, Reason: reason,
			Acked: len(sl.Acked), Unacked: len(sl.Unacked),
			Recovered: recovered, Replayed: replayed,
		})
		fmt.Fprintf(out, "verify: FAIL %s: %s\n", sl.ID, reason)
	}

	ackedTotal, unackedApplied, skipped := 0, 0, 0
	for _, sl := range led.Sessions {
		recovered, err := getSnapshot(client, base, sl.ID)
		if err != nil {
			fail(sl, fmt.Sprintf("recovered session unreadable: %v", err), nil, nil)
			continue
		}
		a, s := len(sl.Acked), recovered.Steps
		if s < a {
			fail(sl, fmt.Sprintf("recovered %d steps but %d events were acknowledged: acked events lost", s, a), &recovered, nil)
			continue
		}
		if s > a+len(sl.Unacked)+sl.Ambiguous {
			fail(sl, fmt.Sprintf("recovered %d steps but client only posted %d (acked) + %d (unacked): phantom events",
				s, a, len(sl.Unacked)+sl.Ambiguous), &recovered, nil)
			continue
		}
		ackedTotal += a
		if sl.Ambiguous > 0 {
			skipped++
			fmt.Fprintf(out, "verify: %s has %d ambiguous events; step bounds ok (%d in [%d,%d]), bit-for-bit skipped\n",
				sl.ID, sl.Ambiguous, s, a, a+len(sl.Unacked)+sl.Ambiguous)
			continue
		}
		unackedApplied += s - a
		replayed, err := replaySession(client, base, sl, s-a)
		if err != nil {
			fail(sl, fmt.Sprintf("replay: %v", err), &recovered, nil)
			continue
		}
		if !reflect.DeepEqual(recovered, replayed) {
			fail(sl, "recovered snapshot differs from ledger replay", &recovered, &replayed)
		}
	}

	fmt.Fprintf(out, "verify: %d sessions, %d acked events durable, %d unacked tail events applied, %d failed, %d skipped (ambiguous)\n",
		len(led.Sessions), ackedTotal, unackedApplied, len(diffs), skipped)
	if len(diffs) > 0 {
		if diffPath != "" {
			art, merr := json.MarshalIndent(diffs, "", "  ")
			if merr == nil {
				merr = os.WriteFile(diffPath, append(art, '\n'), 0o644)
			}
			if merr != nil {
				fmt.Fprintf(out, "verify: writing diff artifact: %v\n", merr)
			} else {
				fmt.Fprintf(out, "verify: wrote recovered-vs-expected diff to %s\n", diffPath)
			}
		}
		return fmt.Errorf("%d of %d sessions failed verification", len(diffs), len(led.Sessions))
	}
	return nil
}

// replaySession creates a fresh session from the ledger's spec, replays the
// acked events plus the first extra unacked ones, cross-checks each acked
// event's StepStats against what the original server returned, and hands
// back the final snapshot. The temporary session is deleted afterwards.
func replaySession(client *http.Client, base string, sl SessionLedger, extra int) (online.Snapshot, error) {
	var zero online.Snapshot
	body, err := json.Marshal(server.CreateRequest{Spec: sl.Spec})
	if err != nil {
		return zero, err
	}
	resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return zero, err
	}
	var created server.CreateResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return zero, fmt.Errorf("creating replay session: HTTP %d", resp.StatusCode)
	}
	if decodeErr != nil {
		return zero, decodeErr
	}
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+created.ID, nil)
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	post := func(ev online.Event) (online.StepStats, error) {
		var stats online.StepStats
		body, err := json.Marshal(ev)
		if err != nil {
			return stats, err
		}
		resp, err := client.Post(base+"/v1/sessions/"+created.ID+"/events", "application/json", bytes.NewReader(body))
		if err != nil {
			return stats, err
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&stats)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return stats, fmt.Errorf("replay event: HTTP %d", resp.StatusCode)
		}
		return stats, decodeErr
	}
	for k, ae := range sl.Acked {
		stats, err := post(ae.Event)
		if err != nil {
			return zero, fmt.Errorf("acked event %d: %w", k, err)
		}
		if stats != ae.Stats {
			return zero, fmt.Errorf("acked event %d: replayed stats %+v != acknowledged stats %+v", k, stats, ae.Stats)
		}
	}
	for k := 0; k < extra; k++ {
		if _, err := post(sl.Unacked[k]); err != nil {
			return zero, fmt.Errorf("unacked event %d: %w", k, err)
		}
	}
	return getSnapshot(client, base, created.ID)
}

func getSnapshot(client *http.Client, base, id string) (online.Snapshot, error) {
	var zero online.Snapshot
	resp, err := client.Get(base + "/v1/sessions/" + id)
	if err != nil {
		return zero, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return zero, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var got server.CreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		return zero, err
	}
	return got.Snapshot, nil
}
