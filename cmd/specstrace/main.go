// Command specstrace turns flight-recorder dumps back into causal stories:
// it ingests one or more Chrome trace-event JSON files (specserved's
// -trace-dump, specnode's SIGQUIT dump, or /debug/trace output), reassembles
// the span trees, and reports per-span-name latency breakdowns, per-session
// round timelines with the gating seller per round (the critical path of a
// matching round is its slowest MWIS solve), and an ASCII Gantt of the
// slowest traces.
//
//	specstrace specserved-trace.json
//	specstrace -json hub-trace.json node0-trace.json   # multi-process merge
//	specstrace -check dump.json                        # non-zero exit on orphan spans
//
// Orphans — spans whose parent id is missing from the merged dump and whose
// attrs don't mark the parent as remote (remote=1) — indicate broken
// propagation or a wrapped ring, so -check is what CI asserts after a load
// run. Pass every per-process dump of one deployment together: a parent
// recorded by another process's flight recorder resolves once merged.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"specmatch/internal/stats"
	"specmatch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specstrace:", err)
		os.Exit(1)
	}
}

// Report is the -json document; the text output renders the same analysis.
type Report struct {
	Files   int  `json:"files"`
	Spans   int  `json:"spans"`
	Traces  int  `json:"traces"`
	Orphans int  `json:"orphans"`
	Check   bool `json:"check_passed"`

	Names  []NameStat     `json:"names"`
	Slow   []TraceSummary `json:"slowest_traces"`
	Orphan []OrphanSpan   `json:"orphan_spans,omitempty"`

	// Replication summarizes replica.lag spans when the dump came from a
	// follower (one span per shard per leader poll), so the analysis says
	// how stale the node was — a gating-seller timeline from a lagging
	// follower reflects replicated state, not the leader's latest.
	Replication []ReplicaLag `json:"replication,omitempty"`
}

// ReplicaLag is one shard's replication staleness as seen in the dump:
// the newest sample's position plus the peak lag across all samples.
type ReplicaLag struct {
	Shard      int `json:"shard"`
	Samples    int `json:"samples"`
	LastLagLSN int `json:"last_lag_lsn"`
	LastLagMS  int `json:"last_lag_ms"`
	MaxLagLSN  int `json:"max_lag_lsn"`
	AppliedLSN int `json:"applied_lsn"`
	LeaderLSN  int `json:"leader_lsn"`
}

// NameStat is the latency breakdown for one span name.
type NameStat struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
	TotalMS float64 `json:"total_ms"`
}

// TraceSummary is one reassembled trace.
type TraceSummary struct {
	Trace      string      `json:"trace"`
	Spans      int         `json:"spans"`
	DurationMS float64     `json:"duration_ms"`
	Roots      []string    `json:"roots"`
	Rounds     []RoundInfo `json:"rounds,omitempty"`
}

// RoundInfo is one engine round inside a trace: its stage, wall time, and
// the gating seller — the argmax-duration core.solve child, i.e. the solve
// the round could not finish without.
type RoundInfo struct {
	Stage        string  `json:"stage"`
	Round        int     `json:"round"`
	DurationMS   float64 `json:"duration_ms"`
	Messages     int     `json:"messages"`
	GatingSeller int     `json:"gating_seller"` // -1 when the round ran no solves
	GatingMS     float64 `json:"gating_ms"`
}

// OrphanSpan identifies a span whose parent could not be resolved.
type OrphanSpan struct {
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent"`
	Name   string `json:"name"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specstrace", flag.ContinueOnError)
	var (
		asJSON = fs.Bool("json", false, "emit the analysis as JSON instead of text")
		check  = fs.Bool("check", false, "exit non-zero when the dump has orphan spans (or no spans at all)")
		top    = fs.Int("top", 3, "render a timeline for this many slowest traces")
		width  = fs.Int("width", 48, "Gantt bar width in characters")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: specstrace [flags] dump.json [dump2.json ...]  ('-' = stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no dump files given (usage: specstrace dump.json ...)")
	}

	spans, err := loadDumps(fs.Args())
	if err != nil {
		return err
	}
	rep := analyze(spans, fs.NArg(), *top)

	if *asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		_, _ = out.Write(data)
	} else {
		render(out, rep, spans, *top, *width)
	}

	if *check {
		if rep.Spans == 0 {
			return fmt.Errorf("check: dump contains no spans")
		}
		if rep.Orphans > 0 {
			return fmt.Errorf("check: %d orphan spans (broken propagation or wrapped ring)", rep.Orphans)
		}
	}
	return nil
}

// loadDumps reads and merges every dump file, deduplicating spans by
// (trace, span) id — the same span can appear in two dumps when one was
// taken from /debug/trace and another at drain.
func loadDumps(paths []string) ([]trace.Span, error) {
	type key struct {
		t trace.TraceID
		s trace.SpanID
	}
	seen := make(map[key]bool)
	var all []trace.Span
	for _, path := range paths {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		spans, err := trace.ReadChrome(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, s := range spans {
			k := key{s.Trace, s.ID}
			if seen[k] {
				continue
			}
			seen[k] = true
			all = append(all, s)
		}
	}
	return all, nil
}

// traceTree is one trace's spans, indexed for tree walks.
type traceTree struct {
	id       trace.TraceID
	spans    []trace.Span
	children map[trace.SpanID][]int // parent span id -> indices into spans
	roots    []int
	orphans  []int
	start    time.Time
	end      time.Time
}

func (tt *traceTree) duration() time.Duration { return tt.end.Sub(tt.start) }

// buildTrees groups spans by trace id and resolves parents. A span with a
// non-zero parent that is absent from the merged set is an orphan unless its
// attrs carry remote=1 (the parent lives in the caller's process — specload,
// a curl with traceparent — and was never expected in this dump).
func buildTrees(spans []trace.Span) []*traceTree {
	byTrace := make(map[trace.TraceID]*traceTree)
	var order []*traceTree
	for _, s := range spans {
		tt := byTrace[s.Trace]
		if tt == nil {
			tt = &traceTree{id: s.Trace, children: make(map[trace.SpanID][]int)}
			byTrace[s.Trace] = tt
			order = append(order, tt)
		}
		tt.spans = append(tt.spans, s)
	}
	for _, tt := range order {
		// Sort by start so children lists come out in timeline order.
		sort.Slice(tt.spans, func(a, b int) bool { return tt.spans[a].Start.Before(tt.spans[b].Start) })
		present := make(map[trace.SpanID]bool, len(tt.spans))
		for _, s := range tt.spans {
			present[s.ID] = true
		}
		tt.start, tt.end = tt.spans[0].Start, tt.spans[0].End
		for i, s := range tt.spans {
			if s.Start.Before(tt.start) {
				tt.start = s.Start
			}
			if s.End.After(tt.end) {
				tt.end = s.End
			}
			switch {
			case s.Parent.IsZero():
				tt.roots = append(tt.roots, i)
			case present[s.Parent]:
				tt.children[s.Parent] = append(tt.children[s.Parent], i)
			case hasAttr(s.Attrs, "remote=1"):
				tt.roots = append(tt.roots, i) // parent is external by design
			default:
				tt.orphans = append(tt.orphans, i)
			}
		}
	}
	return order
}

func analyze(spans []trace.Span, files, top int) Report {
	rep := Report{Files: files, Spans: len(spans)}
	trees := buildTrees(spans)
	rep.Traces = len(trees)

	// Per-name latency breakdown over every span in the dump.
	byName := make(map[string][]float64)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], float64(s.Duration())/1e6)
	}
	for name, ds := range byName {
		sort.Float64s(ds)
		var total float64
		for _, d := range ds {
			total += d
		}
		rep.Names = append(rep.Names, NameStat{
			Name:    name,
			Count:   len(ds),
			P50MS:   stats.Quantile(ds, 0.50),
			P90MS:   stats.Quantile(ds, 0.90),
			P99MS:   stats.Quantile(ds, 0.99),
			MaxMS:   ds[len(ds)-1],
			TotalMS: total,
		})
	}
	sort.Slice(rep.Names, func(a, b int) bool { return rep.Names[a].TotalMS > rep.Names[b].TotalMS })
	rep.Replication = replicaLag(spans)

	sort.Slice(trees, func(a, b int) bool { return trees[a].duration() > trees[b].duration() })
	for _, tt := range trees {
		for _, i := range tt.orphans {
			s := tt.spans[i]
			rep.Orphan = append(rep.Orphan, OrphanSpan{
				Trace: s.Trace.String(), Span: s.ID.String(), Parent: s.Parent.String(), Name: s.Name,
			})
		}
		if len(rep.Slow) >= top {
			continue
		}
		ts := TraceSummary{
			Trace:      tt.id.String(),
			Spans:      len(tt.spans),
			DurationMS: float64(tt.duration()) / 1e6,
			Rounds:     rounds(tt),
		}
		for _, i := range tt.roots {
			ts.Roots = append(ts.Roots, tt.spans[i].Name)
		}
		rep.Slow = append(rep.Slow, ts)
	}
	rep.Orphans = len(rep.Orphan)
	rep.Check = rep.Spans > 0 && rep.Orphans == 0
	return rep
}

// replicaLag folds every replica.lag span into a per-shard staleness
// summary: peak lag over all samples, position from the newest one.
func replicaLag(spans []trace.Span) []ReplicaLag {
	type acc struct {
		rl   ReplicaLag
		last time.Time
	}
	byShard := make(map[int]*acc)
	for _, s := range spans {
		if s.Name != "replica.lag" {
			continue
		}
		shard := attrInt(s.Attrs, "shard", -1)
		a := byShard[shard]
		if a == nil {
			a = &acc{rl: ReplicaLag{Shard: shard}}
			byShard[shard] = a
		}
		a.rl.Samples++
		if l := attrInt(s.Attrs, "lag_lsn", 0); l > a.rl.MaxLagLSN {
			a.rl.MaxLagLSN = l
		}
		if !s.Start.Before(a.last) {
			a.last = s.Start
			a.rl.LastLagLSN = attrInt(s.Attrs, "lag_lsn", 0)
			a.rl.LastLagMS = attrInt(s.Attrs, "lag_ms", 0)
			a.rl.AppliedLSN = attrInt(s.Attrs, "applied_lsn", 0)
			a.rl.LeaderLSN = attrInt(s.Attrs, "leader_lsn", 0)
		}
	}
	var out []ReplicaLag
	for _, a := range byShard {
		out = append(out, a.rl)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Shard < out[b].Shard })
	return out
}

// rounds extracts the engine-round timeline of one trace: every core.round
// span in start order, with the gating seller read off its slowest
// core.solve child.
func rounds(tt *traceTree) []RoundInfo {
	var out []RoundInfo
	for i, s := range tt.spans {
		if s.Name != "core.round" {
			continue
		}
		ri := RoundInfo{
			Stage:        attrStr(s.Attrs, "stage"),
			Round:        attrInt(s.Attrs, "round", 0),
			DurationMS:   float64(s.Duration()) / 1e6,
			Messages:     attrInt(s.Attrs, "messages", 0),
			GatingSeller: -1,
		}
		for _, ci := range tt.children[tt.spans[i].ID] {
			c := tt.spans[ci]
			if c.Name != "core.solve" {
				continue
			}
			if d := float64(c.Duration()) / 1e6; d > ri.GatingMS || ri.GatingSeller < 0 {
				ri.GatingMS = d
				ri.GatingSeller = attrInt(c.Attrs, "seller", -1)
			}
		}
		out = append(out, ri)
	}
	return out
}

// render writes the human-readable analysis: header, per-name table, and a
// round timeline plus Gantt for the slowest traces.
func render(out io.Writer, rep Report, spans []trace.Span, top, width int) {
	fmt.Fprintf(out, "specstrace: %d spans, %d traces, %d orphans (%d files)\n\n",
		rep.Spans, rep.Traces, rep.Orphans, rep.Files)
	if rep.Spans == 0 {
		return
	}

	fmt.Fprintf(out, "%-18s %8s %10s %10s %10s %10s %12s\n",
		"span", "count", "p50 ms", "p90 ms", "p99 ms", "max ms", "total ms")
	for _, ns := range rep.Names {
		fmt.Fprintf(out, "%-18s %8d %10.4f %10.4f %10.4f %10.4f %12.3f\n",
			ns.Name, ns.Count, ns.P50MS, ns.P90MS, ns.P99MS, ns.MaxMS, ns.TotalMS)
	}
	if len(rep.Replication) > 0 {
		fmt.Fprintln(out)
		for _, rl := range rep.Replication {
			if rl.LastLagLSN > 0 {
				fmt.Fprintf(out, "replication: shard %d STALE by %d LSNs (lag %d ms, applied %d of leader %d; peak %d over %d samples) — timelines below reflect replicated state\n",
					rl.Shard, rl.LastLagLSN, rl.LastLagMS, rl.AppliedLSN, rl.LeaderLSN, rl.MaxLagLSN, rl.Samples)
			} else {
				fmt.Fprintf(out, "replication: shard %d in sync (applied lsn %d, peak lag %d LSNs over %d samples)\n",
					rl.Shard, rl.AppliedLSN, rl.MaxLagLSN, rl.Samples)
			}
		}
	}

	trees := buildTrees(spans)
	sort.Slice(trees, func(a, b int) bool { return trees[a].duration() > trees[b].duration() })
	for k, tt := range trees {
		if k >= top {
			break
		}
		fmt.Fprintf(out, "\ntrace %s: %d spans, %.3fms\n",
			tt.id.String(), len(tt.spans), float64(tt.duration())/1e6)
		if rs := rounds(tt); len(rs) > 0 {
			fmt.Fprintf(out, "  %-8s %6s %9s %9s  %s\n", "stage", "round", "ms", "msgs", "gating seller (ms)")
			for _, ri := range rs {
				gate := "-"
				if ri.GatingSeller >= 0 {
					gate = fmt.Sprintf("seller %d (%.4f)", ri.GatingSeller, ri.GatingMS)
				}
				fmt.Fprintf(out, "  %-8s %6d %9.4f %9d  %s\n", ri.Stage, ri.Round, ri.DurationMS, ri.Messages, gate)
			}
		}
		gantt(out, tt, width)
	}
	for _, o := range rep.Orphan {
		fmt.Fprintf(out, "\norphan: %s span=%s parent=%s trace=%s", o.Name, o.Span, o.Parent, o.Trace)
	}
	if len(rep.Orphan) > 0 {
		fmt.Fprintln(out)
	}
}

// ganttMaxLines bounds the timeline so a dump with thousands of solve spans
// stays readable; the per-name table above still covers everything.
const ganttMaxLines = 48

// gantt renders the trace tree as an indented ASCII timeline: one line per
// span, depth-first with children in start order, the bar scaled to the
// trace's [start, end] window.
func gantt(out io.Writer, tt *traceTree, width int) {
	if width < 8 {
		width = 8
	}
	total := tt.duration()
	if total <= 0 {
		total = time.Nanosecond
	}
	lines := 0
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		if lines >= ganttMaxLines {
			return
		}
		lines++
		s := tt.spans[idx]
		lo := int(float64(s.Start.Sub(tt.start)) / float64(total) * float64(width))
		hi := int(float64(s.End.Sub(tt.start)) / float64(total) * float64(width))
		if hi >= width {
			hi = width - 1
		}
		if hi < lo {
			hi = lo
		}
		bar := make([]byte, width)
		for i := range bar {
			switch {
			case i >= lo && i <= hi:
				bar[i] = '#'
			default:
				bar[i] = '.'
			}
		}
		label := strings.Repeat("  ", depth) + s.Name
		if len(label) > 26 {
			label = label[:25] + "~"
		}
		fmt.Fprintf(out, "  %-26s |%s| %.4fms\n", label, bar, float64(s.Duration())/1e6)
		for _, ci := range tt.children[s.ID] {
			walk(ci, depth+1)
		}
	}
	for _, r := range tt.roots {
		walk(r, 0)
	}
	// Orphans still carry timing; show them unparented at depth 0.
	for _, o := range tt.orphans {
		walk(o, 0)
	}
	if extra := len(tt.spans) - lines; extra > 0 {
		fmt.Fprintf(out, "  ... %d more spans (raise -width/-top or use -json for everything)\n", extra)
	}
}

// hasAttr reports whether the space-separated attrs string contains the
// exact k=v token.
func hasAttr(attrs, kv string) bool {
	for _, tok := range strings.Fields(attrs) {
		if tok == kv {
			return true
		}
	}
	return false
}

// attrStr returns the value of key in a "k=v k=v" attrs string, or "".
func attrStr(attrs, key string) string {
	for _, tok := range strings.Fields(attrs) {
		if v, ok := strings.CutPrefix(tok, key+"="); ok {
			return v
		}
	}
	return ""
}

// attrInt returns the integer value of key, or def when absent/malformed.
func attrInt(attrs, key string, def int) int {
	v := attrStr(attrs, key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
