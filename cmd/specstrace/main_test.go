package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"specmatch/internal/trace"
)

// writeDump writes spans as a Chrome trace-event file and returns its path.
func writeDump(t *testing.T, name string, spans []trace.Span) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(f, spans, uint64(len(spans)), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// tree builds a small but complete service trace: http -> shard op -> step
// -> repair -> two rounds, each with solves carrying seller= attrs.
func tree(t *testing.T) []trace.Span {
	t.Helper()
	base := time.Unix(1700000000, 0)
	tid := trace.NewTraceID()
	mk := func(name string, parent trace.SpanID, startMS, durMS int, attrs string) trace.Span {
		return trace.Span{
			Trace: tid, ID: trace.NewSpanID(), Parent: parent, Name: name,
			Start: base.Add(time.Duration(startMS) * time.Millisecond),
			End:   base.Add(time.Duration(startMS+durMS) * time.Millisecond),
			Attrs: attrs,
		}
	}
	http := mk("http.events", trace.NewSpanID(), 0, 20, "remote=1 status=200")
	op := mk("server.shard_op", http.ID, 1, 18, "")
	step := mk("online.step", op.ID, 2, 16, "")
	repair := mk("core.repair", step.ID, 3, 14, "")
	round1 := mk("core.round", repair.ID, 3, 8, "stage=stage_i round=1 messages=5")
	solve10 := mk("core.solve", round1.ID, 4, 2, "seller=0 candidates=3 src=solve")
	solve11 := mk("core.solve", round1.ID, 4, 6, "seller=1 candidates=4 src=solve")
	round2 := mk("core.round", repair.ID, 11, 6, "stage=phase_1 round=2 messages=2")
	solve20 := mk("core.solve", round2.ID, 12, 4, "seller=2 candidates=2 src=hit")
	return []trace.Span{http, op, step, repair, round1, solve10, solve11, round2, solve20}
}

func TestAnalyzeTree(t *testing.T) {
	path := writeDump(t, "dump.json", tree(t))
	var out strings.Builder
	if err := run([]string{"-check", path}, &out); err != nil {
		t.Fatalf("check on a coherent tree failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"9 spans, 1 traces, 0 orphans",
		"core.solve", "http.events", // per-name table rows
		"seller 1 (6.0000)", // round 1's gating seller is the slowest solve
		"seller 2 (4.0000)",
		"stage_i", "phase_1",
		"|", "#", // the Gantt
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeJSON(t *testing.T) {
	path := writeDump(t, "dump.json", tree(t))
	var out strings.Builder
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"spans": 9`, `"orphans": 0`, `"gating_seller": 1`, `"check_passed": true`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestOrphanDetection(t *testing.T) {
	spans := tree(t)
	// Re-parent one solve onto an id nobody recorded: specstrace must call
	// it an orphan, and -check must fail.
	spans[5].Parent = trace.NewSpanID()
	path := writeDump(t, "dump.json", spans)
	var out strings.Builder
	err := run([]string{"-check", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("check err = %v, want orphan failure", err)
	}
	if !strings.Contains(out.String(), "1 orphans") {
		t.Errorf("output did not count the orphan:\n%s", out.String())
	}
}

// TestMultiFileMerge: a parent recorded in one process's dump resolves a
// child recorded in another's, and duplicated spans are deduplicated.
func TestMultiFileMerge(t *testing.T) {
	spans := tree(t)
	hub := writeDump(t, "hub.json", spans[:4])
	node := writeDump(t, "node.json", spans[3:]) // spans[3] appears in both
	var out strings.Builder
	if err := run([]string{"-check", hub, node}, &out); err != nil {
		t.Fatalf("merged dumps failed check: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "9 spans") {
		t.Errorf("merge did not deduplicate:\n%s", out.String())
	}
	// Each half alone is full of orphans.
	if err := run([]string{"-check", node}, &strings.Builder{}); err == nil {
		t.Error("node dump alone must fail the orphan check")
	}
}

func TestCheckEmptyDump(t *testing.T) {
	path := writeDump(t, "dump.json", nil)
	if err := run([]string{"-check", path}, &strings.Builder{}); err == nil {
		t.Error("check must fail on an empty dump")
	}
	// Without -check an empty dump is fine (you may just be early).
	if err := run([]string{path}, &strings.Builder{}); err != nil {
		t.Errorf("plain run on empty dump: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run([]string{}, &strings.Builder{}); err == nil {
		t.Error("no dump files should fail")
	}
	if err := run([]string{"/nonexistent/dump.json"}, &strings.Builder{}); err == nil {
		t.Error("missing file should fail")
	}
}
