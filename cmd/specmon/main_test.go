package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specmatch/internal/obs"
	"specmatch/internal/server"
)

// startNode runs an in-process serving node with a fast sampler and
// returns its base URL.
func startNode(t *testing.T) (*server.Server, string) {
	t.Helper()
	s, err := server.New(server.Config{
		Metrics:        obs.NewRegistry(),
		SampleInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Drain()
	})
	return s, hs.URL
}

// drive issues n list requests against a node through its public handler.
func drive(t *testing.T, s *server.Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions", nil))
		if rec.Code != 200 {
			t.Fatalf("list request %d: HTTP %d", i, rec.Code)
		}
	}
}

// waitSampled blocks until the node's sampler has flushed the driven
// traffic into at least one window.
func waitSampled(t *testing.T, s *server.Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var total int64
		for _, w := range s.Rollup().Windows(0) {
			total += w.Counters["server.requests.list"]
		}
		if total > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never flushed the driven traffic")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAggregationTwoNodes is the satellite-required end-to-end: two
// in-process nodes, real traffic, and specmon's -json timeline must
// account for every request exactly once across both.
func TestAggregationTwoNodes(t *testing.T) {
	s1, url1 := startNode(t)
	s2, url2 := startNode(t)
	drive(t, s1, 7)
	drive(t, s2, 5)
	waitSampled(t, s1)
	waitSampled(t, s2)

	var buf bytes.Buffer
	err := run([]string{"-json", "-interval", "100ms", "-duration", "350ms", url1, url2}, &buf)
	if err != nil {
		t.Fatalf("specmon -json: %v\noutput:\n%s", err, buf.String())
	}

	var ticks []Tick
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var tk Tick
		if err := json.Unmarshal(sc.Bytes(), &tk); err != nil {
			t.Fatalf("bad timeline line %q: %v", sc.Text(), err)
		}
		ticks = append(ticks, tk)
	}
	if len(ticks) < 2 {
		t.Fatalf("timeline has %d ticks, want >= 2", len(ticks))
	}

	// Every driven request is attributed to its node exactly once across
	// the run (windows are consumed by seq high-water mark, never twice),
	// and the monitor's own status polls are not counted as load.
	perNode := map[string]int64{}
	var evidence int
	for _, tk := range ticks {
		if len(tk.Nodes) != 2 {
			t.Fatalf("tick %d sees %d nodes, want 2", tk.Seq, len(tk.Nodes))
		}
		for _, n := range tk.Nodes {
			if n.Err != "" {
				t.Fatalf("tick %d node %s unreachable: %s", tk.Seq, n.URL, n.Err)
			}
			perNode[n.URL] += n.Requests
			evidence += len(n.Evidence)
		}
	}
	if perNode[url1] != 7 || perNode[url2] != 5 {
		t.Fatalf("attributed requests = %v, want %s:7 %s:5", perNode, url1, url2)
	}
	if evidence != 0 {
		t.Fatalf("no anomalies were provoked, but %d evidence files listed", evidence)
	}

	// The first tick (which consumed the pre-run windows) carries the
	// cluster quantiles from merged per-node delta buckets.
	first := ticks[0]
	if first.P99 <= 0 || first.P50 <= 0 || first.P99 < first.P50 {
		t.Fatalf("first tick quantiles p50=%v p99=%v, want 0 < p50 <= p99", first.P50, first.P99)
	}
	if first.ErrorRate != 0 {
		t.Fatalf("error rate %v with no 5xx driven", first.ErrorRate)
	}
}

// TestCheckPassAndBreach drives the SLO gate both ways against a live
// node.
func TestCheckPassAndBreach(t *testing.T) {
	s, url := startNode(t)
	drive(t, s, 10)
	waitSampled(t, s)

	var buf bytes.Buffer
	err := run([]string{"-check", "-interval", "80ms", "-duration", "250ms",
		"-slo-p99", "10s", "-slo-error-rate", "0.01", "-slo-lag-lsn", "0", url}, &buf)
	if err != nil {
		t.Fatalf("-check with generous SLOs: %v\noutput:\n%s", err, buf.String())
	}
	for _, want := range []string{"SLO p99-latency", "PASS", "SLO error-rate", "SLO replica-lag-lsn"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("check output missing %q:\n%s", want, buf.String())
		}
	}
	if strings.Contains(buf.String(), "FAIL") {
		t.Fatalf("no SLO should fail:\n%s", buf.String())
	}

	buf.Reset()
	drive(t, s, 10)
	waitSampled(t, s)
	err = run([]string{"-check", "-interval", "80ms", "-duration", "250ms",
		"-slo-p99", "1ns", url}, &buf)
	if !errors.Is(err, errSLOBreach) {
		t.Fatalf("-slo-p99 1ns: err = %v, want SLO breach\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("breach output missing FAIL:\n%s", buf.String())
	}
}

// TestCheckRequiresDurationAndSeeds pins the CLI contract.
func TestCheckRequiresDurationAndSeeds(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-check"}, &buf); err == nil {
		t.Fatal("-check without seeds must fail")
	}
	if err := run([]string{"-check", "http://127.0.0.1:1"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "-duration") {
		t.Fatalf("-check without -duration: err = %v", err)
	}
}

// TestCheckNoTraffic: a -check run that saw zero requests cannot certify a
// latency or error SLO and must fail instead of vacuously passing.
func TestCheckNoTraffic(t *testing.T) {
	_, url := startNode(t)
	var buf bytes.Buffer
	err := run([]string{"-check", "-interval", "80ms", "-duration", "200ms", "-slo-p99", "1s", url}, &buf)
	if !errors.Is(err, errSLOBreach) {
		t.Fatalf("zero-traffic check: err = %v, want breach\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no-traffic") {
		t.Errorf("output missing no-traffic verdict:\n%s", buf.String())
	}
}
