// Command specmon is the fleet monitor: point it at one or more node URLs
// and it discovers the rest of the cluster via /v1/status, polls every
// node's /debug/metrics/series delta windows, and stitches a cluster-wide
// view — aggregate request rate, error rate, merged per-interval latency
// quantiles, shard queue depths, WAL fsync latency, and per-follower
// replication lag — as a live ASCII dashboard, a newline-delimited JSON
// timeline (-json) for offline analysis, or an SLO gate (-check) that exits
// nonzero on breach so soaks and CI can fail on regressions, not vibes.
//
//	specmon http://127.0.0.1:7937
//	specmon -json -duration 30s http://127.0.0.1:7937 > timeline.ndjson
//	specmon -check -duration 30s -slo-p99 50ms -slo-lag-lsn 1000 \
//	    -slo-error-rate 0.01 http://127.0.0.1:7937 http://127.0.0.1:7938
//
// Endpoints polled per node: GET /v1/status (role/leader discovery), GET
// /debug/metrics/series (delta windows; quantiles come from merged interval
// histogram buckets, so they are true per-interval percentiles), GET
// /v1/replica/status (follower lag), and GET /debug/evidence (anomaly
// captures, listed so the operator lands on the evidence, not the alert).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"specmatch/internal/obs"
	"specmatch/internal/replica"
	"specmatch/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specmon:", err)
		if errors.Is(err, errSLOBreach) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// errSLOBreach marks a -check failure; main maps it to a distinct exit
// code so scripts can tell "cluster broke its SLOs" from "specmon broke".
var errSLOBreach = errors.New("SLO breach")

// slos are the declared service-level objectives -check evaluates over the
// whole run. Negative/zero values disable the corresponding check.
type slos struct {
	p99       time.Duration
	lagLSN    int64
	lagMS     int64
	errorRate float64
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specmon", flag.ContinueOnError)
	var (
		interval = fs.Duration("interval", time.Second, "poll interval")
		duration = fs.Duration("duration", 0, "total run time (0 = until interrupted; -check requires > 0)")
		jsonOut  = fs.Bool("json", false, "emit one JSON object per poll (newline-delimited) instead of the dashboard")
		check    = fs.Bool("check", false, "evaluate SLOs over the run and exit nonzero on breach")
		sloP99   = fs.Duration("slo-p99", 0, "SLO: cluster-wide request p99 over the run (0 = off)")
		sloLag   = fs.Int64("slo-lag-lsn", -1, "SLO: max follower lag in LSNs observed at any poll (-1 = off)")
		sloLagMS = fs.Int64("slo-lag-ms", -1, "SLO: max follower lag in milliseconds observed at any poll (-1 = off)")
		sloErr   = fs.Float64("slo-error-rate", -1, "SLO: 5xx fraction of requests over the run, 503 backpressure excluded (-1 = off)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: specmon [flags] node-url [node-url...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("at least one seed node URL is required")
	}
	if *check && *duration <= 0 {
		return fmt.Errorf("-check needs -duration > 0 to bound the run")
	}

	mon := newMonitor(fs.Args())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	enc := json.NewEncoder(out)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for running := true; running; {
		tick := mon.poll(ctx)
		switch {
		case *jsonOut:
			if err := enc.Encode(tick); err != nil {
				return err
			}
		case *check:
			fmt.Fprintln(out, tick.line())
		default:
			renderDashboard(out, tick)
		}
		select {
		case <-ctx.Done():
			running = false
		case <-ticker.C:
		}
	}

	if !*check {
		return nil
	}
	return mon.evaluate(out, slos{p99: *sloP99, lagLSN: *sloLag, lagMS: *sloLagMS, errorRate: *sloErr})
}

// NodeTick is one node's contribution to a poll: the deltas from its
// series windows not yet consumed, plus role, lag, and evidence state.
type NodeTick struct {
	URL      string   `json:"url"`
	Role     string   `json:"role,omitempty"`
	Leader   string   `json:"leader,omitempty"`
	Err      string   `json:"err,omitempty"`
	Sessions int      `json:"sessions"`
	Seconds  float64  `json:"seconds"` // wall time the consumed windows span
	Requests int64    `json:"requests"`
	Errors   int64    `json:"errors"` // 5xx excluding 503 backpressure
	P99      float64  `json:"p99_seconds"`
	QueueMax int64    `json:"queue_depth_max"`
	FsyncP99 float64  `json:"wal_fsync_p99_seconds,omitempty"`
	LagLSN   int64    `json:"lag_lsn,omitempty"`
	LagMS    int64    `json:"lag_ms,omitempty"`
	Evidence []string `json:"evidence,omitempty"`

	lat   obs.HistogramSnapshot
	fsync obs.HistogramSnapshot
}

// Tick is the cluster-wide poll document -json emits.
type Tick struct {
	Seq       int        `json:"seq"`
	UnixMS    int64      `json:"unix_ms"`
	Nodes     []NodeTick `json:"nodes"`
	ReqPerSec float64    `json:"req_per_sec"`
	ErrorRate float64    `json:"error_rate"`
	P50       float64    `json:"p50_seconds"`
	P99       float64    `json:"p99_seconds"`
	P999      float64    `json:"p999_seconds"`
	QueueMax  int64      `json:"queue_depth_max"`
	FsyncP99  float64    `json:"wal_fsync_p99_seconds"`
	LagLSN    int64      `json:"lag_lsn_max"`
	LagMS     int64      `json:"lag_ms_max"`
	Evidence  int        `json:"evidence"`
}

// line renders the one-line -check form of a tick.
func (t Tick) line() string {
	return fmt.Sprintf("tick %d: nodes=%d req/s=%.1f err=%.4f p99=%s queue=%d lag=%d/%dms evidence=%d",
		t.Seq, len(t.Nodes), t.ReqPerSec, t.ErrorRate, fmtSeconds(t.P99), t.QueueMax, t.LagLSN, t.LagMS, t.Evidence)
}

// monitor holds cross-poll state: the discovered node set, each node's
// series high-water mark, and the run-wide SLO accumulators.
type monitor struct {
	client *http.Client
	nodes  []string
	seen   map[string]bool
	// lastSeq is the highest window Seq consumed per node; -1 means
	// consume from the beginning (first contact, or node restart).
	lastSeq map[string]int64
	ticks   int

	// Run-wide accumulators for -check.
	totalReqs  int64
	totalErrs  int64
	cumLat     obs.HistogramSnapshot
	maxLagLSN  int64
	maxLagMS   int64
	pollErrors int
}

func newMonitor(seeds []string) *monitor {
	m := &monitor{
		client:  &http.Client{Timeout: 5 * time.Second},
		seen:    make(map[string]bool),
		lastSeq: make(map[string]int64),
	}
	for _, s := range seeds {
		m.add(s)
	}
	return m
}

func (m *monitor) add(url string) {
	url = strings.TrimRight(url, "/")
	if url == "" || m.seen[url] {
		return
	}
	m.seen[url] = true
	m.nodes = append(m.nodes, url)
	m.lastSeq[url] = -1
}

func (m *monitor) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// poll takes one cluster sample: refresh discovery, consume each node's
// new series windows, and aggregate.
func (m *monitor) poll(ctx context.Context) Tick {
	tick := Tick{Seq: m.ticks, UnixMS: time.Now().UnixMilli()}
	m.ticks++

	// Discovery: every follower names its leader; any URL we learn joins
	// the fleet. (Leaders do not know follower URLs — followers dial in —
	// so list every follower you care about as a seed.)
	for _, url := range append([]string(nil), m.nodes...) {
		var st replica.NodeStatus
		if err := m.getJSON(ctx, url+"/v1/status", &st); err != nil {
			continue
		}
		m.add(st.Leader)
	}

	var clusterLat, clusterFsync obs.HistogramSnapshot
	var reqs, errs int64
	var seconds float64
	for _, url := range m.nodes {
		nt := m.pollNode(ctx, url)
		tick.Nodes = append(tick.Nodes, nt)
		if nt.Err != "" {
			m.pollErrors++
			continue
		}
		reqs += nt.Requests
		errs += nt.Errors
		if nt.Seconds > seconds {
			seconds = nt.Seconds // nodes sample in parallel: span, not sum
		}
		if merged, ok := obs.MergeHistogram(clusterLat, nt.lat); ok {
			clusterLat = merged
		}
		if merged, ok := obs.MergeHistogram(clusterFsync, nt.fsync); ok {
			clusterFsync = merged
		}
		if nt.QueueMax > tick.QueueMax {
			tick.QueueMax = nt.QueueMax
		}
		if nt.LagLSN > tick.LagLSN {
			tick.LagLSN = nt.LagLSN
		}
		if nt.LagMS > tick.LagMS {
			tick.LagMS = nt.LagMS
		}
		tick.Evidence += len(nt.Evidence)
	}
	if seconds > 0 {
		tick.ReqPerSec = float64(reqs) / seconds
	}
	if reqs > 0 {
		tick.ErrorRate = float64(errs) / float64(reqs)
	}
	tick.P50 = clusterLat.Quantile(0.50)
	tick.P99 = clusterLat.Quantile(0.99)
	tick.P999 = clusterLat.Quantile(0.999)
	tick.FsyncP99 = clusterFsync.Quantile(0.99)

	// Run-wide SLO accumulators.
	m.totalReqs += reqs
	m.totalErrs += errs
	if merged, ok := obs.MergeHistogram(m.cumLat, clusterLat); ok {
		m.cumLat = merged
	}
	if tick.LagLSN > m.maxLagLSN {
		m.maxLagLSN = tick.LagLSN
	}
	if tick.LagMS > m.maxLagMS {
		m.maxLagMS = tick.LagMS
	}
	return tick
}

// pollNode consumes one node's new windows and reduces them to a NodeTick.
func (m *monitor) pollNode(ctx context.Context, url string) NodeTick {
	nt := NodeTick{URL: url}

	var st replica.NodeStatus
	if err := m.getJSON(ctx, url+"/v1/status", &st); err != nil {
		nt.Err = err.Error()
		return nt
	}
	nt.Role, nt.Leader, nt.Sessions = st.Role, st.Leader, st.Sessions

	var series obs.Series
	if err := m.getJSON(ctx, url+"/debug/metrics/series", &series); err != nil {
		nt.Err = err.Error()
		return nt
	}
	last := m.lastSeq[url]
	if n := len(series.Windows); n > 0 && int64(series.Windows[n-1].Seq) < last {
		last = -1 // node restarted: its seq space began again
	}
	for _, w := range series.Windows {
		if int64(w.Seq) <= last {
			continue
		}
		m.lastSeq[url] = int64(w.Seq)
		nt.Seconds += w.Seconds()
		for name, v := range w.Counters {
			switch {
			case strings.HasPrefix(name, "server.requests."):
				if monRoute(strings.TrimPrefix(name, "server.requests.")) {
					continue // don't count the monitor watching itself
				}
				nt.Requests += v
			case strings.HasPrefix(name, "server.status."):
				if code, err := strconv.Atoi(name[len("server.status."):]); err == nil &&
					code >= 500 && code != http.StatusServiceUnavailable {
					nt.Errors += v
				}
			}
		}
		for name, hs := range w.Histograms {
			switch {
			case strings.HasPrefix(name, "server.request_seconds."):
				if monRoute(strings.TrimPrefix(name, "server.request_seconds.")) {
					continue
				}
				if merged, ok := obs.MergeHistogram(nt.lat, hs); ok {
					nt.lat = merged
				}
			case name == "server.wal.fsync_seconds":
				if merged, ok := obs.MergeHistogram(nt.fsync, hs); ok {
					nt.fsync = merged
				}
			}
		}
	}
	if n := len(series.Windows); n > 0 {
		// Gauges are last-value: only the newest window's reading matters.
		for name, v := range series.Windows[n-1].Gauges {
			if strings.HasPrefix(name, "server.shard.") && strings.HasSuffix(name, ".queue_depth") && v > nt.QueueMax {
				nt.QueueMax = v
			}
		}
	}
	nt.P99 = nt.lat.Quantile(0.99)
	nt.FsyncP99 = nt.fsync.Quantile(0.99)

	if st.Role == "follower" {
		var rs replica.ReplicaStatus
		if err := m.getJSON(ctx, url+"/v1/replica/status", &rs); err == nil && rs.Follow != nil {
			for _, sh := range rs.Follow.Shards {
				if int64(sh.LagLSN) > nt.LagLSN {
					nt.LagLSN = int64(sh.LagLSN)
				}
				if sh.LagMS > nt.LagMS {
					nt.LagMS = sh.LagMS
				}
			}
		}
	}

	var ev server.EvidenceListing
	if err := m.getJSON(ctx, url+"/debug/evidence", &ev); err == nil {
		for _, f := range ev.Files {
			nt.Evidence = append(nt.Evidence, f.Name)
		}
		sort.Strings(nt.Evidence)
	}
	return nt
}

// evaluate prints the SLO verdicts and returns errSLOBreach if any failed.
func (m *monitor) evaluate(out io.Writer, s slos) error {
	type verdict struct {
		name string
		on   bool
		ok   bool
		got  string
		want string
	}
	errRate := 0.0
	if m.totalReqs > 0 {
		errRate = float64(m.totalErrs) / float64(m.totalReqs)
	}
	p99 := m.cumLat.Quantile(0.99)
	verdicts := []verdict{
		{"p99-latency", s.p99 > 0, p99 <= s.p99.Seconds(), fmtSeconds(p99), "<= " + s.p99.String()},
		{"replica-lag-lsn", s.lagLSN >= 0, m.maxLagLSN <= s.lagLSN, strconv.FormatInt(m.maxLagLSN, 10), "<= " + strconv.FormatInt(s.lagLSN, 10)},
		{"replica-lag-ms", s.lagMS >= 0, m.maxLagMS <= s.lagMS, strconv.FormatInt(m.maxLagMS, 10), "<= " + strconv.FormatInt(s.lagMS, 10)},
		{"error-rate", s.errorRate >= 0, errRate <= s.errorRate, fmt.Sprintf("%.5f", errRate), fmt.Sprintf("<= %.5f", s.errorRate)},
	}
	breached := false
	for _, v := range verdicts {
		if !v.on {
			continue
		}
		state := "PASS"
		if !v.ok {
			state, breached = "FAIL", true
		}
		fmt.Fprintf(out, "SLO %-16s %s  (got %s, want %s)\n", v.name, state, v.got, v.want)
	}
	fmt.Fprintf(out, "checked %d ticks over %d requests (%d poll errors)\n", m.ticks, m.totalReqs, m.pollErrors)
	if m.totalReqs == 0 && (s.p99 > 0 || s.errorRate >= 0) {
		fmt.Fprintln(out, "SLO no-traffic       FAIL  (0 requests observed: nothing to certify)")
		breached = true
	}
	if breached {
		return errSLOBreach
	}
	return nil
}

// renderDashboard paints the live view: clear-screen ANSI plus one line per
// node under a cluster header.
func renderDashboard(out io.Writer, t Tick) {
	fmt.Fprint(out, "\033[H\033[2J")
	fmt.Fprintf(out, "specmon · %d nodes · tick %d · %s\n", len(t.Nodes), t.Seq, time.UnixMilli(t.UnixMS).Format(time.TimeOnly))
	fmt.Fprintf(out, "cluster  %8.1f req/s  err %6.3f%%  p50 %-9s p99 %-9s p999 %-9s\n",
		t.ReqPerSec, t.ErrorRate*100, fmtSeconds(t.P50), fmtSeconds(t.P99), fmtSeconds(t.P999))
	fmt.Fprintf(out, "         queue max %-5d wal fsync p99 %-9s lag %d lsn / %d ms  evidence %d\n\n",
		t.QueueMax, fmtSeconds(t.FsyncP99), t.LagLSN, t.LagMS, t.Evidence)
	for _, n := range t.Nodes {
		if n.Err != "" {
			fmt.Fprintf(out, "  %-28s UNREACHABLE %s\n", n.URL, n.Err)
			continue
		}
		rate := 0.0
		if n.Seconds > 0 {
			rate = float64(n.Requests) / n.Seconds
		}
		line := fmt.Sprintf("  %-28s %-8s sess %-5d %8.1f req/s  p99 %-9s queue %-4d", n.URL, n.Role, n.Sessions, rate, fmtSeconds(n.P99), n.QueueMax)
		if n.Role == "follower" {
			line += fmt.Sprintf("  lag %d lsn / %d ms", n.LagLSN, n.LagMS)
		}
		if len(n.Evidence) > 0 {
			line += fmt.Sprintf("  evidence %d (%s)", len(n.Evidence), n.Evidence[len(n.Evidence)-1])
		}
		fmt.Fprintln(out, line)
	}
}

// monRoute reports routes that are monitoring traffic, not served load:
// counting specmon's own status polls would let the monitor inflate (and
// with enough pollers, dominate) the SLOs it certifies.
func monRoute(route string) bool {
	return route == "status" || route == "replica_status"
}

// fmtSeconds renders a latency in engineer-friendly units.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
