// Command specnode deploys the matching protocol over real TCP, one process
// per role: a hub coordinates slots, and each buyer or seller runs its own
// state machine against a shared market file. All processes must be given
// the same market JSON (the public parameters: prices are each agent's own,
// but the simulation distributes the full instance for simplicity).
//
// Single-machine demo (ephemeral port, all roles in one process):
//
//	specgen -sellers 3 -buyers 8 > market.json
//	specnode -market market.json -role all
//
// Multi-process deployment:
//
//	specnode -market market.json -role hub  -addr 127.0.0.1:7600 &
//	specnode -market market.json -role seller -index 0 -addr 127.0.0.1:7600 &
//	...one process per participant...
//	specnode -market market.json -role buyer -index 4 -addr 127.0.0.1:7600
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"specmatch/internal/agent"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/server"
	"specmatch/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specnode:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specnode", flag.ContinueOnError)
	var (
		marketPath  = fs.String("market", "", "market JSON path ('-' = stdin); required")
		role        = fs.String("role", "all", "hub, buyer, seller, or all (in-process market)")
		index       = fs.Int("index", 0, "participant index for -role buyer/seller")
		addr        = fs.String("addr", "", "hub address (listen for hub, dial for nodes); empty = ephemeral localhost for hub/all")
		buyerRule   = fs.String("buyer-rule", "rule-ii", "buyer transition rule: default, rule-i, rule-ii")
		sellerRule  = fs.String("seller-rule", "probabilistic", "seller transition rule: default, probabilistic")
		debugAddr   = fs.String("debug-addr", "", "serve /debug/metrics (JSON) and /debug/pprof/* on this address; empty = disabled")
		metricsJSON = fs.String("metrics-json", "", "write a metrics snapshot JSON to this path ('-' = stdout) on success")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}
	if *marketPath == "" {
		return fmt.Errorf("-market is required")
	}

	var data []byte
	var err error
	if *marketPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*marketPath)
	}
	if err != nil {
		return fmt.Errorf("reading market: %w", err)
	}
	var m market.Market
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("decoding market: %w", err)
	}

	br, err := agent.ParseBuyerRule(*buyerRule)
	if err != nil {
		return err
	}
	sr, err := agent.ParseSellerRule(*sellerRule)
	if err != nil {
		return err
	}
	// One registry serves every role in this process: agent-, wire- and
	// hub-level metrics all land in the same namespace (names in
	// PROTOCOL.md), which is what both -debug-addr and -metrics-json expose.
	var reg *obs.Registry
	if *debugAddr != "" || *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	var debug *server.HTTPServer
	if *debugAddr != "" {
		var err error
		debug, err = server.ListenAndServe(*debugAddr, server.DebugMux(reg))
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(out, "debug server on http://%s/debug/metrics\n", debug.Addr())
	}

	nodeCfg := wire.NodeConfig{
		Agent:   agent.Config{BuyerRule: br, SellerRule: sr, Metrics: reg},
		Metrics: reg,
	}
	hubCfg := wire.HubConfig{Addr: *addr, Metrics: reg}

	runRole := func() error {
		switch *role {
		case "all":
			report, err := wire.MatchOverTCP(&m, nodeCfg, hubCfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "market quiesced after %d slots, %d messages relayed\n", report.Slots, report.Messages)
			fmt.Fprintf(out, "matching: %v\n", report.Matching)
			fmt.Fprintf(out, "welfare: %.4f\n", report.Welfare)
			return nil
		case "hub":
			hub, err := wire.NewHub(&m, hubCfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "hub listening on %s, waiting for %d nodes\n", hub.Addr(), m.M()+m.N())
			report, err := hub.Serve(&m)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "market quiesced after %d slots, %d messages relayed\n", report.Slots, report.Messages)
			fmt.Fprintf(out, "matching: %v\n", report.Matching)
			fmt.Fprintf(out, "welfare: %.4f\n", report.Welfare)
			return nil
		case "buyer":
			if *addr == "" {
				return fmt.Errorf("-addr is required for node roles")
			}
			matched, err := wire.RunBuyerNode(*addr, *index, &m, nodeCfg)
			if err != nil {
				return err
			}
			if matched == market.Unmatched {
				fmt.Fprintf(out, "buyer %d: unmatched\n", *index)
			} else {
				fmt.Fprintf(out, "buyer %d: matched to seller %d (price %.4f)\n", *index, matched, m.Price(matched, *index))
			}
			return nil
		case "seller":
			if *addr == "" {
				return fmt.Errorf("-addr is required for node roles")
			}
			coalition, err := wire.RunSellerNode(*addr, *index, &m, nodeCfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "seller %d: coalition %v\n", *index, coalition)
			return nil
		default:
			return fmt.Errorf("unknown role %q (want hub, buyer, seller or all)", *role)
		}
	}
	runErr := runRole()
	if debug != nil {
		// Shut the debug server down cleanly so the port is released and a
		// serve loop that died mid-run surfaces instead of being swallowed.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := debug.Shutdown(ctx); err != nil && runErr == nil {
			runErr = fmt.Errorf("debug server: %w", err)
		}
	}
	if runErr != nil {
		return runErr
	}
	if *metricsJSON != "" {
		return obs.WriteSnapshotFile(reg, *metricsJSON, out)
	}
	return nil
}
