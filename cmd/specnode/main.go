// Command specnode deploys the matching protocol over real TCP, one process
// per role: a hub coordinates slots, and each buyer or seller runs its own
// state machine against a shared market file. All processes must be given
// the same market JSON (the public parameters: prices are each agent's own,
// but the simulation distributes the full instance for simplicity).
//
// Single-machine demo (ephemeral port, all roles in one process):
//
//	specgen -sellers 3 -buyers 8 > market.json
//	specnode -market market.json -role all
//
// Multi-process deployment:
//
//	specnode -market market.json -role hub  -addr 127.0.0.1:7600 &
//	specnode -market market.json -role seller -index 0 -addr 127.0.0.1:7600 &
//	...one process per participant...
//	specnode -market market.json -role buyer -index 4 -addr 127.0.0.1:7600
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specmatch/internal/agent"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/server"
	"specmatch/internal/trace"
	"specmatch/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "specnode:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("specnode", flag.ContinueOnError)
	var (
		marketPath  = fs.String("market", "", "market JSON path ('-' = stdin); required")
		role        = fs.String("role", "all", "hub, buyer, seller, or all (in-process market)")
		index       = fs.Int("index", 0, "participant index for -role buyer/seller")
		addr        = fs.String("addr", "", "hub address (listen for hub, dial for nodes); empty = ephemeral localhost for hub/all")
		buyerRule   = fs.String("buyer-rule", "rule-ii", "buyer transition rule: default, rule-i, rule-ii")
		sellerRule  = fs.String("seller-rule", "probabilistic", "seller transition rule: default, probabilistic")
		debugAddr   = fs.String("debug-addr", "", "serve /debug/metrics (JSON), /debug/trace and /debug/pprof/* on this address; empty = disabled")
		metricsJSON = fs.String("metrics-json", "", "write a metrics snapshot JSON to this path ('-' = stdout) on success")
		flightCap   = fs.Int("flight", 1<<16, "flight-recorder capacity in spans, a bounded ring always recording (0 disables tracing)")
		traceDump   = fs.String("trace-dump", "specnode-trace.json", "flight-recorder dump path, written on SIGQUIT (and on success when set explicitly)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed usage
		}
		return err
	}
	// An exit dump is only written when the operator asked for one; the
	// default path exists so a bare SIGQUIT still lands somewhere predictable.
	dumpOnExit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "trace-dump" {
			dumpOnExit = true
		}
	})
	if *marketPath == "" {
		return fmt.Errorf("-market is required")
	}

	var data []byte
	var err error
	if *marketPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*marketPath)
	}
	if err != nil {
		return fmt.Errorf("reading market: %w", err)
	}
	var m market.Market
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("decoding market: %w", err)
	}

	br, err := agent.ParseBuyerRule(*buyerRule)
	if err != nil {
		return err
	}
	sr, err := agent.ParseSellerRule(*sellerRule)
	if err != nil {
		return err
	}
	// One registry serves every role in this process: agent-, wire- and
	// hub-level metrics all land in the same namespace (names in
	// PROTOCOL.md), which is what both -debug-addr and -metrics-json expose.
	var reg *obs.Registry
	if *debugAddr != "" || *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	// The flight recorder is always on (like the hub/node metrics, it is a
	// bounded ring; the cost is a few atomic ops per span) so a hung or
	// misbehaving deployment can be inspected after the fact: SIGQUIT dumps
	// the ring without exiting, and -debug-addr serves it at /debug/trace.
	var fl *trace.Flight
	if *flightCap > 0 {
		fl = trace.NewFlight(*flightCap)
	}
	stopQuit := dumpOnSIGQUIT(fl, *traceDump, out)
	defer stopQuit()
	var debug *server.HTTPServer
	if *debugAddr != "" {
		// The debug endpoint gets the windowed series view too: a 1s rollup
		// over the process registry, flushed when the debug server stops.
		ru := obs.NewRollup(reg, time.Second, 300)
		ru.Start()
		defer ru.Stop()
		var err error
		debug, err = server.ListenAndServe(*debugAddr, server.DebugMux(reg, fl, ru))
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(out, "debug server on http://%s/debug/metrics\n", debug.Addr())
	}

	nodeCfg := wire.NodeConfig{
		Agent:   agent.Config{BuyerRule: br, SellerRule: sr, Metrics: reg},
		Metrics: reg,
		Flight:  fl,
	}
	hubCfg := wire.HubConfig{Addr: *addr, Metrics: reg, Flight: fl}

	runRole := func() error {
		switch *role {
		case "all":
			report, err := wire.MatchOverTCP(&m, nodeCfg, hubCfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "market quiesced after %d slots, %d messages relayed\n", report.Slots, report.Messages)
			fmt.Fprintf(out, "matching: %v\n", report.Matching)
			fmt.Fprintf(out, "welfare: %.4f\n", report.Welfare)
			return nil
		case "hub":
			hub, err := wire.NewHub(&m, hubCfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "hub listening on %s, waiting for %d nodes\n", hub.Addr(), m.M()+m.N())
			report, err := hub.Serve(&m)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "market quiesced after %d slots, %d messages relayed\n", report.Slots, report.Messages)
			fmt.Fprintf(out, "matching: %v\n", report.Matching)
			fmt.Fprintf(out, "welfare: %.4f\n", report.Welfare)
			return nil
		case "buyer":
			if *addr == "" {
				return fmt.Errorf("-addr is required for node roles")
			}
			matched, err := wire.RunBuyerNode(*addr, *index, &m, nodeCfg)
			if err != nil {
				return err
			}
			if matched == market.Unmatched {
				fmt.Fprintf(out, "buyer %d: unmatched\n", *index)
			} else {
				fmt.Fprintf(out, "buyer %d: matched to seller %d (price %.4f)\n", *index, matched, m.Price(matched, *index))
			}
			return nil
		case "seller":
			if *addr == "" {
				return fmt.Errorf("-addr is required for node roles")
			}
			coalition, err := wire.RunSellerNode(*addr, *index, &m, nodeCfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "seller %d: coalition %v\n", *index, coalition)
			return nil
		default:
			return fmt.Errorf("unknown role %q (want hub, buyer, seller or all)", *role)
		}
	}
	runErr := runRole()
	if debug != nil {
		// Shut the debug server down cleanly so the port is released and a
		// serve loop that died mid-run surfaces instead of being swallowed.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := debug.Shutdown(ctx); err != nil && runErr == nil {
			runErr = fmt.Errorf("debug server: %w", err)
		}
	}
	if runErr != nil {
		return runErr
	}
	if dumpOnExit {
		dumpFlight(fl, *traceDump, out, "exit")
	}
	if *metricsJSON != "" {
		return obs.WriteSnapshotFile(reg, *metricsJSON, out)
	}
	return nil
}

// dumpFlight writes the flight recorder as Chrome trace-event JSON,
// atomically (tmp + rename) so a concurrent reader never sees a torn file.
// No-op with a nil flight or empty path.
func dumpFlight(fl *trace.Flight, path string, out io.Writer, reason string) {
	if fl == nil || path == "" {
		return
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fmt.Fprintf(out, "flight recorder: dump failed: %v\n", err)
		return
	}
	werr := trace.WriteChromeFlight(f, fl)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		_ = os.Remove(tmp)
		fmt.Fprintf(out, "flight recorder: dump failed: %v\n", werr)
		return
	}
	fmt.Fprintf(out, "flight recorder: dumped %d spans to %s (%s)\n", len(fl.Snapshot()), path, reason)
}

// dumpOnSIGQUIT installs a handler that dumps the flight recorder on each
// SIGQUIT without exiting. The returned stop function uninstalls it.
func dumpOnSIGQUIT(fl *trace.Flight, path string, out io.Writer) func() {
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-quit:
				dumpFlight(fl, path, out, "SIGQUIT")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(quit)
		close(done)
	}
}
