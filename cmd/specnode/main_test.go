package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"specmatch"
)

func marketFile(t *testing.T, sellers, buyers int) string {
	t.Helper()
	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: sellers, Buyers: buyers, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "market.json")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoleAll(t *testing.T) {
	path := marketFile(t, 3, 8)
	var out strings.Builder
	if err := run([]string{"-market", path, "-role", "all"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"quiesced", "welfare:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestMultiProcessRoles drives the hub and every node role through the CLI
// entry points concurrently, as separate processes would.
func TestMultiProcessRoles(t *testing.T) {
	const sellers, buyers = 2, 5
	path := marketFile(t, sellers, buyers)

	// Start the hub on an ephemeral port and scrape its address.
	addrCh := make(chan string, 1)
	hubOut := &syncWriter{addrCh: addrCh}
	hubDone := make(chan error, 1)
	go func() {
		hubDone <- run([]string{"-market", path, "-role", "hub"}, hubOut)
	}()
	addr := <-addrCh

	var wg sync.WaitGroup
	errs := make(chan error, sellers+buyers)
	for i := 0; i < sellers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out strings.Builder
			errs <- run([]string{"-market", path, "-role", "seller", "-index", strconv.Itoa(i), "-addr", addr}, &out)
		}(i)
	}
	for j := 0; j < buyers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			var out strings.Builder
			errs <- run([]string{"-market", path, "-role", "buyer", "-index", strconv.Itoa(j), "-addr", addr}, &out)
		}(j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("node: %v", err)
		}
	}
	if err := <-hubDone; err != nil {
		t.Errorf("hub: %v", err)
	}
	if !strings.Contains(hubOut.String(), "welfare:") {
		t.Errorf("hub output:\n%s", hubOut.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing market should fail")
	}
	path := marketFile(t, 2, 3)
	if err := run([]string{"-market", path, "-role", "alien"}, &out); err == nil {
		t.Error("unknown role should fail")
	}
	if err := run([]string{"-market", path, "-role", "buyer"}, &out); err == nil {
		t.Error("node role without -addr should fail")
	}
	if err := run([]string{"-market", path, "-buyer-rule", "bogus"}, &out); err == nil {
		t.Error("bogus rule should fail")
	}
}

// syncWriter captures hub output and signals once the listen address line
// appears.
type syncWriter struct {
	mu     sync.Mutex
	buf    strings.Builder
	addrCh chan string
	sent   bool
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		s := w.buf.String()
		if idx := strings.Index(s, "hub listening on "); idx >= 0 {
			rest := s[idx+len("hub listening on "):]
			if end := strings.IndexByte(rest, ','); end > 0 {
				w.addrCh <- rest[:end]
				w.sent = true
			}
		}
	}
	return len(p), nil
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}
