package specmatch_test

import (
	"encoding/json"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/trace"
)

// benchBaseline mirrors the schema cmd/specbench writes to BENCH_BASELINE.json
// (kept in sync by TestBenchBaseline failing on decode).
type benchBaseline struct {
	Cases []struct {
		Name    string  `json:"name"`
		Sellers int     `json:"sellers"`
		Buyers  int     `json:"buyers"`
		Seed    int64   `json:"seed"`
		Welfare float64 `json:"welfare"`
		Matched int     `json:"matched"`
		Rounds  int     `json:"rounds"`
	} `json:"cases"`
	Churn []struct {
		Name    string  `json:"name"`
		Sellers int     `json:"sellers"`
		Buyers  int     `json:"buyers"`
		Seed    int64   `json:"seed"`
		Steps   int     `json:"steps"`
		Welfare float64 `json:"welfare"`
		Matched int     `json:"matched"`
	} `json:"churn"`
}

// TestBenchBaseline guards the committed engine baseline on two axes.
//
// Welfare drift (always on): the engine is deterministic, so each baseline
// case's welfare, matched count, and total rounds must reproduce exactly —
// any drift means the algorithm changed behavior, which a "performance" PR
// must not do silently. Regenerate with `go run ./cmd/specbench -baseline
// BENCH_BASELINE.json` when a behavior change is intentional.
//
// Timing regression (RUN_BENCHCHECK=1, `make benchcheck`): the default
// engine configuration (parallel fan-out + coalition cache) must not run
// more than 2x slower than the plain sequential configuration measured side
// by side on the same machine. Both configurations produce identical output,
// so a welfare-neutral slowdown is exactly what this catches. The committed
// timings in BENCH_BASELINE.json are informational only; they came from a
// different machine and are never compared against.
func TestBenchBaseline(t *testing.T) {
	data, err := os.ReadFile("BENCH_BASELINE.json")
	if err != nil {
		t.Fatalf("reading BENCH_BASELINE.json (regenerate with `go run ./cmd/specbench -baseline BENCH_BASELINE.json`): %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("decoding BENCH_BASELINE.json: %v", err)
	}
	if len(base.Cases) == 0 {
		t.Fatal("BENCH_BASELINE.json has no cases")
	}
	timing := os.Getenv("RUN_BENCHCHECK") == "1"

	for _, c := range base.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := market.Generate(market.Config{Sellers: c.Sellers, Buyers: c.Buyers, Seed: c.Seed})
			if err != nil {
				t.Fatalf("generating market: %v", err)
			}

			measure := func(opts core.Options, iters int) (time.Duration, *core.Result) {
				bestD := time.Duration(0)
				var res *core.Result
				for k := 0; k < iters; k++ {
					start := time.Now()
					r, err := core.Run(m, opts)
					d := time.Since(start)
					if err != nil {
						t.Fatalf("core.Run: %v", err)
					}
					if res == nil || d < bestD {
						bestD, res = d, r
					}
				}
				return bestD, res
			}

			_, res := measure(core.Options{}, 1)
			if res.Welfare != c.Welfare {
				t.Errorf("welfare drift: got %v, baseline %v", res.Welfare, c.Welfare)
			}
			if res.Matched != c.Matched {
				t.Errorf("matched drift: got %d, baseline %d", res.Matched, c.Matched)
			}
			if res.TotalRounds() != c.Rounds {
				t.Errorf("rounds drift: got %d, baseline %d", res.TotalRounds(), c.Rounds)
			}

			if !timing {
				return
			}
			// Side-by-side timing on this machine: default engine vs the
			// pre-optimization configuration, best of 5. A >2x slowdown of
			// the default over plain sequential fails.
			defDur, defRes := measure(core.Options{}, 5)
			seqDur, seqRes := measure(core.Options{Workers: 1, DisableCoalitionCache: true}, 5)
			if defRes.Welfare != seqRes.Welfare {
				t.Errorf("default and sequential configurations disagree: welfare %v vs %v", defRes.Welfare, seqRes.Welfare)
			}
			t.Logf("default %v, sequential %v (%.2fx)", defDur, seqDur, float64(seqDur)/float64(defDur))
			if defDur > 2*seqDur {
				t.Errorf("default engine is >2x slower than plain sequential: %v vs %v", defDur, seqDur)
			}
		})
	}
}

// TestChurnBaseline guards the incremental churn engine on the same two axes
// as TestBenchBaseline.
//
// Welfare drift + path equivalence (always on): each churn case's
// deterministic SyntheticChurn trace is replayed through both the incremental
// engine and the full-recompute shadow path (DisableIncremental). Every step's
// StepStats must be bit-identical between the two paths — the incremental
// engine is an optimization, never a behavior change — and the final welfare
// and matched count must reproduce the committed goldens exactly on both.
// Regenerate with `go run ./cmd/specbench -baseline BENCH_BASELINE.json` when
// a behavior change is intentional.
//
// Timing regression (RUN_BENCHCHECK=1, `make benchcheck`): the incremental
// path must replay the trace at least 4x faster than the full path, measured
// side by side on this machine, best of 5 replays each. The guard sits below
// the ~25x the recording machine observed so machine noise cannot flake it,
// but far above 1x so an accidental fallback to full recompute fails loudly.
func TestChurnBaseline(t *testing.T) {
	data, err := os.ReadFile("BENCH_BASELINE.json")
	if err != nil {
		t.Fatalf("reading BENCH_BASELINE.json (regenerate with `go run ./cmd/specbench -baseline BENCH_BASELINE.json`): %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("decoding BENCH_BASELINE.json: %v", err)
	}
	if len(base.Churn) == 0 {
		t.Fatal("BENCH_BASELINE.json has no churn cases")
	}
	timing := os.Getenv("RUN_BENCHCHECK") == "1"

	for _, c := range base.Churn {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := market.Generate(market.Config{Sellers: c.Sellers, Buyers: c.Buyers, Seed: c.Seed})
			if err != nil {
				t.Fatalf("generating market: %v", err)
			}
			// Same name dispatch as cmd/specbench's ChurnTrace: *-mobile-*
			// cases replay the churn+mobility trace, the rest plain churn.
			events := online.SyntheticChurn(m, c.Seed, c.Steps)
			if strings.Contains(c.Name, "-mobile") {
				events = online.SyntheticMobileChurn(m, c.Seed, c.Steps)
			}

			replay := func(disable bool, iters int) (time.Duration, *online.Session, []online.StepStats) {
				bestD := time.Duration(0)
				var bestSess *online.Session
				var bestStats []online.StepStats
				for k := 0; k < iters; k++ {
					s, err := online.NewSession(m, core.Options{DisableIncremental: disable})
					if err != nil {
						t.Fatalf("NewSession: %v", err)
					}
					stats := make([]online.StepStats, 0, len(events))
					start := time.Now()
					for _, ev := range events {
						st, err := s.Step(ev)
						if err != nil {
							t.Fatalf("Step: %v", err)
						}
						stats = append(stats, st)
					}
					d := time.Since(start)
					if bestSess == nil || d < bestD {
						bestD, bestSess, bestStats = d, s, stats
					}
				}
				return bestD, bestSess, bestStats
			}

			iters := 1
			if timing {
				iters = 5
			}
			incDur, incSess, incStats := replay(false, iters)
			fullDur, fullSess, fullStats := replay(true, iters)

			// Welfare-unchanged: the two paths must agree bit for bit at
			// every step, and both must match the committed goldens.
			for k := range incStats {
				if incStats[k] != fullStats[k] {
					t.Fatalf("step %d stats diverge between paths:\n incremental %+v\n full        %+v",
						k, incStats[k], fullStats[k])
				}
			}
			if !incSess.Matching().Equal(fullSess.Matching()) {
				t.Errorf("final matchings diverge between paths")
			}
			if got := incSess.Welfare(); got != c.Welfare {
				t.Errorf("welfare drift: got %v, baseline %v", got, c.Welfare)
			}
			if got := incSess.Matching().MatchedCount(); got != c.Matched {
				t.Errorf("matched drift: got %d, baseline %d", got, c.Matched)
			}

			if !timing {
				return
			}
			t.Logf("incremental %v, full %v (%.2fx) over %d steps",
				incDur, fullDur, float64(fullDur)/float64(incDur), c.Steps)
			if fullDur < 4*incDur {
				t.Errorf("incremental path is <4x faster than full recompute: %v vs %v", incDur, fullDur)
			}
		})
	}
}

// TestInstrumentationOverhead guards the observability layer the same way
// TestBenchBaseline guards the engine: attaching a live metrics registry,
// event sink, and flight recorder (the always-on configuration specserved
// runs with) must not change the engine's output at all (always checked),
// and must not slow the run by more than 2x measured side by side on this
// machine (RUN_BENCHCHECK=1). The disabled path is a nil-handle check per
// call site, so a regression here means instrumentation leaked onto a hot
// path.
func TestInstrumentationOverhead(t *testing.T) {
	data, err := os.ReadFile("BENCH_BASELINE.json")
	if err != nil {
		t.Fatalf("reading BENCH_BASELINE.json (regenerate with `go run ./cmd/specbench -baseline BENCH_BASELINE.json`): %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("decoding BENCH_BASELINE.json: %v", err)
	}
	timing := os.Getenv("RUN_BENCHCHECK") == "1"

	for _, c := range base.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := market.Generate(market.Config{Sellers: c.Sellers, Buyers: c.Buyers, Seed: c.Seed})
			if err != nil {
				t.Fatalf("generating market: %v", err)
			}

			measure := func(opts core.Options, iters int) (time.Duration, *core.Result) {
				bestD := time.Duration(0)
				var res *core.Result
				for k := 0; k < iters; k++ {
					start := time.Now()
					r, err := core.Run(m, opts)
					d := time.Since(start)
					if err != nil {
						t.Fatalf("core.Run: %v", err)
					}
					if res == nil || d < bestD {
						bestD, res = d, r
					}
				}
				return bestD, res
			}

			instrumented := core.Options{
				Metrics: obs.NewRegistry(),
				Events:  obs.NewSink(1024),
				Flight:  trace.NewFlight(1 << 15),
			}
			// Best-of-15 (up from 5 pre-sampler): the 1.10x sampler budget
			// below is tight enough that scheduler jitter on the
			// sub-millisecond cases needs more rounds to fall out of the
			// minimum.
			iters := 1
			if timing {
				iters = 15
			}
			offDur, offRes := measure(core.Options{}, iters)
			onDur, onRes := measure(instrumented, iters)

			// The always-on series sampler (PR 9) reads the same registry
			// the engine writes, concurrently, every 2ms — far hotter than
			// the serving default of 1s, so this bounds the worst case.
			sampledReg := obs.NewRegistry()
			sampled := core.Options{
				Metrics: sampledReg,
				Events:  obs.NewSink(1024),
				Flight:  trace.NewFlight(1 << 15),
			}
			// The 1.10x budget is far tighter than the 2x one, so min-of-N
			// on two separate batches is too noisy: run the pair
			// interleaved (both sides see identical machine conditions)
			// and compare medians.
			samIters := 1
			if timing {
				samIters = 21
			}
			rollup := obs.NewRollup(sampledReg, 2*time.Millisecond, 1<<16)
			rollup.Start()
			pairOn := make([]time.Duration, 0, samIters)
			pairSam := make([]time.Duration, 0, samIters)
			var samRes *core.Result
			for k := 0; k < samIters; k++ {
				d, _ := measure(instrumented, 1)
				pairOn = append(pairOn, d)
				d, samRes = measure(sampled, 1)
				pairSam = append(pairSam, d)
			}
			rollup.Stop()
			if len(rollup.Windows(0)) == 0 {
				t.Fatalf("sampler took no windows; the overhead measurement is vacuous")
			}

			// Observability must be a pure observer: same welfare, same
			// matching size, same round count, matching the baseline golden.
			if onRes.Welfare != offRes.Welfare || onRes.Welfare != c.Welfare {
				t.Errorf("instrumentation changed welfare: on %v, off %v, baseline %v",
					onRes.Welfare, offRes.Welfare, c.Welfare)
			}
			if onRes.Matched != offRes.Matched {
				t.Errorf("instrumentation changed matched: on %d, off %d", onRes.Matched, offRes.Matched)
			}
			if onRes.TotalRounds() != offRes.TotalRounds() {
				t.Errorf("instrumentation changed rounds: on %d, off %d", onRes.TotalRounds(), offRes.TotalRounds())
			}

			// The sampler must also be a pure observer: serving state is
			// bit-identical sampler-on vs sampler-off.
			if samRes.Welfare != onRes.Welfare {
				t.Errorf("sampler changed welfare: sampled %v, unsampled %v", samRes.Welfare, onRes.Welfare)
			}
			if samRes.Matched != onRes.Matched {
				t.Errorf("sampler changed matched: sampled %d, unsampled %d", samRes.Matched, onRes.Matched)
			}
			if samRes.TotalRounds() != onRes.TotalRounds() {
				t.Errorf("sampler changed rounds: sampled %d, unsampled %d", samRes.TotalRounds(), onRes.TotalRounds())
			}

			if !timing {
				return
			}
			medOn, medSam := medianDur(pairOn), medianDur(pairSam)
			t.Logf("disabled %v, instrumented %v (%.2fx), sampled median %v vs instrumented median %v (%.2fx)",
				offDur, onDur, float64(onDur)/float64(offDur), medSam, medOn, float64(medSam)/float64(medOn))
			if onDur > 2*offDur {
				t.Errorf("instrumented engine is >2x slower than disabled: %v vs %v", onDur, offDur)
			}
			if float64(medSam) > 1.10*float64(medOn) {
				t.Errorf("always-on sampler exceeds the 1.10x budget: sampled median %v vs instrumented median %v", medSam, medOn)
			}
		})
	}
}

// medianDur is the middle duration of an odd-length sample.
func medianDur(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
