// Package specmatch is a Go implementation of Spectrum Matching (Chen,
// Jiang, Cai, Zhang, Li — IEEE ICDCS 2016): a distributed, matching-based
// alternative to double auctions for dynamic spectrum access in free
// spectrum markets.
//
// The library models a spectrum market of sellers (channels) and buyers with
// per-channel interference graphs, and offers three solvers over it:
//
//   - Match — the paper's contribution: a two-stage distributed algorithm
//     (adapted deferred acceptance, then transfer & invitation) that
//     converges in O(MN) rounds to an interference-free, individually
//     rational, Nash-stable matching.
//   - Optimal — the centralized welfare-maximizing benchmark (exact
//     branch-and-bound over the paper's NP-hard integer program).
//   - MatchAsync — the fully asynchronous protocol of §IV, where every buyer
//     and seller decides locally when to move between stages, running over a
//     simulated lossy network.
//
// Quick start:
//
//	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 5, Buyers: 40, Seed: 1})
//	if err != nil { ... }
//	res, err := specmatch.Match(m, specmatch.MatchOptions{})
//	if err != nil { ... }
//	fmt.Println(res.Welfare, specmatch.CheckStability(m, res.Matching))
//
// The subpackages under internal implement the substrates (interference
// graphs, greedy MWIS, market generation, the slot-synchronous network, the
// evaluation harness); this package re-exports the stable public surface.
package specmatch

import (
	"specmatch/internal/agent"
	"specmatch/internal/auction"
	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/mwis"
	"specmatch/internal/online"
	"specmatch/internal/optimal"
	"specmatch/internal/outage"
	"specmatch/internal/simnet"
	"specmatch/internal/stability"
	"specmatch/internal/swap"
)

// Market is a fully expanded spectrum market: M virtual sellers (channels),
// N virtual buyers, per-channel prices and interference graphs.
type Market = market.Market

// MarketConfig describes a randomly generated market in the paper's
// evaluation setup (§V-A).
type MarketConfig = market.Config

// SimilarityConfig controls buyer price similarity (average pairwise SRCC).
type SimilarityConfig = market.SimilarityConfig

// RadioConfig selects the SINR-style physical-layer interference model for
// market generation (Δ = 0 dB coincides with the paper's disk rule).
type RadioConfig = market.RadioConfig

// HotspotConfig clusters buyers around hotspot centers instead of the
// paper's uniform placement.
type HotspotConfig = market.HotspotConfig

// MarketSpec is the JSON interchange form of a market.
type MarketSpec = market.Spec

// Matching is the matching function µ of Definition 1.
type Matching = matching.Matching

// MatchOptions configures the synchronous two-stage algorithm, including
// the engine's performance knobs: Workers bounds the per-round seller
// fan-out and DisableCoalitionCache opts out of coalition-solve caching.
// Output is bit-identical at every Workers/cache setting.
type MatchOptions = core.Options

// MatchResult is the outcome of the two-stage algorithm, including
// per-stage welfare and round counts, and the coalition-cache counters in
// Cache.
type MatchResult = core.Result

// AsyncConfig configures the asynchronous protocol (§IV): network faults
// and the local stage-transition rules.
type AsyncConfig = agent.Config

// NetConfig tunes the simulated network of the asynchronous protocol:
// message-drop probability, bounded extra delay, and blackout windows.
type NetConfig = simnet.Config

// Blackout is a window of slots during which every sent message is lost.
type Blackout = simnet.Blackout

// AsyncResult is the outcome of an asynchronous run.
type AsyncResult = agent.Result

// StabilityReport summarizes interference-freeness, individual rationality,
// Nash stability and pairwise stability of a matching.
type StabilityReport = stability.Report

// MWISAlgorithm selects the sellers' coalition (maximum-weight independent
// set) solver.
type MWISAlgorithm = mwis.Algorithm

// MWIS algorithm choices. GWMIN is the paper's linear-time greedy default.
const (
	GWMIN      = mwis.GWMIN
	GWMIN2     = mwis.GWMIN2
	GWMAX      = mwis.GWMAX
	GreedyBest = mwis.GreedyBest
	ExactMWIS  = mwis.Exact
)

// Unmatched is the sentinel seller index of an unmatched buyer.
const Unmatched = market.Unmatched

// Buyer transition rules for the asynchronous protocol (§IV-A).
const (
	BuyerDefault = agent.BuyerDefault
	BuyerRuleI   = agent.BuyerRuleI
	BuyerRuleII  = agent.BuyerRuleII
)

// Seller transition rules for the asynchronous protocol (§IV-B).
const (
	SellerDefault       = agent.SellerDefault
	SellerProbabilistic = agent.SellerProbabilistic
)

// GenerateMarket builds a random market: buyers uniform in a square area,
// one disk-model interference graph per channel, i.i.d. U[0,1] utilities
// with optional similarity control. Generation is deterministic in the
// config (including its Seed).
func GenerateMarket(cfg MarketConfig) (*Market, error) {
	return market.Generate(cfg)
}

// NewMarket builds a market from explicit prices (prices[i][j] = b_{i,j})
// and per-channel interference edge lists.
func NewMarket(spec MarketSpec) (*Market, error) {
	return market.FromSpec(spec)
}

// Match runs the paper's two-stage distributed algorithm synchronously and
// returns the final matching with per-stage statistics.
func Match(m *Market, opts MatchOptions) (*MatchResult, error) {
	return core.Run(m, opts)
}

// MatchStageI runs only Stage I (adapted deferred acceptance), for
// ablations and diagnostics.
func MatchStageI(m *Market, opts MatchOptions) (*Matching, core.StageStats, error) {
	return core.RunStageI(m, opts)
}

// MatchAsync runs the asynchronous protocol of §IV over a simulated network
// with the configured local transition rules and fault injection.
func MatchAsync(m *Market, cfg AsyncConfig) (*AsyncResult, error) {
	return agent.Run(m, cfg)
}

// MatchAsyncConcurrent runs the same protocol with one goroutine per agent,
// synchronized at slot barriers. On a reliable network the result is
// bit-identical to MatchAsync; it exists to validate (under the race
// detector) that agents share no state, and to exploit multicore machines
// on large markets.
func MatchAsyncConcurrent(m *Market, cfg AsyncConfig) (*AsyncResult, error) {
	return agent.RunConcurrent(m, cfg)
}

// Optimal returns a welfare-maximizing matching and its welfare — the
// centralized benchmark of §II-B. Exact and exponential in the worst case;
// intended for small markets (it rejects oversize searches with an error).
func Optimal(m *Market) (*Matching, float64, error) {
	return optimal.Solve(m, optimal.Options{})
}

// GreedyBaseline returns the classic centralized greedy matching, a
// linear-time comparator.
func GreedyBaseline(m *Market) (*Matching, float64) {
	return optimal.Greedy(m)
}

// Welfare returns the social welfare of a matching on a market: the sum of
// matched buyers' peer-effect utilities.
func Welfare(m *Market, mu *Matching) float64 {
	return matching.Welfare(m, mu)
}

// NewMatching returns an empty matching for a market with m sellers and n
// buyers, for building allocations by hand (baselines, tests, what-ifs).
func NewMatching(m, n int) *Matching {
	return matching.New(m, n)
}

// CheckStability verifies every §III property of a matching and reports the
// violations it finds.
func CheckStability(m *Market, mu *Matching) StabilityReport {
	return stability.Check(m, mu)
}

// SwapOptions tunes the coordinated-exchange stage.
type SwapOptions = swap.Options

// SwapStats reports what the coordinated-exchange stage did.
type SwapStats = swap.Stats

// DynamicSession is a long-running matching over a market with arrivals and
// departures, repaired incrementally after each churn event so incumbents
// are never disrupted.
type DynamicSession = online.Session

// ChurnEvent is one batch of arrivals and departures.
type ChurnEvent = online.Event

// ChurnStats reports one dynamic-session step.
type ChurnStats = online.StepStats

// NewDynamicSession starts a dynamic matching session on the market with no
// active buyers. Feed churn with Session.Step; each step restores the
// paper's stability guarantees over the active sub-market via Stage II
// repair (see core.Repair).
func NewDynamicSession(m *Market, opts MatchOptions) (*DynamicSession, error) {
	return online.NewSession(m, opts)
}

// LinkParams configures the physical-layer audit.
type LinkParams = outage.LinkParams

// OutageReport summarizes a physical-layer audit.
type OutageReport = outage.OutageReport

// AuditPhysical evaluates a matching under aggregate co-channel
// interference (log-distance path loss) and reports the links that would
// actually fail — the protocol-model vs physical-model gap. Requires a
// market with geometry (generated, not hand-built).
func AuditPhysical(m *Market, mu *Matching, params LinkParams) (OutageReport, error) {
	return outage.ValidateMatching(m, mu, params)
}

// AuctionOptions tunes the double-auction baseline.
type AuctionOptions = auction.Options

// AuctionOutcome reports the double-auction baseline's result.
type AuctionOutcome = auction.Outcome

// DoubleAuction runs the TRUST-style group-based truthful double auction —
// the centralized mechanism family the paper replaces — on the same market
// model, as a welfare baseline.
func DoubleAuction(m *Market, opts AuctionOptions) (*Matching, AuctionOutcome, error) {
	return auction.Run(m, opts)
}

// ImproveSwaps applies the coordinated-exchange stage this library adds on
// top of the paper (its §III-D names the mechanism as future work): buyers
// relocate to strictly better compatible channels and exchange places in
// pairs whenever both buyers strictly gain and both sellers weakly gain.
// The matching is modified in place; welfare never decreases, no buyer ends
// worse off, and the result stays Nash-stable. On the paper's Fig. 4/5
// counterexample this recovers exactly the published better matching.
func ImproveSwaps(m *Market, mu *Matching, opts SwapOptions) (SwapStats, error) {
	return swap.Improve(m, mu, opts)
}
