package specmatch_test

import (
	"testing"

	"specmatch"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the README
// quick start does.
func TestPublicAPIEndToEnd(t *testing.T) {
	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 4, Buyers: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare <= 0 {
		t.Errorf("welfare = %v, want positive", res.Welfare)
	}
	if got := specmatch.Welfare(m, res.Matching); got != res.Welfare {
		t.Errorf("Welfare() = %v, result says %v", got, res.Welfare)
	}

	rep := specmatch.CheckStability(m, res.Matching)
	if !rep.InterferenceFree || !rep.IndividuallyRational || !rep.NashStable {
		t.Errorf("stability report: %v", rep)
	}

	_, opt, err := specmatch.Optimal(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare > opt+1e-9 {
		t.Errorf("distributed welfare %v exceeds optimal %v", res.Welfare, opt)
	}
	if _, g := specmatch.GreedyBaseline(m); g > opt+1e-9 {
		t.Errorf("greedy welfare %v exceeds optimal %v", g, opt)
	}

	async, err := specmatch.MatchAsync(m, specmatch.AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !async.Matching.Equal(res.Matching) {
		t.Error("async default run should equal the synchronous result")
	}

	mu1, stats, err := specmatch.MatchStageI(m, specmatch.MatchOptions{MWIS: specmatch.ExactMWIS})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Welfare != specmatch.Welfare(m, mu1) {
		t.Error("stage I stats disagree with matching welfare")
	}
}

// TestNewMarketFromSpec exercises the explicit constructor.
func TestNewMarketFromSpec(t *testing.T) {
	m, err := specmatch.NewMarket(specmatch.MarketSpec{
		Prices: [][]float64{{1, 2}, {3, 4}},
		Edges:  [][][2]int{{{0, 1}}, {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.M() != 2 || m.N() != 2 {
		t.Errorf("dims (%d,%d), want (2,2)", m.M(), m.N())
	}
	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Channel 1 has no interference: both buyers take it (3 + 4).
	if res.Welfare != 7 {
		t.Errorf("welfare = %v, want 7", res.Welfare)
	}
}

// TestExtensionsPublicAPI drives the extension entry points: the swap
// stage, the double-auction baseline, the dynamic session, and the
// concurrent async runner.
func TestExtensionsPublicAPI(t *testing.T) {
	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 4, Buyers: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := specmatch.ImproveSwaps(m, res.Matching, specmatch.SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalWelfare < res.StageI.Welfare {
		t.Error("swap stage lost welfare")
	}

	_, outcome, err := specmatch.DoubleAuction(m, specmatch.AuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Welfare <= 0 || outcome.Welfare > st.FinalWelfare {
		t.Errorf("auction welfare %v should be positive and below matching %v", outcome.Welfare, st.FinalWelfare)
	}
	if outcome.AuctioneerSurplus < 0 {
		t.Errorf("auctioneer deficit %v", outcome.AuctioneerSurplus)
	}

	session, err := specmatch.NewDynamicSession(m, specmatch.MatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Step(specmatch.ChurnEvent{Arrive: []int{0, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if session.ActiveCount() != 4 {
		t.Errorf("active %d, want 4", session.ActiveCount())
	}
	if _, err := session.Step(specmatch.ChurnEvent{ChannelDown: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if session.ChannelOnline(0) {
		t.Error("channel 0 should be offline")
	}

	conc, err := specmatch.MatchAsyncConcurrent(m, specmatch.AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := specmatch.MatchAsync(m, specmatch.AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !conc.Matching.Equal(seq.Matching) {
		t.Error("concurrent and sequential async runs differ on a reliable network")
	}
}
