package matching

import (
	"encoding/json"
	"fmt"
)

// Spec is the JSON interchange form of a matching: dimensions plus one
// sorted buyer list per seller. Unmatched buyers are simply absent.
type Spec struct {
	M          int     `json:"m"`
	N          int     `json:"n"`
	Coalitions [][]int `json:"coalitions"`
}

// Spec exports the matching to its interchange form.
func (mu *Matching) Spec() Spec {
	s := Spec{M: mu.M(), N: mu.N(), Coalitions: make([][]int, mu.M())}
	for i := 0; i < mu.M(); i++ {
		s.Coalitions[i] = mu.Coalition(i)
	}
	return s
}

// FromSpec builds and validates a matching from its interchange form.
func FromSpec(s Spec) (*Matching, error) {
	if s.M < 0 || s.N < 0 {
		return nil, fmt.Errorf("matching: negative dimensions (%d,%d)", s.M, s.N)
	}
	if len(s.Coalitions) > s.M {
		return nil, fmt.Errorf("matching: %d coalitions for %d sellers", len(s.Coalitions), s.M)
	}
	mu := New(s.M, s.N)
	for i, coalition := range s.Coalitions {
		for _, j := range coalition {
			if j < 0 || j >= s.N {
				return nil, fmt.Errorf("matching: buyer %d out of range [0,%d)", j, s.N)
			}
			if mu.IsMatched(j) {
				return nil, fmt.Errorf("matching: buyer %d listed twice", j)
			}
			if err := mu.Assign(i, j); err != nil {
				return nil, err
			}
		}
	}
	return mu, nil
}

// MarshalJSON implements json.Marshaler via the interchange form.
func (mu *Matching) MarshalJSON() ([]byte, error) {
	return json.Marshal(mu.Spec())
}

// UnmarshalJSON implements json.Unmarshaler via the interchange form.
func (mu *Matching) UnmarshalJSON(data []byte) error {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("matching: decoding spec: %w", err)
	}
	decoded, err := FromSpec(s)
	if err != nil {
		return err
	}
	*mu = *decoded
	return nil
}
