// Package matching defines the matching function µ of Definition 1 and the
// coalition preference relations of eqs. (5)–(6), the vocabulary shared by
// the matching engine (internal/core), the optimal baseline
// (internal/optimal) and the stability checkers (internal/stability).
//
// A spectrum coalition is a seller together with the buyers matched to her.
// Peer effects enter through interference: a buyer in a coalition obtains her
// full channel utility b_{i,j} if none of her interfering neighbors share the
// coalition, and zero utility otherwise (§III-A).
//
// Coalitions are stored as one bitset over buyers per seller, so membership
// tests are bit probes, iteration is word-parallel and always ascending, and
// interference screening against an adjacency row from package graph is a
// single AND-any sweep.
package matching

import (
	"fmt"

	"specmatch/internal/graph"
	"specmatch/internal/market"
)

// Matching is the function µ: buyers map to at most one seller, sellers to a
// set of buyers. The zero value is not usable; construct with New.
type Matching struct {
	sellerOf []int        // per buyer: seller index or market.Unmatched
	members  []graph.Bits // per seller: matched buyer set, one bit per buyer
	counts   []int        // per seller: |µ(i)|
}

// New returns an empty matching for a market with m sellers and n buyers.
func New(m, n int) *Matching {
	sellerOf := make([]int, n)
	for j := range sellerOf {
		sellerOf[j] = market.Unmatched
	}
	members := make([]graph.Bits, m)
	words := graph.WordsFor(n)
	backing := make(graph.Bits, m*words)
	for i := range members {
		members[i] = backing[i*words : (i+1)*words]
	}
	return &Matching{sellerOf: sellerOf, members: members, counts: make([]int, m)}
}

// M returns the number of sellers.
func (mu *Matching) M() int { return len(mu.members) }

// N returns the number of buyers.
func (mu *Matching) N() int { return len(mu.sellerOf) }

// SellerOf returns the seller buyer j is matched to, or market.Unmatched.
func (mu *Matching) SellerOf(j int) int { return mu.sellerOf[j] }

// IsMatched reports whether buyer j holds a channel.
func (mu *Matching) IsMatched(j int) bool { return mu.sellerOf[j] != market.Unmatched }

// Members returns µ(i) as a bitset over buyers. The returned slice aliases
// the matching's storage — callers must treat it as read-only, and it is
// invalidated in content (not shape) by Assign/Unassign. It is the kernel
// input for word-parallel screening: buyer j interferes with µ(i) on channel
// i iff AndAny(g.Row(j), mu.Members(i)).
func (mu *Matching) Members(i int) graph.Bits { return mu.members[i] }

// Coalition returns µ(i), the buyers matched to seller i, sorted ascending.
func (mu *Matching) Coalition(i int) []int {
	out := make([]int, 0, mu.counts[i])
	mu.members[i].ForEach(func(j int) bool {
		out = append(out, j)
		return true
	})
	return out
}

// AppendMembers appends the members of µ(i) to buf in ascending order and
// returns it — the allocation-free Coalition.
func (mu *Matching) AppendMembers(i int, buf []int) []int {
	mu.members[i].ForEach(func(j int) bool {
		buf = append(buf, j)
		return true
	})
	return buf
}

// CoalitionSize returns |µ(i)| without allocating.
func (mu *Matching) CoalitionSize(i int) int { return mu.counts[i] }

// Contains reports whether buyer j ∈ µ(i).
func (mu *Matching) Contains(i, j int) bool {
	return mu.members[i].Get(j)
}

// EachMember calls fn for every buyer in µ(i) in ascending order, stopping
// early if fn returns false. It performs no allocation.
func (mu *Matching) EachMember(i int, fn func(j int) bool) {
	mu.members[i].ForEach(fn)
}

// Assign matches buyer j to seller i, detaching j from any previous seller.
func (mu *Matching) Assign(i, j int) error {
	if i < 0 || i >= mu.M() {
		return fmt.Errorf("matching: seller %d out of range [0,%d)", i, mu.M())
	}
	if j < 0 || j >= mu.N() {
		return fmt.Errorf("matching: buyer %d out of range [0,%d)", j, mu.N())
	}
	mu.Unassign(j)
	mu.sellerOf[j] = i
	mu.members[i].Set(j)
	mu.counts[i]++
	return nil
}

// Unassign detaches buyer j from her seller, if any.
func (mu *Matching) Unassign(j int) {
	if prev := mu.sellerOf[j]; prev != market.Unmatched {
		mu.members[prev].Clear(j)
		mu.counts[prev]--
		mu.sellerOf[j] = market.Unmatched
	}
}

// Clone returns a deep copy of the matching.
func (mu *Matching) Clone() *Matching {
	c := New(mu.M(), mu.N())
	copy(c.sellerOf, mu.sellerOf)
	for i, set := range mu.members {
		c.members[i].Copy(set)
	}
	copy(c.counts, mu.counts)
	return c
}

// Equal reports whether two matchings assign every buyer identically.
func (mu *Matching) Equal(other *Matching) bool {
	if mu.N() != other.N() || mu.M() != other.M() {
		return false
	}
	for j, s := range mu.sellerOf {
		if other.sellerOf[j] != s {
			return false
		}
	}
	return true
}

// MatchedCount returns the number of matched buyers.
func (mu *Matching) MatchedCount() int {
	count := 0
	for _, c := range mu.counts {
		count += c
	}
	return count
}

// Validate checks the bidirectional consistency invariant of Definition 1:
// µ(j) = {i} iff j ∈ µ(i).
func (mu *Matching) Validate() error {
	for j, i := range mu.sellerOf {
		if i == market.Unmatched {
			continue
		}
		if i < 0 || i >= mu.M() {
			return fmt.Errorf("matching: buyer %d matched to out-of-range seller %d", j, i)
		}
		if !mu.Contains(i, j) {
			return fmt.Errorf("matching: buyer %d claims seller %d but is not in her coalition", j, i)
		}
	}
	for i := range mu.members {
		count := 0
		var bad error
		mu.members[i].ForEach(func(j int) bool {
			count++
			if j >= mu.N() || mu.sellerOf[j] != i {
				bad = fmt.Errorf("matching: seller %d lists buyer %d whose seller is %d", i, j, mu.sellerOf[j])
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
		if count != mu.counts[i] {
			return fmt.Errorf("matching: seller %d count %d, bitset has %d members", i, mu.counts[i], count)
		}
	}
	return nil
}

// String renders the matching compactly, e.g. "µ(0)={1,3} µ(1)={}".
func (mu *Matching) String() string {
	out := ""
	for i := 0; i < mu.M(); i++ {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("µ(%d)=%v", i, mu.Coalition(i))
	}
	return out
}
