// Package matching defines the matching function µ of Definition 1 and the
// coalition preference relations of eqs. (5)–(6), the vocabulary shared by
// the matching engine (internal/core), the optimal baseline
// (internal/optimal) and the stability checkers (internal/stability).
//
// A spectrum coalition is a seller together with the buyers matched to her.
// Peer effects enter through interference: a buyer in a coalition obtains her
// full channel utility b_{i,j} if none of her interfering neighbors share the
// coalition, and zero utility otherwise (§III-A).
package matching

import (
	"fmt"
	"sort"

	"specmatch/internal/market"
)

// Matching is the function µ: buyers map to at most one seller, sellers to a
// set of buyers. The zero value is not usable; construct with New.
type Matching struct {
	sellerOf []int              // per buyer: seller index or market.Unmatched
	buyersOf []map[int]struct{} // per seller: matched buyer set
}

// New returns an empty matching for a market with m sellers and n buyers.
func New(m, n int) *Matching {
	sellerOf := make([]int, n)
	for j := range sellerOf {
		sellerOf[j] = market.Unmatched
	}
	buyersOf := make([]map[int]struct{}, m)
	for i := range buyersOf {
		buyersOf[i] = make(map[int]struct{})
	}
	return &Matching{sellerOf: sellerOf, buyersOf: buyersOf}
}

// M returns the number of sellers.
func (mu *Matching) M() int { return len(mu.buyersOf) }

// N returns the number of buyers.
func (mu *Matching) N() int { return len(mu.sellerOf) }

// SellerOf returns the seller buyer j is matched to, or market.Unmatched.
func (mu *Matching) SellerOf(j int) int { return mu.sellerOf[j] }

// IsMatched reports whether buyer j holds a channel.
func (mu *Matching) IsMatched(j int) bool { return mu.sellerOf[j] != market.Unmatched }

// Coalition returns µ(i), the buyers matched to seller i, sorted ascending.
func (mu *Matching) Coalition(i int) []int {
	out := make([]int, 0, len(mu.buyersOf[i]))
	for j := range mu.buyersOf[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// CoalitionSize returns |µ(i)| without allocating.
func (mu *Matching) CoalitionSize(i int) int { return len(mu.buyersOf[i]) }

// Contains reports whether buyer j ∈ µ(i).
func (mu *Matching) Contains(i, j int) bool {
	_, ok := mu.buyersOf[i][j]
	return ok
}

// EachMember calls fn for every buyer in µ(i) in unspecified order, stopping
// early if fn returns false. It performs no allocation.
func (mu *Matching) EachMember(i int, fn func(j int) bool) {
	for j := range mu.buyersOf[i] {
		if !fn(j) {
			return
		}
	}
}

// Assign matches buyer j to seller i, detaching j from any previous seller.
func (mu *Matching) Assign(i, j int) error {
	if i < 0 || i >= mu.M() {
		return fmt.Errorf("matching: seller %d out of range [0,%d)", i, mu.M())
	}
	if j < 0 || j >= mu.N() {
		return fmt.Errorf("matching: buyer %d out of range [0,%d)", j, mu.N())
	}
	mu.Unassign(j)
	mu.sellerOf[j] = i
	mu.buyersOf[i][j] = struct{}{}
	return nil
}

// Unassign detaches buyer j from her seller, if any.
func (mu *Matching) Unassign(j int) {
	if prev := mu.sellerOf[j]; prev != market.Unmatched {
		delete(mu.buyersOf[prev], j)
		mu.sellerOf[j] = market.Unmatched
	}
}

// Clone returns a deep copy of the matching.
func (mu *Matching) Clone() *Matching {
	c := New(mu.M(), mu.N())
	copy(c.sellerOf, mu.sellerOf)
	for i, set := range mu.buyersOf {
		for j := range set {
			c.buyersOf[i][j] = struct{}{}
		}
	}
	return c
}

// Equal reports whether two matchings assign every buyer identically.
func (mu *Matching) Equal(other *Matching) bool {
	if mu.N() != other.N() || mu.M() != other.M() {
		return false
	}
	for j, s := range mu.sellerOf {
		if other.sellerOf[j] != s {
			return false
		}
	}
	return true
}

// MatchedCount returns the number of matched buyers.
func (mu *Matching) MatchedCount() int {
	count := 0
	for _, s := range mu.sellerOf {
		if s != market.Unmatched {
			count++
		}
	}
	return count
}

// Validate checks the bidirectional consistency invariant of Definition 1:
// µ(j) = {i} iff j ∈ µ(i).
func (mu *Matching) Validate() error {
	for j, i := range mu.sellerOf {
		if i == market.Unmatched {
			continue
		}
		if i < 0 || i >= mu.M() {
			return fmt.Errorf("matching: buyer %d matched to out-of-range seller %d", j, i)
		}
		if !mu.Contains(i, j) {
			return fmt.Errorf("matching: buyer %d claims seller %d but is not in her coalition", j, i)
		}
	}
	for i, set := range mu.buyersOf {
		for j := range set {
			if mu.sellerOf[j] != i {
				return fmt.Errorf("matching: seller %d lists buyer %d whose seller is %d", i, j, mu.sellerOf[j])
			}
		}
	}
	return nil
}

// String renders the matching compactly, e.g. "µ(0)={1,3} µ(1)={}".
func (mu *Matching) String() string {
	out := ""
	for i := 0; i < mu.M(); i++ {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("µ(%d)=%v", i, mu.Coalition(i))
	}
	return out
}
