package matching

import (
	"encoding/json"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	mu := New(3, 6)
	_ = mu.Assign(0, 1)
	_ = mu.Assign(0, 4)
	_ = mu.Assign(2, 0)
	data, err := json.Marshal(mu)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Matching
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if !mu.Equal(&decoded) {
		t.Errorf("round trip changed the matching: %v vs %v", mu, &decoded)
	}
}

func TestFromSpecErrors(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
	}{
		{"negative dims", Spec{M: -1, N: 2}},
		{"too many coalitions", Spec{M: 1, N: 2, Coalitions: [][]int{{0}, {1}}}},
		{"duplicate buyer", Spec{M: 2, N: 3, Coalitions: [][]int{{0}, {0}}}},
		{"out of range buyer", Spec{M: 1, N: 2, Coalitions: [][]int{{7}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromSpec(tt.spec); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestUnmarshalBadJSON(t *testing.T) {
	var mu Matching
	if err := json.Unmarshal([]byte("{"), &mu); err == nil {
		t.Error("bad JSON should fail")
	}
}
