package matching

import (
	"specmatch/internal/graph"
	"specmatch/internal/market"
)

// BuyerUtility returns buyer j's utility in the coalition of seller i with
// the given members (which may or may not already include j): b_{i,j} if no
// member interferes with j on channel i, zero otherwise (§III-A). An
// unmatched buyer's utility is zero; pass i = market.Unmatched.
func BuyerUtility(m *market.Market, i, j int, members []int) float64 {
	if i == market.Unmatched {
		return 0
	}
	if m.InterfererIn(i, j, members) {
		return 0
	}
	return m.Price(i, j)
}

// BuyerUtilityIn returns buyer j's utility under matching mu: her price on
// her matched channel if her coalition is interference-free around her, else
// zero.
func BuyerUtilityIn(m *market.Market, mu *Matching, j int) float64 {
	i := mu.SellerOf(j)
	if i == market.Unmatched {
		return 0
	}
	// One AND-any sweep of j's interference row against the coalition
	// bitset. j's own bit is never in her row (no self-loops), so no
	// explicit j2 != j exclusion is needed.
	if graph.AndAny(m.Graph(i).Row(j), mu.Members(i)) {
		return 0
	}
	return m.Price(i, j)
}

// BuyerPrefers implements the strict preference of eq. (5): buyer j prefers
// the coalition of seller i1 with members1 over that of seller i2 with
// members2. Either seller may be market.Unmatched to denote the buyer's
// singleton coalition. Per the paper, the comparison reduces to comparing
// peer-effect utilities, with all zero-utility coalitions (interfered,
// unmatched) mutually indifferent.
func BuyerPrefers(m *market.Market, j int, i1 int, members1 []int, i2 int, members2 []int) bool {
	return BuyerUtility(m, i1, j, members1) > BuyerUtility(m, i2, j, members2)
}

// SellerValue returns seller i's utility for a coalition: the total offered
// price when the members are pairwise non-interfering on channel i, and -1
// otherwise. Interfering coalitions are beneath every interference-free one
// (including the empty coalition, value 0) and mutually indifferent, exactly
// the two-tier order of eq. (6).
func SellerValue(m *market.Market, i int, members []int) float64 {
	if !m.Graph(i).IsIndependent(members) {
		return -1
	}
	total := 0.0
	for _, j := range members {
		total += m.Price(i, j)
	}
	return total
}

// SellerPrefers implements the strict preference of eq. (6): seller i prefers
// coalition members1 over members2.
func SellerPrefers(m *market.Market, i int, members1, members2 []int) bool {
	return SellerValue(m, i, members1) > SellerValue(m, i, members2)
}

// Welfare returns the social welfare of the matching: the sum of matched
// buyers' peer-effect utilities. For the interference-free matchings the
// algorithms produce this equals the paper's objective Σ b_{i,j} x_{i,j}.
func Welfare(m *market.Market, mu *Matching) float64 {
	total := 0.0
	for j := 0; j < mu.N(); j++ {
		total += BuyerUtilityIn(m, mu, j)
	}
	return total
}

// SellerRevenue returns seller i's total offered price under mu, counting
// only interference-free members at full price (interfered members pay and
// enjoy nothing).
func SellerRevenue(m *market.Market, mu *Matching, i int) float64 {
	total := 0.0
	mu.EachMember(i, func(j int) bool {
		total += BuyerUtilityIn(m, mu, j)
		return true
	})
	return total
}
