package matching

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/xrand"
)

func TestNewEmpty(t *testing.T) {
	mu := New(2, 3)
	if mu.M() != 2 || mu.N() != 3 {
		t.Errorf("dims = (%d,%d), want (2,3)", mu.M(), mu.N())
	}
	for j := 0; j < 3; j++ {
		if mu.IsMatched(j) {
			t.Errorf("buyer %d matched in empty matching", j)
		}
		if mu.SellerOf(j) != market.Unmatched {
			t.Errorf("SellerOf(%d) = %d, want Unmatched", j, mu.SellerOf(j))
		}
	}
	if mu.MatchedCount() != 0 {
		t.Error("MatchedCount of empty should be 0")
	}
}

func TestAssignUnassign(t *testing.T) {
	mu := New(2, 3)
	if err := mu.Assign(0, 1); err != nil {
		t.Fatal(err)
	}
	if mu.SellerOf(1) != 0 || !mu.Contains(0, 1) {
		t.Error("Assign did not link both directions")
	}
	// Re-assign moves the buyer.
	if err := mu.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	if mu.Contains(0, 1) {
		t.Error("re-Assign left buyer in old coalition")
	}
	if mu.SellerOf(1) != 1 {
		t.Error("re-Assign did not move buyer")
	}
	mu.Unassign(1)
	if mu.IsMatched(1) || mu.Contains(1, 1) {
		t.Error("Unassign incomplete")
	}
	mu.Unassign(1) // idempotent
	if err := mu.Validate(); err != nil {
		t.Errorf("Validate after ops: %v", err)
	}
}

func TestAssignErrors(t *testing.T) {
	mu := New(2, 2)
	if err := mu.Assign(5, 0); err == nil {
		t.Error("out-of-range seller should fail")
	}
	if err := mu.Assign(0, -1); err == nil {
		t.Error("out-of-range buyer should fail")
	}
}

func TestCoalitionSorted(t *testing.T) {
	mu := New(1, 5)
	for _, j := range []int{4, 0, 2} {
		if err := mu.Assign(0, j); err != nil {
			t.Fatal(err)
		}
	}
	if got := mu.Coalition(0); !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Errorf("Coalition = %v, want [0 2 4]", got)
	}
	if mu.CoalitionSize(0) != 3 {
		t.Error("CoalitionSize wrong")
	}
}

func TestCloneAndEqual(t *testing.T) {
	mu := New(2, 4)
	_ = mu.Assign(0, 1)
	_ = mu.Assign(1, 2)
	c := mu.Clone()
	if !mu.Equal(c) {
		t.Error("clone should equal original")
	}
	_ = c.Assign(0, 3)
	if mu.Equal(c) {
		t.Error("mutated clone should differ")
	}
	if mu.Contains(0, 3) {
		t.Error("mutating clone affected original")
	}
	if mu.Equal(New(3, 4)) || mu.Equal(New(2, 5)) {
		t.Error("dimension mismatch should be unequal")
	}
}

func TestString(t *testing.T) {
	mu := New(2, 3)
	_ = mu.Assign(1, 0)
	s := mu.String()
	if !strings.Contains(s, "µ(1)=[0]") {
		t.Errorf("String = %q", s)
	}
}

func toyMarket(t *testing.T) *market.Market {
	t.Helper()
	prices := [][]float64{
		{5, 3, 2},
		{1, 4, 6},
	}
	graphs := []*graph.Graph{
		graph.MustFromEdges(3, [][2]int{{0, 1}}),
		graph.Empty(3),
	}
	m, err := market.New(prices, graphs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuyerUtility(t *testing.T) {
	m := toyMarket(t)
	if got := BuyerUtility(m, 0, 0, []int{2}); got != 5 {
		t.Errorf("utility with non-interferer = %v, want 5", got)
	}
	if got := BuyerUtility(m, 0, 0, []int{1, 2}); got != 0 {
		t.Errorf("utility with interferer = %v, want 0", got)
	}
	if got := BuyerUtility(m, 0, 0, []int{0, 2}); got != 5 {
		t.Errorf("self in members must be ignored; got %v", got)
	}
	if got := BuyerUtility(m, market.Unmatched, 0, nil); got != 0 {
		t.Errorf("unmatched utility = %v, want 0", got)
	}
}

func TestBuyerUtilityIn(t *testing.T) {
	m := toyMarket(t)
	mu := New(2, 3)
	_ = mu.Assign(0, 0)
	_ = mu.Assign(0, 2)
	if got := BuyerUtilityIn(m, mu, 0); got != 5 {
		t.Errorf("BuyerUtilityIn = %v, want 5", got)
	}
	if got := BuyerUtilityIn(m, mu, 1); got != 0 {
		t.Errorf("unmatched buyer utility = %v, want 0", got)
	}
	// Put the interfering pair together: both drop to zero.
	_ = mu.Assign(0, 1)
	if BuyerUtilityIn(m, mu, 0) != 0 || BuyerUtilityIn(m, mu, 1) != 0 {
		t.Error("interfering coalition members must have zero utility")
	}
}

func TestBuyerPrefers(t *testing.T) {
	m := toyMarket(t)
	// Buyer 0: channel 0 pays 5, channel 1 pays 1.
	if !BuyerPrefers(m, 0, 0, []int{2}, 1, []int{2}) {
		t.Error("buyer 0 should prefer channel 0")
	}
	// An interfered coalition loses to any interference-free one (case 2 of
	// eq. (5)).
	if !BuyerPrefers(m, 0, 1, nil, 0, []int{1}) {
		t.Error("buyer 0 should prefer clean channel 1 over interfered channel 0")
	}
	// Indifference between two zero-utility coalitions.
	if BuyerPrefers(m, 0, 0, []int{1}, market.Unmatched, nil) {
		t.Error("interfered vs unmatched should be indifferent, not preferred")
	}
}

func TestSellerValueAndPrefers(t *testing.T) {
	m := toyMarket(t)
	if got := SellerValue(m, 0, []int{0, 2}); got != 7 {
		t.Errorf("SellerValue = %v, want 7", got)
	}
	if got := SellerValue(m, 0, []int{0, 1}); got != -1 {
		t.Errorf("interfering coalition value = %v, want -1", got)
	}
	if got := SellerValue(m, 0, nil); got != 0 {
		t.Errorf("empty coalition value = %v, want 0", got)
	}
	if !SellerPrefers(m, 0, []int{0}, []int{1}) {
		t.Error("seller should prefer the higher-price coalition")
	}
	if !SellerPrefers(m, 0, nil, []int{0, 1}) {
		t.Error("seller should prefer empty over interfering (eq. (6) case 2)")
	}
	if SellerPrefers(m, 0, []int{0, 1}, []int{1, 0}) {
		t.Error("two interfering coalitions are indifferent")
	}
}

func TestWelfare(t *testing.T) {
	m := toyMarket(t)
	mu := New(2, 3)
	_ = mu.Assign(0, 0) // 5
	_ = mu.Assign(1, 1) // 4
	_ = mu.Assign(1, 2) // 6
	if got := Welfare(m, mu); got != 15 {
		t.Errorf("Welfare = %v, want 15", got)
	}
	if got := SellerRevenue(m, mu, 1); got != 10 {
		t.Errorf("SellerRevenue = %v, want 10", got)
	}
}

// TestWelfareEqualsSumProperty: on interference-free matchings, Welfare
// equals the direct price sum.
func TestWelfareEqualsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 10, Seed: seed})
		if err != nil {
			return false
		}
		mu := New(m.M(), m.N())
		// Greedy random interference-free assignment.
		var direct float64
		for j := 0; j < m.N(); j++ {
			i := r.Intn(m.M())
			if !m.Graph(i).ConflictsWith(j, mu.Coalition(i)) {
				if err := mu.Assign(i, j); err != nil {
					return false
				}
				direct += m.Price(i, j)
			}
		}
		return Welfare(m, mu) == direct && mu.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
