package matching

import (
	"encoding/json"
	"testing"
)

// FuzzSpecDecode: arbitrary bytes must either fail to decode or produce a
// matching whose bidirectional invariant holds.
func FuzzSpecDecode(f *testing.F) {
	mu := New(2, 4)
	_ = mu.Assign(0, 1)
	_ = mu.Assign(1, 3)
	good, err := json.Marshal(mu)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"m":1,"n":2,"coalitions":[[0,0]]}`))
	f.Add([]byte(`{"m":2,"n":2,"coalitions":[[0],[0]]}`))
	f.Add([]byte(`{"m":-1,"n":5}`))
	f.Add([]byte(`{"m":1,"n":1,"coalitions":[[9]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded Matching
		if err := json.Unmarshal(data, &decoded); err != nil {
			return
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("decoder accepted an inconsistent matching: %v", err)
		}
	})
}
