package bundle

import (
	"math"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/optimal"
)

func multiDemandMarket(t *testing.T, seed int64) *market.Market {
	t.Helper()
	m, err := market.Generate(market.Config{
		Sellers:      4,
		Buyers:       4,
		BuyerDemands: []int{2, 1, 3, 2},
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGammaZeroRecoversAdditive: with γ = 0 the bundle welfare of any
// matching equals the base welfare, and the bundle optimum equals the
// additive optimum.
func TestGammaZeroRecoversAdditive(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		m := multiDemandMarket(t, seed)
		res, err := core.Run(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := Welfare(m, res.Matching, Valuation{}); math.Abs(got-res.Welfare) > 1e-9 {
			t.Errorf("seed %d: bundle welfare %v != additive %v at γ=0", seed, got, res.Welfare)
		}
		bundleOpt, err := Optimal(m, Valuation{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, addOpt, err := optimal.Solve(m, optimal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bundleOpt-addOpt) > 1e-9 {
			t.Errorf("seed %d: bundle optimum %v != additive optimum %v at γ=0", seed, bundleOpt, addOpt)
		}
	}
}

// TestWelfareSynergyAccounting: a hand-built matching credits γ·C(k,2) per
// owner.
func TestWelfareSynergyAccounting(t *testing.T) {
	m := multiDemandMarket(t, 3)
	mu := matching.New(m.M(), m.N())
	// Give physical buyer 2 (virtual dummies 3,4,5) two distinct channels.
	var placed []int
	for j := 3; j <= 5 && len(placed) < 2; j++ {
		for i := 0; i < m.M(); i++ {
			if m.Graph(i).ConflictsWith(j, mu.Coalition(i)) {
				continue
			}
			if err := mu.Assign(i, j); err != nil {
				t.Fatal(err)
			}
			placed = append(placed, j)
			break
		}
	}
	if len(placed) != 2 {
		t.Fatal("could not place two dummies")
	}
	base := Welfare(m, mu, Valuation{})
	withSynergy := Welfare(m, mu, Valuation{Gamma: 0.5})
	if math.Abs(withSynergy-(base+0.5)) > 1e-9 {
		t.Errorf("synergy for 2 channels should add γ·1 = 0.5; got %v → %v", base, withSynergy)
	}
	withPenalty := Welfare(m, mu, Valuation{Gamma: -0.2})
	if math.Abs(withPenalty-(base-0.2)) > 1e-9 {
		t.Errorf("substitute penalty wrong: %v → %v", base, withPenalty)
	}
}

// TestOptimalDominatesMatching: the bundle-aware optimum is an upper bound
// on the additive matching's bundle welfare for any γ.
func TestOptimalDominatesMatching(t *testing.T) {
	for _, gamma := range []float64{-0.2, -0.05, 0, 0.1, 0.3} {
		for seed := int64(0); seed < 8; seed++ {
			m := multiDemandMarket(t, seed)
			res, err := core.Run(m, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := Welfare(m, res.Matching, Valuation{Gamma: gamma})
			opt, err := Optimal(m, Valuation{Gamma: gamma}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got > opt+1e-9 {
				t.Errorf("γ=%v seed %d: matching bundle welfare %v exceeds optimum %v", gamma, seed, got, opt)
			}
		}
	}
}

// TestComplementsWidenTheGap: as complementarity grows, the additive
// matching leaves (weakly) more bundle welfare on the table relative to the
// bundle-aware optimum, averaged over seeds.
func TestComplementsWidenTheGap(t *testing.T) {
	gap := func(gamma float64) float64 {
		var total float64
		const runs = 12
		for seed := int64(0); seed < runs; seed++ {
			m := multiDemandMarket(t, seed)
			res, err := core.Run(m, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := Welfare(m, res.Matching, Valuation{Gamma: gamma})
			opt, err := Optimal(m, Valuation{Gamma: gamma}, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += opt - got
		}
		return total / runs
	}
	g0, g3 := gap(0), gap(0.3)
	if g3 < g0-1e-9 {
		t.Errorf("gap at γ=0.3 (%v) should be at least the additive gap (%v)", g3, g0)
	}
}

// TestOptimalBudget: a tiny budget fails loudly.
func TestOptimalBudget(t *testing.T) {
	m := multiDemandMarket(t, 1)
	if _, err := Optimal(m, Valuation{Gamma: 0.1}, 3); err == nil {
		t.Error("tiny node budget should fail")
	}
}
