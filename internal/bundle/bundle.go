// Package bundle implements the valuation extension the paper's footnote 1
// defers to future work: "We will consider that channels may be
// complementary or substitute goods (e.g., in a combinatorial auction) in
// the future."
//
// A multi-demand physical buyer holding the channel set S values it
//
//	v(S) = Σ_{i∈S} b_{i,j}  +  γ · C(|S|, 2)
//
// — the additive value of the paper's model plus a uniform pairwise synergy
// γ: positive γ models complements (e.g. channel bonding), negative γ
// models substitutes (diminishing returns). γ = 0 recovers the paper
// exactly.
//
// The matching algorithm itself stays additive (each dummy trades
// independently, as in §II-A); this package measures what that additivity
// assumption costs: it evaluates any matching under bundle valuations and
// computes the bundle-aware optimum by branch and bound, so the ablation
// harness can chart the additive matching's welfare gap as |γ| grows.
package bundle

import (
	"fmt"
	"sort"

	"specmatch/internal/market"
	"specmatch/internal/matching"
)

// Valuation is the uniform pairwise-synergy bundle model.
type Valuation struct {
	// Gamma is the per-pair synergy: v(S) gains γ for every unordered pair
	// of channels in S. Positive = complements, negative = substitutes.
	Gamma float64 `json:"gamma"`
}

// pairs returns C(k, 2).
func pairs(k int) float64 { return float64(k*(k-1)) / 2 }

// Welfare evaluates a matching under bundle valuations: per physical buyer,
// the additive sum of her dummies' channel utilities (zero for interfered
// members, as in the base model) plus γ·C(k,2) over the k channels her
// dummies actually hold.
func Welfare(m *market.Market, mu *matching.Matching, v Valuation) float64 {
	additive := 0.0
	held := make(map[int]int) // physical buyer → channels held
	for j := 0; j < mu.N(); j++ {
		u := matching.BuyerUtilityIn(m, mu, j)
		additive += u
		if mu.IsMatched(j) {
			held[m.BuyerOwner(j)]++
		}
	}
	synergy := 0.0
	for _, k := range held {
		synergy += v.Gamma * pairs(k)
	}
	return additive + synergy
}

// Optimal computes the bundle-aware welfare optimum by branch and bound: it
// assigns each virtual buyer a compatible channel or none, crediting
// marginal synergy as an owner's holdings grow. Exponential in the worst
// case; intended for the small instances the ablation harness uses. The
// budget guards against misuse on large markets.
func Optimal(m *market.Market, v Valuation, nodeBudget int64) (float64, error) {
	if nodeBudget == 0 {
		nodeBudget = 20_000_000
	}
	numSellers, numBuyers := m.M(), m.N()

	// Order virtual buyers by descending best price (as the additive
	// solver does); synergy is credited incrementally per owner.
	order := make([]int, numBuyers)
	bestPrice := make([]float64, numBuyers)
	for j := 0; j < numBuyers; j++ {
		order[j] = j
		for i := 0; i < numSellers; i++ {
			if p := m.Price(i, j); p > bestPrice[j] {
				bestPrice[j] = p
			}
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if bestPrice[order[a]] != bestPrice[order[b]] {
			return bestPrice[order[a]] > bestPrice[order[b]]
		}
		return order[a] < order[b]
	})

	// Admissible bound: remaining additive best prices plus, for positive
	// synergy, the largest synergy any remaining assignment could add.
	// Each newly assigned virtual buyer of an owner already holding k
	// channels adds γ·k ≤ γ·(demand−1); bound loosely with γ·maxDemand per
	// remaining buyer.
	maxDemand := 0
	demand := make(map[int]int)
	for j := 0; j < numBuyers; j++ {
		demand[m.BuyerOwner(j)]++
	}
	for _, d := range demand {
		if d > maxDemand {
			maxDemand = d
		}
	}
	perBuyerSynergyCap := 0.0
	if v.Gamma > 0 {
		perBuyerSynergyCap = v.Gamma * float64(maxDemand-1)
	}
	suffixBound := make([]float64, numBuyers+1)
	for k := numBuyers - 1; k >= 0; k-- {
		suffixBound[k] = suffixBound[k+1] + bestPrice[order[k]] + perBuyerSynergyCap
	}

	assigned := make([][]int, numSellers)
	heldBy := make(map[int]int, len(demand))
	var (
		best    float64
		current float64
		nodes   int64
		over    bool
		search  func(k int)
	)
	search = func(k int) {
		if over {
			return
		}
		nodes++
		if nodes > nodeBudget {
			over = true
			return
		}
		if current > best {
			best = current
		}
		if k == numBuyers || current+suffixBound[k] <= best {
			return
		}
		j := order[k]
		owner := m.BuyerOwner(j)
		for _, i := range m.BuyerPrefOrder(j) {
			if m.Graph(i).ConflictsWith(j, assigned[i]) {
				continue
			}
			delta := m.Price(i, j) + v.Gamma*float64(heldBy[owner])
			assigned[i] = append(assigned[i], j)
			heldBy[owner]++
			current += delta
			search(k + 1)
			current -= delta
			heldBy[owner]--
			assigned[i] = assigned[i][:len(assigned[i])-1]
		}
		search(k + 1)
	}
	search(0)
	if over {
		return 0, fmt.Errorf("bundle: exceeded node budget %d; market too large for exact search", nodeBudget)
	}
	return best, nil
}
