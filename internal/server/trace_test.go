package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"specmatch/internal/online"
	"specmatch/internal/trace"
)

// TestRequestTraceTree drives one event request through the full stack and
// asserts the acceptance-criteria chain: the http span (parented on the
// client's traceparent, marked remote=1) -> server.shard_op -> online.step
// -> core.dirty (the incremental repair pass) -> core.round -> core.solve,
// with zero orphan spans, and the trace id echoed back as X-Request-Id.
func TestRequestTraceTree(t *testing.T) {
	fl := trace.NewFlight(1 << 14)
	_, ts := newTestServer(t, Config{Shards: 1, Flight: fl})
	m := testMarket(t, 3, 12, 2)

	var created CreateResponse
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}

	client := trace.SpanContext{Trace: trace.NewTraceID(), Span: trace.NewSpanID()}
	body, err := json.Marshal(online.Event{Arrive: []int{0, 1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+created.ID+"/events", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", trace.FormatTraceparent(client))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != client.Trace.String() {
		t.Fatalf("X-Request-Id = %q, want the client's trace id %q", got, client.Trace)
	}

	// Reassemble the request's trace from the flight recorder.
	var spans []trace.Span
	byID := make(map[trace.SpanID]trace.Span)
	for _, s := range fl.Snapshot() {
		if s.Trace == client.Trace {
			spans = append(spans, s)
			byID[s.ID] = s
		}
	}
	parentName := func(s trace.Span) string { return byID[s.Parent].Name }
	seen := make(map[string]int)
	for _, s := range spans {
		seen[s.Name]++
		wantParent := map[string]string{
			"http.events":     "",            // parent is the client's remote span
			"server.shard_op": "http.events", // via trace.FromContext on the shard queue
			"online.step":     "server.shard_op",
			"core.dirty":      "online.step",
			"core.round":      "core.dirty",
			"core.solve":      "core.round",
		}[s.Name]
		if wantParent == "" {
			continue
		}
		if got := parentName(s); got != wantParent {
			t.Errorf("%s parent = %q, want %q", s.Name, got, wantParent)
		}
	}
	for _, name := range []string{"http.events", "server.shard_op", "online.step", "core.dirty", "core.round", "core.solve"} {
		if seen[name] == 0 {
			t.Errorf("trace has no %s span (saw %v)", name, seen)
		}
	}
	// The http span's parent is the client's span — absent from the dump by
	// design, which is exactly what remote=1 marks.
	for _, s := range spans {
		if s.Name != "http.events" {
			continue
		}
		if s.Parent != client.Span {
			t.Errorf("http.events parent = %s, want the client span %s", s.Parent, client.Span)
		}
		if !hasToken(s.Attrs, "remote=1") {
			t.Errorf("http.events attrs %q missing remote=1", s.Attrs)
		}
		if !hasToken(s.Attrs, "status=200") {
			t.Errorf("http.events attrs %q missing status=200", s.Attrs)
		}
	}
	// Zero orphans: every other span's parent must be in the dump.
	for _, s := range spans {
		if s.Name == "http.events" || s.Parent.IsZero() {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("orphan span %s (parent %s not in dump)", s.Name, s.Parent)
		}
	}
}

// TestRouteSpansWithoutTraceparent: a bare request still records a complete
// http span under a fresh trace, and still gets an X-Request-Id.
func TestRouteSpansWithoutTraceparent(t *testing.T) {
	fl := trace.NewFlight(1 << 12)
	_, ts := newTestServer(t, Config{Shards: 1, Flight: fl})
	resp := doJSON(t, "GET", ts.URL+"/v1/sessions", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: HTTP %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id on an untraced request")
	}
	found := false
	for _, s := range fl.Snapshot() {
		if s.Name == "http.list" && s.Trace.String() == id {
			found = true
			if !s.Parent.IsZero() {
				t.Errorf("headerless request must root a new trace, parent = %s", s.Parent)
			}
			if hasToken(s.Attrs, "remote=1") {
				t.Errorf("headerless request must not claim a remote parent: %q", s.Attrs)
			}
		}
	}
	if !found {
		t.Fatalf("no http.list span with trace %s", id)
	}
}

// TestOnServerErrorHook: a 5xx must fire the hook (specserved's rate-limited
// dump); a 2xx/4xx must not.
func TestOnServerErrorHook(t *testing.T) {
	fired := 0
	_, ts := newTestServer(t, Config{Shards: 1, OnServerError: func() { fired++ }})
	// 404 is a client error: no hook.
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/nope", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", resp.StatusCode)
	}
	if fired != 0 {
		t.Fatalf("hook fired on a 404")
	}
}

// TestSessionRecorderBounded: hosted sessions get the bounded recorder by
// default so a long-lived session cannot grow its event log without limit.
func TestSessionRecorderBounded(t *testing.T) {
	fl := trace.NewFlight(1 << 12)
	srv, ts := newTestServer(t, Config{Shards: 1, Flight: fl, SessionEvents: 8})
	m := testMarket(t, 3, 12, 3)
	var created CreateResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &created)
	for k := 0; k < 6; k++ {
		doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/events",
			online.Event{Arrive: []int{2 * k}}, nil)
	}
	// Inspect the session on its own shard goroutine (the sessions map has
	// no lock by design — the event loop owns it).
	st := srv.Store()
	checked := 0
	for _, sh := range st.shards {
		sh := sh
		_, err := st.do(context.Background(), sh, func(trace.SpanContext) (any, error) {
			for _, s := range sh.sessions {
				checked++
				rec := s.Recorder()
				if !rec.Bounded() {
					t.Error("hosted session recorder is not bounded")
				}
				if rec.Len() > 8 {
					t.Errorf("recorder kept %d events, bound is 8", rec.Len())
				}
			}
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if checked != 1 {
		t.Fatalf("inspected %d sessions, want 1", checked)
	}
}

// hasToken reports whether the space-separated attrs string contains tok.
func hasToken(attrs, tok string) bool {
	for i := 0; i+len(tok) <= len(attrs); i++ {
		if attrs[i:i+len(tok)] == tok &&
			(i == 0 || attrs[i-1] == ' ') &&
			(i+len(tok) == len(attrs) || attrs[i+len(tok)] == ' ') {
			return true
		}
	}
	return false
}
