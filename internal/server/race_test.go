package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/xrand"
)

// TestConcurrentClientsReconcile hammers one server from many goroutines —
// the race-detector target CI runs with `go test -race ./internal/server` —
// and then reconciles the client-side view against the server's obs
// counters: every event request acknowledged with 200 must have been
// applied by a shard loop (accepted = applied, the "zero lost events"
// contract), and the sessions must still satisfy the matching invariants
// the shards are supposed to serialize for.
func TestConcurrentClientsReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Shards: 4, QueueDepth: 64, Metrics: reg})

	const nSessions = 6
	const nClients = 12
	const perClient = 40

	type fleet struct {
		id string
		m  *market.Market
	}
	sessions := make([]fleet, nSessions)
	for k := range sessions {
		m := testMarket(t, 3, 12, int64(100+k))
		var created CreateResponse
		resp := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &created)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: HTTP %d", k, resp.StatusCode)
		}
		sessions[k] = fleet{id: created.ID, m: m}
	}

	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := xrand.NewStream(7, c)
			for i := 0; i < perClient; i++ {
				s := sessions[r.Intn(len(sessions))]
				switch r.Intn(10) {
				case 0: // read
					resp := doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.id, nil, nil)
					resp.Body.Close()
				case 1: // rebuild
					resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.id+"/rebuild", RebuildRequest{}, nil)
					resp.Body.Close()
				default: // churn
					ev := online.Event{}
					for b := 0; b < 3; b++ {
						j := r.Intn(s.m.N())
						if r.Intn(2) == 0 {
							ev.Arrive = append(ev.Arrive, j)
						} else {
							ev.Depart = append(ev.Depart, j)
						}
					}
					body, _ := json.Marshal(ev)
					resp, err := http.Post(ts.URL+"/v1/sessions/"+s.id+"/events", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						accepted.Add(1)
					case http.StatusTooManyRequests:
						rejected.Add(1)
					default:
						t.Errorf("event POST: HTTP %d", resp.StatusCode)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	applied := reg.CounterValue("server.events.applied")
	if applied != accepted.Load() {
		t.Fatalf("lost events: %d accepted with 200 but %d applied (rejected %d)",
			accepted.Load(), applied, rejected.Load())
	}
	if accepted.Load() == 0 {
		t.Fatal("no events went through; test proved nothing")
	}

	// Every session must still be interference-free and individually
	// rational: shards serialized all concurrent steps correctly.
	for _, s := range sessions {
		var got CreateResponse
		resp := doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.id, nil, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("final get: HTTP %d", resp.StatusCode)
		}
		coalitions := make(map[int][]int)
		for j, i := range got.Assignment {
			if i >= 0 {
				coalitions[i] = append(coalitions[i], j)
			}
		}
		matched := 0
		for i, members := range coalitions {
			matched += len(members)
			for a := 0; a < len(members); a++ {
				for b := a + 1; b < len(members); b++ {
					if s.m.Interferes(i, members[a], members[b]) {
						t.Errorf("session %s: buyers %d,%d interfere on channel %d",
							s.id, members[a], members[b], i)
					}
				}
				if s.m.Price(i, members[a]) <= 0 {
					t.Errorf("session %s: buyer %d matched at non-positive price", s.id, members[a])
				}
			}
		}
		if matched != got.Matched {
			t.Errorf("session %s: snapshot matched %d vs assignment %d", s.id, got.Matched, matched)
		}
		if got.Welfare < 0 {
			t.Errorf("session %s: negative welfare %v", s.id, got.Welfare)
		}
	}

	// Shard gauges and the store total must agree.
	var perShard int64
	for i := 0; i < 4; i++ {
		perShard += reg.GaugeValue(fmt.Sprintf("server.shard.%d.sessions", i))
	}
	if perShard != int64(nSessions) || srv.Store().Len() != nSessions {
		t.Errorf("session gauges: per-shard sum %d, store %d, want %d",
			perShard, srv.Store().Len(), nSessions)
	}
}
