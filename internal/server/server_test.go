package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/trace"
)

func testMarket(t *testing.T, sellers, buyers int, seed int64) *market.Market {
	t.Helper()
	m, err := market.Generate(market.Config{Sellers: sellers, Buyers: buyers, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newTestServer builds a server over an httptest listener and returns a
// tiny client for it. Drain runs via t.Cleanup after the listener stops.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
	})
	return srv, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

func TestSessionLifecycleHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Shards: 2, Metrics: reg})
	m := testMarket(t, 3, 10, 1)

	var created CreateResponse
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	if created.ID == "" || created.Buyers != m.N() || created.Channels != m.M() {
		t.Fatalf("create response %+v", created)
	}

	var stats online.StepStats
	resp = doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/events",
		online.Event{Arrive: []int{0, 1, 2, 3}}, &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if stats.Arrived != 4 || stats.Welfare <= 0 {
		t.Fatalf("step stats %+v", stats)
	}

	var got CreateResponse
	resp = doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.ID, nil, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: HTTP %d", resp.StatusCode)
	}
	if got.Active != 4 || got.Steps != 1 || got.Welfare != stats.Welfare {
		t.Fatalf("snapshot %+v vs step %+v", got, stats)
	}
	if len(got.Assignment) != m.N() {
		t.Fatalf("assignment length %d, want %d", len(got.Assignment), m.N())
	}

	var rebuilt RebuildResponse
	resp = doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/rebuild",
		RebuildRequest{}, &rebuilt)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild: HTTP %d", resp.StatusCode)
	}
	if rebuilt.Welfare < stats.Welfare-1e-9 {
		t.Fatalf("rebuild welfare %v dropped below incremental %v", rebuilt.Welfare, stats.Welfare)
	}

	var list ListResponse
	resp = doJSON(t, "GET", ts.URL+"/v1/sessions", nil, &list)
	if resp.StatusCode != http.StatusOK || list.Count != 1 || list.Sessions[0] != created.ID {
		t.Fatalf("list: HTTP %d %+v", resp.StatusCode, list)
	}

	resp = doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+created.ID, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	resp = doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.ID, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: HTTP %d, want 404", resp.StatusCode)
	}
	if v := reg.GaugeValue("server.sessions"); v != 0 {
		t.Fatalf("server.sessions gauge %d after delete, want 0", v)
	}
	if reg.CounterValue("server.events.applied") != 1 {
		t.Fatalf("applied counter %d, want 1", reg.CounterValue("server.events.applied"))
	}
}

func TestBadRequestsAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	m := testMarket(t, 3, 8, 2)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed create: HTTP %d, want 400", resp.StatusCode)
	}

	// Structurally invalid spec.
	resp = doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: market.Spec{
		Prices: [][]float64{{1, 2}},
		Edges:  nil, // wrong number of edge lists
	}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: HTTP %d, want 400", resp.StatusCode)
	}

	var created CreateResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &created)

	// Out-of-range event → 400, and the session must be untouched.
	resp = doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/events",
		online.Event{Arrive: []int{0, 99}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad event: HTTP %d, want 400", resp.StatusCode)
	}
	var got CreateResponse
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.ID, nil, &got)
	if got.Active != 0 || got.Steps != 0 {
		t.Fatalf("rejected event mutated the session: %+v", got)
	}

	// Unknown id on every session route.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sessions/nope"},
		{"DELETE", "/v1/sessions/nope"},
		{"POST", "/v1/sessions/nope/events"},
		{"POST", "/v1/sessions/nope/rebuild"},
	} {
		body := any(nil)
		if probe.method == "POST" {
			body = map[string]any{}
		}
		resp := doJSON(t, probe.method, ts.URL+probe.path, body, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: HTTP %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// blockShard parks the single shard of st on an op that waits for the
// returned release func, so tests can fill the queue deterministically.
func blockShard(t *testing.T, st *Store) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = st.do(nil, st.shards[0], func(trace.SpanContext) (any, error) {
			close(started)
			<-gate
			return nil, nil
		})
	}()
	<-started
	return func() { close(gate) }
}

func TestAdmissionControl(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 1, Metrics: reg})
	st := srv.Store()
	m := testMarket(t, 3, 8, 3)

	var created CreateResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &created)

	release := blockShard(t, st)
	// Fill the one queue slot.
	filled := make(chan struct{})
	go func() {
		_, _ = st.do(nil, st.shards[0], func(trace.SpanContext) (any, error) { return nil, nil })
		close(filled)
	}()
	// Wait for the filler to be admitted (queue gauge = 1).
	deadline := time.Now().Add(2 * time.Second)
	for reg.GaugeValue("server.shard.0.queue_depth") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler op never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/events",
		online.Event{Arrive: []int{0}}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded shard: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if reg.CounterValue("server.rejected.queue_full") == 0 {
		t.Error("queue_full counter not incremented")
	}

	release()
	<-filled
	// Back under capacity, the same request succeeds.
	resp = doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/events",
		online.Event{Arrive: []int{0}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: HTTP %d, want 200", resp.StatusCode)
	}
}

func TestRequestDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 8, RequestTimeout: 50 * time.Millisecond, Metrics: reg})
	m := testMarket(t, 3, 8, 4)

	var created CreateResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &created)

	release := blockShard(t, srv.Store())
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/events",
		online.Event{Arrive: []int{0}}, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline on blocked shard: HTTP %d, want 504", resp.StatusCode)
	}
	release()

	// The abandoned op must be skipped, not applied: drive another op
	// through (serialized behind the skip) and check the expired counter
	// and that the arrival never landed.
	var got CreateResponse
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.ID, nil, &got)
	if got.Active != 0 || got.Steps != 0 {
		t.Fatalf("expired event was applied anyway: %+v", got)
	}
	if reg.CounterValue("server.expired") == 0 {
		t.Error("expired counter not incremented")
	}
}

func TestSessionLimit(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Shards: 1, MaxSessions: 2, Metrics: reg})
	m := testMarket(t, 2, 4, 5)
	for i := 0; i < 2; i++ {
		resp := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, nil)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: HTTP %d", i, resp.StatusCode)
		}
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over limit: HTTP %d, want 429", resp.StatusCode)
	}
	if reg.CounterValue("server.rejected.session_limit") != 1 {
		t.Error("session_limit counter not incremented")
	}
}

func TestDrainFlushesQueue(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := NewStore(Config{Shards: 1, QueueDepth: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	m := testMarket(t, 3, 8, 6)
	id, _, err := st.Create(nil, m)
	if err != nil {
		t.Fatal(err)
	}

	release := blockShard(t, st)
	// Queue three steps behind the blocker, then drain.
	const queued = 3
	results := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func(j int) {
			_, err := st.Step(nil, id, online.Event{Arrive: []int{j}})
			results <- err
		}(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.GaugeValue("server.shard.0.queue_depth") != queued {
		if time.Now().After(deadline) {
			t.Fatalf("steps never queued (depth %d)", reg.GaugeValue("server.shard.0.queue_depth"))
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		release()
		st.Close()
		close(closed)
	}()
	for i := 0; i < queued; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued step lost in drain: %v", err)
		}
	}
	<-closed

	if got := reg.CounterValue("server.events.applied"); got != queued {
		t.Fatalf("applied %d events, want %d: drain dropped admitted work", got, queued)
	}
	// Draining store refuses new work.
	if _, err := st.Step(nil, id, online.Event{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("step after Close: %v, want ErrDraining", err)
	}
	if reg.CounterValue("server.rejected.draining") == 0 {
		t.Error("draining counter not incremented")
	}
	st.Close() // idempotent
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := New(Config{Shards: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	var snap obs.Snapshot
	resp, err = http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("metrics decode: %v", err)
	}

	ts.Close()
	srv.Drain()
	// After drain the store refuses work; healthz reports draining.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, want 503", rec.Code)
	}
}

func TestHTTPServerLifecycle(t *testing.T) {
	hs, err := ListenAndServe("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	if err != nil {
		t.Fatal(err)
	}
	addr := hs.Addr().String()
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The port must be released.
	hs2, err := ListenAndServe(addr, http.NotFoundHandler())
	if err != nil {
		t.Fatalf("port not released after Shutdown: %v", err)
	}
	_ = hs2.Shutdown(ctx)

	// A bad address surfaces the listen error synchronously.
	if _, err := ListenAndServe("256.0.0.1:99999", http.NotFoundHandler()); err == nil {
		t.Fatal("bogus address should fail to listen")
	}
}
