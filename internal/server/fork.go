package server

// Point-in-time session forks. A fork replays a session's durable prefix —
// newest checkpoint plus id-filtered log records up to a caller-chosen LSN —
// into a brand-new live session on its own shard. Phase one runs on the
// source shard and only reads (sync the log, scan the directory, replay in
// memory), so a crash mid-fork leaves no trace; phase two inserts the child
// under a fresh id and logs one self-contained wal.TypeFork record carrying
// its full spec and state, because the child hashes to its own shard where
// the parent's shard-local LSNs mean nothing.

import (
	"context"
	"fmt"

	"specmatch/internal/eventlog"
	"specmatch/internal/market"
	"specmatch/internal/online"
	"specmatch/internal/trace"
	"specmatch/internal/wal"
)

// ForkResult reports one fork: the child's id and initial snapshot, and the
// source-shard LSN the prefix was cut at (resolved when the request said
// "now").
type ForkResult struct {
	ID       string
	From     string
	AtLSN    uint64
	Snapshot online.Snapshot
}

// forkedState is phase one's output: the source session's spec and exact
// state at the fork LSN.
type forkedState struct {
	spec  market.Spec
	state online.Snapshot
	at    uint64
}

// Fork creates a new session from session id's durable state at lsn; lsn 0
// means the current durable tail. Errors: ErrNotFound for unknown ids,
// ErrNotDurable on an in-memory store, ErrLSNHorizon when lsn is past the
// durable tail, below the newest checkpoint (the records before it are
// deleted on rotation), or before the session existed.
func (st *Store) Fork(ctx context.Context, id string, lsn uint64) (ForkResult, error) {
	if st.live.Load() >= int64(st.cfg.MaxSessions) {
		st.rejectLimit.Inc()
		return ForkResult{}, ErrSessionLimit
	}
	src := st.shardOf(id)
	v, err := st.do(ctx, src, func(sc trace.SpanContext) (any, error) {
		if _, ok := src.sessions[id]; !ok {
			return nil, ErrNotFound
		}
		if src.dir == nil {
			return nil, ErrNotDurable
		}
		at := lsn
		if at == 0 {
			at = src.nextLSN
		}
		if at > src.nextLSN {
			return nil, fmt.Errorf("%w: lsn %d is past the shard's last record %d", ErrLSNHorizon, at, src.nextLSN)
		}
		// Sync first so the scan below sees every acknowledged (and every
		// applied-but-unacked) record through src.nextLSN. The scan itself is
		// read-only and runs on the shard goroutine, so no append can land
		// mid-scan.
		if err := src.dir.Sync(); err != nil {
			return nil, fmt.Errorf("server: fork: syncing wal: %w", err)
		}
		recd, err := wal.ReadState(src.dir.Path())
		if err != nil {
			return nil, fmt.Errorf("server: fork: reading shard state: %w", err)
		}
		if at < recd.SnapshotLSN {
			return nil, fmt.Errorf("%w: lsn %d predates the newest checkpoint at %d (earlier records are rotated away)",
				ErrLSNHorizon, at, recd.SnapshotLSN)
		}
		fs, err := st.assembleFork(id, at, recd)
		if err != nil {
			return nil, err
		}
		return fs, nil
	})
	if err != nil {
		return ForkResult{}, err
	}
	fs := v.(forkedState)

	newID := fmt.Sprintf("m%08x", st.nextID.Add(1))
	dst := st.shardOf(newID)
	v, err = st.do(ctx, dst, func(trace.SpanContext) (any, error) {
		var d *durable
		if dst.dir != nil {
			d = dst.prepareDurable(wal.TypeFork,
				eventlog.Fork{ID: newID, From: id, AtLSN: fs.at, Spec: fs.spec, State: fs.state}.Encode())
		}
		m, err := market.FromSpec(fs.spec)
		if err != nil {
			return nil, fmt.Errorf("server: fork: rebuilding market: %w", err)
		}
		s, err := online.FromSnapshot(m, fs.state, st.sessionOptions())
		if err != nil {
			return nil, fmt.Errorf("server: fork: restoring state: %w", err)
		}
		dst.sessions[newID] = s
		dst.sessGauge.Add(1)
		st.sessGauge.Add(1)
		st.forked.Inc()
		st.live.Add(1)
		return d.result(s.Snapshot()), nil
	})
	if err != nil {
		return ForkResult{}, err
	}
	return ForkResult{ID: newID, From: id, AtLSN: fs.at, Snapshot: v.(online.Snapshot)}, nil
}

// assembleFork rebuilds session id's state at LSN at from a shard scan:
// start from the checkpoint's copy if the session is in it, then replay the
// session's own records with checkpoint LSN < record LSN ≤ at. The engine's
// bit-determinism makes the result exactly the state the live session had
// when the shard's LSN counter stood at at.
func (st *Store) assembleFork(id string, at uint64, recd *wal.Recovered) (forkedState, error) {
	var s *online.Session
	var m *market.Market
	if len(recd.SnapshotBody) > 0 {
		cp, err := eventlog.DecodeCheckpoint(recd.SnapshotBody)
		if err != nil {
			return forkedState{}, fmt.Errorf("server: fork: decoding checkpoint: %w", err)
		}
		for _, sc := range cp.Sessions {
			if sc.ID != id {
				continue
			}
			if m, err = market.FromSpec(sc.Spec); err == nil {
				s, err = online.FromSnapshot(m, sc.State, st.sessionOptions())
			}
			if err != nil {
				return forkedState{}, fmt.Errorf("server: fork: restoring %s from checkpoint: %w", id, err)
			}
			break
		}
	}
	for _, r := range recd.Records {
		if r.LSN > at {
			break
		}
		switch r.Type {
		case wal.TypeCreate:
			b, err := eventlog.DecodeCreate(r.Body)
			if err != nil {
				return forkedState{}, fmt.Errorf("server: fork: lsn %d: %w", r.LSN, err)
			}
			if b.ID != id {
				continue
			}
			if m, err = market.FromSpec(b.Spec); err == nil {
				s, err = online.NewSession(m, st.sessionOptions())
			}
			if err != nil {
				return forkedState{}, fmt.Errorf("server: fork: lsn %d: %w", r.LSN, err)
			}
		case wal.TypeFork:
			b, err := eventlog.DecodeFork(r.Body)
			if err != nil {
				return forkedState{}, fmt.Errorf("server: fork: lsn %d: %w", r.LSN, err)
			}
			if b.ID != id {
				continue
			}
			if m, err = market.FromSpec(b.Spec); err == nil {
				s, err = online.FromSnapshot(m, b.State, st.sessionOptions())
			}
			if err != nil {
				return forkedState{}, fmt.Errorf("server: fork: lsn %d: %w", r.LSN, err)
			}
		case wal.TypeStep:
			b, err := eventlog.DecodeStep(r.Body)
			if err != nil {
				return forkedState{}, fmt.Errorf("server: fork: lsn %d: %w", r.LSN, err)
			}
			if b.ID != id || s == nil {
				continue
			}
			if _, err := s.Step(b.Event); err != nil {
				return forkedState{}, fmt.Errorf("server: fork: replaying lsn %d: %w", r.LSN, err)
			}
		case wal.TypeRebuild:
			b, err := eventlog.DecodeRef(r.Body)
			if err != nil {
				return forkedState{}, fmt.Errorf("server: fork: lsn %d: %w", r.LSN, err)
			}
			if b.ID != id || s == nil {
				continue
			}
			if _, err := s.Rebuild(true); err != nil {
				return forkedState{}, fmt.Errorf("server: fork: replaying lsn %d: %w", r.LSN, err)
			}
		case wal.TypeDelete:
			b, err := eventlog.DecodeRef(r.Body)
			if err != nil {
				return forkedState{}, fmt.Errorf("server: fork: lsn %d: %w", r.LSN, err)
			}
			if b.ID == id {
				// Ids are never reused, so a delete for a currently-live id
				// cannot be in the log; scanning one means the dir and the
				// session map disagree.
				return forkedState{}, fmt.Errorf("server: fork: lsn %d deletes %s while it is live", r.LSN, id)
			}
		}
	}
	if s == nil {
		return forkedState{}, fmt.Errorf("%w: session %s did not exist at lsn %d", ErrLSNHorizon, id, at)
	}
	// The spec must come from the session's own market, not the one it was
	// built from: sessions clone their market, and replayed move events
	// rewire the clone's geometry and graphs — the create-time market never
	// sees them.
	return forkedState{spec: s.Market().Spec(), state: s.Snapshot(), at: at}, nil
}
