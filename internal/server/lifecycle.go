package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"specmatch/internal/obs"
	"specmatch/internal/trace"
)

// HTTPServer runs an http.Server on its own listener with serve-error
// surfacing and graceful shutdown — the lifecycle both specserved's API
// listener and specnode's debug endpoint share. Listen errors are returned
// synchronously by ListenAndServe; a Serve that dies mid-run surfaces on
// ServeErr and again from Shutdown, so callers can no longer lose either
// kind silently.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
	err chan error // terminal Serve error; nil after a graceful close
}

// ListenAndServe binds addr (":0" or "host:0" picks an ephemeral port — read
// the result's Addr) and serves h in a background goroutine.
func ListenAndServe(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &HTTPServer{
		srv: &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second},
		ln:  ln,
		err: make(chan error, 1),
	}
	go func() {
		serveErr := hs.srv.Serve(ln)
		if errors.Is(serveErr, http.ErrServerClosed) {
			serveErr = nil
		}
		hs.err <- serveErr
	}()
	return hs, nil
}

// Addr returns the bound listen address.
func (hs *HTTPServer) Addr() net.Addr { return hs.ln.Addr() }

// ServeErr delivers the terminal Serve error exactly once: a non-nil value
// if the serve loop died on its own, nil after a graceful Shutdown. Select
// on it to notice a mid-run failure.
func (hs *HTTPServer) ServeErr() <-chan error { return hs.err }

// Shutdown stops accepting new connections, waits (up to ctx's deadline)
// for in-flight requests to finish, releases the port, and returns the
// shutdown or serve error, whichever came first.
func (hs *HTTPServer) Shutdown(ctx context.Context) error {
	err := hs.srv.Shutdown(ctx)
	select {
	case serveErr := <-hs.err:
		if err == nil {
			err = serveErr
		}
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// DebugMux builds the standard debug mux — /debug/metrics over the registry
// (snapshot, series over the rollup, Prometheus exposition), /debug/trace
// over the flight recorder, plus the net/http/pprof handlers — on a private
// mux so nothing leaks onto http.DefaultServeMux. Shared by specnode's
// -debug-addr endpoint; specserved mounts the same handlers on its API mux.
// reg, ru, and fl may all be nil (the endpoints serve empty documents).
func DebugMux(reg *obs.Registry, fl *trace.Flight, ru *obs.Rollup) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", obs.Handler(reg))
	mux.Handle("/debug/metrics/series", obs.SeriesHandler(ru))
	mux.Handle("/debug/metrics/prom", obs.PromHandler(reg))
	mux.Handle("/debug/trace", trace.Handler(fl))
	registerPprof(mux)
	return mux
}

// registerPprof mounts the standard pprof handlers on mux.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
