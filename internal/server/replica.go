package server

// This file is the serving side of internal/replica: the store's
// replicated-apply path (a follower applying leader records through the
// same code recovery uses), the leader's per-shard stream handler, the
// /v1/status and /v1/replica/status read APIs, the follower write gate, and
// POST /v1/replica/promote. The wire format needs no glue — a stream is
// framed exactly like a log file, so the handler ships file bytes and the
// feed ships fsynced batches verbatim.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"specmatch/internal/eventlog"
	"specmatch/internal/market"
	"specmatch/internal/online"
	"specmatch/internal/replica"
	"specmatch/internal/trace"
	"specmatch/internal/wal"
)

// ErrNotLeader reports a write on a follower (HTTP 503 + X-Leader hint).
var ErrNotLeader = errors.New("server: node is a follower; writes go to the leader")

// Durable reports whether the store runs with a WAL. Replication needs one
// on both ends: the leader streams its log, the follower appends to its
// own.
func (st *Store) Durable() bool { return st.cfg.DataDir != "" }

// NumShards returns the store's shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// ShardStatuses reports every shard's durable and checkpoint LSN
// high-water. Lock-free — it must answer even when shard queues are full.
func (st *Store) ShardStatuses() []replica.ShardLSN {
	out := make([]replica.ShardLSN, len(st.shards))
	for i, sh := range st.shards {
		out[i] = replica.ShardLSN{
			Shard:         i,
			DurableLSN:    sh.durableLSN.Load(),
			CheckpointLSN: sh.ckptLSN.Load(),
		}
	}
	return out
}

// raiseNextID lifts the store's session-id counter to at least n, so ids a
// follower mints after promotion never collide with ids the leader issued.
func (st *Store) raiseNextID(n uint64) {
	for {
		cur := st.nextID.Load()
		if cur >= n || st.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}

// ApplyReplicated applies one contiguous batch of leader records to a
// shard: appends them to this store's own WAL with the leader's LSNs
// preserved, applies them through the same replay path recovery uses, and
// returns the shard's new applied LSN only after the batch is fsynced — the
// follower acks (and resumes from) nothing it could lose. Records at or
// below the current LSN are skipped (stream resume overlap); a gap is an
// error, because applying past one would silently diverge. A TypeSnapshot
// record (checkpoint-ship, when the follower was behind the leader's
// truncation horizon) replaces the shard's state wholesale and checkpoints
// it synchronously.
func (st *Store) ApplyReplicated(ctx context.Context, shardIdx int, recs []wal.Record) (uint64, error) {
	if shardIdx < 0 || shardIdx >= len(st.shards) {
		return 0, fmt.Errorf("server: no shard %d", shardIdx)
	}
	sh := st.shards[shardIdx]
	if sh.dir == nil {
		return 0, ErrNotDurable
	}
	v, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
		var toAppend []wal.Record
		maxID := st.nextID.Load()
		liveBefore := len(sh.sessions)
		for _, r := range recs {
			if r.Type == wal.TypeSnapshot {
				if r.LSN <= sh.nextLSN {
					continue // already past the shipped point
				}
				if err := st.installSnapshot(sh, r, &liveBefore); err != nil {
					return nil, err
				}
				continue
			}
			if r.LSN <= sh.nextLSN {
				continue // resume overlap: already applied and durable
			}
			if r.LSN != sh.nextLSN+1 {
				return nil, fmt.Errorf("server: replication gap on shard %d: have lsn %d, got %d", shardIdx, sh.nextLSN, r.LSN)
			}
			if err := st.applyRecord(sh, r, &maxID); err != nil {
				return nil, fmt.Errorf("server: replicated lsn %d: %w", r.LSN, err)
			}
			if r.Type == wal.TypeStep {
				st.eventsApplied.Inc()
			}
			sh.nextLSN = r.LSN
			toAppend = append(toAppend, r)
		}
		st.raiseNextID(maxID)
		// Follower gauges track the replicated session population.
		delta := int64(len(sh.sessions) - liveBefore)
		if delta != 0 {
			sh.sessGauge.Add(delta)
			st.sessGauge.Add(delta)
			st.live.Add(delta)
		}
		if len(toAppend) == 0 {
			return sh.nextLSN, nil
		}
		return &durable{recs: toAppend, v: sh.nextLSN, preassigned: true}, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(uint64), nil
}

// installSnapshot replaces a shard's state with a leader checkpoint shipped
// mid-stream and persists it as this store's own checkpoint — the exact
// body, so the follower's files stay byte-comparable to the leader's.
func (st *Store) installSnapshot(sh *shard, r wal.Record, liveBefore *int) error {
	cp, err := eventlog.DecodeCheckpoint(r.Body)
	if err != nil {
		return fmt.Errorf("server: decoding shipped checkpoint: %w", err)
	}
	sessions := make(map[string]*online.Session, len(cp.Sessions))
	for _, sc := range cp.Sessions {
		m, err := market.FromSpec(sc.Spec)
		if err != nil {
			return fmt.Errorf("server: shipped checkpoint session %s: %w", sc.ID, err)
		}
		s, err := online.FromSnapshot(m, sc.State, st.sessionOptions())
		if err != nil {
			return fmt.Errorf("server: shipped checkpoint session %s: %w", sc.ID, err)
		}
		sessions[sc.ID] = s
	}
	sh.sessions = sessions
	sh.nextLSN = r.LSN
	st.raiseNextID(cp.NextID)
	if err := sh.dir.Checkpoint(r.LSN, r.Body); err != nil {
		return fmt.Errorf("server: persisting shipped checkpoint: %w", err)
	}
	sh.sinceCkpt = 0
	sh.durableLSN.Store(r.LSN)
	sh.ckptLSN.Store(r.LSN)
	st.walCheckpoints.Inc()
	return nil
}

// Seal checkpoints every shard at its current tail — the promote step that
// seals a follower's logs at the last contiguous LSN before it starts
// taking writes. Returns the sealed per-shard positions.
func (st *Store) Seal(ctx context.Context) ([]replica.ShardLSN, error) {
	for i, sh := range st.shards {
		if sh.dir == nil {
			return nil, ErrNotDurable
		}
		_, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
			return nil, st.checkpointShard(sh)
		})
		if err != nil {
			return nil, fmt.Errorf("server: sealing shard %d: %w", i, err)
		}
	}
	return st.ShardStatuses(), nil
}

// replState is the server's replication role. Nodes are leaders unless
// BecomeFollower was called; promotion flips a follower back.
type replState struct {
	mu        sync.Mutex
	follower  bool
	leaderURL string
	status    func() replica.FollowerStatus
	stop      func() // stops the follower's tailers; idempotent
	promoting sync.Mutex
}

// BecomeFollower marks the server a read-only follower of leaderURL: writes
// return 503 with an X-Leader hint until promotion. status feeds
// /v1/replica/status; stop is invoked by promote before sealing (it must
// block until no more replicated applies can happen).
func (s *Server) BecomeFollower(leaderURL string, status func() replica.FollowerStatus, stop func()) {
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	s.repl.follower = true
	s.repl.leaderURL = leaderURL
	s.repl.status = status
	s.repl.stop = stop
}

// followerInfo returns (leaderURL, true) when the node is a follower.
func (s *Server) followerInfo() (string, bool) {
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	return s.repl.leaderURL, s.repl.follower
}

// Role returns the node's replication role name.
func (s *Server) Role() string {
	if _, f := s.followerInfo(); f {
		return replica.RoleFollower
	}
	return replica.RoleLeader
}

// gated wraps a write handler with the follower gate: a follower refuses
// the write with 503 and points the client at the leader, because applying
// it locally would fork the replicated history.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	rejected := s.reg.Counter("replica.rejected_writes")
	return func(w http.ResponseWriter, r *http.Request) {
		if leader, isFollower := s.followerInfo(); isFollower {
			rejected.Inc()
			w.Header().Set("X-Leader", leader)
			s.writeJSON(w, http.StatusServiceUnavailable,
				ErrorResponse{Error: fmt.Sprintf("%s at %s", ErrNotLeader.Error(), leader)})
			return
		}
		h(w, r)
	}
}

// handleStatus serves GET /v1/status: role plus per-shard LSN high-waters.
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	leader, isFollower := s.followerInfo()
	st := replica.NodeStatus{
		Role:     s.Role(),
		Durable:  s.store.Durable(),
		Sessions: s.store.Len(),
	}
	if isFollower {
		st.Leader = leader
	}
	if st.Durable {
		st.Shards = s.store.ShardStatuses()
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleReplicaStatus serves GET /v1/replica/status: follower progress, or
// the leader's stream fan-out.
func (s *Server) handleReplicaStatus(w http.ResponseWriter, _ *http.Request) {
	out := replica.ReplicaStatus{Role: s.Role()}
	s.repl.mu.Lock()
	status := s.repl.status
	s.repl.mu.Unlock()
	if out.Role == replica.RoleFollower && status != nil {
		fs := status()
		out.Follow = &fs
	} else if s.store.Durable() {
		for i, sh := range s.store.shards {
			out.Streams = append(out.Streams, replica.StreamStatus{
				Shard:        i,
				Subscribers:  sh.feed.Subscribers(),
				PublishedLSN: sh.feed.Last(),
			})
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// PromoteResponse is the reply to POST /v1/replica/promote.
type PromoteResponse struct {
	Role         string             `json:"role"`
	WasFollowing string             `json:"was_following"`
	Shards       []replica.ShardLSN `json:"shards"`
}

// handlePromote serves POST /v1/replica/promote: stop following, seal every
// shard's log at its last contiguous LSN, and start accepting writes. 409
// on a node that is not a follower. On a seal failure the node STAYS a
// follower (with tailers stopped) so the operator can retry; nothing is
// half-promoted.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.repl.promoting.Lock()
	defer s.repl.promoting.Unlock()
	leader, isFollower := s.followerInfo()
	if !isFollower {
		s.writeJSON(w, http.StatusConflict, ErrorResponse{Error: "server: not a follower; nothing to promote"})
		return
	}
	s.repl.mu.Lock()
	stop := s.repl.stop
	s.repl.mu.Unlock()
	if stop != nil {
		stop() // blocks until no replicated apply is in flight
	}
	sealed, err := s.store.Seal(r.Context())
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.repl.mu.Lock()
	s.repl.follower = false
	s.repl.status = nil
	s.repl.stop = nil
	s.repl.mu.Unlock()
	s.writeJSON(w, http.StatusOK, PromoteResponse{Role: replica.RoleLeader, WasFollowing: leader, Shards: sealed})
}

// streamConn adapts the stream handler's ResponseWriter for feed publishes:
// every write gets a fresh deadline, so a stalled subscriber is dropped by
// the feed instead of blocking the leader's fsync path.
type streamConn struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

// publishDeadline bounds one replication batch write to a subscriber.
const publishDeadline = 2 * time.Second

func (c *streamConn) WriteBatch(b []byte) error {
	_ = c.rc.SetWriteDeadline(time.Now().Add(publishDeadline))
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	return c.rc.Flush()
}

// handleStream serves GET /v1/replica/shards/{shard}/stream?from_lsn=N: the
// shard's framed records with LSN > N, as an unbounded stream — first
// whatever is already in the files (prefixed, when N is below the
// truncation horizon, by one TypeSnapshot record shipped from the newest
// checkpoint), then live batches straight from the WAL's post-fsync hook.
// The bytes after the leading magic are frame-identical to the on-disk log.
//
// Registered outside route(): a replication stream must not carry the
// per-request deadline.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.requests.replica_stream").Inc()
	if !s.store.Durable() {
		s.writeError(w, fmt.Errorf("%w; replication streams the WAL", ErrNotDurable))
		return
	}
	idx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || idx < 0 || idx >= s.store.NumShards() {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("server: no shard %q", r.PathValue("shard"))})
		return
	}
	var from uint64
	if q := r.URL.Query().Get("from_lsn"); q != "" {
		if from, err = strconv.ParseUint(q, 10, 64); err != nil {
			s.writeError(w, badRequest(fmt.Errorf("from_lsn: %w", err)))
			return
		}
	}
	if _, ok := w.(http.Flusher); !ok {
		s.writeError(w, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	sh := s.store.shards[idx]
	dir := s.store.shardDir(idx)

	// Resolve the truncation horizon before committing to a response: a
	// follower below the newest checkpoint's LSN cannot be served from log
	// frames alone (older generations are deleted on rotation), so it gets
	// the checkpoint itself as the stream's first record.
	var ship *wal.Record
	cursor := from
	if body, snapLSN, ok, err := wal.NewestSnapshot(dir); err != nil {
		s.writeError(w, err)
		return
	} else if ok && from < snapLSN {
		ship = &wal.Record{Type: wal.TypeSnapshot, LSN: snapLSN, Body: body}
		cursor = snapLSN
	}

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	write := func(b []byte) error {
		_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		_, err := w.Write(b)
		return err
	}
	if err := write(wal.Magic[:]); err != nil {
		return
	}
	if ship != nil {
		if err := write(wal.AppendRecord(nil, *ship)); err != nil {
			return
		}
	}

	// Catch up from the files, then go live on the feed. Attach refuses
	// while the feed's published high-water is past our cursor, which is
	// exactly when the files hold records we have not read yet — so the
	// loop always progresses, and once the tail reaches the durable tail
	// Attach must succeed (nothing publishes before it is durable).
	t := wal.OpenTail(dir, cursor)
	defer t.Close()
	sub := replica.NewSubscriber(&streamConn{w: w, rc: rc})
	for {
		recs, err := t.Next()
		if err != nil {
			return // mid-log damage or I/O error: drop the stream
		}
		if len(recs) > 0 {
			var buf []byte
			for _, rec := range recs {
				buf = wal.AppendRecord(buf, rec)
			}
			if err := write(buf); err != nil {
				return
			}
			continue
		}
		// Flush before Attach: after Attach the feed's flush goroutine owns
		// the writer, so this goroutine must not touch it again.
		if err := rc.Flush(); err != nil {
			return
		}
		if sh.feed.Attach(sub, t.Cursor()) {
			break
		}
	}
	defer sh.feed.Detach(sub) // serializes against an in-flight publish
	select {
	case <-r.Context().Done(): // client went away
	case <-sub.Done(): // dropped by the feed (write error/stall)
	case <-s.streamsDone: // server draining
	}
}

// StopStreams ends every live replication stream, so a graceful shutdown's
// listener drain is not held open by followers. Idempotent.
func (s *Server) StopStreams() {
	s.stopStreams.Do(func() { close(s.streamsDone) })
}
