package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"specmatch/internal/eventlog"
	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/trace"
	"specmatch/internal/wal"
)

// durableConfig is the standard test configuration for a durable store: a
// short fsync batch so tests don't wait, and a registry so the server.wal.*
// metrics are exercised.
func durableConfig(dir string, shards int) Config {
	return Config{
		Shards:        shards,
		DataDir:       dir,
		FsyncInterval: time.Millisecond,
		Metrics:       obs.NewRegistry(),
	}
}

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// snapshotAll captures every live session's state, keyed by id.
func snapshotAll(t *testing.T, st *Store) map[string]online.Snapshot {
	t.Helper()
	ctx := context.Background()
	ids, err := st.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]online.Snapshot, len(ids))
	for _, id := range ids {
		snap, err := st.Get(ctx, id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		out[id] = snap
	}
	return out
}

// A graceful close writes checkpoints; reopening the same directory must
// bring back every session bit-for-bit, across shards.
func TestDurableRestartRecoversSessions(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 3)
	st := mustStore(t, cfg)
	ctx := context.Background()

	r := rand.New(rand.NewSource(11))
	var ids []string
	for k := 0; k < 9; k++ {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 12, Seed: int64(k + 1)})
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := st.Create(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 120; i++ {
		id := ids[r.Intn(len(ids))]
		if _, err := st.Step(ctx, id, online.Event{Arrive: []int{r.Intn(12)}, Depart: []int{r.Intn(12)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Rebuild(ctx, ids[0], true); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ctx, ids[1]); err != nil {
		t.Fatal(err)
	}
	want := snapshotAll(t, st)
	st.Close()

	if n := cfg.Metrics.CounterValue("server.wal.appends"); n == 0 {
		t.Error("server.wal.appends never incremented")
	}
	if n := cfg.Metrics.CounterValue("server.wal.fsyncs"); n == 0 {
		t.Error("server.wal.fsyncs never incremented")
	}
	if n := cfg.Metrics.CounterValue("server.wal.checkpoints"); n == 0 {
		t.Error("server.wal.checkpoints never incremented")
	}
	if n := cfg.Metrics.CounterValue("server.wal.errors"); n != 0 {
		t.Errorf("server.wal.errors = %d on a clean run", n)
	}

	cfg2 := durableConfig(dir, 3)
	st2 := mustStore(t, cfg2)
	defer st2.Close()
	got := snapshotAll(t, st2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state differs:\n got %d sessions %+v\nwant %d sessions %+v", len(got), got, len(want), want)
	}
	if st2.Recovery.Sessions != len(want) {
		t.Errorf("Recovery.Sessions = %d, want %d", st2.Recovery.Sessions, len(want))
	}
	// A recovered store keeps serving: new creates must not collide with
	// recovered ids.
	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 12, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st2.Create(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := want[id]; ok {
		t.Fatalf("new session id %s collides with a recovered one", id)
	}
}

// Deleting the highest-numbered session and restarting must not regress the
// id counter: a post-recovery Create must mint a fresh id, never one a
// client already holds for a different session. Covers both recovery paths
// — the counter persisted in checkpoint bodies (graceful close) and ids
// harvested from replayed create records (crash image, where the deleted
// session's id survives only in its create record).
func TestNextIDNeverRegresses(t *testing.T) {
	ctx := context.Background()
	build := func(t *testing.T, st *Store) []string {
		t.Helper()
		var ids []string
		for k := 0; k < 3; k++ {
			m, err := market.Generate(market.Config{Sellers: 2, Buyers: 6, Seed: int64(k + 1)})
			if err != nil {
				t.Fatal(err)
			}
			id, _, err := st.Create(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		// ids are minted in sequence, so the last one is the high-water mark.
		if err := st.Delete(ctx, ids[len(ids)-1]); err != nil {
			t.Fatal(err)
		}
		return ids
	}
	checkFresh := func(t *testing.T, st *Store, issued []string) {
		t.Helper()
		m, err := market.Generate(market.Config{Sellers: 2, Buyers: 6, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := st.Create(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, old := range issued {
			if id == old {
				t.Fatalf("recovered store re-issued id %s", id)
			}
		}
	}

	t.Run("graceful-close", func(t *testing.T) {
		dir := t.TempDir()
		st := mustStore(t, durableConfig(dir, 2))
		ids := build(t, st)
		st.Close()
		st2 := mustStore(t, durableConfig(dir, 2))
		defer st2.Close()
		checkFresh(t, st2, ids)
	})

	t.Run("crash-image", func(t *testing.T) {
		liveDir, imageDir := t.TempDir(), t.TempDir()
		st := mustStore(t, durableConfig(liveDir, 2))
		defer st.Close()
		ids := build(t, st)
		copyTree(t, liveDir, imageDir)
		st2 := mustStore(t, durableConfig(imageDir, 2))
		defer st2.Close()
		checkFresh(t, st2, ids)
	})
}

// copyTree clones a data directory — a poor man's crash image: the files as
// they are mid-run, with live logs and no graceful checkpoint.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// crashImage builds a durable store, runs ops against it, and snapshots both
// its state and a copy of its data dir taken WITHOUT closing — so recovery
// has to replay the live log, not just load a graceful checkpoint.
func crashImage(t *testing.T, ops, ckptEvery int) (imageDir string, want map[string]online.Snapshot) {
	t.Helper()
	liveDir := t.TempDir()
	imageDir = t.TempDir()
	cfg := durableConfig(liveDir, 2)
	cfg.CheckpointEvery = ckptEvery
	st := mustStore(t, cfg)
	defer st.Close()
	ctx := context.Background()

	r := rand.New(rand.NewSource(23))
	var ids []string
	for k := 0; k < 6; k++ {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 10, Seed: int64(k + 41)})
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := st.Create(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < ops; i++ {
		id := ids[r.Intn(len(ids))]
		if _, err := st.Step(ctx, id, online.Event{Arrive: []int{r.Intn(10)}, Depart: []int{r.Intn(10)}}); err != nil {
			t.Fatal(err)
		}
	}
	want = snapshotAll(t, st)
	copyTree(t, liveDir, imageDir)
	return imageDir, want
}

// Recovery from a crash image replays the log into exactly the state the
// original held when the image was taken.
func TestRecoveryReplaysLiveLog(t *testing.T) {
	// ckptEvery beyond the op count: everything recovers from the log.
	dir, want := crashImage(t, 80, 1000)
	cfg := durableConfig(dir, 2)
	st := mustStore(t, cfg)
	defer st.Close()
	if got := snapshotAll(t, st); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state differs from the crashed store's:\n got %+v\nwant %+v", got, want)
	}
	if st.Recovery.Records == 0 {
		t.Error("recovery claims zero replayed records; the test meant to exercise log replay")
	}

	// With frequent checkpoints the same image recovers through a mix of
	// checkpoint load and shorter replay — same resulting state.
	dir2, want2 := crashImage(t, 80, 16)
	st2 := mustStore(t, durableConfig(dir2, 2))
	defer st2.Close()
	if got := snapshotAll(t, st2); !reflect.DeepEqual(got, want2) {
		t.Fatal("checkpoint+replay recovery differs from the crashed store's state")
	}
}

// A torn tail on a crash image is dropped silently; mid-log corruption
// refuses startup unless WALRepair, which keeps the intact prefix.
func TestRecoveryTornAndCorrupt(t *testing.T) {
	dir, want := crashImage(t, 60, 1000)
	logs, err := filepath.Glob(filepath.Join(dir, "shard-*", "wal-*.log"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("no logs in crash image: %v", err)
	}

	// Torn tail: append half a frame to one shard's log.
	frame := wal.AppendRecord(nil, wal.Record{Type: wal.TypeStep, LSN: 1 << 40, Body: []byte(`{"id":"mdeadbeef","event":{}}`)})
	f, err := os.OpenFile(logs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st := mustStore(t, durableConfig(dir, 2))
	if got := snapshotAll(t, st); !reflect.DeepEqual(got, want) {
		t.Fatal("state after torn-tail truncation differs")
	}
	if st.Recovery.TornRecords == 0 {
		t.Error("torn tail not counted")
	}
	st.Close()

	// Mid-log corruption: flip a byte early in a log that has records after
	// it. Use a fresh image (the store above checkpointed on open and close).
	dir2, _ := crashImage(t, 60, 1000)
	logs2, _ := filepath.Glob(filepath.Join(dir2, "shard-*", "wal-*.log"))
	var victim string
	for _, lg := range logs2 {
		if fi, err := os.Stat(lg); err == nil && fi.Size() > 256 {
			victim = lg
			break
		}
	}
	if victim == "" {
		t.Fatal("no log long enough to corrupt mid-file")
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[40] ^= 0xff // past the magic and first header, well before EOF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := durableConfig(dir2, 2)
	if _, err := NewStore(cfg); err == nil {
		t.Fatal("store started over mid-log corruption without repair")
	} else if !strings.Contains(err.Error(), "WAL repair") {
		t.Errorf("corruption error does not point at repair: %v", err)
	}
	cfg = durableConfig(dir2, 2)
	cfg.WALRepair = true
	st2, err := NewStore(cfg)
	if err != nil {
		t.Fatalf("repair mode refused to start: %v", err)
	}
	defer st2.Close()
	if st2.Recovery.RepairedRecords == 0 {
		t.Error("repair mode dropped nothing despite corruption")
	}
	// Repaired sessions must still be internally consistent prefixes.
	for id, snap := range snapshotAll(t, st2) {
		if _, err := st2.Step(context.Background(), id, online.Event{}); err != nil {
			t.Errorf("repaired session %s rejects an empty event: %v", id, err)
		}
		if snap.Matched > snap.Active {
			t.Errorf("repaired session %s inconsistent: %d matched of %d active", id, snap.Matched, snap.Active)
		}
	}
}

// An event that fails validation must leave no trace in the WAL: replay only
// ever sees applied events.
func TestFailedEventsNeverReachWAL(t *testing.T) {
	dir := t.TempDir()
	st := mustStore(t, durableConfig(dir, 1))
	ctx := context.Background()
	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st.Create(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	for _, ev := range []online.Event{
		{Arrive: []int{0, 1, 2}},
		{Arrive: []int{99}}, // out of range: rejected
		{Depart: []int{1}},
		{ChannelDown: []int{-4}},              // rejected
		{Arrive: []int{3}, Depart: []int{50}}, // rejected as a whole
	} {
		if _, err := st.Step(ctx, id, ev); err == nil {
			good++
		}
	}
	if good != 2 {
		t.Fatalf("fixture drift: %d events applied, want 2", good)
	}

	// The live log must contain exactly one create + the applied steps.
	logs, err := filepath.Glob(filepath.Join(dir, "shard-000", "wal-*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("want one live log, got %v (%v)", logs, err)
	}
	data, err := os.ReadFile(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := wal.ScanFile(data)
	if err != nil {
		t.Fatal(err)
	}
	steps, creates := 0, 0
	for _, r := range recs {
		switch r.Type {
		case wal.TypeStep:
			steps++
		case wal.TypeCreate:
			creates++
		}
	}
	if creates != 1 || steps != good {
		t.Fatalf("log holds %d creates and %d steps; want 1 and %d", creates, steps, good)
	}

	want := snapshotAll(t, st)
	st.Close()
	st2 := mustStore(t, durableConfig(dir, 1))
	defer st2.Close()
	got := snapshotAll(t, st2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered state differs after rejected events")
	}
	if got[id].Steps != good {
		t.Fatalf("recovered session counts %d steps, want %d", got[id].Steps, good)
	}
}

// The drain barrier: every Step acknowledged before Close must exist after a
// reopen — accepted == applied == durable, under concurrency.
func TestDurableDrainBarrier(t *testing.T) {
	dir := t.TempDir()
	st := mustStore(t, durableConfig(dir, 2))
	ctx := context.Background()
	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for k := 0; k < 4; k++ {
		id, _, err := st.Create(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		w := w
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (w + i) % len(ids)
				if _, err := st.Step(ctx, ids[k], online.Event{Arrive: []int{(w*7 + i) % 16}}); err != nil {
					return // draining
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Every Step that returned success above was acked after its WAL fsync;
	// the snapshot taken now is therefore entirely durable state.
	totals := snapshotAll(t, st)
	st.Close()

	st2 := mustStore(t, durableConfig(dir, 2))
	defer st2.Close()
	got := snapshotAll(t, st2)
	if !reflect.DeepEqual(got, totals) {
		t.Fatalf("recovered state differs from pre-close state:\n got %+v\nwant %+v", got, totals)
	}
}

// Reopening a data dir with a different shard count must refuse with a
// message naming the original count — ids hash to shards.
func TestMetaShardMismatch(t *testing.T) {
	dir := t.TempDir()
	st := mustStore(t, durableConfig(dir, 2))
	st.Close()
	_, err := NewStore(durableConfig(dir, 3))
	if err == nil {
		t.Fatal("store reopened a 2-shard dir with 3 shards")
	}
	if !strings.Contains(err.Error(), "2 shards") {
		t.Errorf("mismatch error does not name the original count: %v", err)
	}
}

// Durable mutations must produce wal.append spans (spanning append →
// durable) and checkpoints wal.checkpoint spans.
func TestWALSpans(t *testing.T) {
	fl := trace.NewFlight(1 << 12)
	cfg := durableConfig(t.TempDir(), 1)
	cfg.Flight = fl
	st := mustStore(t, cfg)
	ctx := context.Background()
	m, err := market.Generate(market.Config{Sellers: 2, Buyers: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st.Create(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(ctx, id, online.Event{Arrive: []int{0}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	appends, ckpts := 0, 0
	byID := make(map[trace.SpanID]trace.Span)
	var walSpans []trace.Span
	for _, s := range fl.Snapshot() {
		byID[s.ID] = s
		switch s.Name {
		case "wal.append":
			appends++
			walSpans = append(walSpans, s)
		case "wal.checkpoint":
			ckpts++
		}
	}
	if appends < 2 { // create + step
		t.Errorf("%d wal.append spans, want >= 2", appends)
	}
	if ckpts == 0 {
		t.Error("no wal.checkpoint spans")
	}
	for _, s := range walSpans {
		if byID[s.Parent].Name != "server.shard_op" {
			t.Errorf("wal.append span parented on %q, want server.shard_op", byID[s.Parent].Name)
		}
	}
}

// The property the crash test leans on, checked hermetically: restarting a
// durable store at ANY prefix of an operation sequence and continuing must
// end bit-for-bit where an uninterrupted in-memory store ends, with
// identical per-operation results throughout — across seeds.
func TestReplayEquivalenceAcrossPrefixes(t *testing.T) {
	type walOp struct {
		kind  int // 0 step, 1 rebuild, 2 delete
		sess  int
		event online.Event
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			const fleet, buyers, nops = 5, 10, 60
			var script []walOp
			deleted := map[int]bool{}
			for i := 0; i < nops; i++ {
				o := walOp{sess: r.Intn(fleet)}
				if deleted[o.sess] {
					o.sess = -1 // becomes a no-op below
				}
				switch p := r.Float64(); {
				case p < 0.85:
					o.kind = 0
					o.event = online.Event{Arrive: []int{r.Intn(buyers)}, Depart: []int{r.Intn(buyers)}}
					if r.Float64() < 0.2 {
						o.event.ChannelDown = []int{r.Intn(3)}
						o.event.ChannelUp = nil
					}
				case p < 0.95:
					o.kind = 1
				default:
					o.kind = 2
					if o.sess >= 0 {
						deleted[o.sess] = true
					}
				}
				script = append(script, o)
			}
			// Restart after roughly a third and two thirds of the script.
			restarts := map[int]bool{nops / 3: true, 2 * nops / 3: true}

			dir := t.TempDir()
			cfg := durableConfig(dir, 2)
			cfg.CheckpointEvery = 13 // force mid-run rotations too
			dst := mustStore(t, cfg)
			ref := mustStore(t, Config{Shards: 2})
			defer ref.Close()
			ctx := context.Background()

			ids := make([]string, fleet)
			for k := 0; k < fleet; k++ {
				m, err := market.Generate(market.Config{Sellers: 3, Buyers: buyers, Seed: seed*100 + int64(k)})
				if err != nil {
					t.Fatal(err)
				}
				idD, _, err := dst.Create(ctx, m)
				if err != nil {
					t.Fatal(err)
				}
				idR, _, err := ref.Create(ctx, m)
				if err != nil {
					t.Fatal(err)
				}
				if idD != idR {
					t.Fatalf("id divergence at create %d: %s vs %s", k, idD, idR)
				}
				ids[k] = idD
			}

			for i, o := range script {
				if restarts[i] {
					dst.Close()
					dst = mustStore(t, durableConfigLike(cfg))
					if got, want := snapshotAll(t, dst), snapshotAll(t, ref); !reflect.DeepEqual(got, want) {
						t.Fatalf("op %d: state after restart differs from reference:\n got %+v\nwant %+v", i, got, want)
					}
				}
				if o.sess < 0 {
					continue
				}
				id := ids[o.sess]
				switch o.kind {
				case 0:
					sD, errD := dst.Step(ctx, id, o.event)
					sR, errR := ref.Step(ctx, id, o.event)
					if (errD == nil) != (errR == nil) {
						t.Fatalf("op %d: step err divergence: %v vs %v", i, errD, errR)
					}
					if sD != sR {
						t.Fatalf("op %d: step stats divergence: %+v vs %+v", i, sD, sR)
					}
				case 1:
					wD, aD, errD := dst.Rebuild(ctx, id, true)
					wR, aR, errR := ref.Rebuild(ctx, id, true)
					if errD != nil || errR != nil || wD != wR || aD != aR {
						t.Fatalf("op %d: rebuild divergence: (%v,%v,%v) vs (%v,%v,%v)", i, wD, aD, errD, wR, aR, errR)
					}
				case 2:
					if errD, errR := dst.Delete(ctx, id), ref.Delete(ctx, id); errD != nil || errR != nil {
						t.Fatalf("op %d: delete: %v vs %v", i, errD, errR)
					}
				}
			}
			// One final restart at the very end.
			dst.Close()
			dst = mustStore(t, durableConfigLike(cfg))
			defer dst.Close()
			if got, want := snapshotAll(t, dst), snapshotAll(t, ref); !reflect.DeepEqual(got, want) {
				t.Fatalf("final state differs from reference:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// durableConfigLike rebuilds a config with a fresh registry (counters from a
// closed store must not leak into the next one's assertions).
func durableConfigLike(cfg Config) Config {
	cfg.Metrics = obs.NewRegistry()
	return cfg
}

// FuzzWALReplay feeds arbitrary bytes to the store's recovery path as a
// shard log. Whatever the bytes: recovery must never panic, must either
// refuse cleanly or come up with internally consistent sessions, repair mode
// must always come up, and recovery must be deterministic — recovering the
// recovered state again is the identity.
func FuzzWALReplay(f *testing.F) {
	// Seed with a genuine log image produced by a real durable store.
	seedDir := f.TempDir()
	cfg := Config{Shards: 1, DataDir: seedDir, FsyncInterval: -1}
	st, err := NewStore(cfg)
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()
	m, err := market.Generate(market.Config{Sellers: 2, Buyers: 6, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	id, _, err := st.Create(ctx, m)
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range []online.Event{
		{Arrive: []int{0, 1, 2}},
		{Depart: []int{1}},
		{Move: []online.BuyerMove{{Buyer: 0, To: geom.Point{X: 5, Y: 5}}, {Buyer: 4, To: geom.Point{X: 0.5, Y: 9}}}},
		{ChannelDown: []int{0}},
	} {
		if _, err := st.Step(ctx, id, ev); err != nil {
			f.Fatal(err)
		}
	}
	logs, _ := filepath.Glob(filepath.Join(seedDir, "shard-000", "wal-*.log"))
	if len(logs) != 1 {
		f.Fatalf("seed store has %d live logs", len(logs))
	}
	genuine, err := os.ReadFile(logs[0])
	if err != nil {
		f.Fatal(err)
	}
	st.Close()
	genuine = genuine[8:] // strip the magic; the fuzz target re-adds it
	f.Add(genuine)
	f.Add(genuine[:len(genuine)/2])
	mutated := append([]byte(nil), genuine...)
	mutated[len(mutated)/3] ^= 0x20
	f.Add(mutated)
	f.Add([]byte{})
	// A step for a session that was never created: replay must reject it.
	f.Add(wal.AppendRecord(nil, wal.Record{Type: wal.TypeStep, LSN: 1, Body: []byte(`{"id":"m00000099","event":{"arrive":[0]}}`)}))
	// v2 move bodies that the codec accepts but the engine must reject on
	// replay: an out-of-range buyer index and a NaN coordinate. Both framed
	// as well-formed records so the failure happens at apply time.
	f.Add(wal.AppendRecord(nil, wal.Record{Type: wal.TypeStep, LSN: 1, Body: eventlog.Step{
		ID:    "m00000001",
		Event: online.Event{Move: []online.BuyerMove{{Buyer: 99, To: geom.Point{X: 1, Y: 1}}}},
	}.Encode()}))
	f.Add(wal.AppendRecord(nil, wal.Record{Type: wal.TypeStep, LSN: 1, Body: []byte(`{"id":"m00000001","event":{"move":[{"buyer":0,"to":{"x":null,"y":1e999}}]}}`)}))
	// A ragged v2 body: truncated mid-move, must be classified as corruption.
	moved := eventlog.Step{ID: "m00000001", Event: online.Event{
		Move: []online.BuyerMove{{Buyer: 2, To: geom.Point{X: 3, Y: 4}}},
	}}.Encode()
	f.Add(wal.AppendRecord(nil, wal.Record{Type: wal.TypeStep, LSN: 1, Body: moved[:len(moved)-5]}))

	f.Fuzz(func(t *testing.T, logBytes []byte) {
		dir := t.TempDir()
		shardDir := filepath.Join(dir, "shard-000")
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		meta, _ := json.Marshal(metaFile{Format: 1, Shards: 1})
		if err := os.WriteFile(filepath.Join(dir, metaName), meta, 0o644); err != nil {
			t.Fatal(err)
		}
		logData := append(append([]byte{}, wal.Magic[:]...), logBytes...)
		if err := os.WriteFile(filepath.Join(shardDir, "wal-0000000000000001.log"), logData, 0o644); err != nil {
			t.Fatal(err)
		}

		// Strict recovery: a clean refusal or a consistent store.
		st, err := NewStore(Config{Shards: 1, DataDir: dir, FsyncInterval: -1})
		if err == nil {
			checkConsistent(t, st)
			st.Close()
			return
		}

		// Repair recovery over the same (pristine) image must always come up:
		// the post-recovery checkpoint above never ran, because NewStore
		// failed before returning... but it may have rewritten files, so
		// rebuild the image from scratch.
		dir2 := t.TempDir()
		shardDir2 := filepath.Join(dir2, "shard-000")
		if err := os.MkdirAll(shardDir2, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, metaName), meta, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shardDir2, "wal-0000000000000001.log"), logData, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := NewStore(Config{Shards: 1, DataDir: dir2, FsyncInterval: -1, WALRepair: true})
		if err != nil {
			t.Fatalf("repair mode refused a log image: %v", err)
		}
		checkConsistent(t, st2)
		before := storeState(t, st2)
		st2.Close()

		// Determinism: recovering the repaired store's checkpoint again is
		// the identity.
		st3, err := NewStore(Config{Shards: 1, DataDir: dir2, FsyncInterval: -1})
		if err != nil {
			t.Fatalf("re-recovery of a repaired dir failed: %v", err)
		}
		if after := storeState(t, st3); !reflect.DeepEqual(before, after) {
			t.Fatalf("re-recovery changed state:\nbefore %+v\nafter  %+v", before, after)
		}
		st3.Close()
	})
}

func storeState(t *testing.T, st *Store) map[string]online.Snapshot {
	t.Helper()
	ctx := context.Background()
	ids, err := st.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]online.Snapshot, len(ids))
	for _, id := range ids {
		snap, err := st.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = snap
	}
	return out
}

// checkConsistent asserts every recovered session is whole: its snapshot's
// aggregates agree with its contents and it still accepts events — never a
// half-applied session.
func checkConsistent(t *testing.T, st *Store) {
	t.Helper()
	ctx := context.Background()
	for id, snap := range storeState(t, st) {
		if snap.Matched > snap.Active || len(snap.ActiveBuyers) != snap.Active {
			t.Fatalf("session %s inconsistent: %+v", id, snap)
		}
		matched := 0
		for _, ch := range snap.Assignment {
			if ch != market.Unmatched {
				matched++
			}
		}
		if matched != snap.Matched {
			t.Fatalf("session %s: assignment says %d matched, snapshot says %d", id, matched, snap.Matched)
		}
		if _, err := st.Step(ctx, id, online.Event{}); err != nil {
			t.Fatalf("session %s rejects an empty event after recovery: %v", id, err)
		}
	}
}
