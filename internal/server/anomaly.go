package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specmatch/internal/obs"
	"specmatch/internal/trace"
)

// This file closes the telemetry loop: the same delta windows that feed
// /debug/metrics/series drive a watchdog that, on a sustained anomaly,
// captures evidence (a flight-recorder dump plus a pprof CPU profile) into
// the node's evidence directory — so by the time an operator sees the
// alert, the data needed to explain it is already on disk. Triggers are
// rate-limited per type through a RateGate, counted under server.anomaly.*,
// and each firing records an `anomaly` span so the dump explains itself.

// RateGate rate-limits events per key: Allow("5xx") and Allow("anomaly-p99")
// budget independently, so a 5xx burst can never starve an anomaly capture
// (the failure mode of the old single global limiter). Safe for concurrent
// use; the zero interval allows everything.
type RateGate struct {
	interval time.Duration
	mu       sync.Mutex
	last     map[string]time.Time
}

// NewRateGate builds a gate allowing one event per key per interval.
func NewRateGate(interval time.Duration) *RateGate {
	return &RateGate{interval: interval, last: make(map[string]time.Time)}
}

// Allow reports whether an event for key fits the budget, consuming the
// slot when it does.
func (g *RateGate) Allow(key string) bool {
	if g == nil || g.interval <= 0 {
		return true
	}
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.last[key]; ok && now.Sub(t) < g.interval {
		return false
	}
	g.last[key] = now
	return true
}

// AnomalyConfig tunes the watchdog. Zero values take the documented
// defaults; Disabled turns the watchdog off entirely.
type AnomalyConfig struct {
	// Disabled turns anomaly detection off even when an evidence dir is
	// available.
	Disabled bool
	// P99Factor is the sustained-latency trigger: a window whose request
	// p99 exceeds P99Factor × the trailing baseline is anomalous. Zero
	// means 4.
	P99Factor float64
	// MinCount is the fewest requests a window needs before its p99 is
	// judged (tiny windows have meaningless quantiles). Zero means 50.
	MinCount int64
	// QueueFrac is the saturation trigger: any shard whose queue_depth
	// gauge reaches QueueFrac × QueueDepth is anomalous. Zero means 0.9.
	QueueFrac float64
	// LagLSN is the follower trigger: a replica.lag_lsn gauge above it is
	// anomalous. Zero means 65536; negative disables the lag trigger.
	LagLSN int64
	// Sustain is how many consecutive anomalous windows arm a trigger —
	// one bad interval is noise, Sustain of them is a capture. Zero
	// means 3.
	Sustain int
	// Baseline bounds the trailing p99 samples the latency baseline
	// averages over. Zero means 30.
	Baseline int
	// RateLimit is the per-trigger-type capture budget. Zero means 60s;
	// negative disables rate limiting.
	RateLimit time.Duration
	// ProfileDuration is how long the evidence CPU profile runs. Zero
	// means 2s.
	ProfileDuration time.Duration
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.P99Factor <= 0 {
		c.P99Factor = 4
	}
	if c.MinCount <= 0 {
		c.MinCount = 50
	}
	if c.QueueFrac <= 0 {
		c.QueueFrac = 0.9
	}
	if c.LagLSN == 0 {
		c.LagLSN = 65536
	}
	if c.Sustain <= 0 {
		c.Sustain = 3
	}
	if c.Baseline <= 0 {
		c.Baseline = 30
	}
	if c.RateLimit == 0 {
		c.RateLimit = time.Minute
	}
	if c.ProfileDuration <= 0 {
		c.ProfileDuration = 2 * time.Second
	}
	return c
}

// Watchdog inspects each delta window as the rollup produces it and
// captures evidence on sustained anomalies. It runs on the sampler
// goroutine (hung off Rollup.SetOnSample), so a capture never blocks a
// request; the CPU profile runs on its own goroutine because it takes
// ProfileDuration to finish.
type Watchdog struct {
	reg        *obs.Registry
	fl         *trace.Flight
	dir        string
	cfg        AnomalyConfig
	queueDepth int
	gate       *RateGate

	// Sampler-goroutine state: trailing p99 baseline and per-trigger
	// consecutive-anomaly streaks. Guarded by mu only because tests drive
	// Observe directly while readers poll counters.
	mu      sync.Mutex
	p99s    []float64
	streaks map[string]int

	profiling atomic.Bool
	wg        sync.WaitGroup
}

// newWatchdog wires a watchdog over reg writing evidence into dir.
// queueDepth is the shard queue capacity the saturation fraction is
// relative to.
func newWatchdog(reg *obs.Registry, fl *trace.Flight, dir string, queueDepth int, cfg AnomalyConfig) *Watchdog {
	return &Watchdog{
		reg:        reg,
		fl:         fl,
		dir:        dir,
		cfg:        cfg.withDefaults(),
		queueDepth: queueDepth,
		gate:       NewRateGate(cfg.withDefaults().RateLimit),
		streaks:    make(map[string]int),
	}
}

// Close waits for any in-flight evidence capture (the async CPU profile)
// to finish. Call during drain, before the process exits.
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	w.wg.Wait()
}

// Observe judges one delta window. It is the Rollup OnSample hook.
func (w *Watchdog) Observe(win obs.Window) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	// Latency: merge every per-route request histogram so the judgment
	// covers the node's whole request mix, then compare the interval p99
	// against the trailing baseline of calm windows.
	var merged obs.HistogramSnapshot
	for name, hs := range win.Histograms {
		if strings.HasPrefix(name, "server.request_seconds.") {
			if m, ok := obs.MergeHistogram(merged, hs); ok {
				merged = m
			}
		}
	}
	if merged.Count >= w.cfg.MinCount {
		p99 := merged.Quantile(0.99)
		base := w.baseline()
		if base > 0 && p99 > w.cfg.P99Factor*base {
			w.bump("p99", fmt.Sprintf("p99=%.6fs baseline=%.6fs factor=%.1f", p99, base, w.cfg.P99Factor))
		} else {
			w.streaks["p99"] = 0
			w.p99s = append(w.p99s, p99)
			if len(w.p99s) > w.cfg.Baseline {
				w.p99s = w.p99s[len(w.p99s)-w.cfg.Baseline:]
			}
		}
	}

	// Queue saturation: any shard riding near its queue capacity.
	var worst int64
	for name, v := range win.Gauges {
		if strings.HasPrefix(name, "server.shard.") && strings.HasSuffix(name, ".queue_depth") && v > worst {
			worst = v
		}
	}
	if w.queueDepth > 0 && float64(worst) >= w.cfg.QueueFrac*float64(w.queueDepth) {
		w.bump("queue", fmt.Sprintf("queue_depth=%d capacity=%d", worst, w.queueDepth))
	} else {
		w.streaks["queue"] = 0
	}

	// Follower lag: the replication gauges live in the same registry on a
	// follower node.
	if lag := win.Gauges["replica.lag_lsn"]; w.cfg.LagLSN >= 0 && lag > w.cfg.LagLSN {
		w.bump("lag", fmt.Sprintf("lag_lsn=%d limit=%d", lag, w.cfg.LagLSN))
	} else {
		w.streaks["lag"] = 0
	}
}

// baseline is the mean of the retained calm-window p99s.
func (w *Watchdog) baseline() float64 {
	if len(w.p99s) < 3 { // too little history to call anything anomalous
		return 0
	}
	var sum float64
	for _, v := range w.p99s {
		sum += v
	}
	return sum / float64(len(w.p99s))
}

// bump advances a trigger's streak and fires it once the anomaly has been
// sustained. The streak resets on firing, so re-arming takes another full
// run of anomalous windows.
func (w *Watchdog) bump(trigger, detail string) {
	w.streaks[trigger]++
	if w.streaks[trigger] < w.cfg.Sustain {
		return
	}
	w.streaks[trigger] = 0
	w.fire(trigger, detail)
}

// fire counts the trigger and, budget permitting, captures the evidence
// pair: the anomaly span is recorded first so the flight dump written right
// after contains it.
func (w *Watchdog) fire(trigger, detail string) {
	w.reg.Counter("server.anomaly." + trigger).Inc()
	if !w.gate.Allow("anomaly-" + trigger) {
		w.reg.Counter("server.anomaly.suppressed").Inc()
		return
	}
	span := w.fl.Start(trace.SpanContext{}, "anomaly")
	if span.Active() {
		span.Annotate("trigger=" + trigger)
		span.Annotate(detail)
	}
	span.End()

	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		w.reg.Counter("server.anomaly.capture_errors").Inc()
		return
	}
	stem := filepath.Join(w.dir, fmt.Sprintf("anomaly-%s-%d", trigger, time.Now().UnixMilli()))
	if w.dumpFlight(stem + ".trace.json") {
		w.reg.Counter("server.anomaly.captures").Inc()
	}
	w.profile(stem + ".pprof")
}

// dumpFlight atomically writes the flight recorder as a Chrome trace next
// to the profile. No-op without a flight recorder.
func (w *Watchdog) dumpFlight(path string) bool {
	if !w.fl.Enabled() {
		return false
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		w.reg.Counter("server.anomaly.capture_errors").Inc()
		return false
	}
	err = trace.WriteChromeFlight(f, w.fl)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		w.reg.Counter("server.anomaly.capture_errors").Inc()
		return false
	}
	return true
}

// profile captures a CPU profile asynchronously. The runtime allows one
// CPU profile process-wide, so a capture that loses the race (another
// trigger's profile, or an operator's /debug/pprof/profile) is skipped and
// counted rather than retried.
func (w *Watchdog) profile(path string) {
	if !w.profiling.CompareAndSwap(false, true) {
		w.reg.Counter("server.anomaly.profile_skipped").Inc()
		return
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer w.profiling.Store(false)
		f, err := os.Create(path)
		if err != nil {
			w.reg.Counter("server.anomaly.capture_errors").Inc()
			return
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(path)
			w.reg.Counter("server.anomaly.profile_skipped").Inc()
			return
		}
		time.Sleep(w.cfg.ProfileDuration)
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			w.reg.Counter("server.anomaly.capture_errors").Inc()
			return
		}
		w.reg.Counter("server.anomaly.profiles").Inc()
	}()
}

// EvidenceFile is one entry in the /debug/evidence listing.
type EvidenceFile struct {
	Name    string `json:"name"`
	Bytes   int64  `json:"bytes"`
	ModTime string `json:"mod_time"`
}

// EvidenceListing is the /debug/evidence document: whatever anomaly
// captures (and operator-initiated dumps) live in the node's evidence
// directory, newest last. specmon renders this so an operator lands on the
// evidence, not just the alert.
type EvidenceListing struct {
	Dir   string         `json:"dir"`
	Files []EvidenceFile `json:"files"`
}

// evidenceHandler serves the evidence directory listing. An empty dir (no
// durable evidence home) serves an empty listing; a dir that does not exist
// yet (nothing captured) does too.
func evidenceHandler(dir string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		doc := EvidenceListing{Dir: dir, Files: []EvidenceFile{}}
		if dir != "" {
			if entries, err := os.ReadDir(dir); err == nil {
				for _, e := range entries {
					if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
						continue
					}
					info, err := e.Info()
					if err != nil {
						continue
					}
					doc.Files = append(doc.Files, EvidenceFile{
						Name:    e.Name(),
						Bytes:   info.Size(),
						ModTime: info.ModTime().UTC().Format(time.RFC3339),
					})
				}
			}
		}
		sort.Slice(doc.Files, func(i, j int) bool { return doc.Files[i].Name < doc.Files[j].Name })
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}
