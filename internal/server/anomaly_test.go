package server

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"specmatch/internal/obs"
	"specmatch/internal/trace"
)

func TestRateGatePerKey(t *testing.T) {
	g := NewRateGate(time.Hour)
	if !g.Allow("5xx") {
		t.Fatal("first 5xx must pass")
	}
	if g.Allow("5xx") {
		t.Fatal("second 5xx within the interval must be limited")
	}
	// The point of per-trigger budgets: a 5xx burst cannot starve anomaly
	// captures.
	if !g.Allow("anomaly-p99") {
		t.Fatal("a different trigger type has its own budget")
	}
	if !NewRateGate(0).Allow("x") || !NewRateGate(-1).Allow("x") {
		t.Fatal("non-positive interval disables limiting")
	}
	var nilGate *RateGate
	if !nilGate.Allow("x") {
		t.Fatal("nil gate allows everything")
	}
}

// reqWindow builds a delta window whose request histogram saw n
// observations of val seconds.
func reqWindow(val float64, n int) obs.Window {
	reg := obs.NewRegistry()
	h := reg.Histogram("server.request_seconds.events", obs.TimeBuckets())
	for i := 0; i < n; i++ {
		h.Observe(val)
	}
	return obs.Window{Histograms: reg.Snapshot().Histograms}
}

func testWatchdog(t *testing.T, dir string, cfg AnomalyConfig) (*Watchdog, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	fl := trace.NewFlight(1024)
	wd := newWatchdog(reg, fl, dir, 16, cfg)
	t.Cleanup(wd.Close)
	return wd, reg
}

func TestWatchdogP99Trigger(t *testing.T) {
	dir := t.TempDir()
	wd, reg := testWatchdog(t, dir, AnomalyConfig{
		Sustain: 2, MinCount: 1, RateLimit: -1, ProfileDuration: 20 * time.Millisecond,
	})

	// Calm traffic builds the baseline; nothing may fire.
	for i := 0; i < 10; i++ {
		wd.Observe(reqWindow(0.001, 100))
	}
	if got := reg.Counter("server.anomaly.p99").Value(); got != 0 {
		t.Fatalf("calm windows fired %d times", got)
	}
	// One bad window is noise...
	wd.Observe(reqWindow(0.5, 100))
	if got := reg.Counter("server.anomaly.p99").Value(); got != 0 {
		t.Fatalf("single anomalous window fired (sustain=2)")
	}
	// ...a sustained run is a capture.
	wd.Observe(reqWindow(0.5, 100))
	if got := reg.Counter("server.anomaly.p99").Value(); got != 1 {
		t.Fatalf("sustained blowup fired %d times, want 1", got)
	}
	if got := reg.Counter("server.anomaly.captures").Value(); got != 1 {
		t.Fatalf("captures = %d, want 1", got)
	}
	wd.Close() // join the async CPU profile

	// The evidence pair is on disk.
	var gotTrace, gotProf bool
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "anomaly-p99-") && strings.HasSuffix(e.Name(), ".trace.json") {
			gotTrace = true
		}
		if strings.HasPrefix(e.Name(), "anomaly-p99-") && strings.HasSuffix(e.Name(), ".pprof") {
			gotProf = true
		}
	}
	if !gotTrace || !gotProf {
		t.Fatalf("evidence pair missing: trace=%v pprof=%v (dir: %v)", gotTrace, gotProf, entries)
	}

	// And /debug/evidence lists it.
	rec := httptest.NewRecorder()
	evidenceHandler(dir).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/evidence", nil))
	var doc EvidenceListing
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Files) < 2 || doc.Dir != dir {
		t.Fatalf("evidence listing = %+v, want both files under %s", doc, dir)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("evidence Content-Type = %q", ct)
	}
}

func TestWatchdogQueueTrigger(t *testing.T) {
	wd, reg := testWatchdog(t, t.TempDir(), AnomalyConfig{Sustain: 2, RateLimit: -1, ProfileDuration: time.Millisecond})
	full := obs.Window{Gauges: map[string]int64{"server.shard.0.queue_depth": 15}} // 15/16 > 0.9
	calm := obs.Window{Gauges: map[string]int64{"server.shard.0.queue_depth": 2}}
	wd.Observe(full)
	wd.Observe(calm) // streak must reset
	wd.Observe(full)
	if got := reg.Counter("server.anomaly.queue").Value(); got != 0 {
		t.Fatalf("non-consecutive saturation fired %d times", got)
	}
	wd.Observe(full)
	wd.Observe(full)
	if got := reg.Counter("server.anomaly.queue").Value(); got != 1 {
		t.Fatalf("sustained saturation fired %d times, want 1", got)
	}
}

func TestWatchdogLagTrigger(t *testing.T) {
	wd, reg := testWatchdog(t, t.TempDir(), AnomalyConfig{Sustain: 2, LagLSN: 100, RateLimit: -1, ProfileDuration: time.Millisecond})
	lagging := obs.Window{Gauges: map[string]int64{"replica.lag_lsn": 5000}}
	wd.Observe(lagging)
	wd.Observe(lagging)
	if got := reg.Counter("server.anomaly.lag").Value(); got != 1 {
		t.Fatalf("sustained lag fired %d times, want 1", got)
	}
}

func TestWatchdogRateLimit(t *testing.T) {
	wd, reg := testWatchdog(t, t.TempDir(), AnomalyConfig{Sustain: 1, LagLSN: 100, RateLimit: time.Hour, ProfileDuration: time.Millisecond})
	lagging := obs.Window{Gauges: map[string]int64{"replica.lag_lsn": 5000}}
	wd.Observe(lagging)
	wd.Observe(lagging)
	if got := reg.Counter("server.anomaly.lag").Value(); got != 2 {
		t.Fatalf("trigger counter = %d, want 2 (counting is not rate-limited)", got)
	}
	if got := reg.Counter("server.anomaly.captures").Value(); got != 1 {
		t.Fatalf("captures = %d, want 1 (second capture limited)", got)
	}
	if got := reg.Counter("server.anomaly.suppressed").Value(); got != 1 {
		t.Fatalf("suppressed = %d, want 1", got)
	}
}

// TestServerSeriesEndpoints drives the new debug surface end to end on a
// live server: the sampler populates /debug/metrics/series, the prom and
// evidence endpoints answer with the right Content-Types, and Drain stops
// the sampler with a final flush.
func TestServerSeriesEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := New(Config{
		Metrics:        reg,
		SampleInterval: 10 * time.Millisecond,
		DataDir:        filepath.Join(dir, "data"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Generate a little traffic, then wait for at least one sample tick.
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions", nil))
		if rec.Code != 200 {
			t.Fatalf("list: HTTP %d", rec.Code)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ws := s.Rollup().Windows(0); len(ws) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no windows")
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics/series?window=1m", nil))
	var series obs.Series
	if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
		t.Fatalf("series decode: %v", err)
	}
	if len(series.Windows) == 0 || series.IntervalSeconds != 0.01 {
		t.Fatalf("series = %d windows interval %v", len(series.Windows), series.IntervalSeconds)
	}
	var listed int64
	for _, w := range series.Windows {
		listed += w.Counters["server.requests.list"]
	}
	if listed != 3 {
		t.Fatalf("series accounts for %d list requests, want 3", listed)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics/prom", nil))
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("prom Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "server_requests_list 3") {
		t.Errorf("prom exposition missing server_requests_list:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/evidence", nil))
	var ev EvidenceListing
	if err := json.Unmarshal(rec.Body.Bytes(), &ev); err != nil {
		t.Fatalf("evidence decode: %v", err)
	}
	if ev.Dir != filepath.Join(dir, "data", "evidence") {
		t.Errorf("evidence dir = %q, want under the data dir", ev.Dir)
	}

	// Drain flushes a final window and is safe to call with the sampler
	// running.
	s.Drain()
}
