package server

import (
	"context"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"specmatch/internal/market"
	"specmatch/internal/online"
)

// TestWALOverhead guards the durability tax the same way the repo's other
// benchguards work: the equality half is always on, the timing half runs
// under RUN_BENCHCHECK=1 (`make benchcheck`).
//
// Equality (always on): a WAL-backed store and an in-memory store fed the
// identical workload must end in bit-for-bit identical session states —
// durability is a pure observer of the serving path.
//
// Timing (RUN_BENCHCHECK=1): under a saturating closed-loop workload — many
// more concurrent clients than shards, so the shard loops stay busy while
// acknowledgements wait out the fsync batch — WAL-on serving must stay
// within 1.25x of WAL-off, measured side by side on this machine. The
// saturation matters: the shard loop never blocks on disk, so with full
// queues the only WAL cost on the critical path is the append itself. An
// idle-store latency comparison would instead measure the fsync batching
// interval, which is a latency floor, not a throughput cost. The batch
// interval is set wide (25ms) for the same reason: each fsync burns real
// CPU in the kernel's journal path, so the fsync *rate* — which scales
// with wall time, not with records — would otherwise dominate the
// measurement on small machines and drown out the per-record cost this
// guard is meant to catch.
func TestWALOverhead(t *testing.T) {
	timing := os.Getenv("RUN_BENCHCHECK") == "1"
	if testing.Short() {
		t.Skip("saturating workload; skipped in -short")
	}

	const (
		shards  = 2
		workers = 256
		steps   = 45 // per worker
		buyers  = 28
	)
	m, err := market.Generate(market.Config{Sellers: 5, Buyers: buyers, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}

	// run executes the fixed workload against a fresh store and returns the
	// wall time of the step phase plus the final session states. Every
	// worker owns one session and applies a deterministic per-worker event
	// sequence, so the final state is independent of interleaving and must
	// be identical across runs and configurations.
	run := func(withWAL bool) (time.Duration, map[string]online.Snapshot) {
		cfg := Config{Shards: shards}
		if withWAL {
			cfg.DataDir = t.TempDir()
			cfg.FsyncInterval = 25 * time.Millisecond
		}
		st := mustStore(t, cfg)
		defer st.Close()
		ctx := context.Background()
		ids := make([]string, workers)
		for w := range ids {
			id, _, err := st.Create(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			ids[w] = id
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			w := w
			go func() {
				defer wg.Done()
				for i := 0; i < steps; i++ {
					ev := online.Event{Arrive: []int{(w*13 + i) % buyers}}
					if i%3 == 2 {
						ev.Depart = []int{(w*7 + i) % buyers}
					}
					if _, err := st.Step(ctx, ids[w], ev); err != nil {
						t.Errorf("worker %d step %d: %v", w, i, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		d := time.Since(start)
		return d, snapshotAll(t, st)
	}

	iters := 1
	if timing {
		iters = 3
	}
	best := func(withWAL bool) (time.Duration, map[string]online.Snapshot) {
		bestD, snaps := run(withWAL)
		for k := 1; k < iters; k++ {
			if d, s := run(withWAL); d < bestD {
				bestD, snaps = d, s
			}
		}
		return bestD, snaps
	}

	offDur, offSnaps := best(false)
	onDur, onSnaps := best(true)
	if !reflect.DeepEqual(onSnaps, offSnaps) {
		t.Error("WAL-backed store ends in a different state than the in-memory store under the identical workload")
	}

	if !timing {
		return
	}
	ratio := float64(onDur) / float64(offDur)
	t.Logf("wal-off %v, wal-on %v (%.2fx) for %d steps", offDur, onDur, ratio, workers*steps)
	if ratio > 1.25 {
		t.Errorf("WAL-on serving is %.2fx of WAL-off, budget is 1.25x (%v vs %v)", ratio, onDur, offDur)
	}
}
