package server

// Tests for the unified event schema and point-in-time forks: the committed
// v0-generation data dir must recover bit-for-bit under the bilingual
// decoders, an event batch must mean the same thing on every surface it
// crosses (HTTP JSON view, canonical binary wire, WAL replay), and a fork at
// any durable prefix must equal the session the uninterrupted run had at
// that point — continuing with bit-identical StepStats.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"reflect"
	"sort"
	"sync"
	"testing"

	"specmatch/internal/eventlog"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
)

// TestV0DataDirRecovery recovers the committed pre-schema data dir — v0 JSON
// record bodies and checkpoints, written by the server as it was before the
// unified schema existed, including a torn tail on shard-001 — and compares
// every session against the state snapshot pinned next to it. This is the
// backward-compatibility contract: a v1 binary can be pointed at a v0 data
// dir and recovers exactly what the v0 binary would have.
func TestV0DataDirRecovery(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, "testdata/v0-datadir", dir)

	var want map[string]online.Snapshot
	data, err := os.ReadFile("testdata/v0-expected.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	st := mustStore(t, durableConfig(dir, 2))
	got := snapshotAll(t, st)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered v0 state differs from pinned expectation:\n got %+v\nwant %+v", got, want)
	}
	// The fixture's shard-001 log ends in a torn frame; recovery must have
	// classified it as such, not as corruption.
	if st.Recovery.TornRecords == 0 {
		t.Error("fixture's torn tail was not observed during recovery")
	}

	// The upgraded store keeps working in place: new mutations (v1 bodies in
	// the same logs) land on recovered v0 state and survive another restart.
	ctx := context.Background()
	if _, err := st.Step(ctx, "m00000001", online.Event{Arrive: []int{4}}); err != nil {
		t.Fatal(err)
	}
	want2 := snapshotAll(t, st)
	st.Close()
	st2 := mustStore(t, durableConfig(dir, 2))
	defer st2.Close()
	if got2 := snapshotAll(t, st2); !reflect.DeepEqual(got2, want2) {
		t.Fatalf("mixed-generation restart diverged:\n got %+v\nwant %+v", got2, want2)
	}
}

// TestCrossCodecEquivalence drives the same event batches down two paths: a
// plain in-memory store applying them directly, and the full codec gauntlet —
// the HTTP JSON view, re-decoded, re-encoded as the canonical binary wire
// format, decoded again, applied to a durable store, and finally replayed
// from the WAL after a restart. Both stores must end reflect.DeepEqual-equal,
// and every per-event StepStats along the way must match exactly.
func TestCrossCodecEquivalence(t *testing.T) {
	dir := t.TempDir()
	dst := mustStore(t, durableConfig(dir, 2))
	ref := mustStore(t, Config{Shards: 2})
	defer ref.Close()
	ctx := context.Background()

	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 12, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	idD, _, err := dst.Create(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	idR, _, err := ref.Create(ctx, m)
	if err != nil || idD != idR {
		t.Fatalf("create: %v (ids %s vs %s)", err, idD, idR)
	}

	trace := online.SyntheticChurn(m, 33, 40)
	for i := 0; i < len(trace); i += 4 {
		batch := trace[i:min(i+4, len(trace))]

		// JSON view → events → canonical binary → events: what a client
		// posting JSON and a client posting binary both reduce to.
		jsonBody, err := json.Marshal(batch)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON []online.Event
		if err := json.Unmarshal(jsonBody, &viaJSON); err != nil {
			t.Fatal(err)
		}
		viaWire, err := eventlog.DecodeBatch(eventlog.EncodeBatch(viaJSON))
		if err != nil {
			t.Fatal(err)
		}

		gotRes, err := dst.StepBatch(ctx, idD, viaWire)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := ref.StepBatch(ctx, idR, batch)
		if err != nil {
			t.Fatal(err)
		}
		for k := range wantRes {
			if gotRes[k].Stats != wantRes[k].Stats {
				t.Fatalf("batch %d event %d: stats diverged across codecs: %+v vs %+v",
					i/4, k, gotRes[k].Stats, wantRes[k].Stats)
			}
		}
	}

	// The durable store's state came through every codec; the reference's
	// through none. They must be identical now and after a WAL replay.
	want := snapshotAll(t, ref)
	if got := snapshotAll(t, dst); !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-codec state diverged before restart:\n got %+v\nwant %+v", got, want)
	}
	dst.Close()
	dst = mustStore(t, durableConfig(dir, 2))
	defer dst.Close()
	if got := snapshotAll(t, dst); !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-codec state diverged after WAL replay:\n got %+v\nwant %+v", got, want)
	}
}

// TestForkEquivalenceEveryPrefix forks one session at every LSN of its
// durable history and checks each child against an uninterrupted reference
// replayed to the same prefix — then steps both forward through the rest of
// the trace, demanding bit-identical StepStats the whole way. Together the
// two halves say a fork is the session as it was, not merely something
// similar to it.
func TestForkEquivalenceEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	st := mustStore(t, durableConfig(dir, 1)) // one shard: LSNs are dense and ours alone
	defer st.Close()
	ctx := context.Background()

	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st.Create(ctx, m) // LSN 1
	if err != nil {
		t.Fatal(err)
	}
	// Mobile churn: the trace carries Move events, so every fork must come
	// back with the session's post-move geometry and graphs (the spec is
	// taken from the session's own market), not the create-time deployment.
	trace := online.SyntheticMobileChurn(m, 17, 25)
	for _, ev := range trace { // LSNs 2..len(trace)+1
		if _, err := st.Step(ctx, id, ev); err != nil {
			t.Fatal(err)
		}
	}
	tail := uint64(len(trace) + 1)

	for at := uint64(1); at <= tail; at++ {
		res, err := st.Fork(ctx, id, at)
		if err != nil {
			t.Fatalf("fork at lsn %d: %v", at, err)
		}
		if res.AtLSN != at || res.From != id {
			t.Fatalf("fork at lsn %d reported at_lsn=%d from=%s", at, res.AtLSN, res.From)
		}
		prefix := int(at - 1) // events applied by LSN at: steps 1..at-1

		// Reference: a fresh session stepped through the same prefix.
		refM, err := market.FromSpec(m.Spec())
		if err != nil {
			t.Fatal(err)
		}
		refS, err := online.NewSession(refM, st.sessionOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range trace[:prefix] {
			if _, err := refS.Step(ev); err != nil {
				t.Fatal(err)
			}
		}
		if want := refS.Snapshot(); !reflect.DeepEqual(res.Snapshot, want) {
			t.Fatalf("fork at lsn %d: snapshot differs from reference prefix:\n got %+v\nwant %+v", at, res.Snapshot, want)
		}

		// Forward equivalence: the fork continues exactly as the original did.
		for k, ev := range trace[prefix:] {
			gotStats, err := st.Step(ctx, res.ID, ev)
			if err != nil {
				t.Fatalf("fork at lsn %d: stepping child: %v", at, err)
			}
			wantStats, err := refS.Step(ev)
			if err != nil {
				t.Fatal(err)
			}
			if gotStats != wantStats {
				t.Fatalf("fork at lsn %d, replayed step %d: stats diverged: %+v vs %+v", at, k, gotStats, wantStats)
			}
		}
		final, err := st.Get(ctx, res.ID)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := st.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(final, orig) {
			t.Fatalf("fork at lsn %d fully replayed differs from original:\n got %+v\nwant %+v", at, final, orig)
		}
		if err := st.Delete(ctx, res.ID); err != nil { // keep the fleet small
			t.Fatal(err)
		}
	}

	// Horizon errors: past the tail (the shard's counter moved past `tail`
	// while the children above were stepped, so probe far beyond any of it),
	// and before the session existed.
	if _, err := st.Fork(ctx, id, uint64(1)<<60); !errors.Is(err, ErrLSNHorizon) {
		t.Errorf("fork past tail: got %v, want ErrLSNHorizon", err)
	}
	if _, err := st.Fork(ctx, "nope", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("fork of unknown id: got %v, want ErrNotFound", err)
	}
}

// Forking requires durability by design: there is no log to cut a prefix
// from in a memory-only store.
func TestForkRequiresDurability(t *testing.T) {
	st := mustStore(t, Config{Shards: 1})
	defer st.Close()
	ctx := context.Background()
	m, err := market.Generate(market.Config{Sellers: 2, Buyers: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st.Create(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Fork(ctx, id, 0); !errors.Is(err, ErrNotDurable) {
		t.Errorf("fork on in-memory store: got %v, want ErrNotDurable", err)
	}
}

// TestForkDuringConcurrentSteps races tail forks against a stream of
// concurrent steps. Every fork must land on some consistent prefix: its
// snapshot must equal a reference session replayed through exactly the
// events with LSN ≤ the fork point, for whatever interleaving the shard
// serialized. StepBatch's reported LSNs provide the ground-truth order.
func TestForkDuringConcurrentSteps(t *testing.T) {
	dir := t.TempDir()
	st := mustStore(t, durableConfig(dir, 1))
	defer st.Close()
	ctx := context.Background()

	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st.Create(ctx, m)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	byLSN := map[uint64]online.Event{}
	var forks []ForkResult

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			events := online.SyntheticChurn(m, int64(100+w), 30)
			for _, ev := range events {
				res, err := st.StepBatch(ctx, id, []online.Event{ev})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				mu.Lock()
				byLSN[res[0].LSN] = ev
				mu.Unlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			res, err := st.Fork(ctx, id, 0)
			if err != nil {
				t.Errorf("fork %d: %v", i, err)
				return
			}
			mu.Lock()
			forks = append(forks, res)
			mu.Unlock()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	for _, fr := range forks {
		refM, err := market.FromSpec(m.Spec())
		if err != nil {
			t.Fatal(err)
		}
		refS, err := online.NewSession(refM, st.sessionOptions())
		if err != nil {
			t.Fatal(err)
		}
		// LSNs missing from the ledger are the forks' own records (they share
		// the single shard); the parent's history is exactly the recorded
		// steps, replayed in LSN order.
		lsns := make([]uint64, 0, len(byLSN))
		for lsn := range byLSN {
			if lsn <= fr.AtLSN {
				lsns = append(lsns, lsn)
			}
		}
		sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
		for _, lsn := range lsns {
			if _, err := refS.Step(byLSN[lsn]); err != nil {
				t.Fatal(err)
			}
		}
		if want := refS.Snapshot(); !reflect.DeepEqual(fr.Snapshot, want) {
			t.Fatalf("fork %s at lsn %d is not the prefix state:\n got %+v\nwant %+v", fr.ID, fr.AtLSN, fr.Snapshot, want)
		}
	}
}

// TestEventsWireFormatsHTTP posts the same batch twice — once as the JSON
// array view, once as the canonical binary wire format — to two sessions of
// the same market, and demands identical per-event results and end states.
// It also exercises the fork route's status mapping: 201 on success, 409 for
// an out-of-window lsn, 501 without a data dir.
func TestEventsWireFormatsHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Metrics: obs.NewRegistry()})
	m := testMarket(t, 3, 10, 4)

	var a, b CreateResponse
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &a); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create a: HTTP %d", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &b); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create b: HTTP %d", resp.StatusCode)
	}

	batch := []online.Event{
		{Arrive: []int{0, 1, 2, 3}},
		{ChannelDown: []int{1}},
		{Depart: []int{2}, Arrive: []int{5}},
	}
	var viaJSON BatchResponse
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+a.ID+"/events", batch, &viaJSON); resp.StatusCode != http.StatusOK {
		t.Fatalf("json batch: HTTP %d", resp.StatusCode)
	}

	resp, err := http.Post(ts.URL+"/v1/sessions/"+b.ID+"/events", eventlog.ContentType,
		bytes.NewReader(eventlog.EncodeBatch(batch)))
	if err != nil {
		t.Fatal(err)
	}
	var viaWire BatchResponse
	decErr := json.NewDecoder(resp.Body).Decode(&viaWire)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		t.Fatalf("binary batch: HTTP %d, decode err %v", resp.StatusCode, decErr)
	}

	if viaJSON.Count != len(batch) || viaWire.Count != len(batch) {
		t.Fatalf("batch counts: json %d, wire %d, want %d", viaJSON.Count, viaWire.Count, len(batch))
	}
	for k := range batch {
		if viaJSON.Results[k].StepStats != viaWire.Results[k].StepStats {
			t.Fatalf("event %d: stats differ across wire formats: %+v vs %+v",
				k, viaJSON.Results[k].StepStats, viaWire.Results[k].StepStats)
		}
	}
	var sa, sb CreateResponse
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+a.ID, nil, &sa)
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+b.ID, nil, &sb)
	sa.ID, sb.ID = "", ""
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("end states differ across wire formats:\n json %+v\n wire %+v", sa, sb)
	}

	// A corrupt binary batch is a 400, atomically rejected.
	bad := eventlog.EncodeBatch(batch)
	bad[len(bad)-2] ^= 0x10
	resp, err = http.Post(ts.URL+"/v1/sessions/"+a.ID+"/events", eventlog.ContentType, bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt binary batch: HTTP %d, want 400", resp.StatusCode)
	}

	// Forking an in-memory server is 501 Not Implemented.
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+a.ID+"/fork", nil, nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("fork without data dir: HTTP %d, want 501", resp.StatusCode)
	}
}

// TestForkHTTP drives the fork route on a durable server: 201 with the
// child's state, 404 for unknown sessions, 409 outside the retained window,
// 400 for an unparsable lsn.
func TestForkHTTP(t *testing.T) {
	_, ts := newTestServer(t, durableConfig(t.TempDir(), 2))
	m := testMarket(t, 3, 10, 4)

	var created CreateResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateRequest{Spec: m.Spec()}, &created)
	var stats online.StepStats
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/events", online.Event{Arrive: []int{0, 1, 2}}, &stats)

	var fork ForkResponse
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/fork", nil, &fork)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("fork: HTTP %d", resp.StatusCode)
	}
	if fork.From != created.ID || fork.ID == created.ID || fork.Snapshot.Active != 3 {
		t.Fatalf("fork response %+v", fork)
	}
	var child CreateResponse
	if resp := doJSON(t, "GET", ts.URL+"/v1/sessions/"+fork.ID, nil, &child); resp.StatusCode != http.StatusOK {
		t.Fatalf("child get: HTTP %d", resp.StatusCode)
	}
	if child.Active != 3 {
		t.Fatalf("child state %+v", child)
	}

	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/nope/fork", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fork of unknown id: HTTP %d, want 404", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/fork?lsn=999999", nil, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("fork past tail: HTTP %d, want 409", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/fork?lsn=banana", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fork with bad lsn: HTTP %d, want 400", resp.StatusCode)
	}
}
