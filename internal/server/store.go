// Package server is the serving layer that turns the one-shot matching
// engine into a continuously operating spectrum market: it hosts many
// concurrent online.Sessions in a sharded store behind an HTTP/JSON API
// (cmd/specserved). Each shard's sessions are owned by a single goroutine
// running an event loop over a bounded queue, so per-session operations are
// serialized — deterministic and lock-free on the hot path — while distinct
// shards serve tenants in parallel. Overload is handled by admission
// control at the queue (ErrQueueFull → HTTP 429 with Retry-After), not by
// unbounded buffering, and a draining store refuses new work while flushing
// what it already accepted, which is what makes SIGTERM lossless:
// everything admitted is applied before the process exits.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specmatch/internal/core"
	"specmatch/internal/eventlog"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/replica"
	"specmatch/internal/trace"
	"specmatch/internal/wal"
)

// Store errors, mapped onto HTTP status codes by the handler layer.
var (
	// ErrNotFound reports an unknown session id (HTTP 404).
	ErrNotFound = errors.New("server: session not found")
	// ErrQueueFull reports an overloaded shard; the client should back off
	// and retry (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("server: shard queue full")
	// ErrSessionLimit reports that the store holds MaxSessions live
	// sessions (HTTP 429 + Retry-After).
	ErrSessionLimit = errors.New("server: session limit reached")
	// ErrDraining reports a store that is shutting down (HTTP 503).
	ErrDraining = errors.New("server: draining")
	// ErrNotDurable reports a fork on an in-memory store: a point-in-time
	// fork replays the durable log, which does not exist without a DataDir
	// (HTTP 501).
	ErrNotDurable = errors.New("server: fork requires a durable store (run with a data dir)")
	// ErrLSNHorizon reports a fork lsn outside the retained window: past the
	// shard's durable tail, below the newest checkpoint (files before it are
	// deleted on rotation), or before the session existed (HTTP 409).
	ErrLSNHorizon = errors.New("server: lsn outside the retained window")
)

// Config tunes the store and its HTTP front end.
type Config struct {
	// Shards is the number of session shards, each with its own event-loop
	// goroutine and queue. Zero means runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth bounds each shard's pending-operation queue; a full queue
	// rejects with ErrQueueFull instead of buffering without limit. Zero
	// means 256.
	QueueDepth int
	// MaxSessions caps live sessions across all shards. Zero means 16384.
	MaxSessions int
	// RequestTimeout is the per-request deadline the HTTP layer applies to
	// every /v1 operation. Zero means 5s.
	RequestTimeout time.Duration
	// Engine is the core.Options template every hosted session runs with.
	// Leave Workers at 1 for serving: shards already parallelize across
	// sessions, and per-step fan-out would oversubscribe the host.
	Engine core.Options
	// Metrics receives the server.* instrumentation (names in PROTOCOL.md).
	// Nil disables it.
	Metrics *obs.Registry

	// Flight, when non-nil, records causal spans across the serving path:
	// http.<route> per request (parented on the client's traceparent header),
	// server.shard_op per executed store operation, and — via the sessions'
	// engine options — online.step / core.* beneath them. Nil disables
	// tracing.
	Flight *trace.Flight

	// OnServerError, when non-nil, is called (from the handler goroutine)
	// after any request completes with a 5xx status — specserved hooks a
	// rate-limited flight-recorder dump here so the spans around a failure
	// are preserved even if the process never receives a signal.
	OnServerError func()

	// SessionEvents bounds each hosted session's protocol-event recorder:
	// every Create gives the session its OWN bounded trace.Recorder keeping
	// at most this many events (overflow is counted, not retained), so a
	// long-lived session cannot grow without bound and shards never share
	// recorder state. Zero means 4096; negative disables per-session
	// recording entirely. A Recorder set on the Engine template is ignored —
	// sharing one recorder across shards would race.
	SessionEvents int

	// DataDir, when non-empty, makes the store durable: every mutation
	// (create, applied event, adopting rebuild, delete) is written to a
	// per-shard write-ahead log under DataDir and acknowledged only after
	// the append is fsynced; periodic checkpoints bound replay time. On
	// construction the store recovers every session from the newest
	// checkpoint plus log replay. Empty keeps the store purely in-memory.
	DataDir string
	// FsyncInterval batches WAL fsyncs: appends accumulate and are synced
	// together at this interval, so acknowledgement latency is bounded by
	// it while throughput stays decoupled from fsync rate. Zero means 2ms;
	// negative fsyncs every append (strict mode, mainly for tests).
	FsyncInterval time.Duration
	// CheckpointEvery rotates a shard's log after this many durable
	// records: the shard state is snapshotted atomically and the old log
	// deleted. Zero means 4096; negative disables periodic checkpoints
	// (one is still written at open and close).
	CheckpointEvery int
	// WALRepair tolerates mid-log or mid-checkpoint corruption during
	// recovery by truncating at the first corrupt frame instead of
	// refusing to start. Everything after the truncation point is lost;
	// without it, corruption anywhere but a torn tail is a startup error.
	WALRepair bool

	// SampleInterval paces the always-on metrics sampler that feeds
	// /debug/metrics/series and the anomaly watchdog: every interval the
	// registry is snapshotted and the delta window appended to a bounded
	// ring. Zero means 1s; negative disables the sampler (the series
	// endpoint then serves an empty document and no watchdog runs). The
	// sampler also needs Metrics to be non-nil.
	SampleInterval time.Duration
	// SeriesWindows bounds the retained delta windows (the series ring
	// capacity). Zero means 300 — five minutes of history at the default
	// interval.
	SeriesWindows int
	// EvidenceDir is where anomaly evidence (flight dumps + CPU profiles)
	// lands, served by GET /debug/evidence. Empty with DataDir set means
	// DataDir/evidence; empty without a DataDir disables anomaly capture.
	EvidenceDir string
	// Anomaly tunes the watchdog that turns sustained series anomalies
	// into evidence captures; see AnomalyConfig. Zero values mean
	// defaults.
	Anomaly AnomalyConfig
}

// evidenceDir resolves the node's evidence home: explicit EvidenceDir, else
// a durable store's DataDir/evidence, else none.
func (c Config) evidenceDir() string {
	if c.EvidenceDir != "" {
		return c.EvidenceDir
	}
	if c.DataDir != "" {
		return filepath.Join(c.DataDir, "evidence")
	}
	return ""
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16384
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.SessionEvents == 0 {
		c.SessionEvents = 4096
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4096
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = time.Second
	}
	if c.SeriesWindows <= 0 {
		c.SeriesWindows = 300
	}
	return c
}

type opResult struct {
	v   any
	err error
}

// op is one unit of shard work. fn runs on the shard's goroutine, so it may
// touch the shard's session map without locking; it receives the op's
// server.shard_op span context to parent any session-level spans.
type op struct {
	ctx  context.Context
	fn   func(sc trace.SpanContext) (any, error)
	done chan opResult // buffered(1): the shard never blocks on delivery

	// sc and enq exist only when the store traces: the submitting request's
	// span context and the enqueue time (for the queue_wait_us annotation).
	sc  trace.SpanContext
	enq time.Time
}

type shard struct {
	ops      chan op
	sessions map[string]*online.Session

	queueGauge *obs.Gauge
	sessGauge  *obs.Gauge

	// Durability state, owned by the shard goroutine (nil / zero when the
	// store runs without a DataDir). nextLSN is the next record's sequence
	// number; sinceCkpt counts durable records since the last checkpoint.
	dir       *wal.Dir
	nextLSN   uint64
	sinceCkpt int

	// LSN high-water marks readable without touching the shard queue (the
	// /v1/status path must answer while the queue is jammed): durableLSN
	// advances as records fsync, ckptLSN as checkpoints rotate.
	durableLSN atomic.Uint64
	ckptLSN    atomic.Uint64

	// feed broadcasts durable batches to replication subscribers; non-nil
	// exactly when dir is.
	feed *replica.Feed
}

// durable wraps a shard-op result whose acknowledgement must wait for the
// write-ahead log: the shard loop assigns each record an LSN, appends them
// in order, and delivers v to the op's done channel only when the LAST
// record is fsynced — one acknowledgement per op, even when the op logged a
// whole batch. Ops on a non-durable store never produce one.
type durable struct {
	recs []wal.Record
	v    any
	// preassigned marks records replicated from a leader: they arrive with
	// the leader's LSNs, which appendDurable must preserve instead of
	// assigning fresh ones.
	preassigned bool
}

// prepareDurable frames one WAL record body for a mutation that has NOT
// happened yet. Bodies are encoded (via internal/eventlog) before touching
// session state, so apply and log stay atomic and a checkpoint can never
// persist state the client was told failed. On a non-durable store it
// returns nil; result on a nil *durable passes the value straight through.
func (sh *shard) prepareDurable(typ wal.Type, body []byte) *durable {
	if sh.dir == nil {
		return nil
	}
	return &durable{recs: []wal.Record{{Type: typ, Body: body}}}
}

// result attaches the op's acknowledgement value: deferred through the WAL
// when d was prepared on a durable shard, immediate otherwise.
func (d *durable) result(v any) any {
	if d == nil {
		return v
	}
	d.v = v
	return d
}

// Store is the sharded session store. Construct with NewStore; Close drains
// it. All methods are safe for concurrent use.
type Store struct {
	cfg    Config
	shards []*shard

	// closing guards the draining flag against the shard channels being
	// closed mid-send: do holds it shared only across the admission check
	// and the enqueue, Close holds it exclusively while closing.
	closing  sync.RWMutex
	draining bool

	nextID atomic.Uint64
	live   atomic.Int64 // live sessions, for the MaxSessions admission check
	wg     sync.WaitGroup

	sessGauge       *obs.Gauge
	created         *obs.Counter
	forked          *obs.Counter
	deleted         *obs.Counter
	rejectFull      *obs.Counter
	rejectLimit     *obs.Counter
	rejectDraining  *obs.Counter
	expired         *obs.Counter
	eventsApplied   *obs.Counter
	rebuilds        *obs.Counter
	rebuildsAdopted *obs.Counter
	churnArrived    *obs.Counter
	churnDeparted   *obs.Counter
	churnChanUp     *obs.Counter
	churnChanDown   *obs.Counter
	churnDisplaced  *obs.Counter
	churnMoved      *obs.Counter

	walAppends       *obs.Counter
	walAppendBytes   *obs.Counter
	walFsyncs        *obs.Counter
	walFsyncSeconds  *obs.Histogram
	walCheckpoints   *obs.Counter
	walCkptSeconds   *obs.Histogram
	walErrors        *obs.Counter
	walRecovSessions *obs.Counter
	walRecovRecords  *obs.Counter
	walRecovTorn     *obs.Counter
	walRecovRepaired *obs.Counter

	// Recovery summarizes what NewStore restored from the WAL (zero value
	// for in-memory stores); specserved logs it on startup.
	Recovery RecoveryStats
}

// RecoveryStats reports one store recovery.
type RecoveryStats struct {
	// Sessions live after snapshot load + log replay.
	Sessions int
	// Records replayed from logs past the checkpoints.
	Records int
	// TornRecords dropped as torn tails (crash mid-write; never
	// acknowledged, so dropping them is correct, not lossy).
	TornRecords int
	// RepairedRecords dropped beyond corruption under Config.WALRepair.
	RepairedRecords int
}

// NewStore recovers any durable state under Config.DataDir, starts the
// shard event loops, and returns the store. Without a DataDir it cannot
// fail.
func NewStore(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	st := &Store{
		cfg:             cfg,
		sessGauge:       reg.Gauge("server.sessions"),
		created:         reg.Counter("server.sessions.created"),
		forked:          reg.Counter("server.sessions.forked"),
		deleted:         reg.Counter("server.sessions.deleted"),
		rejectFull:      reg.Counter("server.rejected.queue_full"),
		rejectLimit:     reg.Counter("server.rejected.session_limit"),
		rejectDraining:  reg.Counter("server.rejected.draining"),
		expired:         reg.Counter("server.expired"),
		eventsApplied:   reg.Counter("server.events.applied"),
		rebuilds:        reg.Counter("server.rebuilds"),
		rebuildsAdopted: reg.Counter("server.rebuilds.adopted"),
		churnArrived:    reg.Counter("server.churn.arrived"),
		churnDeparted:   reg.Counter("server.churn.departed"),
		churnChanUp:     reg.Counter("server.churn.channels_up"),
		churnChanDown:   reg.Counter("server.churn.channels_down"),
		churnDisplaced:  reg.Counter("server.churn.displaced"),
		churnMoved:      reg.Counter("server.churn.moved"),

		walAppends:       reg.Counter("server.wal.appends"),
		walAppendBytes:   reg.Counter("server.wal.append_bytes"),
		walFsyncs:        reg.Counter("server.wal.fsyncs"),
		walFsyncSeconds:  reg.Histogram("server.wal.fsync_seconds", obs.TimeBuckets()),
		walCheckpoints:   reg.Counter("server.wal.checkpoints"),
		walCkptSeconds:   reg.Histogram("server.wal.checkpoint_seconds", obs.TimeBuckets()),
		walErrors:        reg.Counter("server.wal.errors"),
		walRecovSessions: reg.Counter("server.wal.recovered.sessions"),
		walRecovRecords:  reg.Counter("server.wal.recovered.records"),
		walRecovTorn:     reg.Counter("server.wal.recovered.torn_records"),
		walRecovRepaired: reg.Counter("server.wal.recovered.repaired_records"),
	}
	st.shards = make([]*shard, cfg.Shards)
	for i := range st.shards {
		st.shards[i] = &shard{
			ops:        make(chan op, cfg.QueueDepth),
			sessions:   make(map[string]*online.Session),
			queueGauge: reg.Gauge(fmt.Sprintf("server.shard.%d.queue_depth", i)),
			sessGauge:  reg.Gauge(fmt.Sprintf("server.shard.%d.sessions", i)),
		}
	}
	if cfg.DataDir != "" {
		if err := st.openWAL(); err != nil {
			return nil, err
		}
	}
	for _, sh := range st.shards {
		st.wg.Add(1)
		go st.runShard(sh)
	}
	return st, nil
}

// shardDir is shard i's directory under DataDir.
func (st *Store) shardDir(i int) string {
	return filepath.Join(st.cfg.DataDir, fmt.Sprintf("shard-%03d", i))
}

// sessionOptions builds the engine options a hosted session runs with: the
// store's Engine template plus the session's own bounded recorder (never
// shared across shards), the store's flight recorder, and the store's
// metrics registry so the engines' core.* / core.incremental.* counters
// (names in PROTOCOL.md) aggregate into the server's /debug/metrics dump.
// Used identically on Create and on WAL recovery, so a recovered session's
// engine is configured exactly like the original's.
func (st *Store) sessionOptions() core.Options {
	eng := st.cfg.Engine
	eng.Recorder = nil
	if st.cfg.SessionEvents > 0 {
		eng.Recorder = trace.NewBoundedRecorder(st.cfg.SessionEvents)
	}
	eng.Flight = st.cfg.Flight
	eng.Metrics = st.cfg.Metrics
	return eng
}

// runShard is a shard's event loop: it owns the shard's session map and
// executes admitted operations one at a time, in admission order, until the
// queue is closed and drained. On a durable store, mutations are appended
// to the shard's WAL here and acknowledged from the fsync batcher — the
// loop itself never waits on disk, so one shard's fsync latency never
// stalls its queue. On exit the shard takes a final checkpoint and closes
// its log, which blocks until every acknowledged record is on disk: that is
// the drain barrier making SIGTERM lossless end to end
// (accepted == applied == durable).
func (st *Store) runShard(sh *shard) {
	defer st.wg.Done()
	for o := range sh.ops {
		sh.queueGauge.Add(-1)
		if o.ctx != nil && o.ctx.Err() != nil {
			// The client already gave up on this deadline; skip the work so
			// an overloaded shard sheds abandoned requests instead of
			// burning its queue budget on them.
			st.expired.Inc()
			o.done <- opResult{err: o.ctx.Err()}
			continue
		}
		span := st.cfg.Flight.Start(o.sc, "server.shard_op")
		if span.Active() && !o.enq.IsZero() {
			span.Annotate("queue_wait_us=" + strconv.FormatInt(time.Since(o.enq).Microseconds(), 10))
		}
		sc := span.Context() // End() inerts the handle; capture before it
		v, err := o.fn(sc)
		if span.Active() && err != nil {
			span.Annotate("err=1")
		}
		span.End()
		if d, ok := v.(*durable); ok && err == nil {
			st.appendDurable(sh, d, o.done, sc)
			sh.sinceCkpt += len(d.recs)
			if st.cfg.CheckpointEvery > 0 && sh.sinceCkpt >= st.cfg.CheckpointEvery {
				st.checkpointShard(sh)
			}
			continue
		}
		o.done <- opResult{v: v, err: err}
	}
	if sh.dir != nil {
		// Final checkpoint: syncs the tail of the log (releasing the last
		// acknowledgements), snapshots the drained state, and truncates.
		st.checkpointShard(sh)
		if err := sh.dir.Sync(); err != nil {
			st.walErrors.Inc()
		}
		_ = sh.dir.Close()
	}
}

// appendDurable assigns each record its LSN, appends them to the shard's
// log in order, and arranges for the op's acknowledgement to fire when the
// final record is fsynced. One callback decides the op: the log is
// sticky-failed and fires callbacks in append order, so an earlier record
// cannot fail while a later one succeeds — the last record's durability
// implies the whole op's. Each wal.append span covers exactly its record's
// append-to-durable window under the op's server.shard_op span.
func (st *Store) appendDurable(sh *shard, d *durable, done chan opResult, parent trace.SpanContext) {
	if len(d.recs) == 0 {
		done <- opResult{v: d.v}
		return
	}
	v := d.v
	for i := range d.recs {
		if d.preassigned {
			sh.nextLSN = d.recs[i].LSN
		} else {
			sh.nextLSN++
			d.recs[i].LSN = sh.nextLSN
		}
		rec := d.recs[i]
		wspan := st.cfg.Flight.Start(parent, "wal.append")
		if wspan.Active() {
			wspan.Annotate(fmt.Sprintf("lsn=%d type=%s bytes=%d", rec.LSN, rec.Type, len(rec.Body)))
		}
		st.walAppends.Inc()
		st.walAppendBytes.Add(int64(wal.EncodedSize(len(rec.Body))))
		final := i == len(d.recs)-1
		sh.dir.Append(rec, func(err error) {
			if err != nil {
				st.walErrors.Inc()
				if wspan.Active() {
					wspan.Annotate("err=1")
				}
				wspan.End()
				if final {
					done <- opResult{err: fmt.Errorf("server: wal append: %w", err)}
				}
				return
			}
			wspan.End()
			// Callbacks fire in append order, so this store is monotone.
			sh.durableLSN.Store(rec.LSN)
			if final {
				done <- opResult{v: v}
			}
		})
	}
}

// checkpointShard snapshots the shard's full state and rotates its log.
// Runs on the shard goroutine, so the session map is stable; a failure
// leaves the shard appending to its current log and is retried after the
// next CheckpointEvery records.
func (st *Store) checkpointShard(sh *shard) error {
	span := st.cfg.Flight.Start(trace.SpanContext{}, "wal.checkpoint")
	defer span.End()
	start := time.Now()
	body := marshalCheckpoint(st.nextID.Load(), sh.sessions)
	err := sh.dir.Checkpoint(sh.nextLSN, body)
	sh.sinceCkpt = 0
	st.walCkptSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		st.walErrors.Inc()
		if span.Active() {
			span.Annotate("err=1")
		}
		return err
	}
	// Checkpoint synced the log first, so everything through nextLSN is
	// durable and now also covered by the snapshot.
	sh.durableLSN.Store(sh.nextLSN)
	sh.ckptLSN.Store(sh.nextLSN)
	st.walCheckpoints.Inc()
	if span.Active() {
		span.Annotate(fmt.Sprintf("gen=%d lsn=%d sessions=%d bytes=%d",
			sh.dir.Gen(), sh.nextLSN, len(sh.sessions), len(body)))
	}
	return nil
}

// shardOf pins a session id to a shard for its whole lifetime.
func (st *Store) shardOf(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

// do admits one operation onto a shard queue and waits for its result. A
// full queue or a draining store rejects immediately; a context that
// expires while the operation is queued abandons it (the shard discards it
// unapplied when it surfaces).
func (st *Store) do(ctx context.Context, sh *shard, fn func(sc trace.SpanContext) (any, error)) (any, error) {
	o := op{ctx: ctx, fn: fn, done: make(chan opResult, 1)}
	if st.cfg.Flight.Enabled() {
		if ctx != nil {
			o.sc = trace.FromContext(ctx)
		}
		o.enq = time.Now()
	}
	st.closing.RLock()
	if st.draining {
		st.closing.RUnlock()
		st.rejectDraining.Inc()
		return nil, ErrDraining
	}
	select {
	case sh.ops <- o:
		sh.queueGauge.Add(1)
		st.closing.RUnlock()
	default:
		st.closing.RUnlock()
		st.rejectFull.Inc()
		return nil, ErrQueueFull
	}
	if ctx == nil {
		r := <-o.done
		return r.v, r.err
	}
	select {
	case r := <-o.done:
		return r.v, r.err
	case <-ctx.Done():
		// The op stays queued; the shard loop sees the expired context and
		// skips it without applying. If the shard was already mid-apply the
		// result lands in the buffered done channel and is dropped — in
		// that one race the server-side applied counters can exceed the
		// client's accepted count, never the other way around.
		return nil, ctx.Err()
	}
}

// Create places a new session for the market on a shard and returns its id
// and initial snapshot. The market must already be validated.
func (st *Store) Create(ctx context.Context, m *market.Market) (string, online.Snapshot, error) {
	if st.live.Load() >= int64(st.cfg.MaxSessions) {
		st.rejectLimit.Inc()
		return "", online.Snapshot{}, ErrSessionLimit
	}
	id := fmt.Sprintf("m%08x", st.nextID.Add(1))
	sh := st.shardOf(id)
	v, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
		var d *durable
		if sh.dir != nil {
			d = sh.prepareDurable(wal.TypeCreate, eventlog.Create{ID: id, Spec: m.Spec()}.Encode())
		}
		// Each session owns its engine options; see sessionOptions.
		s, err := online.NewSession(m, st.sessionOptions())
		if err != nil {
			return nil, err
		}
		sh.sessions[id] = s
		sh.sessGauge.Add(1)
		st.sessGauge.Add(1)
		st.created.Inc()
		st.live.Add(1)
		return d.result(s.Snapshot()), nil
	})
	if err != nil {
		return "", online.Snapshot{}, err
	}
	return id, v.(online.Snapshot), nil
}

// StepResult is one applied event's acknowledgement: its stats plus, on a
// durable store, the LSN its WAL record was assigned (0 in-memory).
type StepResult struct {
	Stats online.StepStats
	LSN   uint64
}

// Step applies one churn event to a session. The error is ErrNotFound for
// unknown ids; any other error is the event failing validation against the
// session's market.
func (st *Store) Step(ctx context.Context, id string, ev online.Event) (online.StepStats, error) {
	res, err := st.StepBatch(ctx, id, []online.Event{ev})
	if err != nil {
		return online.StepStats{}, err
	}
	return res[0].Stats, nil
}

// StepBatch applies a batch of churn events to a session as ONE shard
// operation: every event is validated against the session's market before
// anything is applied (validation is static in the market's dimensions), so
// one bad event rejects the whole batch with the session untouched — the
// single-event contract, batch-wide. Each applied event gets its own WAL
// record and LSN; the batch is acknowledged once, when the last record is
// durable.
func (st *Store) StepBatch(ctx context.Context, id string, events []online.Event) ([]StepResult, error) {
	sh := st.shardOf(id)
	v, err := st.do(ctx, sh, func(sc trace.SpanContext) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, ErrNotFound
		}
		m := s.Market()
		for k, ev := range events {
			err := ev.Validate(m.M(), m.N())
			if err == nil && len(ev.Move) > 0 && !m.HasGeometry() {
				// Pre-checked here, not left to StepTraced: a mid-batch
				// geometry failure would break the all-or-nothing contract
				// after earlier events had already been applied and logged.
				err = fmt.Errorf("move events need a market with geometry (positions and ranges)")
			}
			if err != nil {
				if len(events) > 1 {
					return nil, fmt.Errorf("event %d: %w", k, err)
				}
				return nil, err
			}
		}
		results := make([]StepResult, 0, len(events))
		var recs []wal.Record
		// The LSNs these records will receive are exact, not speculative:
		// the shard goroutine runs appendDurable immediately after this
		// function returns, with no other op in between, assigning
		// base+1 … base+len(recs) in order.
		base := sh.nextLSN
		for k, ev := range events {
			var body []byte
			if sh.dir != nil {
				body = eventlog.Step{ID: id, Event: ev}.Encode()
			}
			stats, err := s.StepTraced(ev, sc)
			if err != nil {
				// Unreachable for pre-validated events (StepTraced fails only
				// on validation); defensively the batch fails un-acked, and
				// nothing from it reaches the WAL.
				return nil, fmt.Errorf("event %d: %w", k, err)
			}
			st.eventsApplied.Inc()
			st.churnArrived.Add(int64(stats.Arrived))
			st.churnDeparted.Add(int64(stats.Departed))
			st.churnChanUp.Add(int64(stats.ChannelsUp))
			st.churnChanDown.Add(int64(stats.ChannelsDown))
			st.churnDisplaced.Add(int64(stats.Displaced))
			st.churnMoved.Add(int64(stats.Moved))
			res := StepResult{Stats: stats}
			if sh.dir != nil {
				recs = append(recs, wal.Record{Type: wal.TypeStep, Body: body})
				res.LSN = base + uint64(len(recs))
			}
			results = append(results, res)
		}
		if sh.dir == nil {
			return results, nil
		}
		return &durable{recs: recs, v: results}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]StepResult), nil
}

// Rebuild re-runs the two-stage algorithm over a session's active
// sub-market; see online.Session.Rebuild for the adopt semantics. Adopted
// reports whether the session state changed.
func (st *Store) Rebuild(ctx context.Context, id string, adopt bool) (welfare float64, adopted bool, err error) {
	sh := st.shardOf(id)
	v, err := st.do(ctx, sh, func(sc trace.SpanContext) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, ErrNotFound
		}
		var d *durable
		if adopt {
			// Replaying the record re-runs the deterministic engine, which
			// reproduces the adoption decision — the record carries no
			// result. A non-adopting rebuild is a pure read; nothing to log.
			d = sh.prepareDurable(wal.TypeRebuild, eventlog.Ref{ID: id}.Encode())
		}
		before := s.Welfare()
		w, err := s.RebuildTraced(adopt, sc)
		if err != nil {
			return nil, err
		}
		st.rebuilds.Inc()
		changed := adopt && w > before
		if changed {
			st.rebuildsAdopted.Inc()
		}
		if !adopt {
			return [2]any{w, changed}, nil
		}
		return d.result([2]any{w, changed}), nil
	})
	if err != nil {
		return 0, false, err
	}
	r := v.([2]any)
	return r[0].(float64), r[1].(bool), nil
}

// Get snapshots a session's current state.
func (st *Store) Get(ctx context.Context, id string) (online.Snapshot, error) {
	sh := st.shardOf(id)
	v, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, ErrNotFound
		}
		return s.Snapshot(), nil
	})
	if err != nil {
		return online.Snapshot{}, err
	}
	return v.(online.Snapshot), nil
}

// Delete removes a session.
func (st *Store) Delete(ctx context.Context, id string) error {
	sh := st.shardOf(id)
	_, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
		if _, ok := sh.sessions[id]; !ok {
			return nil, ErrNotFound
		}
		d := sh.prepareDurable(wal.TypeDelete, eventlog.Ref{ID: id}.Encode())
		delete(sh.sessions, id)
		sh.sessGauge.Add(-1)
		st.sessGauge.Add(-1)
		st.deleted.Inc()
		st.live.Add(-1)
		return d.result(nil), nil
	})
	return err
}

// List returns the ids of all live sessions, sorted.
func (st *Store) List(ctx context.Context) ([]string, error) {
	var ids []string
	for _, sh := range st.shards {
		v, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
			out := make([]string, 0, len(sh.sessions))
			for id := range sh.sessions {
				out = append(out, id)
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, v.([]string)...)
	}
	sort.Strings(ids)
	return ids, nil
}

// Len returns the number of live sessions.
func (st *Store) Len() int { return int(st.live.Load()) }

// Close drains the store: new operations are refused with ErrDraining,
// every operation already admitted runs to completion, and the shard
// goroutines exit. On a durable store each shard additionally takes a final
// checkpoint and blocks on the last WAL fsync before exiting, so when Close
// returns every acknowledged mutation is on disk — the SIGTERM guarantee is
// accepted == applied == durable, not just accepted == applied. Callers
// fronting the store with an HTTP server should stop the listener first
// (HTTPServer.Shutdown) so no handler is mid-admit. Close is idempotent.
func (st *Store) Close() {
	st.closing.Lock()
	if !st.draining {
		st.draining = true
		for _, sh := range st.shards {
			close(sh.ops)
		}
	}
	st.closing.Unlock()
	st.wg.Wait()
}
