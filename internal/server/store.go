// Package server is the serving layer that turns the one-shot matching
// engine into a continuously operating spectrum market: it hosts many
// concurrent online.Sessions in a sharded store behind an HTTP/JSON API
// (cmd/specserved). Each shard's sessions are owned by a single goroutine
// running an event loop over a bounded queue, so per-session operations are
// serialized — deterministic and lock-free on the hot path — while distinct
// shards serve tenants in parallel. Overload is handled by admission
// control at the queue (ErrQueueFull → HTTP 429 with Retry-After), not by
// unbounded buffering, and a draining store refuses new work while flushing
// what it already accepted, which is what makes SIGTERM lossless:
// everything admitted is applied before the process exits.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/trace"
)

// Store errors, mapped onto HTTP status codes by the handler layer.
var (
	// ErrNotFound reports an unknown session id (HTTP 404).
	ErrNotFound = errors.New("server: session not found")
	// ErrQueueFull reports an overloaded shard; the client should back off
	// and retry (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("server: shard queue full")
	// ErrSessionLimit reports that the store holds MaxSessions live
	// sessions (HTTP 429 + Retry-After).
	ErrSessionLimit = errors.New("server: session limit reached")
	// ErrDraining reports a store that is shutting down (HTTP 503).
	ErrDraining = errors.New("server: draining")
)

// Config tunes the store and its HTTP front end.
type Config struct {
	// Shards is the number of session shards, each with its own event-loop
	// goroutine and queue. Zero means runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth bounds each shard's pending-operation queue; a full queue
	// rejects with ErrQueueFull instead of buffering without limit. Zero
	// means 256.
	QueueDepth int
	// MaxSessions caps live sessions across all shards. Zero means 16384.
	MaxSessions int
	// RequestTimeout is the per-request deadline the HTTP layer applies to
	// every /v1 operation. Zero means 5s.
	RequestTimeout time.Duration
	// Engine is the core.Options template every hosted session runs with.
	// Leave Workers at 1 for serving: shards already parallelize across
	// sessions, and per-step fan-out would oversubscribe the host.
	Engine core.Options
	// Metrics receives the server.* instrumentation (names in PROTOCOL.md).
	// Nil disables it.
	Metrics *obs.Registry

	// Flight, when non-nil, records causal spans across the serving path:
	// http.<route> per request (parented on the client's traceparent header),
	// server.shard_op per executed store operation, and — via the sessions'
	// engine options — online.step / core.* beneath them. Nil disables
	// tracing.
	Flight *trace.Flight

	// OnServerError, when non-nil, is called (from the handler goroutine)
	// after any request completes with a 5xx status — specserved hooks a
	// rate-limited flight-recorder dump here so the spans around a failure
	// are preserved even if the process never receives a signal.
	OnServerError func()

	// SessionEvents bounds each hosted session's protocol-event recorder:
	// every Create gives the session its OWN bounded trace.Recorder keeping
	// at most this many events (overflow is counted, not retained), so a
	// long-lived session cannot grow without bound and shards never share
	// recorder state. Zero means 4096; negative disables per-session
	// recording entirely. A Recorder set on the Engine template is ignored —
	// sharing one recorder across shards would race.
	SessionEvents int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16384
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.SessionEvents == 0 {
		c.SessionEvents = 4096
	}
	return c
}

type opResult struct {
	v   any
	err error
}

// op is one unit of shard work. fn runs on the shard's goroutine, so it may
// touch the shard's session map without locking; it receives the op's
// server.shard_op span context to parent any session-level spans.
type op struct {
	ctx  context.Context
	fn   func(sc trace.SpanContext) (any, error)
	done chan opResult // buffered(1): the shard never blocks on delivery

	// sc and enq exist only when the store traces: the submitting request's
	// span context and the enqueue time (for the queue_wait_us annotation).
	sc  trace.SpanContext
	enq time.Time
}

type shard struct {
	ops      chan op
	sessions map[string]*online.Session

	queueGauge *obs.Gauge
	sessGauge  *obs.Gauge
}

// Store is the sharded session store. Construct with NewStore; Close drains
// it. All methods are safe for concurrent use.
type Store struct {
	cfg    Config
	shards []*shard

	// closing guards the draining flag against the shard channels being
	// closed mid-send: do holds it shared only across the admission check
	// and the enqueue, Close holds it exclusively while closing.
	closing  sync.RWMutex
	draining bool

	nextID atomic.Uint64
	live   atomic.Int64 // live sessions, for the MaxSessions admission check
	wg     sync.WaitGroup

	sessGauge       *obs.Gauge
	created         *obs.Counter
	deleted         *obs.Counter
	rejectFull      *obs.Counter
	rejectLimit     *obs.Counter
	rejectDraining  *obs.Counter
	expired         *obs.Counter
	eventsApplied   *obs.Counter
	rebuilds        *obs.Counter
	rebuildsAdopted *obs.Counter
	churnArrived    *obs.Counter
	churnDeparted   *obs.Counter
	churnChanUp     *obs.Counter
	churnChanDown   *obs.Counter
	churnDisplaced  *obs.Counter
}

// NewStore starts the shard event loops and returns the store.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	st := &Store{
		cfg:             cfg,
		sessGauge:       reg.Gauge("server.sessions"),
		created:         reg.Counter("server.sessions.created"),
		deleted:         reg.Counter("server.sessions.deleted"),
		rejectFull:      reg.Counter("server.rejected.queue_full"),
		rejectLimit:     reg.Counter("server.rejected.session_limit"),
		rejectDraining:  reg.Counter("server.rejected.draining"),
		expired:         reg.Counter("server.expired"),
		eventsApplied:   reg.Counter("server.events.applied"),
		rebuilds:        reg.Counter("server.rebuilds"),
		rebuildsAdopted: reg.Counter("server.rebuilds.adopted"),
		churnArrived:    reg.Counter("server.churn.arrived"),
		churnDeparted:   reg.Counter("server.churn.departed"),
		churnChanUp:     reg.Counter("server.churn.channels_up"),
		churnChanDown:   reg.Counter("server.churn.channels_down"),
		churnDisplaced:  reg.Counter("server.churn.displaced"),
	}
	st.shards = make([]*shard, cfg.Shards)
	for i := range st.shards {
		sh := &shard{
			ops:        make(chan op, cfg.QueueDepth),
			sessions:   make(map[string]*online.Session),
			queueGauge: reg.Gauge(fmt.Sprintf("server.shard.%d.queue_depth", i)),
			sessGauge:  reg.Gauge(fmt.Sprintf("server.shard.%d.sessions", i)),
		}
		st.shards[i] = sh
		st.wg.Add(1)
		go st.runShard(sh)
	}
	return st
}

// runShard is a shard's event loop: it owns the shard's session map and
// executes admitted operations one at a time, in admission order, until the
// queue is closed and drained.
func (st *Store) runShard(sh *shard) {
	defer st.wg.Done()
	for o := range sh.ops {
		sh.queueGauge.Add(-1)
		if o.ctx != nil && o.ctx.Err() != nil {
			// The client already gave up on this deadline; skip the work so
			// an overloaded shard sheds abandoned requests instead of
			// burning its queue budget on them.
			st.expired.Inc()
			o.done <- opResult{err: o.ctx.Err()}
			continue
		}
		span := st.cfg.Flight.Start(o.sc, "server.shard_op")
		if span.Active() && !o.enq.IsZero() {
			span.Annotate("queue_wait_us=" + strconv.FormatInt(time.Since(o.enq).Microseconds(), 10))
		}
		v, err := o.fn(span.Context())
		if span.Active() && err != nil {
			span.Annotate("err=1")
		}
		span.End()
		o.done <- opResult{v: v, err: err}
	}
}

// shardOf pins a session id to a shard for its whole lifetime.
func (st *Store) shardOf(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

// do admits one operation onto a shard queue and waits for its result. A
// full queue or a draining store rejects immediately; a context that
// expires while the operation is queued abandons it (the shard discards it
// unapplied when it surfaces).
func (st *Store) do(ctx context.Context, sh *shard, fn func(sc trace.SpanContext) (any, error)) (any, error) {
	o := op{ctx: ctx, fn: fn, done: make(chan opResult, 1)}
	if st.cfg.Flight.Enabled() {
		if ctx != nil {
			o.sc = trace.FromContext(ctx)
		}
		o.enq = time.Now()
	}
	st.closing.RLock()
	if st.draining {
		st.closing.RUnlock()
		st.rejectDraining.Inc()
		return nil, ErrDraining
	}
	select {
	case sh.ops <- o:
		sh.queueGauge.Add(1)
		st.closing.RUnlock()
	default:
		st.closing.RUnlock()
		st.rejectFull.Inc()
		return nil, ErrQueueFull
	}
	if ctx == nil {
		r := <-o.done
		return r.v, r.err
	}
	select {
	case r := <-o.done:
		return r.v, r.err
	case <-ctx.Done():
		// The op stays queued; the shard loop sees the expired context and
		// skips it without applying. If the shard was already mid-apply the
		// result lands in the buffered done channel and is dropped — in
		// that one race the server-side applied counters can exceed the
		// client's accepted count, never the other way around.
		return nil, ctx.Err()
	}
}

// Create places a new session for the market on a shard and returns its id
// and initial snapshot. The market must already be validated.
func (st *Store) Create(ctx context.Context, m *market.Market) (string, online.Snapshot, error) {
	if st.live.Load() >= int64(st.cfg.MaxSessions) {
		st.rejectLimit.Inc()
		return "", online.Snapshot{}, ErrSessionLimit
	}
	id := fmt.Sprintf("m%08x", st.nextID.Add(1))
	sh := st.shardOf(id)
	v, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
		// Each session owns its engine options: its own bounded recorder
		// (never shared across shards) and the store's flight recorder.
		eng := st.cfg.Engine
		eng.Recorder = nil
		if st.cfg.SessionEvents > 0 {
			eng.Recorder = trace.NewBoundedRecorder(st.cfg.SessionEvents)
		}
		eng.Flight = st.cfg.Flight
		s, err := online.NewSession(m, eng)
		if err != nil {
			return nil, err
		}
		sh.sessions[id] = s
		sh.sessGauge.Add(1)
		st.sessGauge.Add(1)
		st.created.Inc()
		st.live.Add(1)
		return s.Snapshot(), nil
	})
	if err != nil {
		return "", online.Snapshot{}, err
	}
	return id, v.(online.Snapshot), nil
}

// Step applies one churn event to a session. The error is ErrNotFound for
// unknown ids; any other error is the event failing validation against the
// session's market.
func (st *Store) Step(ctx context.Context, id string, ev online.Event) (online.StepStats, error) {
	sh := st.shardOf(id)
	v, err := st.do(ctx, sh, func(sc trace.SpanContext) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, ErrNotFound
		}
		stats, err := s.StepTraced(ev, sc)
		if err != nil {
			return nil, err
		}
		st.eventsApplied.Inc()
		st.churnArrived.Add(int64(stats.Arrived))
		st.churnDeparted.Add(int64(stats.Departed))
		st.churnChanUp.Add(int64(stats.ChannelsUp))
		st.churnChanDown.Add(int64(stats.ChannelsDown))
		st.churnDisplaced.Add(int64(stats.Displaced))
		return stats, nil
	})
	if err != nil {
		return online.StepStats{}, err
	}
	return v.(online.StepStats), nil
}

// Rebuild re-runs the two-stage algorithm over a session's active
// sub-market; see online.Session.Rebuild for the adopt semantics. Adopted
// reports whether the session state changed.
func (st *Store) Rebuild(ctx context.Context, id string, adopt bool) (welfare float64, adopted bool, err error) {
	sh := st.shardOf(id)
	v, err := st.do(ctx, sh, func(sc trace.SpanContext) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, ErrNotFound
		}
		before := s.Welfare()
		w, err := s.RebuildTraced(adopt, sc)
		if err != nil {
			return nil, err
		}
		st.rebuilds.Inc()
		changed := adopt && w > before
		if changed {
			st.rebuildsAdopted.Inc()
		}
		return [2]any{w, changed}, nil
	})
	if err != nil {
		return 0, false, err
	}
	r := v.([2]any)
	return r[0].(float64), r[1].(bool), nil
}

// Get snapshots a session's current state.
func (st *Store) Get(ctx context.Context, id string) (online.Snapshot, error) {
	sh := st.shardOf(id)
	v, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, ErrNotFound
		}
		return s.Snapshot(), nil
	})
	if err != nil {
		return online.Snapshot{}, err
	}
	return v.(online.Snapshot), nil
}

// Delete removes a session.
func (st *Store) Delete(ctx context.Context, id string) error {
	sh := st.shardOf(id)
	_, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
		if _, ok := sh.sessions[id]; !ok {
			return nil, ErrNotFound
		}
		delete(sh.sessions, id)
		sh.sessGauge.Add(-1)
		st.sessGauge.Add(-1)
		st.deleted.Inc()
		st.live.Add(-1)
		return nil, nil
	})
	return err
}

// List returns the ids of all live sessions, sorted.
func (st *Store) List(ctx context.Context) ([]string, error) {
	var ids []string
	for _, sh := range st.shards {
		v, err := st.do(ctx, sh, func(trace.SpanContext) (any, error) {
			out := make([]string, 0, len(sh.sessions))
			for id := range sh.sessions {
				out = append(out, id)
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, v.([]string)...)
	}
	sort.Strings(ids)
	return ids, nil
}

// Len returns the number of live sessions.
func (st *Store) Len() int { return int(st.live.Load()) }

// Close drains the store: new operations are refused with ErrDraining,
// every operation already admitted runs to completion, and the shard
// goroutines exit. Callers fronting the store with an HTTP server should
// stop the listener first (HTTPServer.Shutdown) so no handler is mid-admit.
// Close is idempotent.
func (st *Store) Close() {
	st.closing.Lock()
	if !st.draining {
		st.draining = true
		for _, sh := range st.shards {
			close(sh.ops)
		}
	}
	st.closing.Unlock()
	st.wg.Wait()
}
