package server

// This file is the WAL glue: the record payloads the store logs, checkpoint
// bodies, the data-dir meta file, and startup recovery. The wal package
// owns bytes and files; internal/eventlog owns the body encoding (v1 binary
// canonical, v0 JSON still decoded for pre-schema data dirs); this file owns
// what the records mean — how a shard's session map becomes a checkpoint and
// how records replay into live sessions. Replay leans on the engine's
// bit-determinism (same market, same event order ⇒ same matching), so a
// recovered session is indistinguishable from one that never crashed.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"specmatch/internal/eventlog"
	"specmatch/internal/market"
	"specmatch/internal/online"
	"specmatch/internal/replica"
	"specmatch/internal/wal"
)

// marshalCheckpoint serializes a shard's sessions, sorted by id so the
// bytes are deterministic for a given state, plus the store's id counter.
func marshalCheckpoint(nextID uint64, sessions map[string]*online.Session) []byte {
	cp := eventlog.Checkpoint{NextID: nextID, Sessions: make([]eventlog.SessionState, 0, len(sessions))}
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := sessions[id]
		cp.Sessions = append(cp.Sessions, eventlog.SessionState{
			ID:    id,
			Spec:  s.Market().Spec(),
			State: s.Snapshot(),
		})
	}
	return cp.Encode()
}

// metaFile pins the layout parameters a data dir was written with. Session
// ids hash to shards, so reopening with a different shard count would strand
// every session in the wrong directory; refusing with a clear error beats a
// silent wrong-shard recovery.
type metaFile struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

const metaName = "meta.json"

func (st *Store) checkMeta() error {
	path := filepath.Join(st.cfg.DataDir, metaName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		m, merr := json.Marshal(metaFile{Format: 1, Shards: st.cfg.Shards})
		if merr != nil {
			return merr
		}
		tmp := path + ".tmp"
		if werr := os.WriteFile(tmp, append(m, '\n'), 0o644); werr != nil {
			return werr
		}
		return os.Rename(tmp, path)
	}
	if err != nil {
		return err
	}
	var m metaFile
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("server: %s: %w", metaName, err)
	}
	if m.Format != 1 {
		return fmt.Errorf("server: %s: unsupported format %d", metaName, m.Format)
	}
	if m.Shards != st.cfg.Shards {
		return fmt.Errorf("server: data dir %s was written with %d shards, store configured with %d; "+
			"restart with -shards %d (session ids are sharded by hash, so the counts must match)",
			st.cfg.DataDir, m.Shards, st.cfg.Shards, m.Shards)
	}
	return nil
}

// openWAL opens every shard directory, rebuilds the sessions from the
// newest checkpoint plus log replay, writes a fresh post-recovery
// checkpoint per shard (which also persists any torn-tail truncation), and
// leaves each shard ready to append. Runs before the shard goroutines
// start, so it may touch shard state directly.
func (st *Store) openWAL() error {
	if err := os.MkdirAll(st.cfg.DataDir, 0o755); err != nil {
		return err
	}
	if err := st.checkMeta(); err != nil {
		return err
	}
	stats := func(records, bytes int, took time.Duration) {
		st.walFsyncs.Inc()
		st.walFsyncSeconds.Observe(took.Seconds())
	}
	// First pass: replay every shard, accumulating the id high-water mark
	// from checkpoints, replayed create records, and live session ids.
	var maxID uint64
	for i, sh := range st.shards {
		dir, recd, err := wal.Open(st.shardDir(i), st.cfg.FsyncInterval, st.cfg.WALRepair, stats)
		if err != nil {
			return fmt.Errorf("server: shard %d: %w (restart with WAL repair to truncate at the corruption)", i, err)
		}
		sh.dir = dir
		if err := st.replayShard(i, sh, recd, &maxID); err != nil {
			return err
		}
		sh.nextLSN = recd.MaxLSN
		sh.durableLSN.Store(recd.MaxLSN)
		// The replication feed starts at the recovered tail: nothing below it
		// will ever be published, so stream subscribers read older records
		// from the files and attach for everything after.
		sh.feed = replica.NewFeed(recd.MaxLSN)
		dir.SetOnDurable(sh.feed.Publish)
		st.Recovery.Sessions += len(sh.sessions)
		st.Recovery.TornRecords += recd.TornRecords
		st.Recovery.RepairedRecords += recd.RepairedRecords
		st.walRecovTorn.Add(int64(recd.TornRecords))
		st.walRecovRepaired.Add(int64(recd.RepairedRecords))
		st.walRecovSessions.Add(int64(len(sh.sessions)))

		// Restore gauges and scan live ids (covers checkpoints from before
		// the counter was persisted in the checkpoint body).
		sh.sessGauge.Set(int64(len(sh.sessions)))
		st.sessGauge.Add(int64(len(sh.sessions)))
		st.live.Add(int64(len(sh.sessions)))
		for id := range sh.sessions {
			bumpIDHighWater(&maxID, id)
		}
	}
	st.nextID.Store(maxID)

	// Second pass, once the store-wide counter is known: the recovered state
	// becomes each shard's new baseline and the old (possibly torn) logs are
	// deleted.
	for i, sh := range st.shards {
		if err := sh.dir.Checkpoint(sh.nextLSN, marshalCheckpoint(maxID, sh.sessions)); err != nil {
			return fmt.Errorf("server: shard %d: post-recovery checkpoint: %w", i, err)
		}
		sh.ckptLSN.Store(sh.nextLSN)
	}
	return nil
}

// bumpIDHighWater raises *maxID to a store-issued session id's number; ids
// that do not parse (never minted by Create) are ignored.
func bumpIDHighWater(maxID *uint64, id string) {
	if n, err := strconv.ParseUint(strings.TrimPrefix(id, "m"), 16, 64); err == nil && n > *maxID {
		*maxID = n
	}
}

// replayShard rebuilds shard i's sessions: checkpoint load, then log
// replay. An intact log cannot fail to replay (only validated events were
// logged, and the engine is deterministic); a record that does fail is
// treated like corruption — fatal without WALRepair, truncate-and-continue
// with it.
func (st *Store) replayShard(i int, sh *shard, recd *wal.Recovered, maxID *uint64) error {
	if len(recd.SnapshotBody) > 0 {
		cp, err := eventlog.DecodeCheckpoint(recd.SnapshotBody)
		if err != nil {
			if !st.cfg.WALRepair {
				return fmt.Errorf("server: shard %d: decoding checkpoint: %w", i, err)
			}
			st.Recovery.RepairedRecords++
			st.walRecovRepaired.Inc()
		} else {
			if cp.NextID > *maxID {
				*maxID = cp.NextID
			}
			for _, sc := range cp.Sessions {
				m, err := market.FromSpec(sc.Spec)
				if err == nil {
					var s *online.Session
					s, err = online.FromSnapshot(m, sc.State, st.sessionOptions())
					if err == nil {
						sh.sessions[sc.ID] = s
						continue
					}
				}
				if !st.cfg.WALRepair {
					return fmt.Errorf("server: shard %d: restoring session %s: %w", i, sc.ID, err)
				}
				st.Recovery.RepairedRecords++
				st.walRecovRepaired.Inc()
			}
		}
	}
	for k, r := range recd.Records {
		if err := st.applyRecord(sh, r, maxID); err != nil {
			if !st.cfg.WALRepair {
				return fmt.Errorf("server: shard %d: replaying lsn %d: %w", i, r.LSN, err)
			}
			// Prefix semantics: everything from the bad record on is
			// dropped, mirroring a truncation at the corruption point.
			dropped := len(recd.Records) - k
			st.Recovery.RepairedRecords += dropped
			st.walRecovRepaired.Add(int64(dropped))
			break
		}
		st.Recovery.Records++
		st.walRecovRecords.Inc()
	}
	return nil
}

// applyRecord replays one log record against the shard's session map,
// raising *maxID past every id a create record shows was issued — a session
// created then deleted between checkpoints appears nowhere else.
func (st *Store) applyRecord(sh *shard, r wal.Record, maxID *uint64) error {
	switch r.Type {
	case wal.TypeCreate:
		b, err := eventlog.DecodeCreate(r.Body)
		if err != nil {
			return fmt.Errorf("decoding create: %w", err)
		}
		m, err := market.FromSpec(b.Spec)
		if err != nil {
			return fmt.Errorf("create %s: %w", b.ID, err)
		}
		s, err := online.NewSession(m, st.sessionOptions())
		if err != nil {
			return fmt.Errorf("create %s: %w", b.ID, err)
		}
		sh.sessions[b.ID] = s
		bumpIDHighWater(maxID, b.ID)
	case wal.TypeStep:
		b, err := eventlog.DecodeStep(r.Body)
		if err != nil {
			return fmt.Errorf("decoding step: %w", err)
		}
		s, ok := sh.sessions[b.ID]
		if !ok {
			return fmt.Errorf("step for unknown session %s", b.ID)
		}
		if _, err := s.Step(b.Event); err != nil {
			return fmt.Errorf("step %s: %w", b.ID, err)
		}
	case wal.TypeRebuild:
		b, err := eventlog.DecodeRef(r.Body)
		if err != nil {
			return fmt.Errorf("decoding rebuild: %w", err)
		}
		s, ok := sh.sessions[b.ID]
		if !ok {
			return fmt.Errorf("rebuild for unknown session %s", b.ID)
		}
		if _, err := s.Rebuild(true); err != nil {
			return fmt.Errorf("rebuild %s: %w", b.ID, err)
		}
	case wal.TypeDelete:
		b, err := eventlog.DecodeRef(r.Body)
		if err != nil {
			return fmt.Errorf("decoding delete: %w", err)
		}
		if _, ok := sh.sessions[b.ID]; !ok {
			return fmt.Errorf("delete for unknown session %s", b.ID)
		}
		delete(sh.sessions, b.ID)
	case wal.TypeFork:
		// A fork record is self-contained: the child's complete state at the
		// moment it split off, replayed exactly like a checkpointed session.
		b, err := eventlog.DecodeFork(r.Body)
		if err != nil {
			return fmt.Errorf("decoding fork: %w", err)
		}
		m, err := market.FromSpec(b.Spec)
		if err != nil {
			return fmt.Errorf("fork %s: %w", b.ID, err)
		}
		s, err := online.FromSnapshot(m, b.State, st.sessionOptions())
		if err != nil {
			return fmt.Errorf("fork %s: %w", b.ID, err)
		}
		sh.sessions[b.ID] = s
		bumpIDHighWater(maxID, b.ID)
	default:
		return fmt.Errorf("unexpected %s record in log", r.Type)
	}
	return nil
}
