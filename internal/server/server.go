package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"specmatch/internal/eventlog"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/trace"
)

// maxBodyBytes bounds request bodies; a market spec for a few thousand
// virtual participants fits comfortably.
const maxBodyBytes = 32 << 20

// Server is the HTTP/JSON front end over a sharded session Store. Construct
// with New; serve Handler(); Drain on shutdown.
type Server struct {
	cfg   Config
	store *Store
	mux   *http.ServeMux
	reg   *obs.Registry

	// rollup is the always-on series sampler behind /debug/metrics/series;
	// watchdog turns its windows into anomaly evidence. Both may be nil
	// (no registry, or sampling disabled).
	rollup   *obs.Rollup
	watchdog *Watchdog

	// repl is the node's replication role; see replica.go. Zero value =
	// leader (every standalone node is one).
	repl replState
	// streamsDone ends live replication streams at drain; see StopStreams.
	streamsDone chan struct{}
	stopStreams sync.Once
}

// CreateRequest is the body of POST /v1/sessions.
type CreateRequest struct {
	// Spec is the market to host, in the interchange form specgen emits.
	Spec market.Spec `json:"spec"`
}

// CreateResponse is the reply to POST /v1/sessions.
type CreateResponse struct {
	ID string `json:"id"`
	online.Snapshot
}

// RebuildRequest is the body of POST /v1/sessions/{id}/rebuild. An empty
// body means adopt=true.
type RebuildRequest struct {
	Adopt *bool `json:"adopt,omitempty"`
}

// RebuildResponse is the reply to POST /v1/sessions/{id}/rebuild.
type RebuildResponse struct {
	Welfare float64 `json:"welfare"`
	Adopted bool    `json:"adopted"`
}

// EventResponse is the reply to a single-event POST /v1/sessions/{id}/events:
// the step's stats plus, on a durable store, the LSN of its WAL record. The
// embedded StepStats keeps the body a superset of the pre-batch reply, so
// older clients that unmarshal into online.StepStats still work.
type EventResponse struct {
	online.StepStats
	LSN uint64 `json:"lsn,omitempty"`
}

// BatchResponse is the reply to a batch POST /v1/sessions/{id}/events (a
// JSON array or a binary eventlog body): one result per event, in order.
type BatchResponse struct {
	Results []EventResponse `json:"results"`
	Count   int             `json:"count"`
}

// ForkResponse is the reply to POST /v1/sessions/{id}/fork.
type ForkResponse struct {
	ID    string `json:"id"`
	From  string `json:"from"`
	AtLSN uint64 `json:"at_lsn"`
	online.Snapshot
}

// ListResponse is the reply to GET /v1/sessions.
type ListResponse struct {
	Sessions []string `json:"sessions"`
	Count    int      `json:"count"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// New builds a server (and its store) from cfg. With a durable store
// (Config.DataDir) it recovers every session from the WAL before returning;
// the error is a recovery failure (or any other store-construction
// failure), and the caller should not serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := NewStore(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, store: store, reg: cfg.Metrics, streamsDone: make(chan struct{})}
	if cfg.Metrics != nil && cfg.SampleInterval > 0 {
		s.rollup = obs.NewRollup(cfg.Metrics, cfg.SampleInterval, cfg.SeriesWindows)
		if dir := cfg.evidenceDir(); dir != "" && !cfg.Anomaly.Disabled {
			s.watchdog = newWatchdog(cfg.Metrics, cfg.Flight, dir, cfg.QueueDepth, cfg.Anomaly)
			s.rollup.SetOnSample(s.watchdog.Observe)
		}
		s.rollup.Start()
	}
	mux := http.NewServeMux()
	// Write routes go through the follower gate: a follower serves reads
	// and replication but refuses mutations with 503 + an X-Leader hint.
	mux.HandleFunc("POST /v1/sessions", s.route("create", s.gated(s.handleCreate)))
	mux.HandleFunc("GET /v1/sessions", s.route("list", s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.route("get", s.handleGet))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.route("delete", s.gated(s.handleDelete)))
	mux.HandleFunc("POST /v1/sessions/{id}/events", s.route("events", s.gated(s.handleEvents)))
	mux.HandleFunc("POST /v1/sessions/{id}/rebuild", s.route("rebuild", s.gated(s.handleRebuild)))
	mux.HandleFunc("POST /v1/sessions/{id}/fork", s.route("fork", s.gated(s.handleFork)))
	mux.HandleFunc("GET /v1/status", s.route("status", s.handleStatus))
	mux.HandleFunc("GET /v1/replica/status", s.route("replica_status", s.handleReplicaStatus))
	mux.HandleFunc("POST /v1/replica/promote", s.route("promote", s.handlePromote))
	mux.HandleFunc("GET /v1/replica/shards/{shard}/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /debug/metrics", obs.Handler(cfg.Metrics))
	mux.Handle("GET /debug/metrics/series", obs.SeriesHandler(s.rollup))
	mux.Handle("GET /debug/metrics/prom", obs.PromHandler(cfg.Metrics))
	mux.Handle("GET /debug/evidence", evidenceHandler(cfg.evidenceDir()))
	mux.Handle("GET /debug/trace", trace.Handler(cfg.Flight))
	registerPprof(mux)
	s.mux = mux
	return s, nil
}

// Handler returns the server's root handler: the /v1 session API plus
// /healthz and /debug/metrics.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the underlying session store (tests, drain hooks).
func (s *Server) Store() *Store { return s.store }

// Rollup exposes the node's series sampler (tests, embedding callers);
// nil when sampling is disabled.
func (s *Server) Rollup() *obs.Rollup { return s.rollup }

// Drain flushes and closes the store. Call after the HTTP listener has
// stopped accepting (HTTPServer.Shutdown): by then every in-flight handler
// has returned, so all admitted work is applied before Drain returns. The
// sampler is stopped first — its final flush catches drain-time activity —
// and the watchdog is given time to finish any in-flight evidence capture.
func (s *Server) Drain() {
	s.rollup.Stop()
	s.watchdog.Close()
	s.StopStreams()
	s.store.Close()
}

// route wraps a handler with per-route instrumentation and the per-request
// deadline: a request counter, a latency histogram, a context that expires
// after Config.RequestTimeout, and — when the server carries a Flight — an
// http.<name> span. A client-supplied traceparent header parents the span
// (annotated remote=1, since that parent lives in the caller's process);
// either way the trace id is echoed as X-Request-Id so a client can quote
// the id when reporting a failure and the operator can find the exact spans
// in a flight dump.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("server.requests." + name)
	lat := s.reg.Histogram("server.request_seconds."+name, obs.TimeBuckets())
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		parent, remote := trace.ParseTraceparent(r.Header.Get("traceparent"))
		span := s.cfg.Flight.Start(parent, "http."+name)
		if span.Active() {
			if remote {
				span.Annotate("remote=1")
			}
			ctx = trace.ContextWith(ctx, span.Context())
			w.Header().Set("X-Request-Id", span.Context().Trace.String())
		} else if remote {
			w.Header().Set("X-Request-Id", parent.Trace.String())
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		lat.Observe(time.Since(start).Seconds())
		if span.Active() {
			span.Annotate("status=" + strconv.Itoa(sw.status))
		}
		span.End()
		if sw.status >= 500 && s.cfg.OnServerError != nil {
			s.cfg.OnServerError()
		}
	}
}

// statusWriter captures the response status for the route span and the 5xx
// hook.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// errBadRequest marks client errors (malformed JSON, invalid specs or
// events) for the 400 mapping.
var errBadRequest = errors.New("bad request")

func badRequest(err error) error {
	return fmt.Errorf("%w: %s", errBadRequest, err)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	s.reg.Counter(fmt.Sprintf("server.status.%d", code)).Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	if v != nil {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
}

// writeError maps store and validation errors onto status codes: 404 for
// unknown sessions, 429 (+ Retry-After) for admission rejections, 503 while
// draining, 504 for deadline-abandoned operations, 501 for forks on an
// in-memory store, 409 for fork LSNs outside the retained window, 400 for
// bad input.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrSessionLimit):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = http.StatusGatewayTimeout
	case errors.Is(err, ErrNotDurable):
		code = http.StatusNotImplemented
	case errors.Is(err, ErrLSNHorizon):
		code = http.StatusConflict
	case errors.Is(err, errBadRequest):
		code = http.StatusBadRequest
	}
	s.writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest(err)
	}
	return nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	m, err := market.FromSpec(req.Spec)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	id, snap, err := s.store.Create(r.Context(), m)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, CreateResponse{ID: id, Snapshot: snap})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ids, err := s.store.List(r.Context())
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ListResponse{Sessions: ids, Count: len(ids)})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.store.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, CreateResponse{ID: r.PathValue("id"), Snapshot: snap})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.Context(), r.PathValue("id")); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusNoContent, nil)
}

// decodeEvents parses the events route's three accepted bodies: the
// canonical binary batch (by Content-Type), a JSON array of events, or the
// original single JSON event. single distinguishes the legacy one-event
// reply shape from the batch reply.
func decodeEvents(r *http.Request) (events []online.Event, single bool, err error) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), eventlog.ContentType) {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			return nil, false, badRequest(err)
		}
		events, err = eventlog.DecodeBatch(data)
		if err != nil {
			return nil, false, badRequest(err)
		}
		return events, false, nil
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, false, badRequest(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if t := bytes.TrimLeft(data, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		if err := dec.Decode(&events); err != nil {
			return nil, false, badRequest(err)
		}
		return events, false, nil
	}
	var ev online.Event
	if err := dec.Decode(&ev); err != nil {
		return nil, false, badRequest(err)
	}
	return []online.Event{ev}, true, nil
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, single, err := decodeEvents(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	results, err := s.store.StepBatch(r.Context(), r.PathValue("id"), events)
	if err != nil {
		// StepBatch fails only on events that don't fit the session's market
		// (validated before any mutation), or on store-level rejections.
		if !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrQueueFull) &&
			!errors.Is(err, ErrDraining) && !errors.Is(err, context.DeadlineExceeded) &&
			!errors.Is(err, context.Canceled) {
			err = badRequest(err)
		}
		s.writeError(w, err)
		return
	}
	out := make([]EventResponse, len(results))
	for i, res := range results {
		out[i] = EventResponse{StepStats: res.Stats, LSN: res.LSN}
	}
	if single {
		s.writeJSON(w, http.StatusOK, out[0])
		return
	}
	s.writeJSON(w, http.StatusOK, BatchResponse{Results: out, Count: len(out)})
}

// handleFork serves POST /v1/sessions/{id}/fork?lsn=N: a new session from
// id's durable prefix through LSN N (omitted or 0 means the current tail).
func (s *Server) handleFork(w http.ResponseWriter, r *http.Request) {
	var lsn uint64
	if q := r.URL.Query().Get("lsn"); q != "" {
		var err error
		if lsn, err = strconv.ParseUint(q, 10, 64); err != nil {
			s.writeError(w, badRequest(fmt.Errorf("lsn: %w", err)))
			return
		}
	}
	res, err := s.store.Fork(r.Context(), r.PathValue("id"), lsn)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, ForkResponse{ID: res.ID, From: res.From, AtLSN: res.AtLSN, Snapshot: res.Snapshot})
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	adopt := true
	var req RebuildRequest
	if r.ContentLength != 0 {
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		if req.Adopt != nil {
			adopt = *req.Adopt
		}
	}
	welfare, adopted, err := s.store.Rebuild(r.Context(), r.PathValue("id"), adopt)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, RebuildResponse{Welfare: welfare, Adopted: adopted})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.store.closing.RLock()
	draining := s.store.draining
	s.store.closing.RUnlock()
	if draining {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "sessions": s.store.Len()})
}
