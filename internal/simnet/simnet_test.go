package simnet

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DropProb: -0.1}); err == nil {
		t.Error("negative drop probability should fail")
	}
	if _, err := New(Config{DropProb: 1}); err == nil {
		t.Error("drop probability 1 should fail (nothing would ever arrive)")
	}
	if _, err := New(Config{DelayMax: -1}); err == nil {
		t.Error("negative delay should fail")
	}
}

func TestOneSlotLatency(t *testing.T) {
	n := mustNew(t, Config{})
	n.Send(Message{From: Buyer(0), To: Seller(1), Payload: "hi"})
	if got := n.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}
	due := n.Step()
	if len(due) != 1 || due[0].Payload != "hi" {
		t.Fatalf("Step() = %v, want the one message", due)
	}
	if n.Now() != 1 {
		t.Errorf("Now = %d, want 1", n.Now())
	}
	if got := n.Step(); len(got) != 0 {
		t.Errorf("second Step delivered %v, want nothing", got)
	}
	if n.InFlight() != 0 {
		t.Error("InFlight should be 0 after delivery")
	}
}

func TestDeterministicOrdering(t *testing.T) {
	n := mustNew(t, Config{})
	// Send in scrambled order; delivery is sorted by (To, From, seq).
	n.Send(Message{From: Buyer(2), To: Seller(1)})
	n.Send(Message{From: Buyer(0), To: Seller(1)})
	n.Send(Message{From: Buyer(1), To: Buyer(3)})
	n.Send(Message{From: Buyer(0), To: Seller(0)})
	due := n.Step()
	wantOrder := []struct {
		to   NodeID
		from NodeID
	}{
		{Buyer(3), Buyer(1)},
		{Seller(0), Buyer(0)},
		{Seller(1), Buyer(0)},
		{Seller(1), Buyer(2)},
	}
	if len(due) != len(wantOrder) {
		t.Fatalf("delivered %d, want %d", len(due), len(wantOrder))
	}
	for k, w := range wantOrder {
		if due[k].To != w.to || due[k].From != w.from {
			t.Errorf("position %d: got %v→%v, want %v→%v", k, due[k].From, due[k].To, w.from, w.to)
		}
	}
}

func TestFIFOPerPair(t *testing.T) {
	n := mustNew(t, Config{})
	n.Send(Message{From: Buyer(0), To: Seller(0), Payload: 1})
	n.Send(Message{From: Buyer(0), To: Seller(0), Payload: 2})
	due := n.Step()
	if due[0].Payload != 1 || due[1].Payload != 2 {
		t.Errorf("same-pair messages reordered: %v", due)
	}
}

func TestDropAll(t *testing.T) {
	n := mustNew(t, Config{DropProb: 0.999999, Seed: 1})
	for k := 0; k < 100; k++ {
		n.Send(Message{From: Buyer(0), To: Seller(0)})
	}
	delivered := 0
	for k := 0; k < 110; k++ {
		delivered += len(n.Step())
	}
	st := n.Stats()
	if st.Sent != 100 {
		t.Errorf("Sent = %d, want 100", st.Sent)
	}
	if st.Dropped+st.Delivered != 100 || delivered != st.Delivered {
		t.Errorf("stats inconsistent: %+v, delivered %d", st, delivered)
	}
	if st.Dropped < 95 {
		t.Errorf("Dropped = %d, want nearly all at p≈1", st.Dropped)
	}
}

func TestDelayBounds(t *testing.T) {
	const delayMax = 3
	n := mustNew(t, Config{DelayMax: delayMax, Seed: 7})
	const sent = 200
	for k := 0; k < sent; k++ {
		n.Send(Message{From: Buyer(0), To: Seller(0), Payload: k})
	}
	delivered := 0
	for slot := 1; slot <= delayMax+1; slot++ {
		delivered += len(n.Step())
	}
	if delivered != sent {
		t.Errorf("delivered %d within %d slots, want all %d", delivered, delayMax+1, sent)
	}
}

func TestDelaySpread(t *testing.T) {
	n := mustNew(t, Config{DelayMax: 2, Seed: 3})
	const sent = 300
	for k := 0; k < sent; k++ {
		n.Send(Message{From: Buyer(0), To: Seller(0)})
	}
	perSlot := make([]int, 3)
	for slot := 0; slot < 3; slot++ {
		perSlot[slot] = len(n.Step())
	}
	for slot, count := range perSlot {
		if count < sent/6 {
			t.Errorf("slot offset %d got %d deliveries; delay not spreading", slot, count)
		}
	}
}

func TestNodeIDHelpers(t *testing.T) {
	if Buyer(3) != (NodeID{Kind: KindBuyer, Index: 3}) {
		t.Error("Buyer helper wrong")
	}
	if Seller(2) != (NodeID{Kind: KindSeller, Index: 2}) {
		t.Error("Seller helper wrong")
	}
	if Buyer(0).String() != "buyer#0" || Seller(1).String() != "seller#1" {
		t.Errorf("String: %q %q", Buyer(0).String(), Seller(1).String())
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

// TestConservationProperty: every sent message is eventually delivered or
// dropped, never duplicated.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, dropRaw uint8, delayRaw uint8) bool {
		cfg := Config{
			DropProb: float64(dropRaw%90) / 100,
			DelayMax: int(delayRaw % 5),
			Seed:     seed,
		}
		n, err := New(cfg)
		if err != nil {
			return false
		}
		const sent = 50
		for k := 0; k < sent; k++ {
			n.Send(Message{From: Buyer(k % 5), To: Seller(k % 3), Payload: k})
		}
		delivered := 0
		for slot := 0; slot < cfg.DelayMax+2; slot++ {
			delivered += len(n.Step())
		}
		st := n.Stats()
		return st.Sent == sent && st.Delivered == delivered &&
			st.Delivered+st.Dropped == sent && n.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlackoutWindow(t *testing.T) {
	n := mustNew(t, Config{Blackouts: []Blackout{{From: 1, To: 2}}})
	n.Send(Message{From: Buyer(0), To: Seller(0), Payload: "pre"}) // slot 0: delivered
	if got := n.Step(); len(got) != 1 {                            // now slot 1
		t.Fatalf("pre-blackout message lost: %v", got)
	}
	n.Send(Message{From: Buyer(0), To: Seller(0), Payload: "mid1"}) // slot 1: dropped
	n.Step()                                                        // now slot 2
	n.Send(Message{From: Buyer(0), To: Seller(0), Payload: "mid2"}) // slot 2: dropped
	n.Step()                                                        // now slot 3
	n.Send(Message{From: Buyer(0), To: Seller(0), Payload: "post"}) // slot 3: delivered
	got := n.Step()
	if len(got) != 1 || got[0].Payload != "post" {
		t.Errorf("post-blackout delivery wrong: %v", got)
	}
	if st := n.Stats(); st.Dropped != 2 {
		t.Errorf("dropped %d, want 2 (the in-window sends)", st.Dropped)
	}
}
