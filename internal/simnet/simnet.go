// Package simnet is the message-passing substrate for the asynchronous
// matching protocol (§IV). The paper's implementation model is
// slot-synchronous — "each round in the proposed algorithm takes one time
// slot" — so the network delivers a message sent in slot t at the start of
// slot t+1 by default. Fault injection (drop probability, bounded extra
// delay) lets tests and ablations exercise the protocol beyond the paper's
// idealized channel.
//
// Delivery is deterministic: messages due in a slot are handed over sorted
// by recipient, then sender, then send sequence, so protocol runs are
// reproducible regardless of scheduling.
package simnet

import (
	"fmt"
	"sort"

	"specmatch/internal/obs"
	"specmatch/internal/trace"
	"specmatch/internal/xrand"
)

// Kind distinguishes the two agent populations.
type Kind int

// Node kinds.
const (
	KindBuyer Kind = iota + 1
	KindSeller
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBuyer:
		return "buyer"
	case KindSeller:
		return "seller"
	default:
		return fmt.Sprintf("simnet.Kind(%d)", int(k))
	}
}

// NodeID addresses an agent.
type NodeID struct {
	Kind  Kind
	Index int
}

// Buyer returns the NodeID of buyer j.
func Buyer(j int) NodeID { return NodeID{Kind: KindBuyer, Index: j} }

// Seller returns the NodeID of seller i.
func Seller(i int) NodeID { return NodeID{Kind: KindSeller, Index: i} }

// String implements fmt.Stringer.
func (id NodeID) String() string { return fmt.Sprintf("%v#%d", id.Kind, id.Index) }

// less orders NodeIDs: buyers before sellers, then by index.
func (id NodeID) less(other NodeID) bool {
	if id.Kind != other.Kind {
		return id.Kind < other.Kind
	}
	return id.Index < other.Index
}

// Message is a protocol message in flight. Payload types are defined by the
// protocol layer (internal/agent).
type Message struct {
	From    NodeID
	To      NodeID
	Payload any

	seq int // send order, for deterministic FIFO tie-breaking
}

// Blackout is a window of slots during which every sent message is lost —
// a deterministic outage for liveness testing (e.g. a jammed channel or a
// crashed relay). Bounds are inclusive.
type Blackout struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// covers reports whether slot falls inside the window.
func (b Blackout) covers(slot int) bool { return slot >= b.From && slot <= b.To }

// Config tunes the network.
type Config struct {
	// DropProb is the probability each message is silently lost.
	DropProb float64
	// DelayMax adds a uniform extra delay in [0, DelayMax] slots on top of
	// the baseline one-slot latency.
	DelayMax int
	// Blackouts are outage windows; messages sent while one is active are
	// dropped deterministically.
	Blackouts []Blackout
	// Seed drives drop and delay randomness.
	Seed int64

	// Metrics, when non-nil, receives network instrumentation mirroring
	// Stats (simnet.sent, simnet.delivered, simnet.dropped) plus
	// simnet.delayed (messages that drew a nonzero extra delay) and the
	// simnet.in_flight depth gauge. Counters are cumulative across networks
	// sharing the registry; the gauge reflects the most recent network.
	// Nil disables instrumentation and never changes delivery behavior.
	Metrics *obs.Registry

	// Flight, when non-nil, records one simnet.slot span per non-empty slot,
	// parented under SpanParent. Nil disables tracing and never changes
	// delivery behavior.
	Flight *trace.Flight

	// SpanParent parents the per-slot spans (typically the agent.run root).
	SpanParent trace.SpanContext
}

// Stats counts network activity.
type Stats struct {
	Sent      int `json:"sent"`
	Delivered int `json:"delivered"`
	Dropped   int `json:"dropped"`
}

// Network is a slot-synchronous network. The zero value is not usable;
// construct with New.
type Network struct {
	cfg     Config
	rng     interface{ Float64() float64 }
	rngInt  interface{ Intn(int) int }
	now     int
	nextSeq int
	pending map[int][]Message
	stats   Stats
	met     *netMetrics // nil when Config.Metrics is nil
}

// netMetrics holds the network's registry handles, built once at New.
type netMetrics struct {
	sent      *obs.Counter
	delivered *obs.Counter
	dropped   *obs.Counter
	delayed   *obs.Counter
	inFlight  *obs.Gauge
}

func newNetMetrics(reg *obs.Registry) *netMetrics {
	if reg == nil {
		return nil
	}
	return &netMetrics{
		sent:      reg.Counter("simnet.sent"),
		delivered: reg.Counter("simnet.delivered"),
		dropped:   reg.Counter("simnet.dropped"),
		delayed:   reg.Counter("simnet.delayed"),
		inFlight:  reg.Gauge("simnet.in_flight"),
	}
}

// New returns an empty network at slot 0.
func New(cfg Config) (*Network, error) {
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		return nil, fmt.Errorf("simnet: drop probability %v outside [0,1)", cfg.DropProb)
	}
	if cfg.DelayMax < 0 {
		return nil, fmt.Errorf("simnet: negative DelayMax %d", cfg.DelayMax)
	}
	r := xrand.New(cfg.Seed)
	return &Network{
		cfg:     cfg,
		rng:     r,
		rngInt:  r,
		pending: make(map[int][]Message),
		met:     newNetMetrics(cfg.Metrics),
	}, nil
}

// Now returns the current slot number.
func (n *Network) Now() int { return n.now }

// Stats returns delivery counters.
func (n *Network) Stats() Stats { return n.stats }

// InFlight returns the number of undelivered, undropped messages.
func (n *Network) InFlight() int {
	total := 0
	for _, msgs := range n.pending {
		total += len(msgs)
	}
	return total
}

// Send enqueues a message for delivery at the start of a future slot
// (now + 1 + delay), or drops it per the fault configuration.
func (n *Network) Send(msg Message) {
	n.stats.Sent++
	if n.met != nil {
		n.met.sent.Inc()
	}
	msg.seq = n.nextSeq
	n.nextSeq++
	for _, b := range n.cfg.Blackouts {
		if b.covers(n.now) {
			n.drop()
			return
		}
	}
	if n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb {
		n.drop()
		return
	}
	delay := 0
	if n.cfg.DelayMax > 0 {
		delay = n.rngInt.Intn(n.cfg.DelayMax + 1)
	}
	due := n.now + 1 + delay
	n.pending[due] = append(n.pending[due], msg)
	if n.met != nil {
		n.met.inFlight.Add(1)
		if delay > 0 {
			n.met.delayed.Inc()
		}
	}
}

func (n *Network) drop() {
	n.stats.Dropped++
	if n.met != nil {
		n.met.dropped.Inc()
	}
}

// Step advances to the next slot and returns the messages due in it, in
// deterministic (recipient, sender, send-order) order.
func (n *Network) Step() []Message {
	n.now++
	due := n.pending[n.now]
	delete(n.pending, n.now)
	var span trace.SpanHandle
	if len(due) > 0 {
		span = n.cfg.Flight.Start(n.cfg.SpanParent, "simnet.slot")
	}
	sort.Slice(due, func(a, b int) bool {
		if due[a].To != due[b].To {
			return due[a].To.less(due[b].To)
		}
		if due[a].From != due[b].From {
			return due[a].From.less(due[b].From)
		}
		return due[a].seq < due[b].seq
	})
	n.stats.Delivered += len(due)
	if n.met != nil && len(due) > 0 {
		n.met.delivered.Add(int64(len(due)))
		n.met.inFlight.Add(-int64(len(due)))
	}
	if span.Active() {
		span.Annotate(fmt.Sprintf("slot=%d delivered=%d", n.now, len(due)))
	}
	span.End()
	return due
}

// SetSpanParent re-parents subsequent simnet.slot spans, so a caller that
// opens its run root only after constructing the network can still nest the
// slots beneath it.
func (n *Network) SetSpanParent(sc trace.SpanContext) { n.cfg.SpanParent = sc }
