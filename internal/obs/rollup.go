package obs

import (
	"sync"
	"time"
)

// Window is one sampling interval's *delta* view of a registry: how much
// each counter advanced, where each gauge ended, and which histogram
// buckets filled during the interval. Because histogram deltas keep the
// full bucket layout, true per-interval quantiles fall out of
// HistogramSnapshot.Quantile on the delta buckets — something a cumulative
// snapshot can never give you once the process has been up for a while.
type Window struct {
	// Seq is the sample's monotone index since the rollup started; a gap
	// between consecutive windows a reader holds means the ring evicted
	// some in between.
	Seq uint64 `json:"seq"`
	// StartMS/EndMS bound the interval in Unix milliseconds.
	StartMS int64 `json:"start_ms"`
	EndMS   int64 `json:"end_ms"`

	// Counters holds each counter's advance over the interval. A counter
	// that went backwards (process restart feeding a fresh registry into an
	// old name, or a wrapped value) is treated as reset: the delta is its
	// new value, never negative.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds each gauge's value at the END of the interval —
	// last-value semantics, not a delta.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms holds per-interval bucket deltas (count and sum are deltas
	// too). A histogram whose cumulative counts regressed is treated as
	// reset, like counters.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Seconds returns the window's duration.
func (w Window) Seconds() float64 {
	return float64(w.EndMS-w.StartMS) / 1e3
}

// Rate returns the named counter's per-second rate over the window; zero
// for absent counters or empty windows.
func (w Window) Rate(name string) float64 {
	s := w.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(w.Counters[name]) / s
}

// MergeHistogram sums two delta snapshots bucket by bucket — the cluster
// aggregation primitive (specmon merges the same metric's deltas across
// nodes before computing fleet-wide quantiles). The layouts must match;
// mismatched snapshots return a with ok=false.
func MergeHistogram(a, b HistogramSnapshot) (HistogramSnapshot, bool) {
	if len(a.Buckets) == 0 {
		return b, true
	}
	if len(b.Buckets) == 0 {
		return a, true
	}
	if len(a.Buckets) != len(b.Buckets) {
		return a, false
	}
	out := HistogramSnapshot{
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
		Buckets: make([]Bucket, len(a.Buckets)),
	}
	for i := range a.Buckets {
		if a.Buckets[i].UpperBound != b.Buckets[i].UpperBound {
			return a, false
		}
		out.Buckets[i] = Bucket{UpperBound: a.Buckets[i].UpperBound, Count: a.Buckets[i].Count + b.Buckets[i].Count}
	}
	return out, true
}

// Rollup samples a registry on a fixed interval and retains the most
// recent windows of deltas in a bounded ring — the node-local time-series
// layer behind /debug/metrics/series. Construct with NewRollup, then
// Start; Stop flushes a final partial window and joins the sampler
// goroutine. A nil *Rollup is valid everywhere and holds no windows,
// matching the registry's nil idiom.
//
// The sampler reads the registry through Snapshot (each metric is read
// atomically), so it never contends with writers beyond the registry's own
// name-lookup mutex; metric updates stay lock-free. Delta math is exact:
// over any run without resets, a counter's deltas across all windows sum
// to its final value (the conservation property the race test pins).
type Rollup struct {
	reg      *Registry
	interval time.Duration
	onSample func(Window)

	mu    sync.Mutex
	ring  []Window
	size  int // live windows in the ring
	next  int // ring slot the next window lands in
	seq   uint64
	prev  Snapshot
	prevT time.Time

	stop    chan struct{}
	done    chan struct{}
	started bool
	stopped bool
}

// NewRollup builds a rollup over reg sampling every interval, retaining
// the newest capacity windows. Interval and capacity are clamped to sane
// minima (10ms, 16). Nil on a nil registry.
func NewRollup(reg *Registry, interval time.Duration, capacity int) *Rollup {
	if reg == nil {
		return nil
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if capacity < 16 {
		capacity = 16
	}
	return &Rollup{
		reg:      reg,
		interval: interval,
		ring:     make([]Window, capacity),
		prev:     reg.Snapshot(),
		prevT:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling interval; zero on nil.
func (r *Rollup) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// SetOnSample installs a callback invoked with every new window, on the
// sampler goroutine (or the Sample caller). Install before Start; the
// watchdog in internal/server hangs off this hook.
func (r *Rollup) SetOnSample(fn func(Window)) {
	if r == nil {
		return
	}
	r.onSample = fn
}

// Start launches the sampler goroutine. No-op on nil or if already
// started.
func (r *Rollup) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Sample()
			case <-r.stop:
				return
			}
		}
	}()
}

// Stop ends the sampler and flushes one final (possibly partial) window,
// so drain-time activity is not lost between the last tick and exit.
// Idempotent; safe on a never-started rollup.
func (r *Rollup) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	started := r.started
	r.mu.Unlock()
	close(r.stop)
	if started {
		<-r.done
	}
	r.Sample()
}

// Sample takes one sample now: diff the registry against the previous
// snapshot, append the delta window to the ring, and invoke the OnSample
// hook. Exposed for tests and for callers that pace sampling themselves
// (specload's timeline uses the ticker; tests call Sample directly).
func (r *Rollup) Sample() Window {
	if r == nil {
		return Window{}
	}
	cur := r.reg.Snapshot()
	now := time.Now()

	r.mu.Lock()
	w := diffSnapshots(r.prev, cur)
	w.Seq = r.seq
	w.StartMS = r.prevT.UnixMilli()
	w.EndMS = now.UnixMilli()
	r.seq++
	r.prev = cur
	r.prevT = now
	r.ring[r.next] = w
	r.next = (r.next + 1) % len(r.ring)
	if r.size < len(r.ring) {
		r.size++
	}
	fn := r.onSample
	r.mu.Unlock()

	if fn != nil {
		fn(w)
	}
	return w
}

// Windows returns the newest n windows (0 or negative = all retained),
// oldest first.
func (r *Rollup) Windows(n int) []Window {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.size {
		n = r.size
	}
	out := make([]Window, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Span returns the retained windows whose end falls within the trailing
// duration d, oldest first.
func (r *Rollup) Span(d time.Duration) []Window {
	if r == nil {
		return nil
	}
	cutoff := time.Now().Add(-d).UnixMilli()
	all := r.Windows(0)
	for i, w := range all {
		if w.EndMS >= cutoff {
			return all[i:]
		}
	}
	return nil
}

// diffSnapshots computes cur minus prev under reset semantics: any
// regression (counter value, histogram count, or any bucket) restarts the
// delta at the current value.
func diffSnapshots(prev, cur Snapshot) Window {
	var w Window
	if len(cur.Counters) > 0 {
		w.Counters = make(map[string]int64, len(cur.Counters))
		for name, v := range cur.Counters {
			d := v - prev.Counters[name]
			if d < 0 { // reset or wraparound: restart at the new value
				d = v
			}
			w.Counters[name] = d
		}
	}
	if len(cur.Gauges) > 0 {
		w.Gauges = make(map[string]int64, len(cur.Gauges))
		for name, v := range cur.Gauges {
			w.Gauges[name] = v
		}
	}
	if len(cur.Histograms) > 0 {
		w.Histograms = make(map[string]HistogramSnapshot, len(cur.Histograms))
		for name, hs := range cur.Histograms {
			w.Histograms[name] = diffHistogram(prev.Histograms[name], hs)
		}
	}
	return w
}

// diffHistogram subtracts bucket by bucket; any regression (shrunk count,
// shrunk bucket, or a changed layout) treats the histogram as reset and
// returns the current snapshot whole.
func diffHistogram(prev, cur HistogramSnapshot) HistogramSnapshot {
	if len(prev.Buckets) != len(cur.Buckets) || cur.Count < prev.Count {
		return cur
	}
	out := HistogramSnapshot{
		Count:   cur.Count - prev.Count,
		Sum:     cur.Sum - prev.Sum,
		Buckets: make([]Bucket, len(cur.Buckets)),
	}
	for i := range cur.Buckets {
		d := cur.Buckets[i].Count - prev.Buckets[i].Count
		if d < 0 {
			return cur
		}
		out.Buckets[i] = Bucket{UpperBound: cur.Buckets[i].UpperBound, Count: d}
	}
	return out
}
