package obs

import (
	"fmt"
	"sync"
)

// Event is one structured protocol event, scoped to the slot (asynchronous
// runtimes) or round (synchronous engine) in which it happened. Node and
// Peer identify participants ("buyer#3", "seller#1") when applicable.
type Event struct {
	Slot int    `json:"slot"`
	Kind string `json:"kind"`
	Node string `json:"node,omitempty"`
	Peer string `json:"peer,omitempty"`
	Note string `json:"note,omitempty"`
}

// String renders the event in a compact single-line form.
func (e Event) String() string {
	s := fmt.Sprintf("[s%04d] %s", e.Slot, e.Kind)
	if e.Node != "" {
		s += " " + e.Node
	}
	if e.Peer != "" {
		s += " → " + e.Peer
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Sink accumulates events up to a bounded length. A nil *Sink is valid and
// discards everything — the fast path instrumented code relies on: call
// sites guard event construction with Enabled() so a disabled sink costs
// one nil check and no allocation. Safe for concurrent use when enabled.
type Sink struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int64
}

// NewSink returns an empty sink holding at most limit events (≤ 0 means
// 65536). Once full, further events are counted but not stored.
func NewSink(limit int) *Sink {
	if limit <= 0 {
		limit = 1 << 16
	}
	return &Sink{limit: limit}
}

// Enabled reports whether emitting to this sink does anything. Guard event
// construction with it so the disabled path allocates nothing.
func (s *Sink) Enabled() bool { return s != nil }

// Emit records one event. No-op on nil.
func (s *Sink) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= s.limit {
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// Events returns a copy of the recorded events in emission order.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Len returns the number of stored events.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Dropped returns how many events arrived after the sink filled.
func (s *Sink) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
