// Package obs is the repo's dependency-free observability subsystem: atomic
// counters, gauges, and fixed-bucket histograms behind a named registry,
// plus a slot-scoped structured event sink. Every layer that does real work
// — the synchronous engine (internal/core), the asynchronous agents
// (internal/agent), the simulated network (internal/simnet), and the TCP
// transport (internal/wire) — publishes into a caller-supplied *Registry,
// so one registry threaded through a run yields a coherent snapshot of
// where rounds went, what each protocol phase cost in messages, and what
// fault injection actually did.
//
// Disabled is the default and costs (almost) nothing: a nil *Registry hands
// out nil metric handles, and every metric method is a nil-guarded no-op —
// the same idiom as trace.Recorder. Enabled metrics are safe for concurrent
// use; counters and gauges are single atomic words, so the engine's worker
// fan-out and the goroutine-per-agent runtime update them freely. The
// canonical metric names per layer are listed in PROTOCOL.md ("Metric
// names") so alternative transports can instrument identically.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// valid and discards everything.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is valid and
// discards everything.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. No-op on nil.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds delta (negative to decrement). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of float64 observations. Bucket i
// counts observations v with v <= bounds[i]; one implicit overflow bucket
// catches the rest. A nil *Histogram is valid and discards everything.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// TimeBuckets is the default bucket layout for durations in seconds:
// 1µs … ~16s in powers of four.
func TimeBuckets() []float64 {
	return []float64{1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16}
}

// LatencyBuckets is a finer layout for request latencies: 50µs … 20s in
// ×1.25 steps (58 buckets), which bounds Quantile's interpolation error to
// ~12% — tight enough for load-test percentiles without tracking every
// sample.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 64)
	for v := 50e-6; v < 20; v *= 1.25 {
		out = append(out, v)
	}
	return out
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; zero on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts:
// the crossing bucket is found by cumulative rank and the value linearly
// interpolated within its bounds (from zero for the first bucket). The
// overflow bucket has no upper bound, so it reports the largest finite
// bound. Zero on nil or empty histograms. The shared-histogram +
// Quantile pair replaces keeping (and sorting) every raw sample, which is
// what the load generator does across its workers.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return quantile(q, h.bounds, counts)
}

// quantile is the shared estimator over (bounds, counts-with-overflow).
func quantile(q float64, bounds []float64, counts []int64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(bounds) { // overflow bucket: no finite upper bound
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (bounds[i]-lo)*frac
		}
		cum += c
	}
	return bounds[len(bounds)-1]
}

// Registry is a named metric namespace. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is valid: it hands out nil
// metric handles, so instrumented code never branches on "metrics on?".
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls reuse the first layout; bounds must be
// ascending). Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below the upper bound. UpperBound is +Inf for the overflow bucket.
type Bucket struct {
	UpperBound float64 `json:"-"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders the bound Prometheus-style, as the string "+Inf" for
// the overflow bucket (encoding/json rejects the raw infinity).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}{LE: le, Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON, so clients of the HTTP
// snapshot endpoints (specload's reconciliation pass, the serve-smoke
// harness) can decode a /debug/metrics payload back into a Snapshot.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.LE == "" || raw.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(raw.LE, 64)
	if err != nil {
		return fmt.Errorf("obs: bucket bound %q: %w", raw.LE, err)
	}
	b.UpperBound = v
	return nil
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile from the snapshot's buckets, with the
// same interpolation as Histogram.Quantile — so a /debug/metrics client can
// compute percentiles from the wire form.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	bounds := make([]float64, 0, len(s.Buckets))
	counts := make([]int64, 0, len(s.Buckets))
	for _, b := range s.Buckets {
		if !math.IsInf(b.UpperBound, 1) {
			bounds = append(bounds, b.UpperBound)
		}
		counts = append(counts, b.Count)
	}
	return quantile(q, bounds, counts)
}

// Snapshot is a point-in-time copy of a registry, ready for JSON encoding
// (expvar-style: one object keyed by metric name per metric kind).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Safe to call while metrics
// are being updated; each metric is read atomically (the snapshot as a
// whole is not a consistent cut, which JSON debugging never needs). Returns
// the zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Count:   h.Count(),
				Sum:     h.Sum(),
				Buckets: make([]Bucket, len(h.counts)),
			}
			for i := range h.counts {
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				hs.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// CounterValue returns the named counter's value without creating it; zero
// when absent or on a nil registry. Snapshot-free convenience for tests.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name].Value()
}

// GaugeValue returns the named gauge's value without creating it; zero when
// absent or on a nil registry.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name].Value()
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
