package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

// TestNilRegistryAndMetrics: the disabled path — nil registry, nil handles,
// nil sink — must be a total no-op, never a panic.
func TestNilRegistryAndMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	h := r.Histogram("z", TimeBuckets())
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram should read 0")
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Error("nil registry snapshot should be empty")
	}
	if r.CounterValue("x") != 0 || r.GaugeValue("y") != 0 || r.CounterNames() != nil {
		t.Error("nil registry accessors should read zero values")
	}

	var s *Sink
	if s.Enabled() {
		t.Error("nil sink should be disabled")
	}
	s.Emit(Event{Slot: 1, Kind: "k"})
	if s.Len() != 0 || s.Events() != nil || s.Dropped() != 0 {
		t.Error("nil sink should discard everything")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("msgs") != c {
		t.Error("same name should return the same counter")
	}
	if r.CounterValue("msgs") != 5 || r.CounterValue("absent") != 0 {
		t.Error("CounterValue mismatch")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	if names := r.CounterNames(); !reflect.DeepEqual(names, []string{"msgs"}) {
		t.Errorf("CounterNames = %v", names)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 106.5; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot().Histograms["lat"]
	wantCounts := []int64{2, 1, 1} // ≤1: {0.5, 1}; ≤10: {5}; overflow: {100}
	for i, b := range snap.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(snap.Buckets[2].UpperBound, 1) {
		t.Error("last bucket should be the +Inf overflow")
	}
}

// TestSnapshotJSON: a snapshot with an overflow bucket must marshal (the
// raw +Inf would be rejected by encoding/json).
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(2)
	r.Histogram("c", []float64{1}).Observe(3)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("snapshot unmarshal: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	s := NewSink(0)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{0.5}).Observe(1)
				if s.Enabled() {
					s.Emit(Event{Slot: k, Kind: "tick"})
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := r.CounterValue("n"); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.GaugeValue("g"); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	h := r.Histogram("h", nil)
	if h.Count() != total || h.Sum() != float64(total) {
		t.Errorf("histogram count/sum = %d/%v, want %d", h.Count(), h.Sum(), total)
	}
	if got := int64(s.Len()) + s.Dropped(); got != total {
		t.Errorf("sink stored+dropped = %d, want %d", got, total)
	}
}

func TestSinkLimit(t *testing.T) {
	s := NewSink(2)
	for k := 0; k < 5; k++ {
		s.Emit(Event{Slot: k, Kind: "e"})
	}
	if s.Len() != 2 || s.Dropped() != 3 {
		t.Errorf("len/dropped = %d/%d, want 2/3", s.Len(), s.Dropped())
	}
	events := s.Events()
	if events[0].Slot != 0 || events[1].Slot != 1 {
		t.Errorf("sink should keep the earliest events, got %v", events)
	}
	if got := events[0].String(); got == "" {
		t.Error("event String should be non-empty")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("handler body: %v", err)
	}
	if snap.Counters["hits"] != 3 {
		t.Errorf("handler counters = %v", snap.Counters)
	}
	// A nil registry serves an empty object rather than erroring.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("nil-registry handler status = %d", rec.Code)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	// 100 observations uniform in (0,1]: every quantile lands in the first
	// bucket and interpolates linearly from 0 to 1.
	for k := 1; k <= 100; k++ {
		h.Observe(float64(k) / 100)
	}
	if got := h.Quantile(0.5); got < 0.4 || got > 0.6 {
		t.Errorf("p50 = %v, want ~0.5", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("p100 = %v, want 1 (first bucket upper bound)", got)
	}
	// Push everything past the last bound: the overflow bucket has no upper
	// bound, so the estimator reports the largest finite one.
	h2 := r.Histogram("lat2", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want 2", got)
	}
	// Clamping.
	if got := h2.Quantile(-3); got != h2.Quantile(0) {
		t.Errorf("q<0 not clamped: %v", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile must be 0")
	}
}

func TestSnapshotQuantileMatchesHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LatencyBuckets())
	for k := 1; k <= 1000; k++ {
		h.Observe(float64(k) * 1e-4) // 0.1ms .. 100ms
	}
	snap := r.Snapshot().Histograms["lat"]
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if hq, sq := h.Quantile(q), snap.Quantile(q); hq != sq {
			t.Errorf("q=%v: histogram %v != snapshot %v", q, hq, sq)
		}
	}
	// And the wire form round-trips: marshal the snapshot, decode it, and
	// the quantiles still agree (the /debug/metrics client path).
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if hq, bq := h.Quantile(0.9), back.Histograms["lat"].Quantile(0.9); hq != bq {
		t.Errorf("decoded p90 = %v, want %v", bq, hq)
	}
}

func TestLatencyBucketsAscending(t *testing.T) {
	b := LatencyBuckets()
	if len(b) < 40 {
		t.Fatalf("LatencyBuckets too coarse: %d buckets", len(b))
	}
	for k := 1; k < len(b); k++ {
		if b[k] <= b[k-1] {
			t.Fatalf("bucket %d (%v) not above bucket %d (%v)", k, b[k], k-1, b[k-1])
		}
	}
}
