package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRollupCounterDeltas pins the delta math: per-window deltas are the
// counter's advance, and across a run without resets they sum back to the
// final value (conservation).
func TestRollupCounterDeltas(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	r := NewRollup(reg, time.Second, 16)

	c.Add(5)
	w1 := r.Sample()
	if got := w1.Counters["x"]; got != 5 {
		t.Fatalf("window 1 delta = %d, want 5", got)
	}
	c.Add(7)
	w2 := r.Sample()
	if got := w2.Counters["x"]; got != 7 {
		t.Fatalf("window 2 delta = %d, want 7", got)
	}
	w3 := r.Sample()
	if got := w3.Counters["x"]; got != 0 {
		t.Fatalf("idle window delta = %d, want 0", got)
	}
	var sum int64
	for _, w := range r.Windows(0) {
		sum += w.Counters["x"]
	}
	if sum != c.Value() {
		t.Fatalf("deltas sum to %d, counter is %d", sum, c.Value())
	}
	if w1.Seq != 0 || w2.Seq != 1 || w3.Seq != 2 {
		t.Fatalf("seqs = %d,%d,%d, want 0,1,2", w1.Seq, w2.Seq, w3.Seq)
	}
}

// TestRollupCounterReset pins the reset/wraparound rule: a counter that
// went backwards restarts its delta at the new value instead of emitting a
// negative (or wildly huge) delta.
func TestRollupCounterReset(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	r := NewRollup(reg, time.Second, 16)

	c.Add(100)
	r.Sample()
	// Simulate a reset: the same name now carries a smaller value (a
	// restarted process re-registering, or a wrapped counter).
	c.Add(-97) // 100 -> 3
	w := r.Sample()
	if got := w.Counters["x"]; got != 3 {
		t.Fatalf("post-reset delta = %d, want 3 (restart at new value)", got)
	}
}

// TestRollupGaugeLastValue pins gauge semantics: the window carries the
// value at sample time, not a delta.
func TestRollupGaugeLastValue(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	r := NewRollup(reg, time.Second, 16)

	g.Set(40)
	g.Set(12)
	w := r.Sample()
	if got := w.Gauges["depth"]; got != 12 {
		t.Fatalf("gauge last-value = %d, want 12", got)
	}
}

// TestRollupHistogramDeltaQuantiles is the heart of the series layer: a
// window's histogram delta must yield the same quantiles as a fresh
// histogram fed only that window's observations — i.e. true per-interval
// percentiles, uncontaminated by the cumulative past.
func TestRollupHistogramDeltaQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", LatencyBuckets())
	r := NewRollup(reg, time.Second, 16)

	// A slow first interval that would dominate cumulative quantiles.
	for i := 0; i < 1000; i++ {
		h.Observe(1.0) // 1s
	}
	r.Sample()

	// A fast second interval.
	ref := NewRegistry().Histogram("ref", LatencyBuckets())
	for i := 0; i < 1000; i++ {
		v := 0.001 + float64(i%10)*0.0001
		h.Observe(v)
		ref.Observe(v)
	}
	w := r.Sample()
	ws := w.Histograms["lat"]
	if ws.Count != 1000 {
		t.Fatalf("delta count = %d, want 1000", ws.Count)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, want := ws.Quantile(q), ref.Quantile(q)
		if got != want {
			t.Errorf("delta q%.3f = %v, recomputed %v", q, got, want)
		}
		if got > 0.01 {
			t.Errorf("q%.3f = %v still contaminated by the slow first interval", q, got)
		}
	}
	if ws.Sum <= 0 || ws.Sum >= 1000 {
		t.Errorf("delta sum = %v, want the second interval's ~1.45", ws.Sum)
	}
}

// TestRollupHistogramReset: a shrunken histogram (restart) restarts the
// delta at the full current state rather than going negative.
func TestRollupHistogramReset(t *testing.T) {
	prev := HistogramSnapshot{Count: 10, Sum: 5, Buckets: []Bucket{{UpperBound: 1, Count: 10}, {UpperBound: math.Inf(1), Count: 0}}}
	cur := HistogramSnapshot{Count: 3, Sum: 1, Buckets: []Bucket{{UpperBound: 1, Count: 3}, {UpperBound: math.Inf(1), Count: 0}}}
	got := diffHistogram(prev, cur)
	if got.Count != 3 || got.Buckets[0].Count != 3 {
		t.Fatalf("reset histogram delta = %+v, want the current snapshot whole", got)
	}
}

// TestRollupRingEviction: the ring retains exactly capacity windows, the
// newest ones, with sequence numbers intact.
func TestRollupRingEviction(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	r := NewRollup(reg, time.Second, 16) // capacity floor is 16

	for i := 0; i < 40; i++ {
		c.Inc()
		r.Sample()
	}
	ws := r.Windows(0)
	if len(ws) != 16 {
		t.Fatalf("retained %d windows, want 16", len(ws))
	}
	for i, w := range ws {
		if want := uint64(24 + i); w.Seq != want {
			t.Fatalf("window %d seq = %d, want %d (newest 16 of 40)", i, w.Seq, want)
		}
		if w.Counters["x"] != 1 {
			t.Fatalf("window %d delta = %d, want 1", i, w.Counters["x"])
		}
	}
	if got := r.Windows(4); len(got) != 4 || got[3].Seq != 39 {
		t.Fatalf("Windows(4) = %d windows ending seq %d, want 4 ending 39", len(got), got[len(got)-1].Seq)
	}
}

// TestRollupSamplerRace runs the sampler against concurrent writers (the
// always-on serving configuration) and checks conservation: after Stop's
// final flush, the per-window deltas must sum to exactly the writers'
// totals. Run under -race this also proves sampler-vs-writer safety.
func TestRollupSamplerRace(t *testing.T) {
	reg := NewRegistry()
	r := NewRollup(reg, 10*time.Millisecond, 4096)
	r.Start()

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("ops")
			g := reg.Gauge("depth")
			h := reg.Histogram("lat", TimeBuckets())
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i%100) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	r.Stop()

	var ops, hcount int64
	for _, w := range r.Windows(0) {
		ops += w.Counters["ops"]
		hcount += w.Histograms["lat"].Count
	}
	if want := int64(writers * perWriter); ops != want {
		t.Fatalf("counter deltas sum to %d, want %d", ops, want)
	}
	if want := int64(writers * perWriter); hcount != want {
		t.Fatalf("histogram count deltas sum to %d, want %d", hcount, want)
	}
	// Stop is idempotent and Sample-after-Stop still works.
	r.Stop()
}

// TestSeriesHandler drives the HTTP surface: full dump, ?n=, ?window=, the
// Content-Type header, and the nil-rollup empty document.
func TestSeriesHandler(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	r := NewRollup(reg, time.Second, 16)
	for i := 0; i < 5; i++ {
		c.Inc()
		r.Sample()
	}

	get := func(url string) (*httptest.ResponseRecorder, Series) {
		rec := httptest.NewRecorder()
		SeriesHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var doc Series
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
				t.Fatalf("decoding %s: %v", url, err)
			}
		}
		return rec, doc
	}

	rec, doc := get("/debug/metrics/series")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	if len(doc.Windows) != 5 || doc.IntervalSeconds != 1 {
		t.Fatalf("full dump: %d windows interval %v, want 5 windows interval 1s", len(doc.Windows), doc.IntervalSeconds)
	}

	_, doc = get("/debug/metrics/series?n=2")
	if len(doc.Windows) != 2 || doc.Windows[1].Seq != 4 {
		t.Fatalf("?n=2 returned %d windows ending seq %d", len(doc.Windows), doc.Windows[len(doc.Windows)-1].Seq)
	}

	_, doc = get("/debug/metrics/series?window=10m")
	if len(doc.Windows) != 5 {
		t.Fatalf("?window=10m returned %d windows, want all 5 (they are fresh)", len(doc.Windows))
	}

	if rec, _ := get("/debug/metrics/series?window=bogus"); rec.Code != 400 {
		t.Errorf("bad window param: HTTP %d, want 400", rec.Code)
	}
	if rec, _ := get("/debug/metrics/series?n=-1"); rec.Code != 400 {
		t.Errorf("bad n param: HTTP %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	SeriesHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics/series", nil))
	if rec.Code != 200 {
		t.Errorf("nil rollup: HTTP %d, want 200 empty series", rec.Code)
	}
}

// TestMergeHistogram pins the cluster-merge primitive.
func TestMergeHistogram(t *testing.T) {
	mk := func(counts ...int64) HistogramSnapshot {
		hs := HistogramSnapshot{Buckets: make([]Bucket, len(counts))}
		for i, c := range counts {
			ub := float64(i + 1)
			if i == len(counts)-1 {
				ub = math.Inf(1)
			}
			hs.Buckets[i] = Bucket{UpperBound: ub, Count: c}
			hs.Count += c
		}
		return hs
	}
	a, b := mk(1, 2, 3), mk(10, 20, 30)
	m, ok := MergeHistogram(a, b)
	if !ok || m.Count != 66 || m.Buckets[1].Count != 22 {
		t.Fatalf("merge = %+v ok=%v", m, ok)
	}
	if _, ok := MergeHistogram(mk(1, 2), mk(1, 2, 3)); ok {
		t.Fatal("mismatched layouts must not merge")
	}
	if m, ok := MergeHistogram(HistogramSnapshot{}, b); !ok || m.Count != b.Count {
		t.Fatal("empty merges to the other side")
	}
}

// TestPromExposition pins the Prometheus text format byte for byte:
// sorted names, sanitized identifiers, cumulative buckets, _sum/_count.
func TestPromExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests.events").Add(42)
	reg.Counter("agent.sent.invite").Add(7)
	reg.Gauge("server.sessions").Set(3)
	h := reg.Histogram("rt", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE agent_sent_invite counter
agent_sent_invite 7
# TYPE server_requests_events counter
server_requests_events 42
# TYPE server_sessions gauge
server_sessions 3
# TYPE rt histogram
rt_bucket{le="0.1"} 2
rt_bucket{le="1"} 3
rt_bucket{le="+Inf"} 4
rt_sum 5.6
rt_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Determinism: a second render of the same state is byte-identical.
	var buf2 bytes.Buffer
	_ = WriteProm(&buf2, reg.Snapshot())
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same state differ")
	}

	rec := httptest.NewRecorder()
	PromHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics/prom", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	if rec.Body.String() != want {
		t.Error("handler body differs from WriteProm")
	}
}

// TestSnapshotJSONDeterministic pins /debug/metrics determinism: two
// marshals of the same snapshot are byte-identical with sorted metric
// names, so golden tests and diffs can rely on the output.
func TestSnapshotJSONDeterministic(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"b.two", "a.one", "c.three", "a.zero"} {
		reg.Counter(n).Inc()
		reg.Gauge(n + ".g").Set(1)
	}
	reg.Histogram("z.h", TimeBuckets()).Observe(0.1)
	one, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	two, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, two) {
		t.Fatal("two marshals of the same snapshot differ")
	}
	if i, j := bytes.Index(one, []byte(`"a.one"`)), bytes.Index(one, []byte(`"b.two"`)); i < 0 || j < 0 || i > j {
		t.Fatalf("counter names not sorted in output: a.one at %d, b.two at %d", i, j)
	}
}
