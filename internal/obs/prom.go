package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file is the Prometheus text-exposition view of a registry, the
// payload behind /debug/metrics/prom: the same cumulative state as
// /debug/metrics, rendered in the text format (version 0.0.4) external
// scrapers already speak. Metric names keep their PROTOCOL.md identity
// with the characters Prometheus rejects mapped to underscores
// (server.wal.fsync_seconds -> server_wal_fsync_seconds). Output is
// deterministic: names are emitted in sorted order and bucket bounds
// formatted with a fixed notation, so two snapshots of the same state
// render byte-identically — diffable, and safe to pin in golden tests.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a registry metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat formats a sample value; Prometheus accepts Go's 'g' notation.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders a snapshot in the Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// le-labelled buckets plus _sum and _count — cumulative both ways (bucket
// counts accumulate across bounds, and values accumulate since process
// start), which is what scrapers expect; the per-interval view stays on
// /debug/metrics/series.
func WriteProm(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hs := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for _, b := range hs.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = promFloat(b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(hs.Sum), pn, hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// PromHandler serves the registry in the Prometheus text exposition
// format — the /debug/metrics/prom endpoint. A nil registry serves an
// empty document.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = WriteProm(w, r.Snapshot())
	})
}
