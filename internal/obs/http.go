package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
)

// Handler serves the registry as an expvar-style indented JSON snapshot —
// the payload behind specnode's -debug-addr /debug/metrics endpoint. A nil
// registry serves an empty snapshot.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// WriteSnapshotFile writes the registry snapshot as indented JSON to path,
// or to stdout when path is "-". It backs the CLIs' -metrics-json flag; a
// nil registry writes an empty snapshot.
func WriteSnapshotFile(r *Registry, path string, stdout io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: snapshot marshal: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: snapshot write: %w", err)
	}
	return nil
}
