package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"
)

// Handler serves the registry as an expvar-style indented JSON snapshot —
// the payload behind specnode's -debug-addr /debug/metrics endpoint. A nil
// registry serves an empty snapshot.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// Series is the /debug/metrics/series document: the node's retained delta
// windows, oldest first, plus the sampling interval a reader needs to turn
// deltas into rates.
type Series struct {
	IntervalSeconds float64  `json:"interval_seconds"`
	Windows         []Window `json:"windows"`
}

// SeriesHandler serves the rollup's retained windows as JSON — the
// /debug/metrics/series endpoint. ?window=30s bounds the reply to windows
// ending within the trailing duration; ?n=K to the newest K windows (both
// given, the stricter wins). A nil rollup serves an empty series, matching
// the nil-registry idiom of /debug/metrics.
func SeriesHandler(r *Rollup) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		doc := Series{IntervalSeconds: r.Interval().Seconds()}
		if s := req.URL.Query().Get("window"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d <= 0 {
				http.Error(w, "obs: ?window= must be a positive duration", http.StatusBadRequest)
				return
			}
			doc.Windows = r.Span(d)
		} else {
			doc.Windows = r.Windows(0)
		}
		if s := req.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "obs: ?n= must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(doc.Windows) {
				doc.Windows = doc.Windows[len(doc.Windows)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// WriteSnapshotFile writes the registry snapshot as indented JSON to path,
// or to stdout when path is "-". It backs the CLIs' -metrics-json flag; a
// nil registry writes an empty snapshot.
func WriteSnapshotFile(r *Registry, path string, stdout io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: snapshot marshal: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: snapshot write: %w", err)
	}
	return nil
}
