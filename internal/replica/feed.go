package replica

import (
	"encoding/binary"
	"sync"
)

// BatchWriter is where a Feed pushes durable batches for one subscriber —
// in practice the stream handler's deadline-wrapped HTTP response. A write
// error (or deadline) permanently fails the subscriber; the Feed drops it
// and the follower reconnects and catches up from the files. It is called
// with the Feed's lock held, which is exactly the point: the write to the
// kernel socket buffer happens-before any later publish, keeping the stream
// in LSN order, and the deadline bounds how long a stalled peer can hold up
// the fsync path.
type BatchWriter interface {
	WriteBatch(b []byte) error
}

// Feed broadcasts one shard's durable WAL batches to connected stream
// subscribers. Publish is invoked from the WAL's post-fsync hook, so every
// byte a subscriber receives is durable on the leader, and reaches the
// subscriber before the leader acks it to a client.
type Feed struct {
	mu   sync.Mutex
	last uint64 // highest LSN published (init: the durable tail at startup)
	subs map[*Subscriber]struct{}
}

// NewFeed returns a Feed whose published high-water starts at the shard's
// recovered durable LSN (nothing below it will ever be published).
func NewFeed(last uint64) *Feed {
	return &Feed{last: last, subs: make(map[*Subscriber]struct{})}
}

// Subscriber is one attached stream.
type Subscriber struct {
	w    BatchWriter
	skip uint64 // drop records with LSN <= skip (file-catch-up overlap)
	done chan struct{}
	err  error
}

// NewSubscriber wraps a BatchWriter for attachment.
func NewSubscriber(w BatchWriter) *Subscriber {
	return &Subscriber{w: w, done: make(chan struct{})}
}

// Done is closed when the subscriber has been dropped after a write
// failure; Err then reports why.
func (s *Subscriber) Done() <-chan struct{} { return s.done }

// Err returns the write error that dropped the subscriber, if any.
func (s *Subscriber) Err() error { return s.err }

// Last returns the highest LSN published so far.
func (f *Feed) Last() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// Subscribers returns the number of attached streams.
func (f *Feed) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// Attach registers sub to receive every future publish, provided the feed
// has not already published past cursor (the highest LSN the subscriber got
// from the files). ok=false means records in (cursor, Last] were published
// while the subscriber was catching up — it must read more from the files
// and try again. On ok, records the subscriber already has (a batch can be
// fsynced, and hence file-visible, before its publish runs) are filtered by
// LSN so the stream never duplicates.
func (f *Feed) Attach(sub *Subscriber, cursor uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.last > cursor {
		return false
	}
	sub.skip = cursor
	f.subs[sub] = struct{}{}
	return true
}

// Detach removes sub; safe if already dropped.
func (f *Feed) Detach(sub *Subscriber) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.subs, sub)
}

// Publish fans one durable batch (framed bytes, no magic) out to every
// subscriber. Runs on the WAL's flushing goroutine; a failing or stalled
// subscriber is dropped, never retried, never blocks beyond its writer's
// deadline.
func (f *Feed) Publish(batch []byte, lastLSN uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lastLSN > f.last {
		f.last = lastLSN
	}
	for sub := range f.subs {
		b := batch
		if sub.skip > 0 {
			b = cutBatch(b, sub.skip)
			if len(b) > 0 {
				sub.skip = 0 // overlap ends at the first delivered record
			}
			if len(b) == 0 {
				continue
			}
		}
		if err := sub.w.WriteBatch(b); err != nil {
			sub.err = err
			delete(f.subs, sub)
			close(sub.done)
		}
	}
}

// cutBatch returns the suffix of a framed batch starting at the first
// record with LSN > skip. The bytes were produced by this process's own
// appends, so frame headers are trusted (no CRC re-check).
func cutBatch(batch []byte, skip uint64) []byte {
	off := 0
	for off+17 <= len(batch) {
		plen := int(binary.LittleEndian.Uint32(batch[off : off+4]))
		lsn := binary.LittleEndian.Uint64(batch[off+9 : off+17])
		if lsn > skip {
			return batch[off:]
		}
		off += 8 + plen
	}
	return nil
}
