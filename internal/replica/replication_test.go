package replica_test

// End-to-end replication tests, built on the same pattern as the server's
// TestReplayEquivalenceAcrossPrefixes: a scripted, seeded workload runs
// against a durable leader while a follower tails the real HTTP stream
// endpoints. The follower joins at an arbitrary prefix (exercising file
// catch-up and checkpoint-ship), is killed and restarted mid-script
// (resuming from its own WAL), and must end bit-for-bit equal to the
// leader — snapshots compared with reflect.DeepEqual, and post-promote
// StepStats identical to the leader's for the same event.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/online"
	"specmatch/internal/replica"
	"specmatch/internal/server"
)

// node bundles one in-process specserved: server, listener, and (for
// followers) the replication tailer.
type node struct {
	srv *server.Server
	ts  *httptest.Server
	fol *replica.Follower
	reg *obs.Registry
}

func (n *node) url() string { return n.ts.URL }

// close tears the node down in promotion order: tailer first, then
// streams, then the store.
func (n *node) close() {
	if n.fol != nil {
		n.fol.Stop()
		n.fol = nil
	}
	n.ts.Close()
	n.srv.Drain()
}

func startNode(t *testing.T, dir string, shards, ckptEvery int) *node {
	t.Helper()
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Shards:          shards,
		DataDir:         dir,
		FsyncInterval:   time.Millisecond,
		CheckpointEvery: ckptEvery,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &node{srv: srv, ts: httptest.NewServer(srv.Handler()), reg: reg}
}

// follow turns the node into a follower of leaderURL, resuming from the
// node's own recovered WAL positions — exactly what specserved -follow
// does.
func (n *node) follow(t *testing.T, leaderURL string) {
	t.Helper()
	sts := n.srv.Store().ShardStatuses()
	from := make([]uint64, len(sts))
	for i, s := range sts {
		from[i] = s.DurableLSN
	}
	fol, err := replica.Start(replica.Config{
		Leader:       leaderURL,
		Shards:       len(sts),
		From:         from,
		Apply:        n.srv.Store().ApplyReplicated,
		Metrics:      n.reg,
		PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.fol = fol
	n.srv.BecomeFollower(leaderURL, fol.Status, fol.Stop)
}

// waitSynced blocks until the follower's durable LSNs equal the leader's
// on every shard. The leader must be quiescent (writes stopped): acked
// implies durable, so its positions are final.
func waitSynced(t *testing.T, leader, follower *server.Store) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ls, fs := leader.ShardStatuses(), follower.ShardStatuses()
		synced := len(ls) == len(fs)
		for i := range ls {
			if !synced || fs[i].DurableLSN != ls[i].DurableLSN {
				synced = false
				break
			}
		}
		if synced {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: leader %+v follower %+v", ls, fs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func snapshotAll(t *testing.T, st *server.Store) map[string]online.Snapshot {
	t.Helper()
	ctx := context.Background()
	ids, err := st.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]online.Snapshot, len(ids))
	for _, id := range ids {
		snap, err := st.Get(ctx, id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		out[id] = snap
	}
	return out
}

// The core guarantee: a follower that joined at an arbitrary prefix, was
// killed and restarted mid-stream (resuming from its own WAL), and tailed
// through leader checkpoint rotations ends bit-for-bit equal to the
// leader — across seeds. After promotion it serves writes whose StepStats
// match the leader's for the same events.
func TestFollowerEquivalenceAcrossPrefixes(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const fleet, buyers, nops = 4, 10, 90
			r := rand.New(rand.NewSource(seed))
			ctx := context.Background()

			leaderDir, followerDir := t.TempDir(), t.TempDir()
			// CheckpointEvery 13 forces several leader log rotations while
			// the follower is attached — streaming must ride through them.
			leader := startNode(t, leaderDir, 2, 13)
			defer leader.close()

			ids := make([]string, fleet)
			for k := 0; k < fleet; k++ {
				m, err := market.Generate(market.Config{Sellers: 3, Buyers: buyers, Seed: seed*100 + int64(k)})
				if err != nil {
					t.Fatal(err)
				}
				id, _, err := leader.srv.Store().Create(ctx, m)
				if err != nil {
					t.Fatal(err)
				}
				ids[k] = id
			}

			// The follower joins after joinAt ops (behind the leader's
			// checkpoint horizon by then — catch-up ships a snapshot) and is
			// killed/restarted after killAt more.
			joinAt, killAt := nops/3+int(seed), 2*nops/3
			var follower *node
			for i := 0; i < nops; i++ {
				if i == joinAt {
					follower = startNode(t, followerDir, 2, 13)
					follower.follow(t, leader.url())
				}
				if i == killAt {
					follower.close()
					follower = startNode(t, followerDir, 2, 13)
					follower.follow(t, leader.url())
				}
				id := ids[r.Intn(fleet)]
				switch p := r.Float64(); {
				case p < 0.9:
					ev := online.Event{Arrive: []int{r.Intn(buyers)}, Depart: []int{r.Intn(buyers)}}
					if r.Float64() < 0.2 {
						ev.ChannelDown = []int{r.Intn(3)}
					}
					if r.Float64() < 0.3 {
						// Mobility rides the stream too: followers replay the v2
						// step bodies and must rewire identically.
						ev.Move = []online.BuyerMove{{Buyer: r.Intn(buyers),
							To: geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}}}
					}
					if _, err := leader.srv.Store().Step(ctx, id, ev); err != nil {
						t.Fatalf("op %d: step: %v", i, err)
					}
				default:
					if _, _, err := leader.srv.Store().Rebuild(ctx, id, true); err != nil {
						t.Fatalf("op %d: rebuild: %v", i, err)
					}
				}
			}
			defer follower.close()

			waitSynced(t, leader.srv.Store(), follower.srv.Store())
			want := snapshotAll(t, leader.srv.Store())
			got := snapshotAll(t, follower.srv.Store())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("follower state differs from leader:\n got %+v\nwant %+v", got, want)
			}

			// Promote over HTTP and prove the replicated state is live: the
			// same event on both nodes yields identical StepStats.
			resp, err := http.Post(follower.url()+"/v1/replica/promote", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("promote: HTTP %d", resp.StatusCode)
			}
			for _, id := range ids {
				// The move probes replicated geometry, not just matching state:
				// identical Displaced counts require identical post-replay
				// interference graphs and buyer positions on both nodes.
				ev := online.Event{Arrive: []int{1}, Depart: []int{2},
					Move: []online.BuyerMove{{Buyer: 3, To: geom.Point{X: 4.5, Y: 4.5}}}}
				sL, errL := leader.srv.Store().Step(ctx, id, ev)
				sF, errF := follower.srv.Store().Step(ctx, id, ev)
				if (errL == nil) != (errF == nil) {
					t.Fatalf("post-promote step err divergence on %s: %v vs %v", id, errL, errF)
				}
				if sL != sF {
					t.Fatalf("post-promote StepStats divergence on %s: %+v vs %+v", id, sL, sF)
				}
			}
		})
	}
}

// A follower joining from LSN 0 after the leader's logs rotated past the
// truncation horizon must be seeded by a shipped checkpoint, counted on
// replica.checkpoint_ships, and still end equal to the leader.
func TestCheckpointShipBelowHorizon(t *testing.T) {
	ctx := context.Background()
	leader := startNode(t, t.TempDir(), 1, 5)
	defer leader.close()

	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := leader.srv.Store().Create(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := leader.srv.Store().Step(ctx, id, online.Event{Arrive: []int{i % 8}}); err != nil {
			t.Fatal(err)
		}
	}

	follower := startNode(t, t.TempDir(), 1, 5)
	defer follower.close()
	follower.follow(t, leader.url())
	waitSynced(t, leader.srv.Store(), follower.srv.Store())

	if n := follower.reg.CounterValue("replica.checkpoint_ships"); n == 0 {
		t.Error("replica.checkpoint_ships = 0; follower was expected to start below the leader's horizon")
	}
	if got, want := snapshotAll(t, follower.srv.Store()), snapshotAll(t, leader.srv.Store()); !reflect.DeepEqual(got, want) {
		t.Fatalf("follower state differs after checkpoint ship:\n got %+v\nwant %+v", got, want)
	}
}

// The follower HTTP contract: writes are gated with 503 + X-Leader while
// following, promote on a non-follower is 409, status documents report the
// role flip, and a promoted node accepts writes.
func TestFollowerGateAndPromote(t *testing.T) {
	leader := startNode(t, t.TempDir(), 1, 0)
	defer leader.close()
	follower := startNode(t, t.TempDir(), 1, 0)
	defer follower.close()
	follower.follow(t, leader.url())

	// Create a session on the leader so a write can target something real.
	m, err := market.Generate(market.Config{Sellers: 2, Buyers: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(server.CreateRequest{Spec: m.Spec()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(leader.url()+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created server.CreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	waitSynced(t, leader.srv.Store(), follower.srv.Store())

	// Writes on the follower: 503 with the leader's address.
	ev, _ := json.Marshal(online.Event{Arrive: []int{0}})
	resp, err = http.Post(follower.url()+"/v1/sessions/"+created.ID+"/events", "application/json", bytes.NewReader(ev))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	hint := resp.Header.Get("X-Leader")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower write: HTTP %d, want 503", resp.StatusCode)
	}
	if hint != leader.url() {
		t.Fatalf("X-Leader = %q, want %q", hint, leader.url())
	}

	// Status documents on both nodes.
	var st replica.NodeStatus
	getJSON(t, follower.url()+"/v1/status", &st)
	if st.Role != replica.RoleFollower || st.Leader != leader.url() {
		t.Fatalf("follower /v1/status = %+v", st)
	}
	getJSON(t, leader.url()+"/v1/status", &st)
	if st.Role != replica.RoleLeader || len(st.Shards) != 1 {
		t.Fatalf("leader /v1/status = %+v", st)
	}
	var rs replica.ReplicaStatus
	getJSON(t, follower.url()+"/v1/replica/status", &rs)
	if rs.Follow == nil || len(rs.Follow.Shards) != 1 {
		t.Fatalf("follower /v1/replica/status lacks follow info: %+v", rs)
	}

	// Promote on the leader: 409, it is not a follower.
	resp, err = http.Post(leader.url()+"/v1/replica/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on leader: HTTP %d, want 409", resp.StatusCode)
	}

	// Promote the follower and write through it.
	resp, err = http.Post(follower.url()+"/v1/replica/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr server.PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Role != replica.RoleLeader || pr.WasFollowing != leader.url() {
		t.Fatalf("promote: HTTP %d %+v", resp.StatusCode, pr)
	}
	getJSON(t, follower.url()+"/v1/status", &st)
	if st.Role != replica.RoleLeader {
		t.Fatalf("post-promote role = %q", st.Role)
	}
	resp, err = http.Post(follower.url()+"/v1/sessions/"+created.ID+"/events", "application/json", bytes.NewReader(ev))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-promote write: HTTP %d, want 200", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
