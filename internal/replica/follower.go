package replica

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"specmatch/internal/obs"
	"specmatch/internal/trace"
	"specmatch/internal/wal"
)

// ApplyFunc hands a contiguous batch of leader records for one shard to the
// store's replicated-apply path. It must append them to the follower's own
// WAL (preserving the leader's LSNs) and return the new applied LSN only
// after they are durable — the follower's resume cursor comes from here, so
// returning early would re-request records it already has, and returning
// late would skip records it lost.
type ApplyFunc func(ctx context.Context, shard int, recs []wal.Record) (uint64, error)

// Config wires a Follower.
type Config struct {
	// Leader is the upstream base URL, e.g. "http://127.0.0.1:7937".
	Leader string
	// Shards is the shard count (must equal the leader's).
	Shards int
	// From holds the per-shard resume LSNs — the follower store's durable
	// high-water after its own recovery.
	From []uint64
	// Apply is the store's replicated-apply entry point.
	Apply ApplyFunc
	// Metrics receives the replica.* gauges and counters (nil ok).
	Metrics *obs.Registry
	// Flight receives replica.lag spans (nil ok).
	Flight *trace.Flight
	// Client is the HTTP client for streams and status polls (nil = a
	// dedicated default client).
	Client *http.Client
	// Logf, when set, receives one-line progress/warning logs.
	Logf func(format string, args ...any)
	// PollInterval is the leader-status poll cadence (0 = 250ms).
	PollInterval time.Duration
}

// Follower tails every shard stream of a leader and applies the records
// locally. Start it with Start; Stop is idempotent and used by promotion.
type Follower struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	applied   []atomic.Uint64 // per-shard applied-and-durable LSN
	leaderLSN []atomic.Uint64 // per-shard leader durable LSN (from polls)
	connected []atomic.Bool
	caughtNS  []atomic.Int64 // unix nanos when the shard was last caught up

	reconnects  *obs.Counter
	recsApplied *obs.Counter
	applyErrors *obs.Counter
	shipApplied *obs.Counter
	lagLSNGauge *obs.Gauge
	lagMSGauge  *obs.Gauge
	shardLagLSN []*obs.Gauge
	shardLagMS  []*obs.Gauge
}

// Start launches the per-shard stream tailers and the leader-status poller.
func Start(cfg Config) (*Follower, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("replica: follower needs a positive shard count")
	}
	if len(cfg.From) != cfg.Shards {
		return nil, fmt.Errorf("replica: %d resume LSNs for %d shards", len(cfg.From), cfg.Shards)
	}
	if cfg.Apply == nil {
		return nil, fmt.Errorf("replica: follower needs an Apply func")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{} // no global timeout: streams are long-lived
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		applied:   make([]atomic.Uint64, cfg.Shards),
		leaderLSN: make([]atomic.Uint64, cfg.Shards),
		connected: make([]atomic.Bool, cfg.Shards),
		caughtNS:  make([]atomic.Int64, cfg.Shards),

		reconnects:  cfg.Metrics.Counter("replica.reconnects"),
		recsApplied: cfg.Metrics.Counter("replica.records_applied"),
		applyErrors: cfg.Metrics.Counter("replica.apply_errors"),
		shipApplied: cfg.Metrics.Counter("replica.checkpoint_ships"),
		lagLSNGauge: cfg.Metrics.Gauge("replica.lag_lsn"),
		lagMSGauge:  cfg.Metrics.Gauge("replica.lag_ms"),
	}
	now := time.Now().UnixNano()
	for i := 0; i < cfg.Shards; i++ {
		f.applied[i].Store(cfg.From[i])
		f.caughtNS[i].Store(now)
		f.shardLagLSN = append(f.shardLagLSN, cfg.Metrics.Gauge(fmt.Sprintf("replica.shard.%d.lag_lsn", i)))
		f.shardLagMS = append(f.shardLagMS, cfg.Metrics.Gauge(fmt.Sprintf("replica.shard.%d.lag_ms", i)))
	}
	for i := 0; i < cfg.Shards; i++ {
		f.wg.Add(1)
		go f.tailShard(i)
	}
	f.wg.Add(1)
	go f.pollLeader()
	return f, nil
}

// Stop cancels every tailer and waits for them to exit. After Stop returns
// no further Apply calls happen — the promotion precondition. Idempotent.
func (f *Follower) Stop() {
	f.cancel()
	f.wg.Wait()
}

// AppliedLSN returns one shard's applied-and-durable LSN.
func (f *Follower) AppliedLSN(shard int) uint64 { return f.applied[shard].Load() }

// Status reports per-shard replication progress.
func (f *Follower) Status() FollowerStatus {
	st := FollowerStatus{Leader: f.cfg.Leader}
	now := time.Now()
	for i := range f.applied {
		st.Shards = append(st.Shards, f.shardFollow(i, now))
	}
	return st
}

func (f *Follower) shardFollow(i int, now time.Time) ShardFollow {
	applied := f.applied[i].Load()
	leader := f.leaderLSN[i].Load()
	sf := ShardFollow{
		Shard:      i,
		AppliedLSN: applied,
		LeaderLSN:  leader,
		Connected:  f.connected[i].Load(),
	}
	if leader > applied {
		sf.LagLSN = leader - applied
		sf.LagMS = now.Sub(time.Unix(0, f.caughtNS[i].Load())).Milliseconds()
		if sf.LagMS < 0 {
			sf.LagMS = 0
		}
	}
	return sf
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// tailShard is one shard's stream loop: connect at the applied LSN, apply
// until the stream breaks, reconnect with backoff. It exits only on Stop.
func (f *Follower) tailShard(shard int) {
	defer f.wg.Done()
	backoff := 50 * time.Millisecond
	for f.ctx.Err() == nil {
		err := f.streamOnce(shard)
		f.connected[shard].Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if err != nil {
			f.logf("replica: shard %d stream: %v (reconnecting in %v)", shard, err, backoff)
		}
		f.reconnects.Inc()
		select {
		case <-time.After(backoff):
		case <-f.ctx.Done():
			return
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// streamOnce runs one connection's read-decode-apply loop.
func (f *Follower) streamOnce(shard int) error {
	from := f.applied[shard].Load()
	url := fmt.Sprintf("%s%s?from_lsn=%d", f.cfg.Leader, StreamPath(shard), from)
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("leader returned %d: %s", resp.StatusCode, body)
	}
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	if err := wal.ReadMagic(br); err != nil {
		return fmt.Errorf("stream magic: %w", err)
	}
	f.connected[shard].Store(true)
	f.logf("replica: shard %d streaming from leader at lsn %d", shard, from)
	for {
		// Block for one record, then drain whatever further complete frames
		// are already buffered so catch-up applies in batches, not one
		// record (and one fsync) at a time.
		rec, err := wal.ReadRecord(br)
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("leader closed the stream")
			}
			return err
		}
		batch := []wal.Record{rec}
		for len(batch) < 1024 {
			more, ok := bufferedRecord(br)
			if !ok {
				break
			}
			batch = append(batch, more)
		}
		newLSN, err := f.cfg.Apply(f.ctx, shard, batch)
		if err != nil {
			f.applyErrors.Inc()
			return fmt.Errorf("apply %d records at lsn %d: %w", len(batch), batch[0].LSN, err)
		}
		f.applied[shard].Store(newLSN)
		f.recsApplied.Add(int64(len(batch)))
		for _, r := range batch {
			if r.Type == wal.TypeSnapshot {
				f.shipApplied.Inc()
			}
		}
		if newLSN >= f.leaderLSN[shard].Load() {
			f.caughtNS[shard].Store(time.Now().UnixNano())
		}
		f.updateLagGauges()
	}
}

// bufferedRecord decodes one record if (and only if) a complete frame is
// already sitting in the bufio buffer — it never blocks on the socket.
func bufferedRecord(br *bufio.Reader) (wal.Record, bool) {
	if br.Buffered() < 8 {
		return wal.Record{}, false
	}
	hdr, err := br.Peek(8)
	if err != nil {
		return wal.Record{}, false
	}
	plen := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if plen < 0 || br.Buffered() < 8+plen {
		return wal.Record{}, false
	}
	rec, err := wal.ReadRecord(br)
	if err != nil {
		return wal.Record{}, false
	}
	return rec, true
}

// pollLeader keeps the leader-side LSN high-waters (and hence the lag
// gauges and replica.lag spans) fresh by polling /v1/status.
func (f *Follower) pollLeader() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-t.C:
		}
		st, err := FetchStatus(f.ctx, f.cfg.Client, f.cfg.Leader)
		if err != nil {
			continue // lag_ms keeps growing; the tailers report the outage
		}
		now := time.Now()
		for _, sh := range st.Shards {
			if sh.Shard < 0 || sh.Shard >= len(f.leaderLSN) {
				continue
			}
			f.leaderLSN[sh.Shard].Store(sh.DurableLSN)
			if f.applied[sh.Shard].Load() >= sh.DurableLSN {
				f.caughtNS[sh.Shard].Store(now.UnixNano())
			}
		}
		f.updateLagGauges()
		if f.cfg.Flight.Enabled() {
			for i := range f.applied {
				sf := f.shardFollow(i, now)
				h := f.cfg.Flight.Start(trace.SpanContext{}, "replica.lag")
				h.Annotate(fmt.Sprintf("shard=%d lag_lsn=%d lag_ms=%d applied_lsn=%d leader_lsn=%d",
					sf.Shard, sf.LagLSN, sf.LagMS, sf.AppliedLSN, sf.LeaderLSN))
				h.End()
			}
		}
	}
}

// updateLagGauges refreshes replica.lag_lsn / replica.lag_ms (max across
// shards) and the per-shard variants.
func (f *Follower) updateLagGauges() {
	now := time.Now()
	var maxLSN uint64
	var maxMS int64
	for i := range f.applied {
		sf := f.shardFollow(i, now)
		f.shardLagLSN[i].Set(int64(sf.LagLSN))
		f.shardLagMS[i].Set(sf.LagMS)
		if sf.LagLSN > maxLSN {
			maxLSN = sf.LagLSN
		}
		if sf.LagMS > maxMS {
			maxMS = sf.LagMS
		}
	}
	f.lagLSNGauge.Set(int64(maxLSN))
	f.lagMSGauge.Set(maxMS)
}

// FetchStatus GETs and decodes a node's /v1/status document. The request is
// bounded even on a deadline-free client/context.
func FetchStatus(ctx context.Context, client *http.Client, base string) (*NodeStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d from %s/v1/status", resp.StatusCode, base)
	}
	var st NodeStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
