// Package replica turns specserved's per-shard WALs into a replicated log.
//
// The design exploits an invariant the wal package already provides: a WAL
// log file, a wire batch, and a checkpoint all share one framed encoding.
// Replication therefore needs no new format — the leader streams the exact
// framed bytes it fsyncs (plus, when a follower is behind the truncation
// horizon, one framed TypeSnapshot record shipped from its newest
// checkpoint), and the follower appends what it reads to its own WAL and
// applies it through the same replay path recovery uses.
//
// Leader side: each shard owns a Feed, published to from the WAL's
// post-fsync hook — a batch reaches every connected subscriber's socket
// before the client ack for that batch fires, so an acked record is in the
// follower's kernel buffer even if the leader is SIGKILLed immediately
// after the ack. Replication stays asynchronous: acks never wait on
// followers, and a slow subscriber is dropped (it reconnects and catches up
// from the files).
//
// Follower side: Follower runs one tailer per shard against the leader's
// /v1/replica/shards/{id}/stream endpoint, hands decoded records to the
// store's replicated-apply path (which appends them to the follower's own
// WAL, preserving the leader's LSNs), polls the leader's /v1/status for the
// lag gauges, and stops cleanly on promotion.
package replica

import "strconv"

// Role names a node's replication role as reported by /v1/status.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
)

// ShardLSN is one shard's durable position — the per-shard row of the
// /v1/status document.
type ShardLSN struct {
	Shard         int    `json:"shard"`
	DurableLSN    uint64 `json:"durable_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
}

// NodeStatus is the /v1/status document: every node reports its role and,
// when durable, each shard's LSN high-water marks.
type NodeStatus struct {
	Role     string     `json:"role"`
	Leader   string     `json:"leader,omitempty"` // followers: the upstream URL
	Durable  bool       `json:"durable"`
	Sessions int        `json:"sessions"`
	Shards   []ShardLSN `json:"shards,omitempty"`
}

// ShardFollow is one shard's replication progress on a follower.
type ShardFollow struct {
	Shard      int    `json:"shard"`
	AppliedLSN uint64 `json:"applied_lsn"`
	LeaderLSN  uint64 `json:"leader_lsn"`
	LagLSN     uint64 `json:"lag_lsn"`
	LagMS      int64  `json:"lag_ms"`
	Connected  bool   `json:"connected"`
}

// FollowerStatus is the follower half of the /v1/replica/status document.
type FollowerStatus struct {
	Leader string        `json:"leader"`
	Shards []ShardFollow `json:"shards"`
}

// StreamStatus is one shard's leader-side stream state.
type StreamStatus struct {
	Shard        int    `json:"shard"`
	Subscribers  int    `json:"subscribers"`
	PublishedLSN uint64 `json:"published_lsn"`
}

// ReplicaStatus is the /v1/replica/status document.
type ReplicaStatus struct {
	Role    string          `json:"role"`
	Follow  *FollowerStatus `json:"follow,omitempty"`  // followers
	Streams []StreamStatus  `json:"streams,omitempty"` // durable leaders
}

// StreamPath returns the leader-side stream endpoint path for a shard.
func StreamPath(shard int) string {
	return "/v1/replica/shards/" + strconv.Itoa(shard) + "/stream"
}
