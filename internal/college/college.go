// Package college implements the classic Gale–Shapley college admissions
// deferred acceptance algorithm — the problem the paper's Stage I adapts
// (§III-B quotes its mechanics directly). It serves two purposes: an
// independently-written reference to cross-validate the spectrum engine
// against (under complete interference graphs, spectrum matching reduces to
// college admission with unit quotas — Prop. 1's worst case), and a
// pedagogical baseline showing exactly what the interference constraint
// changes.
package college

import (
	"fmt"
)

// Unassigned marks a student without a college.
const Unassigned = -1

// Result of a deferred acceptance run.
type Result struct {
	// CollegeOf[s] is student s's college, or Unassigned.
	CollegeOf []int
	// Rounds is the number of proposal rounds.
	Rounds int
}

// Match runs student-proposing deferred acceptance.
//
//   - prefs[s] lists student s's acceptable colleges in descending
//     preference; colleges absent from the list are never proposed to.
//   - scores[c][s] is college c's ranking score for student s (greater is
//     better; ties broken toward the smaller student index).
//   - quotas[c] is college c's capacity.
func Match(prefs [][]int, scores [][]float64, quotas []int) (*Result, error) {
	numStudents := len(prefs)
	numColleges := len(quotas)
	if len(scores) != numColleges {
		return nil, fmt.Errorf("college: %d score rows for %d colleges", len(scores), numColleges)
	}
	for c, row := range scores {
		if len(row) != numStudents {
			return nil, fmt.Errorf("college: score row %d has %d entries, want %d", c, len(row), numStudents)
		}
	}
	for c, q := range quotas {
		if q < 0 {
			return nil, fmt.Errorf("college: negative quota %d for college %d", q, c)
		}
	}
	for s, pref := range prefs {
		for _, c := range pref {
			if c < 0 || c >= numColleges {
				return nil, fmt.Errorf("college: student %d lists college %d outside [0,%d)", s, c, numColleges)
			}
		}
	}

	collegeOf := make([]int, numStudents)
	next := make([]int, numStudents)
	for s := range collegeOf {
		collegeOf[s] = Unassigned
	}
	waiting := make([][]int, numColleges)

	res := &Result{}
	for round := 1; ; round++ {
		// Proposal step.
		proposals := make(map[int][]int, numColleges)
		proposed := false
		for s := 0; s < numStudents; s++ {
			if collegeOf[s] != Unassigned || next[s] >= len(prefs[s]) {
				continue
			}
			c := prefs[s][next[s]]
			next[s]++
			proposals[c] = append(proposals[c], s)
			proposed = true
		}
		if !proposed {
			break
		}
		res.Rounds = round

		// Each college keeps its top-quota applicants among waiting ∪ new.
		for c := 0; c < numColleges; c++ {
			newApplicants := proposals[c]
			if len(newApplicants) == 0 {
				continue
			}
			candidates := append(append([]int{}, waiting[c]...), newApplicants...)
			top := topByScore(candidates, scores[c], quotas[c])
			keep := make(map[int]bool, len(top))
			for _, s := range top {
				keep[s] = true
			}
			for _, s := range waiting[c] {
				if !keep[s] {
					collegeOf[s] = Unassigned
				}
			}
			for _, s := range top {
				collegeOf[s] = c
			}
			waiting[c] = top
		}
	}
	res.CollegeOf = collegeOf
	return res, nil
}

// topByScore returns up to q candidates with the highest scores, ties
// toward the smaller index, preserving a deterministic sorted-by-score
// order.
func topByScore(candidates []int, scores []float64, q int) []int {
	sorted := append([]int(nil), candidates...)
	// Insertion sort by (score desc, index asc); candidate lists are tiny.
	for a := 1; a < len(sorted); a++ {
		for b := a; b > 0; b-- {
			better := scores[sorted[b]] > scores[sorted[b-1]] ||
				(scores[sorted[b]] == scores[sorted[b-1]] && sorted[b] < sorted[b-1])
			if !better {
				break
			}
			sorted[b], sorted[b-1] = sorted[b-1], sorted[b]
		}
	}
	if q > len(sorted) {
		q = len(sorted)
	}
	return sorted[:q]
}

// BlockingPair is a student-college pair that blocks a matching: both
// prefer each other to their current assignments.
type BlockingPair struct {
	Student int
	College int
}

// CheckStable returns all blocking pairs of an assignment; nil means the
// matching is stable in the classic sense.
func CheckStable(prefs [][]int, scores [][]float64, quotas []int, collegeOf []int) []BlockingPair {
	numColleges := len(quotas)
	load := make([][]int, numColleges)
	for s, c := range collegeOf {
		if c != Unassigned {
			load[c] = append(load[c], s)
		}
	}
	var out []BlockingPair
	for s, pref := range prefs {
		for _, c := range pref {
			if c == collegeOf[s] {
				break // current college reached: no better option blocks
			}
			// Student s prefers c. College c accepts if under quota or if s
			// outscores its weakest admit.
			if len(load[c]) < quotas[c] {
				out = append(out, BlockingPair{Student: s, College: c})
				continue
			}
			weakest, weakestScore := -1, 0.0
			for _, admitted := range load[c] {
				if weakest == -1 || scores[c][admitted] < weakestScore {
					weakest, weakestScore = admitted, scores[c][admitted]
				}
			}
			if weakest != -1 && scores[c][s] > weakestScore {
				out = append(out, BlockingPair{Student: s, College: c})
			}
		}
	}
	return out
}
