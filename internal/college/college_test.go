package college

import (
	"reflect"
	"testing"
	"testing/quick"

	"specmatch/internal/core"
	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/xrand"
)

func TestTextbookInstance(t *testing.T) {
	// Three students, two colleges with quota 1. Student preferences all
	// favor college 0; college 0 ranks student 2 highest.
	prefs := [][]int{{0, 1}, {0, 1}, {0, 1}}
	scores := [][]float64{
		{1, 2, 3},
		{3, 2, 1},
	}
	res, err := Match(prefs, scores, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, Unassigned, 0}
	if !reflect.DeepEqual(res.CollegeOf, want) {
		t.Errorf("CollegeOf = %v, want %v", res.CollegeOf, want)
	}
	if bp := CheckStable(prefs, scores, []int{1, 1}, res.CollegeOf); len(bp) != 0 {
		t.Errorf("blocking pairs: %v", bp)
	}
}

func TestQuotas(t *testing.T) {
	// One college with quota 2 over three students: keeps the top two.
	prefs := [][]int{{0}, {0}, {0}}
	scores := [][]float64{{5, 9, 7}}
	res, err := Match(prefs, scores, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{Unassigned, 0, 0}
	if !reflect.DeepEqual(res.CollegeOf, want) {
		t.Errorf("CollegeOf = %v, want %v", res.CollegeOf, want)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Match([][]int{{0}}, [][]float64{}, []int{1}); err == nil {
		t.Error("missing score rows should fail")
	}
	if _, err := Match([][]int{{0}}, [][]float64{{1, 2}}, []int{1}); err == nil {
		t.Error("ragged scores should fail")
	}
	if _, err := Match([][]int{{5}}, [][]float64{{1}}, []int{1}); err == nil {
		t.Error("out-of-range preference should fail")
	}
	if _, err := Match([][]int{{0}}, [][]float64{{1}}, []int{-1}); err == nil {
		t.Error("negative quota should fail")
	}
}

// TestAlwaysStableProperty: deferred acceptance output has no blocking pair
// (the Gale–Shapley theorem), on random instances with random quotas.
func TestAlwaysStableProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		numStudents := 3 + r.Intn(10)
		numColleges := 2 + r.Intn(4)
		prefs := make([][]int, numStudents)
		for s := range prefs {
			prefs[s] = r.Perm(numColleges)[:1+r.Intn(numColleges)]
		}
		scores := make([][]float64, numColleges)
		for c := range scores {
			scores[c] = make([]float64, numStudents)
			for s := range scores[c] {
				scores[c][s] = r.Float64()
			}
		}
		quotas := make([]int, numColleges)
		for c := range quotas {
			quotas[c] = 1 + r.Intn(3)
		}
		res, err := Match(prefs, scores, quotas)
		if err != nil {
			return false
		}
		return len(CheckStable(prefs, scores, quotas, res.CollegeOf)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSpectrumReducesToCollege cross-validates the two engines: under
// complete interference graphs (unit quotas) the spectrum Stage I matching
// equals classic deferred acceptance with the same preferences and scores.
func TestSpectrumReducesToCollege(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := xrand.New(seed)
		numSellers, numBuyers := 4, 6
		prices := make([][]float64, numSellers)
		graphs := make([]*graph.Graph, numSellers)
		for i := range prices {
			row := make([]float64, numBuyers)
			for j := range row {
				row[j] = 0.01 + r.Float64()
			}
			prices[i] = row
			graphs[i] = graph.Complete(numBuyers)
		}
		m, err := market.New(prices, graphs)
		if err != nil {
			t.Fatal(err)
		}
		mu, _, err := core.RunStageI(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}

		prefs := make([][]int, numBuyers)
		for j := range prefs {
			prefs[j] = m.BuyerPrefOrder(j)
		}
		quotas := make([]int, numSellers)
		for i := range quotas {
			quotas[i] = 1
		}
		ref, err := Match(prefs, prices, quotas)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < numBuyers; j++ {
			want := ref.CollegeOf[j]
			got := mu.SellerOf(j)
			if want == Unassigned {
				want = -1
			}
			if got != want {
				t.Errorf("seed %d: buyer %d — spectrum %d vs college %d", seed, j, got, want)
			}
		}
	}
}
