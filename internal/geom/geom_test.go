package geom

import (
	"math"
	"testing"
	"testing/quick"

	"specmatch/internal/xrand"
)

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{2, 4}, 5},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.q.Dist(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist not symmetric for %v,%v", tt.p, tt.q)
		}
	}
}

func TestDistSqConsistent(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{X: math.Mod(ax, 100), Y: math.Mod(ay, 100)}
		b := Point{X: math.Mod(bx, 100), Y: math.Mod(by, 100)}
		d := a.Dist(b)
		return math.Abs(a.DistSq(b)-d*d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAreaContains(t *testing.T) {
	a := PaperArea()
	if a.Side != 10 {
		t.Fatalf("paper area side = %v, want 10", a.Side)
	}
	if !a.Contains(Point{0, 0}) || !a.Contains(Point{10, 10}) || !a.Contains(Point{5, 5}) {
		t.Error("boundary and interior points must be contained")
	}
	if a.Contains(Point{-0.1, 5}) || a.Contains(Point{5, 10.1}) {
		t.Error("outside points must not be contained")
	}
}

func TestRandomPointsInside(t *testing.T) {
	a := PaperArea()
	r := xrand.New(1)
	for _, p := range a.RandomPoints(r, 500) {
		if !a.Contains(p) {
			t.Fatalf("random point %v outside area", p)
		}
	}
}

func TestRandomPointsCoverage(t *testing.T) {
	// Quadrant coverage: uniform sampling should hit all four quadrants.
	a := PaperArea()
	r := xrand.New(2)
	var quadrants [4]int
	for _, p := range a.RandomPoints(r, 400) {
		q := 0
		if p.X > 5 {
			q++
		}
		if p.Y > 5 {
			q += 2
		}
		quadrants[q]++
	}
	for q, count := range quadrants {
		if count < 50 {
			t.Errorf("quadrant %d hit %d times of 400; sampling not uniform", q, count)
		}
	}
}

func TestMaxDist(t *testing.T) {
	a := Area{Side: 10}
	if got := a.MaxDist(); math.Abs(got-10*math.Sqrt2) > 1e-12 {
		t.Errorf("MaxDist = %v", got)
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{X: 1.5, Y: 2}).String(); s != "(1.500, 2.000)" {
		t.Errorf("String = %q", s)
	}
}
