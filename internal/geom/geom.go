// Package geom provides the 2-D geometry substrate for geometric interference
// graphs: points, distances, and uniform placement inside a square deployment
// area (the paper places buyers uniformly at random in a 10×10 area, §V-A).
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the deployment plane.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root for pure threshold comparisons.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y)
}

// Area is a square deployment area [0, Side] × [0, Side].
type Area struct {
	Side float64 `json:"side"`
}

// PaperArea is the 10×10 deployment area used throughout the paper's
// evaluation (§V-A).
func PaperArea() Area { return Area{Side: 10} }

// Contains reports whether p lies inside the area (boundary inclusive).
func (a Area) Contains(p Point) bool {
	return p.X >= 0 && p.X <= a.Side && p.Y >= 0 && p.Y <= a.Side
}

// RandomPoint draws a point uniformly at random from the area.
func (a Area) RandomPoint(r *rand.Rand) Point {
	return Point{X: r.Float64() * a.Side, Y: r.Float64() * a.Side}
}

// RandomPoints draws n independent uniform points from the area.
func (a Area) RandomPoints(r *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = a.RandomPoint(r)
	}
	return pts
}

// MaxDist returns the diameter of the area (corner-to-corner distance); no
// two points inside the area can be farther apart.
func (a Area) MaxDist() float64 {
	return a.Side * math.Sqrt2
}
