package experiment

import (
	"reflect"
	"strings"
	"testing"
)

// Shape tests run each figure at reduced replication and assert the paper's
// qualitative findings — who wins, what grows, what stays small — rather
// than absolute values. Full-replication numbers live in EXPERIMENTS.md and
// the bench harness.

func TestCatalogComplete(t *testing.T) {
	catalog := Catalog()
	for _, id := range IDs() {
		spec, ok := catalog[id]
		if !ok {
			t.Errorf("IDs() lists %q but Catalog() lacks it", id)
			continue
		}
		if spec.ID != id || spec.Description == "" || spec.Run == nil {
			t.Errorf("catalog entry %q incomplete: %+v", id, spec)
		}
	}
	if len(catalog) != len(IDs()) {
		t.Errorf("catalog has %d entries, IDs() has %d", len(catalog), len(IDs()))
	}
}

// TestFig6HeadlineClaim: the distributed algorithm achieves ≥ 90% of optimal
// welfare on average across the Fig. 6(a) sweep — the paper's headline.
func TestFig6HeadlineClaim(t *testing.T) {
	fig, err := Fig6a(RunConfig{Seed: 42, Reps: 12})
	if err != nil {
		t.Fatal(err)
	}
	var ratioSum float64
	for k := range fig.Points {
		opt := fig.Value(k, SeriesOptimal)
		prop := fig.Value(k, SeriesProposed)
		if prop > opt+1e-9 {
			t.Fatalf("point %d: proposed %v beats optimal %v", k, prop, opt)
		}
		ratioSum += prop / opt
	}
	if avg := ratioSum / float64(len(fig.Points)); avg < 0.9 {
		t.Errorf("average proposed/optimal = %.3f, want ≥ 0.9 (paper's headline)", avg)
	}
}

// TestFig6aWelfareGrowsWithBuyers: both series increase from N = 6 to
// N = 10 (Fig. 6a's visible trend).
func TestFig6aWelfareGrowsWithBuyers(t *testing.T) {
	fig, err := Fig6a(RunConfig{Seed: 7, Reps: 12})
	if err != nil {
		t.Fatal(err)
	}
	first, last := fig.Points[0], fig.Points[len(fig.Points)-1]
	for _, s := range fig.Series {
		if last.Values[s].Mean <= first.Values[s].Mean {
			t.Errorf("series %q does not grow with N: %.3f → %.3f", s, first.Values[s].Mean, last.Values[s].Mean)
		}
	}
}

// TestFig6bWelfareGrowsWithSellers: welfare increases from M = 2 to M = 6.
func TestFig6bWelfareGrowsWithSellers(t *testing.T) {
	fig, err := Fig6b(RunConfig{Seed: 7, Reps: 12})
	if err != nil {
		t.Fatal(err)
	}
	first, last := fig.Points[0], fig.Points[len(fig.Points)-1]
	for _, s := range fig.Series {
		if last.Values[s].Mean <= first.Values[s].Mean {
			t.Errorf("series %q does not grow with M: %.3f → %.3f", s, first.Values[s].Mean, last.Values[s].Mean)
		}
	}
}

// TestFig6cSimilarityAxis: the measured-SRCC x coordinates are (weakly)
// increasing across the permutation sweep and span ≈ [0, 1].
func TestFig6cSimilarityAxis(t *testing.T) {
	fig, err := Fig6c(RunConfig{Seed: 3, Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Points[0].X > 0.45 {
		t.Errorf("most-permuted point has SRCC %.3f, want near 0", fig.Points[0].X)
	}
	if last := fig.Points[len(fig.Points)-1].X; last < 0.99 {
		t.Errorf("unpermuted point has SRCC %.3f, want 1", last)
	}
}

// TestFig7CumulativeOrdering: at every sweep point, welfare accumulates
// stage I ≤ +phase 1 ≤ +phase 2, with phase 1 carrying most of the Stage II
// gain (the paper's main Fig. 7 observation).
func TestFig7CumulativeOrdering(t *testing.T) {
	fig, err := Fig7a(RunConfig{Seed: 5, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range fig.Points {
		s1 := p.Values[SeriesStageI].Mean
		p1 := p.Values[SeriesPhase1].Mean
		p2 := p.Values[SeriesPhase2].Mean
		if !(s1 <= p1+1e-9 && p1 <= p2+1e-9) {
			t.Errorf("point %d: cumulative ordering violated: %.3f, %.3f, %.3f", k, s1, p1, p2)
		}
		phase1Gain := p1 - s1
		phase2Gain := p2 - p1
		if phase2Gain > phase1Gain+1e-9 && phase1Gain > 0 {
			t.Errorf("point %d: phase 2 gain %.3f exceeds phase 1 gain %.3f", k, phase2Gain, phase1Gain)
		}
	}
}

// TestFig7WelfareGrowsWithScale: total welfare grows along both the buyer
// and the seller sweeps.
func TestFig7WelfareGrowsWithScale(t *testing.T) {
	figA, err := Fig7a(RunConfig{Seed: 9, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if last, first := figA.Points[len(figA.Points)-1], figA.Points[0]; last.Values[SeriesPhase2].Mean <= first.Values[SeriesPhase2].Mean {
		t.Error("Fig 7a: welfare does not grow with N")
	}
	figB, err := Fig7b(RunConfig{Seed: 9, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if last, first := figB.Points[len(figB.Points)-1], figB.Points[0]; last.Values[SeriesPhase2].Mean <= first.Values[SeriesPhase2].Mean {
		t.Error("Fig 7b: welfare does not grow with M")
	}
}

// TestFig8Shapes: Stage II Phase 1 rounds grow with M and stay flat in N
// (its bound is O(M)); Phase 2 runs only a few rounds (invitations are
// rare); Stage I, with N ≫ M, is driven by M rather than N.
func TestFig8Shapes(t *testing.T) {
	figA, err := Fig8a(RunConfig{Seed: 11, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range figA.Points {
		if p.Values[SeriesPhase2].Mean > 5 {
			t.Errorf("Fig 8a point %d: phase 2 rounds %.2f, want a few", k, p.Values[SeriesPhase2].Mean)
		}
	}
	// Phase 1 flat in N: last vs first within a 2.5-round band.
	firstP1 := figA.Points[0].Values[SeriesPhase1].Mean
	lastP1 := figA.Points[len(figA.Points)-1].Values[SeriesPhase1].Mean
	if diff := lastP1 - firstP1; diff > 2.5 || diff < -2.5 {
		t.Errorf("Fig 8a: phase 1 rounds vary with N by %.2f, want ≈ flat", diff)
	}

	figB, err := Fig8b(RunConfig{Seed: 11, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 grows with M.
	firstP1 = figB.Points[0].Values[SeriesPhase1].Mean
	lastP1 = figB.Points[len(figB.Points)-1].Values[SeriesPhase1].Mean
	if lastP1 <= firstP1 {
		t.Errorf("Fig 8b: phase 1 rounds do not grow with M: %.2f → %.2f", firstP1, lastP1)
	}
}

// TestSweepDeterminism: identical RunConfig yields identical figures,
// regardless of worker count.
func TestSweepDeterminism(t *testing.T) {
	a, err := Fig6a(RunConfig{Seed: 13, Reps: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6a(RunConfig{Seed: 13, Reps: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("sweep results depend on worker count")
	}
}

// TestAblationStage2Ordering: the decomposition is monotone by construction
// and full equals +phase2.
func TestAblationStage2Ordering(t *testing.T) {
	fig, err := AblationStage2(RunConfig{Seed: 2, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range fig.Points {
		if !(p.Values["stage I only"].Mean <= p.Values["+ phase 1"].Mean+1e-9) ||
			!(p.Values["+ phase 1"].Mean <= p.Values["full"].Mean+1e-9) {
			t.Errorf("point %d not monotone: %+v", k, p.Values)
		}
	}
}

// TestAblationMWISExactDominates: exact coalition formation never loses to a
// single greedy by more than noise... in fact the *final* welfare is not
// guaranteed monotone in coalition quality (better Stage I coalitions can
// steer Stage II differently), so assert only that every strategy lands
// within 15% of exact.
func TestAblationMWISExactDominates(t *testing.T) {
	fig, err := AblationMWIS(RunConfig{Seed: 2, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range fig.Points {
		exact := p.Values["exact"].Mean
		for _, s := range fig.Series {
			if v := p.Values[s].Mean; v < 0.85*exact {
				t.Errorf("point %d: %s welfare %.3f below 85%% of exact %.3f", k, s, v, exact)
			}
		}
	}
}

// TestAblationFaultsDegradesGracefully: reliable welfare is an upper bound
// (up to noise) and welfare stays positive at 30% loss.
func TestAblationFaultsDegradesGracefully(t *testing.T) {
	fig, err := AblationFaults(RunConfig{Seed: 4, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range fig.Points {
		if p.Values["welfare"].Mean <= 0 {
			t.Errorf("point %d: welfare %.3f under loss", k, p.Values["welfare"].Mean)
		}
	}
	last := fig.Points[len(fig.Points)-1]
	if last.Values["welfare"].Mean > last.Values["welfare (reliable)"].Mean*1.05 {
		t.Error("lossy welfare implausibly exceeds reliable welfare at 30% loss")
	}
}

// TestFormat renders a figure table.
func TestFormat(t *testing.T) {
	fig, err := Fig6b(RunConfig{Seed: 1, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Format()
	for _, want := range []string{"Figure 6b", "sellers M", SeriesOptimal, SeriesProposed, "±"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format() missing %q:\n%s", want, s)
		}
	}
}

// TestEveryCatalogEntryRuns executes every experiment in the catalog at
// minimal replication and validates the resulting figure's structure:
// non-empty points, every declared series present with the right
// replication count, and usable renderings. Skipped under -short (the full
// catalog takes several seconds).
func TestEveryCatalogEntryRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog sweep")
	}
	cfg := RunConfig{Seed: 99, Reps: 2}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fig, err := Catalog()[id].Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fig.ID != id {
				t.Errorf("figure ID %q, want %q", fig.ID, id)
			}
			if len(fig.Points) == 0 || len(fig.Series) == 0 {
				t.Fatalf("empty figure: %+v", fig)
			}
			for k, p := range fig.Points {
				for _, s := range fig.Series {
					v, ok := p.Values[s]
					if !ok {
						t.Fatalf("point %d missing series %q", k, s)
					}
					if v.N != cfg.Reps {
						t.Errorf("point %d series %q has %d reps, want %d", k, s, v.N, cfg.Reps)
					}
				}
			}
			if fig.Format() == "" || fig.Plot(30, 8) == "" {
				t.Error("empty rendering")
			}
			if _, err := fig.CSV(); err != nil {
				t.Errorf("CSV: %v", err)
			}
			if _, err := fig.JSON(); err != nil {
				t.Errorf("JSON: %v", err)
			}
		})
	}
}
