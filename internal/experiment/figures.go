package experiment

import (
	"fmt"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/optimal"
)

// Series names shared across figures.
const (
	SeriesOptimal  = "optimal"
	SeriesProposed = "proposed"
	SeriesStageI   = "stage I"
	SeriesPhase1   = "stage II phase 1"
	SeriesPhase2   = "stage II phase 2"
)

// fig6Measure runs both the optimal benchmark and the proposed algorithm on
// one generated market.
func fig6Measure(cfg market.Config, eopts core.Options) (measurement, error) {
	m, err := market.Generate(cfg)
	if err != nil {
		return measurement{}, fmt.Errorf("experiment: generating market: %w", err)
	}
	_, opt, err := optimal.Solve(m, optimal.Options{})
	if err != nil {
		return measurement{}, fmt.Errorf("experiment: optimal: %w", err)
	}
	res, err := core.Run(m, eopts)
	if err != nil {
		return measurement{}, fmt.Errorf("experiment: proposed: %w", err)
	}
	return measurement{values: map[string]float64{
		SeriesOptimal:  opt,
		SeriesProposed: res.Welfare,
	}}, nil
}

// Fig6a regenerates Fig. 6(a): social welfare of optimal vs proposed as the
// number of buyers grows, with M = 4 sellers.
func Fig6a(cfg RunConfig) (*Figure, error) {
	var points []sweepPoint
	for n := 6; n <= 10; n++ {
		n := n
		points = append(points, sweepPoint{
			x: float64(n),
			run: func(seed int64) (measurement, error) {
				return fig6Measure(market.Config{Sellers: 4, Buyers: n, Seed: seed}, cfg.engineOptions())
			},
		})
	}
	series := []string{SeriesOptimal, SeriesProposed}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "6a", Title: "Optimal vs proposed, M = 4",
		XLabel: "buyers N", YLabel: "social welfare",
		Series: series, Points: pts,
	}, nil
}

// Fig6b regenerates Fig. 6(b): welfare as the number of sellers grows, with
// N = 8 buyers.
func Fig6b(cfg RunConfig) (*Figure, error) {
	var points []sweepPoint
	for m := 2; m <= 6; m++ {
		m := m
		points = append(points, sweepPoint{
			x: float64(m),
			run: func(seed int64) (measurement, error) {
				return fig6Measure(market.Config{Sellers: m, Buyers: 8, Seed: seed}, cfg.engineOptions())
			},
		})
	}
	series := []string{SeriesOptimal, SeriesProposed}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "6b", Title: "Optimal vs proposed, N = 8",
		XLabel: "sellers M", YLabel: "social welfare",
		Series: series, Points: pts,
	}, nil
}

// Fig6c regenerates Fig. 6(c): welfare versus price similarity (measured
// average pairwise SRCC), with M = 5 and N = 8. The sweep drives the
// sort-then-permute knob of §V-A; the x coordinate is the realized SRCC.
func Fig6c(cfg RunConfig) (*Figure, error) {
	const numSellers, numBuyers = 5, 8
	var points []sweepPoint
	for permuteM := numSellers; permuteM >= 0; permuteM-- {
		permuteM := permuteM
		points = append(points, sweepPoint{
			x: float64(numSellers - permuteM),
			run: func(seed int64) (measurement, error) {
				mcfg := market.Config{
					Sellers: numSellers, Buyers: numBuyers,
					Similarity: &market.SimilarityConfig{PermuteM: permuteM},
					Seed:       seed,
				}
				m, err := market.Generate(mcfg)
				if err != nil {
					return measurement{}, err
				}
				rho, err := m.AvgSimilarity()
				if err != nil {
					return measurement{}, err
				}
				out, err := fig6Measure(mcfg, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				out.x, out.hasX = rho, true
				return out, nil
			},
		})
	}
	series := []string{SeriesOptimal, SeriesProposed}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "6c", Title: "Optimal vs proposed vs price similarity, M = 5, N = 8",
		XLabel: "similarity", YLabel: "social welfare",
		Series: series, Points: pts,
	}, nil
}

// stageMeasure runs the proposed algorithm and reports cumulative welfare
// (Fig. 7) or per-stage rounds (Fig. 8) for one market.
func stageMeasure(cfg market.Config, eopts core.Options, rounds bool) (measurement, error) {
	m, err := market.Generate(cfg)
	if err != nil {
		return measurement{}, fmt.Errorf("experiment: generating market: %w", err)
	}
	res, err := core.Run(m, eopts)
	if err != nil {
		return measurement{}, fmt.Errorf("experiment: proposed: %w", err)
	}
	if rounds {
		return measurement{values: map[string]float64{
			SeriesStageI: float64(res.StageI.Rounds),
			SeriesPhase1: float64(res.Phase1.Rounds),
			SeriesPhase2: float64(res.Phase2.Rounds),
		}}, nil
	}
	return measurement{values: map[string]float64{
		SeriesStageI: res.StageI.Welfare,
		SeriesPhase1: res.Phase1.Welfare,
		SeriesPhase2: res.Phase2.Welfare,
	}}, nil
}

var stageSeries = []string{SeriesStageI, SeriesPhase1, SeriesPhase2}

// buyerSweep builds the N = 200..320 sweep of Figs. 7(a)/8(a) with M = 10.
func buyerSweep(eopts core.Options, rounds bool) []sweepPoint {
	var points []sweepPoint
	for n := 200; n <= 320; n += 20 {
		n := n
		points = append(points, sweepPoint{
			x: float64(n),
			run: func(seed int64) (measurement, error) {
				return stageMeasure(market.Config{Sellers: 10, Buyers: n, Seed: seed}, eopts, rounds)
			},
		})
	}
	return points
}

// sellerSweep builds the M = 4..16 sweep of Figs. 7(b)/8(b) with N = 500.
func sellerSweep(eopts core.Options, rounds bool) []sweepPoint {
	var points []sweepPoint
	for m := 4; m <= 16; m += 2 {
		m := m
		points = append(points, sweepPoint{
			x: float64(m),
			run: func(seed int64) (measurement, error) {
				return stageMeasure(market.Config{Sellers: m, Buyers: 500, Seed: seed}, eopts, rounds)
			},
		})
	}
	return points
}

// similaritySweep builds the SRCC sweep of Figs. 7(c)/8(c) with M = 8,
// N = 300.
func similaritySweep(eopts core.Options, rounds bool) []sweepPoint {
	const numSellers, numBuyers = 8, 300
	var points []sweepPoint
	for _, permuteM := range []int{numSellers, 6, 4, 3, 2, 0} {
		permuteM := permuteM
		points = append(points, sweepPoint{
			x: float64(numSellers - permuteM),
			run: func(seed int64) (measurement, error) {
				mcfg := market.Config{
					Sellers: numSellers, Buyers: numBuyers,
					Similarity: &market.SimilarityConfig{PermuteM: permuteM},
					Seed:       seed,
				}
				m, err := market.Generate(mcfg)
				if err != nil {
					return measurement{}, err
				}
				rho, err := m.AvgSimilarity()
				if err != nil {
					return measurement{}, err
				}
				out, err := stageMeasure(mcfg, eopts, rounds)
				if err != nil {
					return measurement{}, err
				}
				out.x, out.hasX = rho, true
				return out, nil
			},
		})
	}
	return points
}

func stageFigure(cfg RunConfig, id, title, xLabel, yLabel string, points []sweepPoint) (*Figure, error) {
	pts, err := runSweep(cfg, stageSeries, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: id, Title: title, XLabel: xLabel, YLabel: yLabel,
		Series: stageSeries, Points: pts,
	}, nil
}

// Fig7a regenerates Fig. 7(a): cumulative welfare per stage, M = 10.
func Fig7a(cfg RunConfig) (*Figure, error) {
	return stageFigure(cfg, "7a", "Cumulative welfare per stage, M = 10", "buyers N", "social welfare", buyerSweep(cfg.engineOptions(), false))
}

// Fig7b regenerates Fig. 7(b): cumulative welfare per stage, N = 500.
func Fig7b(cfg RunConfig) (*Figure, error) {
	return stageFigure(cfg, "7b", "Cumulative welfare per stage, N = 500", "sellers M", "social welfare", sellerSweep(cfg.engineOptions(), false))
}

// Fig7c regenerates Fig. 7(c): cumulative welfare per stage versus
// similarity, M = 8, N = 300.
func Fig7c(cfg RunConfig) (*Figure, error) {
	return stageFigure(cfg, "7c", "Cumulative welfare vs similarity, M = 8, N = 300", "similarity", "social welfare", similaritySweep(cfg.engineOptions(), false))
}

// Fig8a regenerates Fig. 8(a): per-stage rounds, M = 10.
func Fig8a(cfg RunConfig) (*Figure, error) {
	return stageFigure(cfg, "8a", "Running time per stage, M = 10", "buyers N", "rounds", buyerSweep(cfg.engineOptions(), true))
}

// Fig8b regenerates Fig. 8(b): per-stage rounds, N = 500.
func Fig8b(cfg RunConfig) (*Figure, error) {
	return stageFigure(cfg, "8b", "Running time per stage, N = 500", "sellers M", "rounds", sellerSweep(cfg.engineOptions(), true))
}

// Fig8c regenerates Fig. 8(c): per-stage rounds versus similarity, M = 8,
// N = 300.
func Fig8c(cfg RunConfig) (*Figure, error) {
	return stageFigure(cfg, "8c", "Running time vs similarity, M = 8, N = 300", "similarity", "rounds", similaritySweep(cfg.engineOptions(), true))
}
