package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Plot renders the figure as an ASCII line chart sized width×height
// (plot-area cells, excluding axes). Each series gets a marker letter;
// overlapping points render as '*'. Useful for eyeballing shapes (growth,
// crossover, flatness) straight from the terminal.
func (f *Figure) Plot(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(f.Points) == 0 || len(f.Series) == 0 {
		return fmt.Sprintf("Figure %s — %s (no data)\n", f.ID, f.Title)
	}

	xMin, xMax := f.Points[0].X, f.Points[0].X
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, p := range f.Points {
		xMin = math.Min(xMin, p.X)
		xMax = math.Max(xMax, p.X)
		for _, s := range f.Series {
			v := p.Values[s].Mean
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// Pad the y range slightly so extreme points do not sit on the frame.
	pad := (yMax - yMin) * 0.05
	yMin -= pad
	yMax += pad

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	markers := "abcdefghijklmnopqrstuvwxyz"
	for si, s := range f.Series {
		marker := rune(markers[si%len(markers)])
		for _, p := range f.Points {
			col := int(math.Round((p.X - xMin) / (xMax - xMin) * float64(width-1)))
			v := p.Values[s].Mean
			row := height - 1 - int(math.Round((v-yMin)/(yMax-yMin)*float64(height-1)))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			if grid[row][col] != ' ' && grid[row][col] != marker {
				grid[row][col] = '*'
			} else {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", f.ID, f.Title)
	yLabelW := 10
	for r, row := range grid {
		// Label top, middle and bottom rows with y values.
		label := strings.Repeat(" ", yLabelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.3f", yLabelW, yMax)
		case height / 2:
			label = fmt.Sprintf("%*.3f", yLabelW, (yMax+yMin)/2)
		case height - 1:
			label = fmt.Sprintf("%*.3f", yLabelW, yMin)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.3f%*.3f  (%s)\n",
		strings.Repeat(" ", yLabelW), width/2, xMin, width-width/2, xMax, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%s  %c = %s\n", strings.Repeat(" ", yLabelW), markers[si%len(markers)], s)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values: one header row
// (x label, then per-series mean and ci95 columns) and one row per point.
func (f *Figure) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s+" mean", s+" ci95")
	}
	if err := w.Write(header); err != nil {
		return "", fmt.Errorf("experiment: csv header: %w", err)
	}
	for _, p := range f.Points {
		row := []string{strconv.FormatFloat(p.X, 'g', -1, 64)}
		for _, s := range f.Series {
			v := p.Values[s]
			row = append(row,
				strconv.FormatFloat(v.Mean, 'g', -1, 64),
				strconv.FormatFloat(v.CI95(), 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return "", fmt.Errorf("experiment: csv row: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", fmt.Errorf("experiment: csv flush: %w", err)
	}
	return b.String(), nil
}

// JSON renders the figure as indented JSON.
func (f *Figure) JSON() (string, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiment: json: %w", err)
	}
	return string(data) + "\n", nil
}
