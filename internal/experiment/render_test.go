package experiment

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"specmatch/internal/stats"
)

func fixtureFigure() *Figure {
	mk := func(v float64) stats.Summary { return stats.Summarize([]float64{v, v}) }
	return &Figure{
		ID: "fx", Title: "fixture", XLabel: "n", YLabel: "w",
		Series: []string{"alpha", "beta"},
		Points: []Point{
			{X: 1, Values: map[string]stats.Summary{"alpha": mk(1), "beta": mk(4)}},
			{X: 2, Values: map[string]stats.Summary{"alpha": mk(2), "beta": mk(3)}},
			{X: 3, Values: map[string]stats.Summary{"alpha": mk(5), "beta": mk(2)}},
		},
	}
}

func TestPlotContainsMarkersAndAxes(t *testing.T) {
	fig := fixtureFigure()
	s := fig.Plot(40, 10)
	for _, want := range []string{"Figure fx", "a = alpha", "b = beta", "(n)", "+----"} {
		if !strings.Contains(s, want) {
			t.Errorf("plot missing %q:\n%s", want, s)
		}
	}
	if !strings.ContainsAny(s, "ab*") {
		t.Error("plot has no data markers")
	}
	// Extremes labeled on the y axis.
	if !strings.Contains(s, "1.") || !strings.Contains(s, "5.") {
		t.Errorf("plot missing y labels:\n%s", s)
	}
}

func TestPlotDegenerate(t *testing.T) {
	empty := &Figure{ID: "e", Title: "empty"}
	if s := empty.Plot(40, 10); !strings.Contains(s, "no data") {
		t.Errorf("empty plot = %q", s)
	}
	// Constant series and a single point must not divide by zero.
	mk := func(v float64) stats.Summary { return stats.Summarize([]float64{v}) }
	single := &Figure{
		ID: "s", Title: "single", Series: []string{"a"},
		Points: []Point{{X: 5, Values: map[string]stats.Summary{"a": mk(7)}}},
	}
	if s := single.Plot(2, 2); s == "" {
		t.Error("single-point plot empty")
	}
}

func TestCSVRoundTrips(t *testing.T) {
	fig := fixtureFigure()
	out, err := fig.CSV()
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 4 {
		t.Fatalf("rows = %d, want header + 3", len(records))
	}
	if records[0][0] != "n" || records[0][1] != "alpha mean" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != "1" || records[3][1] != "5" {
		t.Errorf("data rows = %v", records[1:])
	}
}

func TestJSONRoundTrips(t *testing.T) {
	fig := fixtureFigure()
	out, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Figure
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded.ID != "fx" || len(decoded.Points) != 3 || decoded.Points[2].Values["alpha"].Mean != 5 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestVerifyShapesOnRealFigures(t *testing.T) {
	cfg := RunConfig{Seed: 21, Reps: 8}
	for _, id := range []string{"6a", "6b"} {
		fig, err := Catalog()[id].Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if v := VerifyShapes(fig); len(v) != 0 {
			t.Errorf("%s: shape violations: %v", id, v)
		}
	}
	// Ablations have no reference shape.
	if v := VerifyShapes(&Figure{ID: "ablation-mwis"}); v != nil {
		t.Errorf("ablation should have no shape reference, got %v", v)
	}
}

func TestVerifyShapesCatchesViolations(t *testing.T) {
	mk := func(v float64) map[string]stats.Summary {
		return map[string]stats.Summary{
			SeriesOptimal:  stats.Summarize([]float64{v}),
			SeriesProposed: stats.Summarize([]float64{v * 2}), // proposed beats optimal: impossible
		}
	}
	bad := &Figure{ID: "6a", Series: []string{SeriesOptimal, SeriesProposed},
		Points: []Point{{X: 1, Values: mk(1)}, {X: 2, Values: mk(2)}}}
	if v := VerifyShapes(bad); len(v) == 0 {
		t.Error("impossible figure passed the shape check")
	}
}
