package experiment

import (
	"fmt"

	"specmatch/internal/agent"
	"specmatch/internal/auction"
	"specmatch/internal/bundle"
	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/mwis"
	"specmatch/internal/online"
	"specmatch/internal/optimal"
	"specmatch/internal/outage"
	"specmatch/internal/simnet"
	"specmatch/internal/swap"
	"specmatch/internal/xrand"
)

// AblationMWIS compares the seller coalition solvers (GWMIN, GWMIN2, GWMAX,
// greedy-best, exact) by final welfare over the same market sweep. The
// paper adopts the Sakai et al. greedy family; this quantifies how much
// welfare the choice costs against exact coalition formation.
func AblationMWIS(cfg RunConfig) (*Figure, error) {
	algs := []mwis.Algorithm{mwis.GWMIN, mwis.GWMIN2, mwis.GWMAX, mwis.GreedyBest, mwis.Exact}
	series := make([]string, len(algs))
	for k, a := range algs {
		series[k] = a.String()
	}
	var points []sweepPoint
	for n := 40; n <= 120; n += 20 {
		n := n
		points = append(points, sweepPoint{
			x: float64(n),
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 6, Buyers: n, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				values := make(map[string]float64, len(algs))
				for _, alg := range algs {
					eopts := cfg.engineOptions()
					eopts.MWIS = alg
					res, err := core.Run(m, eopts)
					if err != nil {
						return measurement{}, fmt.Errorf("experiment: %v: %w", alg, err)
					}
					values[alg.String()] = res.Welfare
				}
				return measurement{values: values}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-mwis", Title: "MWIS strategy vs final welfare, M = 6",
		XLabel: "buyers N", YLabel: "social welfare",
		Series: series, Points: pts,
	}, nil
}

// AblationStage2 quantifies each Stage II phase: welfare with Stage I only,
// Stage I + Phase 1, and the full algorithm — the decomposition behind
// Fig. 7's "most of the improvement comes from Phase 1".
func AblationStage2(cfg RunConfig) (*Figure, error) {
	series := []string{"stage I only", "+ phase 1", "full"}
	var points []sweepPoint
	for n := 50; n <= 250; n += 50 {
		n := n
		points = append(points, sweepPoint{
			x: float64(n),
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 8, Buyers: n, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				full, err := core.Run(m, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				return measurement{values: map[string]float64{
					"stage I only": full.StageI.Welfare,
					"+ phase 1":    full.Phase1.Welfare,
					"full":         full.Welfare,
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-stage2", Title: "Stage II phase contributions, M = 8",
		XLabel: "buyers N", YLabel: "social welfare",
		Series: series, Points: pts,
	}, nil
}

// AblationAsync compares the asynchronous protocol's transition rules: slots
// to completion and mean buyer transition slot, at equal welfare. This is
// the quantitative version of the paper's §IV "23 slots default vs 7 needed"
// example.
func AblationAsync(cfg RunConfig) (*Figure, error) {
	type ruleCase struct {
		name string
		acfg agent.Config
	}
	cases := []ruleCase{
		{name: "default", acfg: agent.Config{}},
		{name: "rule-i", acfg: agent.Config{BuyerRule: agent.BuyerRuleI, SellerRule: agent.SellerProbabilistic}},
		{name: "rule-ii", acfg: agent.Config{BuyerRule: agent.BuyerRuleII, SellerRule: agent.SellerProbabilistic}},
	}
	series := make([]string, 0, 3*len(cases))
	for _, c := range cases {
		series = append(series, c.name+" slots", c.name+" welfare", c.name+" mean transition")
	}
	var points []sweepPoint
	for n := 20; n <= 60; n += 20 {
		n := n
		points = append(points, sweepPoint{
			x: float64(n),
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 5, Buyers: n, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				values := make(map[string]float64, 2*len(cases))
				for _, c := range cases {
					res, err := agent.Run(m, c.acfg)
					if err != nil {
						return measurement{}, fmt.Errorf("experiment: async %s: %w", c.name, err)
					}
					values[c.name+" slots"] = float64(res.Slots)
					values[c.name+" welfare"] = res.Welfare
					values[c.name+" mean transition"] = res.MeanBuyerTransition
				}
				return measurement{values: values}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-async", Title: "Asynchronous transition rules, M = 5",
		XLabel: "buyers N", YLabel: "slots / welfare",
		Series: series, Points: pts,
	}, nil
}

// AblationSwap measures the coordinated-exchange extension (the paper's
// §III-D future work, package swap): two-stage welfare, welfare after the
// swap stage, and the exact optimum, on small markets where the optimum is
// computable.
func AblationSwap(cfg RunConfig) (*Figure, error) {
	series := []string{"two-stage", "+ swaps", "optimal"}
	var points []sweepPoint
	for n := 6; n <= 14; n += 2 {
		n := n
		points = append(points, sweepPoint{
			x: float64(n),
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 4, Buyers: n, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				res, err := core.Run(m, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				base := res.Welfare
				st, err := swap.Improve(m, res.Matching, swap.Options{})
				if err != nil {
					return measurement{}, err
				}
				_, opt, err := optimal.Solve(m, optimal.Options{})
				if err != nil {
					return measurement{}, err
				}
				return measurement{values: map[string]float64{
					"two-stage": base,
					"+ swaps":   st.FinalWelfare,
					"optimal":   opt,
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-swap", Title: "Coordinated-exchange extension, M = 4",
		XLabel: "buyers N", YLabel: "social welfare",
		Series: series, Points: pts,
	}, nil
}

// AblationAuction compares the matching framework against the mechanism
// family the paper replaces: a TRUST-style group-based truthful double
// auction (package auction), with and without McAfee trade reduction, on
// the same markets. This quantifies the efficiency argument the paper makes
// qualitatively in §VI.
func AblationAuction(cfg RunConfig) (*Figure, error) {
	series := []string{"matching", "auction", "auction (mcafee)"}
	var points []sweepPoint
	for n := 40; n <= 200; n += 40 {
		n := n
		points = append(points, sweepPoint{
			x: float64(n),
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 6, Buyers: n, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				res, err := core.Run(m, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				_, plain, err := auction.Run(m, auction.Options{})
				if err != nil {
					return measurement{}, err
				}
				_, reduced, err := auction.Run(m, auction.Options{McAfeeReduction: true})
				if err != nil {
					return measurement{}, err
				}
				return measurement{values: map[string]float64{
					"matching":         res.Welfare,
					"auction":          plain.Welfare,
					"auction (mcafee)": reduced.Welfare,
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-auction", Title: "Matching vs group-based double auction, M = 6",
		XLabel: "buyers N", YLabel: "social welfare",
		Series: series, Points: pts,
	}, nil
}

// AblationOnline measures the dynamic-market extension (package online):
// welfare of incremental Stage II repair under churn versus a fresh
// two-stage re-run at each step, sweeping the churn rate. The gap is the
// price of never disrupting incumbents.
func AblationOnline(cfg RunConfig) (*Figure, error) {
	series := []string{"incremental", "fresh re-run", "repair rounds"}
	var points []sweepPoint
	for _, churn := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		churn := churn
		points = append(points, sweepPoint{
			x: churn,
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 5, Buyers: 40, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				s, err := online.NewSession(m, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				r := xrand.New(xrand.Split(seed, 1))
				var incSum, freshSum, moves float64
				const steps = 15
				for step := 0; step < steps; step++ {
					var ev online.Event
					for j := 0; j < m.N(); j++ {
						if s.Active(j) {
							if r.Float64() < churn {
								ev.Depart = append(ev.Depart, j)
							}
						} else if r.Float64() < 2*churn {
							ev.Arrive = append(ev.Arrive, j)
						}
					}
					st, err := s.Step(ev)
					if err != nil {
						return measurement{}, err
					}
					fresh, err := s.Rebuild(false)
					if err != nil {
						return measurement{}, err
					}
					incSum += st.Welfare
					freshSum += fresh
					moves += float64(st.RepairMoves)
				}
				return measurement{values: map[string]float64{
					"incremental":   incSum / steps,
					"fresh re-run":  freshSum / steps,
					"repair rounds": moves / steps,
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-online", Title: "Dynamic market: incremental repair vs fresh re-run, M = 5, N = 40",
		XLabel: "churn rate", YLabel: "mean welfare / rounds",
		Series: series, Points: pts,
	}, nil
}

// AblationOutage audits the final matching at the physical layer (package
// outage): aggregate-SINR outage rate of the interference-free matching
// versus an everyone-on-one-channel strawman as the market densifies. The
// residual outage of the matching is the protocol-model gap — pairwise
// predicates cannot see summed interference.
func AblationOutage(cfg RunConfig) (*Figure, error) {
	series := []string{"matching outage", "single-channel outage", "median SINR (dB)"}
	var points []sweepPoint
	for n := 20; n <= 100; n += 20 {
		n := n
		points = append(points, sweepPoint{
			x: float64(n),
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 5, Buyers: n, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				res, err := core.Run(m, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				rep, err := outage.ValidateMatching(m, res.Matching, outage.LinkParams{})
				if err != nil {
					return measurement{}, err
				}
				naive := matching.New(m.M(), m.N())
				for j := 0; j < m.N(); j++ {
					if err := naive.Assign(0, j); err != nil {
						return measurement{}, err
					}
				}
				nrep, err := outage.ValidateMatching(m, naive, outage.LinkParams{})
				if err != nil {
					return measurement{}, err
				}
				return measurement{values: map[string]float64{
					"matching outage":       rep.OutageRate,
					"single-channel outage": nrep.OutageRate,
					"median SINR (dB)":      rep.MedianSINRDB,
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-outage", Title: "Physical-layer audit: aggregate-SINR outage, M = 5",
		XLabel: "buyers N", YLabel: "outage rate / dB",
		Series: series, Points: pts,
	}, nil
}

// AblationThresholds sweeps the P^k / Q^k thresholds of the probabilistic
// transition rules (§IV): higher thresholds mean earlier, riskier
// transitions. Measured: mean buyer transition slot, completion slots, and
// welfare relative to the synchronous baseline.
func AblationThresholds(cfg RunConfig) (*Figure, error) {
	series := []string{"mean transition", "slots", "welfare ratio"}
	var points []sweepPoint
	for _, threshold := range []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.8} {
		threshold := threshold
		points = append(points, sweepPoint{
			x: threshold,
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 5, Buyers: 40, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				sync, err := core.Run(m, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				res, err := agent.Run(m, agent.Config{
					BuyerRule:       agent.BuyerRuleII,
					SellerRule:      agent.SellerProbabilistic,
					BuyerThreshold:  threshold,
					SellerThreshold: threshold,
				})
				if err != nil {
					return measurement{}, err
				}
				ratio := 1.0
				if sync.Welfare > 0 {
					ratio = res.Welfare / sync.Welfare
				}
				return measurement{values: map[string]float64{
					"mean transition": res.MeanBuyerTransition,
					"slots":           float64(res.Slots),
					"welfare ratio":   ratio,
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-thresholds", Title: "Transition-rule thresholds (rule II + probabilistic), M = 5, N = 40",
		XLabel: "threshold", YLabel: "slots / ratio",
		Series: series, Points: pts,
	}, nil
}

// AblationBundle sweeps the pairwise channel synergy γ of the footnote-1
// extension (package bundle): the additive matching's welfare evaluated
// under bundle valuations versus the bundle-aware optimum. Complements
// (γ > 0) widen the gap — the additivity assumption's price.
func AblationBundle(cfg RunConfig) (*Figure, error) {
	series := []string{"matching (bundle value)", "bundle optimum"}
	var points []sweepPoint
	for _, gamma := range []float64{-0.2, -0.1, 0, 0.1, 0.2, 0.3} {
		gamma := gamma
		points = append(points, sweepPoint{
			x: gamma,
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{
					Sellers: 4, Buyers: 4,
					BuyerDemands: []int{2, 1, 3, 2},
					Seed:         seed,
				})
				if err != nil {
					return measurement{}, err
				}
				res, err := core.Run(m, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				v := bundle.Valuation{Gamma: gamma}
				opt, err := bundle.Optimal(m, v, 0)
				if err != nil {
					return measurement{}, err
				}
				return measurement{values: map[string]float64{
					"matching (bundle value)": bundle.Welfare(m, res.Matching, v),
					"bundle optimum":          opt,
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-bundle", Title: "Channel synergy (footnote-1 extension), multi-demand market",
		XLabel: "gamma", YLabel: "bundle welfare",
		Series: series, Points: pts,
	}, nil
}

// AblationRadio sweeps the physical-layer interference model (package
// radio) around the paper's disk calibration: the operating I/N threshold
// offset changes interference density, and the sweep shows how welfare, the
// optimality ratio, and service counts respond — i.e., how sensitive the
// paper's conclusions are to its interference abstraction.
func AblationRadio(cfg RunConfig) (*Figure, error) {
	series := []string{"welfare", "optimal", "matched"}
	var points []sweepPoint
	for _, deltaDB := range []float64{-9, -6, -3, 0, 3, 6, 9} {
		deltaDB := deltaDB
		points = append(points, sweepPoint{
			x: deltaDB,
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{
					Sellers: 4, Buyers: 10, Seed: seed,
					Radio: &market.RadioConfig{DeltaDB: deltaDB},
				})
				if err != nil {
					return measurement{}, err
				}
				res, err := core.Run(m, cfg.engineOptions())
				if err != nil {
					return measurement{}, err
				}
				_, opt, err := optimal.Solve(m, optimal.Options{})
				if err != nil {
					return measurement{}, err
				}
				return measurement{values: map[string]float64{
					"welfare": res.Welfare,
					"optimal": opt,
					"matched": float64(res.Matched),
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-radio", Title: "SINR threshold sweep around disk calibration, M = 4, N = 10",
		XLabel: "delta dB", YLabel: "welfare / count",
		Series: series, Points: pts,
	}, nil
}

// AblationFaults sweeps message-loss probability and reports realized
// welfare and voided pairings of the asynchronous protocol — behavior
// outside the paper's idealized channel.
func AblationFaults(cfg RunConfig) (*Figure, error) {
	series := []string{"welfare", "welfare (reliable)", "disagreed pairs"}
	var points []sweepPoint
	for _, drop := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.3} {
		drop := drop
		points = append(points, sweepPoint{
			x: drop,
			run: func(seed int64) (measurement, error) {
				m, err := market.Generate(market.Config{Sellers: 5, Buyers: 40, Seed: seed})
				if err != nil {
					return measurement{}, err
				}
				reliable, err := agent.Run(m, agent.Config{})
				if err != nil {
					return measurement{}, err
				}
				lossy, err := agent.Run(m, agent.Config{Net: simnet.Config{DropProb: drop, Seed: seed + 1}})
				if err != nil {
					return measurement{}, err
				}
				return measurement{values: map[string]float64{
					"welfare":            lossy.Welfare,
					"welfare (reliable)": reliable.Welfare,
					"disagreed pairs":    float64(lossy.DisagreedPairs),
				}}, nil
			},
		})
	}
	pts, err := runSweep(cfg, series, points)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ablation-faults", Title: "Welfare under message loss, M = 5, N = 40",
		XLabel: "drop probability", YLabel: "welfare / count",
		Series: series, Points: pts,
	}, nil
}
