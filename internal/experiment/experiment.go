// Package experiment regenerates every figure of the paper's evaluation
// (§V): the welfare-versus-optimal comparison of Fig. 6, the per-stage
// welfare decomposition of Fig. 7, and the per-stage running times of
// Fig. 8, plus ablations this reproduction adds (MWIS strategy, Stage II
// phases, asynchronous transition rules).
//
// Each figure is a sweep over one parameter; each sweep point runs Reps
// independent replications on freshly generated markets and aggregates them
// into stats.Summary values per named series. Replications are
// embarrassingly parallel and deterministically seeded, so results are
// identical at any parallelism level.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"specmatch/internal/core"
	"specmatch/internal/obs"
	"specmatch/internal/stats"
	"specmatch/internal/xrand"
)

// RunConfig tunes a figure regeneration.
type RunConfig struct {
	// Seed drives all randomness; same seed, same figure.
	Seed int64
	// Reps is the number of replications per sweep point; zero means 20.
	Reps int
	// Workers bounds parallel replications; zero means GOMAXPROCS.
	Workers int
	// EngineWorkers bounds the per-round seller fan-out inside each core.Run
	// replication. Zero means sequential (1): replications already saturate
	// the machine, so nesting engine parallelism under them would only
	// oversubscribe. Set it above one when running few replications on a
	// many-core box. Results are identical at every setting.
	EngineWorkers int

	// Metrics, when non-nil, aggregates engine instrumentation across every
	// replication of the figure (the registry's counters are atomic, so
	// parallel replications share it safely). Measured results are identical
	// either way.
	Metrics *obs.Registry

	// Events, when non-nil, receives one "experiment.rep" event per
	// completed replication (Slot = sweep-point index).
	Events *obs.Sink
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Reps == 0 {
		c.Reps = 20
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EngineWorkers == 0 {
		c.EngineWorkers = 1
	}
	return c
}

// engineOptions translates the config into the engine options every
// replication should run under.
func (c RunConfig) engineOptions() core.Options {
	c = c.withDefaults()
	return core.Options{Workers: c.EngineWorkers, Metrics: c.Metrics}
}

// Point is one sweep position with aggregated measurements per series.
type Point struct {
	X      float64                  `json:"x"`
	Values map[string]stats.Summary `json:"values"`
}

// Figure is a regenerated evaluation figure.
type Figure struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []string `json:"series"`
	Points []Point  `json:"points"`
}

// Value returns the mean of the named series at point index k.
func (f *Figure) Value(k int, series string) float64 {
	return f.Points[k].Values[series].Mean
}

// Format renders the figure as an aligned text table with mean ± 95% CI
// cells, the form the CLI and EXPERIMENTS.md use.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-22s", s)
	}
	b.WriteByte('\n')
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-12.3f", p.X)
		for _, s := range f.Series {
			v := p.Values[s]
			fmt.Fprintf(&b, "  %-22s", fmt.Sprintf("%.3f ± %.3f", v.Mean, v.CI95()))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// measurement is one replication's named values; X overrides the sweep
// coordinate when the x-axis is itself measured (e.g. realized SRCC).
type measurement struct {
	values map[string]float64
	x      float64
	hasX   bool
}

// sweepPoint describes one position of a sweep.
type sweepPoint struct {
	x float64
	// run executes one replication with a dedicated seed.
	run func(seed int64) (measurement, error)
}

// runSweep executes all replications of all points with bounded parallelism
// and aggregates per-series summaries.
func runSweep(cfg RunConfig, series []string, points []sweepPoint) ([]Point, error) {
	cfg = cfg.withDefaults()
	type job struct{ point, rep int }
	type outcome struct {
		point int
		m     measurement
		err   error
	}

	jobs := make(chan job)
	outcomes := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				seed := xrand.Split(cfg.Seed, jb.point*1_000_003+jb.rep)
				m, err := points[jb.point].run(seed)
				if cfg.Events.Enabled() {
					note := fmt.Sprintf("rep=%d seed=%d", jb.rep, seed)
					if err != nil {
						note += " err=" + err.Error()
					}
					cfg.Events.Emit(obs.Event{Slot: jb.point, Kind: "experiment.rep", Note: note})
				}
				outcomes <- outcome{point: jb.point, m: m, err: err}
			}
		}()
	}
	go func() {
		for p := range points {
			for rep := 0; rep < cfg.Reps; rep++ {
				jobs <- job{point: p, rep: rep}
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	perPoint := make([]map[string][]float64, len(points))
	xs := make([][]float64, len(points))
	for p := range perPoint {
		perPoint[p] = make(map[string][]float64, len(series))
	}
	var firstErr error
	for oc := range outcomes {
		if oc.err != nil {
			if firstErr == nil {
				firstErr = oc.err
			}
			continue
		}
		for name, v := range oc.m.values {
			perPoint[oc.point][name] = append(perPoint[oc.point][name], v)
		}
		if oc.m.hasX {
			xs[oc.point] = append(xs[oc.point], oc.m.x)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]Point, len(points))
	for p := range points {
		values := make(map[string]stats.Summary, len(series))
		for _, name := range series {
			// Sort for deterministic aggregation regardless of arrival order.
			vs := perPoint[p][name]
			sort.Float64s(vs)
			values[name] = stats.Summarize(vs)
		}
		x := points[p].x
		if len(xs[p]) > 0 {
			sort.Float64s(xs[p])
			x = stats.Mean(xs[p])
		}
		out[p] = Point{X: x, Values: values}
	}
	return out, nil
}

// Spec is a catalog entry: a named, self-describing experiment.
type Spec struct {
	ID          string
	Description string
	Run         func(cfg RunConfig) (*Figure, error)
}

// Catalog returns every reproducible experiment keyed by ID: the paper's
// figure panels ("6a".."8c") and this reproduction's ablations.
func Catalog() map[string]Spec {
	specs := []Spec{
		{ID: "6a", Description: "Welfare, optimal vs proposed; N = 6..10, M = 4 (Fig. 6a)", Run: Fig6a},
		{ID: "6b", Description: "Welfare, optimal vs proposed; M = 2..6, N = 8 (Fig. 6b)", Run: Fig6b},
		{ID: "6c", Description: "Welfare vs price similarity; M = 5, N = 8 (Fig. 6c)", Run: Fig6c},
		{ID: "7a", Description: "Cumulative welfare per stage; N = 200..320, M = 10 (Fig. 7a)", Run: Fig7a},
		{ID: "7b", Description: "Cumulative welfare per stage; M = 4..16, N = 500 (Fig. 7b)", Run: Fig7b},
		{ID: "7c", Description: "Cumulative welfare per stage vs similarity; M = 8, N = 300 (Fig. 7c)", Run: Fig7c},
		{ID: "8a", Description: "Running time per stage; N = 200..320, M = 10 (Fig. 8a)", Run: Fig8a},
		{ID: "8b", Description: "Running time per stage; M = 4..16, N = 500 (Fig. 8b)", Run: Fig8b},
		{ID: "8c", Description: "Running time per stage vs similarity; M = 8, N = 300 (Fig. 8c)", Run: Fig8c},
		{ID: "ablation-mwis", Description: "Ablation: MWIS strategy vs welfare", Run: AblationMWIS},
		{ID: "ablation-stage2", Description: "Ablation: Stage II phase contributions", Run: AblationStage2},
		{ID: "ablation-async", Description: "Ablation: asynchronous transition rules", Run: AblationAsync},
		{ID: "ablation-faults", Description: "Ablation: welfare under message loss", Run: AblationFaults},
		{ID: "ablation-swap", Description: "Extension: coordinated-exchange stage vs two-stage and optimal", Run: AblationSwap},
		{ID: "ablation-auction", Description: "Baseline: matching vs TRUST-style group-based double auction", Run: AblationAuction},
		{ID: "ablation-online", Description: "Extension: incremental repair vs fresh re-run under churn", Run: AblationOnline},
		{ID: "ablation-radio", Description: "Ablation: SINR interference model around disk calibration", Run: AblationRadio},
		{ID: "ablation-bundle", Description: "Extension: channel synergy (complements/substitutes, footnote 1)", Run: AblationBundle},
		{ID: "ablation-thresholds", Description: "Ablation: probabilistic transition-rule thresholds", Run: AblationThresholds},
		{ID: "ablation-outage", Description: "Audit: aggregate-SINR outage of the final matching (protocol-model gap)", Run: AblationOutage},
	}
	out := make(map[string]Spec, len(specs))
	for _, s := range specs {
		out[s.ID] = s
	}
	return out
}

// IDs returns the catalog keys in display order.
func IDs() []string {
	return []string{
		"6a", "6b", "6c",
		"7a", "7b", "7c",
		"8a", "8b", "8c",
		"ablation-mwis", "ablation-stage2", "ablation-async", "ablation-faults", "ablation-swap", "ablation-auction", "ablation-online", "ablation-radio", "ablation-bundle", "ablation-thresholds", "ablation-outage",
	}
}
