package experiment

import "fmt"

// VerifyShapes checks a regenerated figure against the paper's qualitative
// claims for it — who wins, what grows, what stays small — and returns one
// message per violated expectation (empty means the reproduction matches
// the published shape). specbench -check surfaces these after each figure;
// the same expectations back the test suite.
func VerifyShapes(f *Figure) []string {
	switch f.ID {
	case "6a", "6b", "6c":
		return verifyFig6(f)
	case "7a", "7b":
		return verifyFig7Growth(f)
	case "7c":
		return verifyCumulative(f)
	case "8a", "8b", "8c":
		return verifyFig8(f)
	default:
		return nil // ablations have no published reference shape
	}
}

func verifyFig6(f *Figure) []string {
	var out []string
	var ratioSum float64
	for k, p := range f.Points {
		opt := p.Values[SeriesOptimal].Mean
		prop := p.Values[SeriesProposed].Mean
		if prop > opt+1e-9 {
			out = append(out, fmt.Sprintf("point %d: proposed %.3f exceeds optimal %.3f", k, prop, opt))
		}
		if opt > 0 {
			ratioSum += prop / opt
		}
	}
	if avg := ratioSum / float64(len(f.Points)); avg < 0.9 {
		out = append(out, fmt.Sprintf("mean proposed/optimal %.3f below the paper's 0.9 headline", avg))
	}
	if f.ID != "6c" { // 6a/6b: welfare grows along the sweep
		first, last := f.Points[0], f.Points[len(f.Points)-1]
		if last.Values[SeriesProposed].Mean <= first.Values[SeriesProposed].Mean {
			out = append(out, fmt.Sprintf("welfare does not grow along the sweep (%.3f → %.3f)",
				first.Values[SeriesProposed].Mean, last.Values[SeriesProposed].Mean))
		}
	}
	return out
}

func verifyCumulative(f *Figure) []string {
	var out []string
	for k, p := range f.Points {
		s1 := p.Values[SeriesStageI].Mean
		p1 := p.Values[SeriesPhase1].Mean
		p2 := p.Values[SeriesPhase2].Mean
		if !(s1 <= p1+1e-9 && p1 <= p2+1e-9) {
			out = append(out, fmt.Sprintf("point %d: cumulative welfare not monotone (%.3f, %.3f, %.3f)", k, s1, p1, p2))
		}
		if gain1, gain2 := p1-s1, p2-p1; gain2 > gain1+1e-9 && gain1 > 0 {
			out = append(out, fmt.Sprintf("point %d: phase 2 gain %.4f exceeds phase 1 gain %.4f", k, gain2, gain1))
		}
	}
	return out
}

func verifyFig7Growth(f *Figure) []string {
	out := verifyCumulative(f)
	first, last := f.Points[0], f.Points[len(f.Points)-1]
	if last.Values[SeriesPhase2].Mean <= first.Values[SeriesPhase2].Mean {
		out = append(out, fmt.Sprintf("total welfare does not grow along the sweep (%.3f → %.3f)",
			first.Values[SeriesPhase2].Mean, last.Values[SeriesPhase2].Mean))
	}
	return out
}

func verifyFig8(f *Figure) []string {
	var out []string
	for k, p := range f.Points {
		if rounds := p.Values[SeriesPhase2].Mean; rounds > 5 {
			out = append(out, fmt.Sprintf("point %d: phase 2 runs %.2f rounds; the paper reports only a few", k, rounds))
		}
	}
	switch f.ID {
	case "8a":
		// Phase 1 is O(M), insensitive to N: flat across the buyer sweep.
		first := f.Points[0].Values[SeriesPhase1].Mean
		last := f.Points[len(f.Points)-1].Values[SeriesPhase1].Mean
		if diff := last - first; diff > 2.5 || diff < -2.5 {
			out = append(out, fmt.Sprintf("phase 1 rounds vary by %.2f across N; expected ≈ flat", diff))
		}
	case "8b":
		// Phase 1 grows with M.
		first := f.Points[0].Values[SeriesPhase1].Mean
		last := f.Points[len(f.Points)-1].Values[SeriesPhase1].Mean
		if last <= first {
			out = append(out, fmt.Sprintf("phase 1 rounds do not grow with M (%.2f → %.2f)", first, last))
		}
	}
	return out
}
