// Package optimal computes the centralized benchmark of §II-B: the matching
// maximizing social welfare Σ b_{i,j} x_{i,j} subject to each buyer holding
// at most one channel and no two interfering buyers sharing a channel — the
// non-linear integer program (1)–(4), which is NP-hard.
//
// The paper derives this benchmark by brute force on small markets (footnote
// 4). Solve improves on plain brute force with branch-and-bound over buyers
// ordered by descending best price, pruning on the remaining-best-price upper
// bound; it is exact and practical for the Fig. 6 scales (M ≤ 6, N ≤ 10) and
// well beyond. Greedy provides the classic centralized linear-time
// comparator used in ablations.
package optimal

import (
	"fmt"
	"sort"

	"specmatch/internal/market"
	"specmatch/internal/matching"
)

// DefaultNodeBudget bounds the branch-and-bound search tree. Fig. 6-scale
// instances explore a few thousand nodes; the budget exists so misuse on a
// large market fails loudly instead of hanging.
const DefaultNodeBudget = 50_000_000

// Options tunes the exact solver.
type Options struct {
	// NodeBudget caps explored search nodes; zero means DefaultNodeBudget.
	NodeBudget int64
}

// ErrBudgetExceeded reports that the exact search was cut off; the market is
// too large for the configured node budget.
type ErrBudgetExceeded struct {
	Budget int64
}

// Error implements error.
func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("optimal: exceeded node budget %d; market too large for exact search", e.Budget)
}

// Solve returns a welfare-maximizing matching and its welfare.
func Solve(m *market.Market, opts Options) (*matching.Matching, float64, error) {
	budget := opts.NodeBudget
	if budget == 0 {
		budget = DefaultNodeBudget
	}

	numSellers, numBuyers := m.M(), m.N()

	// Order buyers by descending best price so strong assignments are tried
	// first and the bound tightens quickly.
	order := make([]int, numBuyers)
	bestPrice := make([]float64, numBuyers)
	for j := 0; j < numBuyers; j++ {
		order[j] = j
		for i := 0; i < numSellers; i++ {
			if p := m.Price(i, j); p > bestPrice[j] {
				bestPrice[j] = p
			}
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if bestPrice[order[a]] != bestPrice[order[b]] {
			return bestPrice[order[a]] > bestPrice[order[b]]
		}
		return order[a] < order[b]
	})

	// suffixBound[k] = Σ of bestPrice over order[k:]; an admissible bound on
	// the welfare the remaining buyers can still add.
	suffixBound := make([]float64, numBuyers+1)
	for k := numBuyers - 1; k >= 0; k-- {
		suffixBound[k] = suffixBound[k+1] + bestPrice[order[k]]
	}

	// Per-buyer channel preference, descending price, pruned of zero prices.
	channelPref := make([][]int, numBuyers)
	for j := 0; j < numBuyers; j++ {
		channelPref[j] = m.BuyerPrefOrder(j)
	}

	assigned := make([][]int, numSellers) // current coalition per channel
	current := make([]int, numBuyers)     // buyer → channel or Unmatched
	for j := range current {
		current[j] = market.Unmatched
	}

	var (
		bestWelfare float64
		bestAssign  = make([]int, numBuyers)
		curWelfare  float64
		nodes       int64
		overBudget  bool
		search      func(k int)
	)
	copy(bestAssign, current)

	search = func(k int) {
		if overBudget {
			return
		}
		nodes++
		if nodes > budget {
			overBudget = true
			return
		}
		if curWelfare > bestWelfare {
			bestWelfare = curWelfare
			copy(bestAssign, current)
		}
		if k == numBuyers || curWelfare+suffixBound[k] <= bestWelfare {
			return
		}
		j := order[k]
		for _, i := range channelPref[j] {
			if m.Graph(i).ConflictsWith(j, assigned[i]) {
				continue
			}
			assigned[i] = append(assigned[i], j)
			current[j] = i
			curWelfare += m.Price(i, j)
			search(k + 1)
			curWelfare -= m.Price(i, j)
			current[j] = market.Unmatched
			assigned[i] = assigned[i][:len(assigned[i])-1]
		}
		// Leaving j unmatched.
		search(k + 1)
	}
	search(0)

	if overBudget {
		return nil, 0, &ErrBudgetExceeded{Budget: budget}
	}

	mu := matching.New(numSellers, numBuyers)
	for j, i := range bestAssign {
		if i == market.Unmatched {
			continue
		}
		if err := mu.Assign(i, j); err != nil {
			return nil, 0, fmt.Errorf("optimal: assembling matching: %w", err)
		}
	}
	return mu, bestWelfare, nil
}

// Greedy returns the matching built by the classic centralized heuristic:
// scan all (channel, buyer) pairs in descending price order and assign
// whenever feasible. It is not stable and serves as an ablation baseline.
func Greedy(m *market.Market) (*matching.Matching, float64) {
	type pair struct {
		i, j  int
		price float64
	}
	pairs := make([]pair, 0, m.M()*m.N())
	for i := 0; i < m.M(); i++ {
		for j := 0; j < m.N(); j++ {
			if p := m.Price(i, j); p > 0 {
				pairs = append(pairs, pair{i: i, j: j, price: p})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].price != pairs[b].price {
			return pairs[a].price > pairs[b].price
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})

	mu := matching.New(m.M(), m.N())
	coalitions := make([][]int, m.M())
	welfare := 0.0
	for _, p := range pairs {
		if mu.IsMatched(p.j) {
			continue
		}
		if m.Graph(p.i).ConflictsWith(p.j, coalitions[p.i]) {
			continue
		}
		// Feasible by construction; Assign cannot fail on in-range indices.
		_ = mu.Assign(p.i, p.j)
		coalitions[p.i] = append(coalitions[p.i], p.j)
		welfare += p.price
	}
	return mu, welfare
}
