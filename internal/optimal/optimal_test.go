package optimal

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/paperexample"
	"specmatch/internal/stability"
)

func TestSolveToyMarket(t *testing.T) {
	m := paperexample.Toy()
	mu, welfare, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The optimum of the Fig. 3 instance is 33 — e.g. µ(a)={2,3},
	// µ(b)={1,4}, µ(c)={5} — strictly above the algorithm's Nash-stable 30
	// (Fig. 2(d)), so the toy market itself exhibits the paper's ≈90%
	// optimality gap: 30/33 ≈ 0.909.
	if welfare != 33 {
		t.Errorf("optimal welfare = %v, want 33", welfare)
	}
	if got := matching.Welfare(m, mu); got != welfare {
		t.Errorf("returned welfare %v disagrees with matching welfare %v", welfare, got)
	}
	if v := stability.CheckInterferenceFree(m, mu); len(v) != 0 {
		t.Errorf("optimal matching has interference: %v", v)
	}
}

func TestSolveSingleBuyer(t *testing.T) {
	prices := [][]float64{{2}, {7}, {5}}
	m, err := market.New(prices, []*graph.Graph{graph.Empty(1), graph.Empty(1), graph.Empty(1)})
	if err != nil {
		t.Fatal(err)
	}
	mu, welfare, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if welfare != 7 || mu.SellerOf(0) != 1 {
		t.Errorf("single-buyer optimum = %v on seller %d, want 7 on seller 1", welfare, mu.SellerOf(0))
	}
}

func TestSolveCompleteInterference(t *testing.T) {
	// One channel, complete interference: only the best single buyer wins.
	prices := [][]float64{{1, 9, 4}}
	m, err := market.New(prices, []*graph.Graph{graph.Complete(3)})
	if err != nil {
		t.Fatal(err)
	}
	_, welfare, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if welfare != 9 {
		t.Errorf("welfare = %v, want 9", welfare)
	}
}

func TestSolveZeroPrices(t *testing.T) {
	prices := [][]float64{{0, 0}}
	m, err := market.New(prices, []*graph.Graph{graph.Empty(2)})
	if err != nil {
		t.Fatal(err)
	}
	mu, welfare, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if welfare != 0 || mu.MatchedCount() != 0 {
		t.Errorf("zero-price market: welfare %v matched %d, want 0 and 0", welfare, mu.MatchedCount())
	}
}

func TestSolveBudgetExceeded(t *testing.T) {
	m, err := market.Generate(market.Config{Sellers: 6, Buyers: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Solve(m, Options{NodeBudget: 10})
	var budgetErr *ErrBudgetExceeded
	if !errors.As(err, &budgetErr) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if budgetErr.Budget != 10 {
		t.Errorf("reported budget = %d, want 10", budgetErr.Budget)
	}
}

// TestSolveMatchesBruteForce cross-checks branch-and-bound against exhaustive
// enumeration of all assignments on tiny markets.
func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := Solve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceWelfare(m)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: Solve = %v, brute force = %v", seed, got, want)
		}
	}
}

// bruteForceWelfare enumerates every assignment of buyers to channels (or
// none) and returns the best feasible welfare.
func bruteForceWelfare(m *market.Market) float64 {
	numSellers, numBuyers := m.M(), m.N()
	assign := make([]int, numBuyers)
	best := 0.0
	var rec func(j int)
	rec = func(j int) {
		if j == numBuyers {
			coalitions := make([][]int, numSellers)
			welfare := 0.0
			for b, i := range assign {
				if i == market.Unmatched {
					continue
				}
				coalitions[i] = append(coalitions[i], b)
				welfare += m.Price(i, b)
			}
			for i, c := range coalitions {
				if !m.Graph(i).IsIndependent(c) {
					return
				}
			}
			if welfare > best {
				best = welfare
			}
			return
		}
		assign[j] = market.Unmatched
		rec(j + 1)
		for i := 0; i < numSellers; i++ {
			assign[j] = i
			rec(j + 1)
		}
		assign[j] = market.Unmatched
	}
	rec(0)
	return best
}

// TestGreedyFeasibleProperty: the greedy baseline always produces a valid,
// interference-free matching with welfare ≤ optimal.
func TestGreedyFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 8, Seed: seed})
		if err != nil {
			return false
		}
		mu, welfare := Greedy(m)
		if mu.Validate() != nil {
			return false
		}
		if len(stability.CheckInterferenceFree(m, mu)) != 0 {
			return false
		}
		if math.Abs(welfare-matching.Welfare(m, mu)) > 1e-9 {
			return false
		}
		_, opt, err := Solve(m, Options{})
		if err != nil {
			return false
		}
		return welfare <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOptimalDominatesProperty: the exact optimum dominates both greedy and
// an arbitrary feasible matching built by the buyers' first choices.
func TestOptimalDominatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		m, err := market.Generate(market.Config{Sellers: 4, Buyers: 7, Seed: seed})
		if err != nil {
			return false
		}
		_, opt, err := Solve(m, Options{})
		if err != nil {
			return false
		}
		if opt > m.WelfareUpperBound()+1e-9 {
			return false
		}
		_, g := Greedy(m)
		return g <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
