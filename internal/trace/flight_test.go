package trace

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	s := FormatTraceparent(sc)
	got, ok := ParseTraceparent(s)
	if !ok || got != sc {
		t.Fatalf("round trip %q -> (%v, %v), want (%v, true)", s, got, ok, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff is invalid
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	}
	for _, s := range bad {
		if sc, ok := ParseTraceparent(s); ok || !sc.IsZero() {
			t.Errorf("ParseTraceparent(%q) = (%v, %v), want rejection", s, sc, ok)
		}
	}
}

func TestNilFlightInert(t *testing.T) {
	var f *Flight
	if f.Enabled() || f.Cap() != 0 || f.Recorded() != 0 || f.Snapshot() != nil {
		t.Error("nil flight must behave as empty")
	}
	h := f.Start(SpanContext{}, "x")
	if h.Active() || !h.Context().IsZero() {
		t.Error("handle from nil flight must be inert")
	}
	h.Annotate("k=v") // must not panic
	h.End()
	h.End() // double End must be safe too
}

func TestStartParenting(t *testing.T) {
	f := NewFlight(16)
	root := f.Start(SpanContext{}, "root")
	if root.Context().IsZero() {
		t.Fatal("root context must be non-zero")
	}
	child := f.Start(root.Context(), "child")
	child.End()
	root.End()
	spans := f.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var rootSpan, childSpan Span
	for _, s := range spans {
		switch s.Name {
		case "root":
			rootSpan = s
		case "child":
			childSpan = s
		}
	}
	if !rootSpan.Parent.IsZero() {
		t.Errorf("root has parent %v", rootSpan.Parent)
	}
	if childSpan.Trace != rootSpan.Trace {
		t.Errorf("child trace %v != root trace %v", childSpan.Trace, rootSpan.Trace)
	}
	if childSpan.Parent != rootSpan.ID {
		t.Errorf("child parent %v != root id %v", childSpan.Parent, rootSpan.ID)
	}
}

func TestUnendedSpanDiscarded(t *testing.T) {
	f := NewFlight(16)
	_ = f.Start(SpanContext{}, "never-ended")
	if got := len(f.Snapshot()); got != 0 {
		t.Fatalf("un-Ended span leaked into the ring: %d spans", got)
	}
}

func TestAnnotateAppends(t *testing.T) {
	f := NewFlight(16)
	h := f.Start(SpanContext{}, "s")
	h.Annotate("a=1")
	h.Annotate("b=2")
	h.End()
	if attrs := f.Snapshot()[0].Attrs; attrs != "a=1 b=2" {
		t.Fatalf("attrs = %q, want %q", attrs, "a=1 b=2")
	}
}

func TestFlightWraparound(t *testing.T) {
	f := NewFlight(16) // also exercises the minimum-capacity floor
	if f.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", f.Cap())
	}
	base := time.Now()
	for k := 0; k < 40; k++ {
		f.Record(Span{
			Trace: NewTraceID(), ID: NewSpanID(), Name: "s",
			Start: base.Add(time.Duration(k) * time.Millisecond),
			End:   base.Add(time.Duration(k)*time.Millisecond + time.Microsecond),
		})
	}
	if f.Recorded() != 40 {
		t.Errorf("Recorded = %d, want 40", f.Recorded())
	}
	if f.Overwritten() != 24 {
		t.Errorf("Overwritten = %d, want 24", f.Overwritten())
	}
	spans := f.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("Snapshot kept %d spans, want 16", len(spans))
	}
	// The ring must retain exactly the most recent window, in start order.
	for k, s := range spans {
		want := base.Add(time.Duration(24+k) * time.Millisecond)
		if !s.Start.Equal(want) {
			t.Fatalf("span %d starts at %v, want %v (oldest not overwritten first)", k, s.Start, want)
		}
	}
}

// TestFlightConcurrent hammers one ring from many goroutines while a reader
// snapshots — the -race run is the real assertion.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range f.Snapshot() {
					if s.Name == "" || s.Trace.IsZero() {
						t.Error("snapshot returned a torn span")
						return
					}
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			root := f.Start(SpanContext{}, "root")
			for k := 0; k < 200; k++ {
				h := f.Start(root.Context(), "child")
				h.Annotate("k=v")
				h.End()
			}
			root.End()
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if f.Recorded() != 8*201 {
		t.Errorf("Recorded = %d, want %d", f.Recorded(), 8*201)
	}
	if got := len(f.Snapshot()); got != 64 {
		t.Errorf("Snapshot kept %d spans, want full ring of 64", got)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	f := NewFlight(16)
	root := f.Start(SpanContext{}, "core.run")
	child := f.Start(root.Context(), "core.round")
	child.Annotate("stage=stage_i round=1")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeFlight(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := f.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("read %d spans, want %d", len(got), len(want))
	}
	for k := range want {
		w, g := want[k], got[k]
		if g.Trace != w.Trace || g.ID != w.ID || g.Parent != w.Parent || g.Name != w.Name || g.Attrs != w.Attrs {
			t.Errorf("span %d identity mismatch: got %+v want %+v", k, g, w)
		}
		// Nanosecond-exact timestamps survive via the decimal-string args.
		if g.Start.UnixNano() != w.Start.UnixNano() || g.Duration() != w.Duration() {
			t.Errorf("span %d timing mismatch: got %v+%v want %v+%v",
				k, g.Start.UnixNano(), g.Duration(), w.Start.UnixNano(), w.Duration())
		}
	}
}

func TestHandlerServesDump(t *testing.T) {
	f := NewFlight(16)
	for k := 0; k < 5; k++ {
		h := f.Start(SpanContext{}, "s")
		h.End()
	}
	rr := httptest.NewRecorder()
	Handler(f).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?n=2", nil))
	if rr.Code != 200 {
		t.Fatalf("HTTP %d", rr.Code)
	}
	spans, err := ReadChrome(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("?n=2 returned %d spans", len(spans))
	}

	rr = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace", nil))
	if rr.Code != 200 {
		t.Fatalf("nil flight: HTTP %d", rr.Code)
	}
	if spans, err := ReadChrome(rr.Body); err != nil || len(spans) != 0 {
		t.Fatalf("nil flight dump = (%d spans, %v), want empty", len(spans), err)
	}
}

func TestContextPropagation(t *testing.T) {
	if !FromContext(nil).IsZero() {
		t.Error("FromContext(nil) must be zero")
	}
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	ctx := ContextWith(t.Context(), sc)
	if got := FromContext(ctx); got != sc {
		t.Errorf("FromContext = %v, want %v", got, sc)
	}
}

func TestBoundedRecorderDrops(t *testing.T) {
	r := NewBoundedRecorder(4)
	if !r.Bounded() {
		t.Fatal("NewBoundedRecorder must report Bounded")
	}
	for k := 0; k < 10; k++ {
		r.Record(Event{Round: k, Kind: KindPropose})
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	for k, e := range r.Events() {
		if e.Round != k {
			t.Errorf("kept event %d has round %d; must keep the first events", k, e.Round)
		}
	}
	if NewRecorder().Bounded() {
		t.Error("plain recorder must not report Bounded")
	}
	var nilRec *Recorder
	if nilRec.Dropped() != 0 || nilRec.Bounded() {
		t.Error("nil recorder must report no drops")
	}
}
