package trace

import (
	"strings"
	"testing"
)

func TestVerifyCleanSequence(t *testing.T) {
	events := []Event{
		{Round: 1, Kind: KindPropose, Buyer: 0, Seller: 1},
		{Round: 1, Kind: KindAccept, Buyer: 0, Seller: 1},
		{Round: 2, Kind: KindPropose, Buyer: 2, Seller: 1},
		{Round: 2, Kind: KindEvict, Buyer: 0, Seller: 1},
		{Round: 2, Kind: KindAccept, Buyer: 2, Seller: 1},
		{Round: 3, Kind: KindTransferApply, Buyer: 0, Seller: 1},
		{Round: 3, Kind: KindTransferReject, Buyer: 0, Seller: 1},
		{Round: 4, Kind: KindInvite, Buyer: 0, Seller: 1},
		{Round: 4, Kind: KindInviteAccept, Buyer: 0, Seller: 1},
	}
	if v := Verify(events, VerifyOptions{}); len(v) != 0 {
		t.Errorf("clean sequence flagged: %v", v)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	tests := []struct {
		name   string
		events []Event
		want   string
	}{
		{
			"double proposal",
			[]Event{
				{Round: 1, Kind: KindPropose, Buyer: 0, Seller: 1},
				{Round: 2, Kind: KindPropose, Buyer: 0, Seller: 1},
			},
			"twice",
		},
		{
			"accept from nowhere",
			[]Event{{Round: 1, Kind: KindAccept, Buyer: 0, Seller: 1}},
			"without a proposal",
		},
		{
			"evict a stranger",
			[]Event{{Round: 1, Kind: KindEvict, Buyer: 3, Seller: 1}},
			"not in seller",
		},
		{
			"transfer decision from nowhere",
			[]Event{{Round: 1, Kind: KindTransferAccept, Buyer: 0, Seller: 1}},
			"without an application",
		},
		{
			"invite response from nowhere",
			[]Event{{Round: 1, Kind: KindInviteDecline, Buyer: 0, Seller: 1}},
			"without an invitation",
		},
		{
			"time travel",
			[]Event{
				{Round: 5, Kind: KindPropose, Buyer: 0, Seller: 1},
				{Round: 2, Kind: KindPropose, Buyer: 1, Seller: 1},
			},
			"backwards",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := Verify(tt.events, VerifyOptions{})
			if len(v) == 0 {
				t.Fatal("violation not detected")
			}
			found := false
			for _, msg := range v {
				if strings.Contains(msg, tt.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("violations %v do not mention %q", v, tt.want)
			}
		})
	}
}

func TestVerifyAllowRetries(t *testing.T) {
	events := []Event{
		{Round: 1, Kind: KindPropose, Buyer: 0, Seller: 1},
		{Round: 3, Kind: KindPropose, Buyer: 0, Seller: 1}, // retransmission
	}
	if v := Verify(events, VerifyOptions{AllowRetries: true}); len(v) != 0 {
		t.Errorf("retry flagged despite AllowRetries: %v", v)
	}
}
