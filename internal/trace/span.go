package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the causal-span layer on top of the flat protocol recorder:
// every unit of work — an engine round, a per-seller MWIS solve, an agent
// message handle, a wire frame send/recv, an HTTP request, a session shard
// op — opens a Span identified by (trace, span, parent) ids, so a dump can
// be reassembled into the tree of what caused what. The span-name catalog
// lives in PROTOCOL.md ("Span names").

// TraceID identifies one causal tree end to end (a request, a run). The
// zero value means "no trace".
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value means "no span"
// (a root span has a zero parent).
type SpanID [8]byte

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 hex digits.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("trace: trace id %q is not 32 hex digits", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("trace: trace id %q: %w", s, err)
	}
	return t, nil
}

// ParseSpanID parses 16 hex digits.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("trace: span id %q is not 16 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("trace: span id %q: %w", s, err)
	}
	return id, nil
}

// Id generation: a process-random base mixed with an atomic counter through
// the splitmix64 finalizer. Lock-free, unique within and (whp) across
// processes, and deliberately not derived from any protocol seed — ids name
// work, they never influence it.
var (
	idBase uint64
	idCtr  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idBase = binary.LittleEndian.Uint64(b[:])
	} else {
		idBase = uint64(time.Now().UnixNano())
	}
}

func nextID() uint64 {
	x := idBase + idCtr.Add(1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 { // zero is reserved for "unset"
		x = 1
	}
	return x
}

// NewTraceID returns a fresh non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

// NewSpanID returns a fresh non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

// SpanContext is the propagated reference to a live span: enough to parent
// children under it, locally or across a process boundary (wire trace field,
// HTTP traceparent header). The zero value means "no parent": starting a
// span under it begins a new trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsZero reports whether the context carries no trace.
func (sc SpanContext) IsZero() bool { return sc.Trace.IsZero() }

// Span is one completed unit of work.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for trace roots
	Name   string
	Start  time.Time
	End    time.Time
	// Attrs is a compact "k=v k=v" annotation string. A flat string keeps
	// ring-buffer slots cheap to copy; specstrace parses it back when it
	// needs a value (e.g. the gating seller).
	Attrs string
}

// Duration returns End-Start.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Context returns the reference under which children of this span start.
func (s Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// FormatTraceparent renders sc in the W3C trace-context form
// "00-<32 hex trace>-<16 hex span>-01" — the HTTP header value and the wire
// frame trace field.
func FormatTraceparent(sc SpanContext) string {
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent value. It returns ok=false (and
// a zero context) on empty or malformed input — callers treat that as "no
// inbound trace" rather than an error, per the spec's lenient contract.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	// version "00" through "fe", then fixed-width fields.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' || s[:2] == "ff" {
		return sc, false
	}
	t, err := ParseTraceID(s[3:35])
	if err != nil || t.IsZero() {
		return SpanContext{}, false
	}
	id, err := ParseSpanID(s[36:52])
	if err != nil || id.IsZero() {
		return SpanContext{}, false
	}
	sc.Trace, sc.Span = t, id
	return sc, true
}

// ctxKey keys the span context stored in a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sc, for layers (the HTTP handler → shard
// queue path) that already thread a context.Context.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context carried by ctx, or the zero context.
func FromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
