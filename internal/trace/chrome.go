package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Flight dumps are Chrome trace-event JSON ({"traceEvents":[...]}) so any
// about:tracing / Perfetto UI opens them directly; the span identity and
// nanosecond-precision timestamps ride in args, so specstrace can
// reconstruct the exact causal tree from the same file.

// chromeEvent is one complete ("ph":"X") trace event.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`  // microseconds (Chrome's unit)
	Dur  float64    `json:"dur"` // microseconds
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	Args chromeArgs `json:"args"`
}

// chromeArgs carries the lossless span identity. StartNS and DurNS are
// decimal strings: unix nanoseconds exceed 2^53, so a JSON number would
// round.
type chromeArgs struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	StartNS string `json:"start_ns"`
	DurNS   string `json:"dur_ns"`
	Attrs   string `json:"attrs,omitempty"`
}

type chromeDump struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// Meta mirrors the recorder counters so an analyzer can tell a complete
	// dump from a wrapped one.
	Recorded    uint64 `json:"recorded,omitempty"`
	Overwritten uint64 `json:"overwritten,omitempty"`
}

// WriteChrome writes spans as a Chrome trace-event JSON document. Distinct
// traces are assigned distinct tids (in first-seen order) so the timeline
// view separates concurrent requests into rows.
func WriteChrome(w io.Writer, spans []Span, recorded, overwritten uint64) error {
	dump := chromeDump{
		TraceEvents: make([]chromeEvent, 0, len(spans)),
		Recorded:    recorded,
		Overwritten: overwritten,
	}
	tids := make(map[TraceID]int)
	for _, s := range spans {
		tid, ok := tids[s.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[s.Trace] = tid
		}
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   float64(s.Start.UnixNano()) / 1e3,
			Dur:  float64(s.Duration()) / 1e3,
			PID:  1,
			TID:  tid,
			Args: chromeArgs{
				Trace:   s.Trace.String(),
				Span:    s.ID.String(),
				StartNS: strconv.FormatInt(s.Start.UnixNano(), 10),
				DurNS:   strconv.FormatInt(int64(s.Duration()), 10),
				Attrs:   s.Attrs,
			},
		}
		if !s.Parent.IsZero() {
			ev.Args.Parent = s.Parent.String()
		}
		dump.TraceEvents = append(dump.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dump)
}

// WriteChromeFlight dumps the recorder's current snapshot.
func WriteChromeFlight(w io.Writer, f *Flight) error {
	return WriteChrome(w, f.Snapshot(), f.Recorded(), f.Overwritten())
}

// ReadChrome parses a dump produced by WriteChrome back into spans. Events
// that are not complete span events (no "X" phase or no span identity) are
// skipped, so a hand-edited or tool-merged trace file still loads.
func ReadChrome(r io.Reader) ([]Span, error) {
	var dump chromeDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return nil, fmt.Errorf("trace: chrome dump: %w", err)
	}
	spans := make([]Span, 0, len(dump.TraceEvents))
	for k, ev := range dump.TraceEvents {
		if ev.Ph != "X" || ev.Args.Trace == "" || ev.Args.Span == "" {
			continue
		}
		t, err := ParseTraceID(ev.Args.Trace)
		if err != nil {
			return nil, fmt.Errorf("trace: chrome event %d: %w", k, err)
		}
		id, err := ParseSpanID(ev.Args.Span)
		if err != nil {
			return nil, fmt.Errorf("trace: chrome event %d: %w", k, err)
		}
		s := Span{Trace: t, ID: id, Name: ev.Name, Attrs: ev.Args.Attrs}
		if ev.Args.Parent != "" {
			if s.Parent, err = ParseSpanID(ev.Args.Parent); err != nil {
				return nil, fmt.Errorf("trace: chrome event %d: %w", k, err)
			}
		}
		startNS, err := strconv.ParseInt(ev.Args.StartNS, 10, 64)
		if err != nil { // fall back to the µs fields (foreign trace file)
			startNS = int64(ev.TS * 1e3)
		}
		durNS, err := strconv.ParseInt(ev.Args.DurNS, 10, 64)
		if err != nil {
			durNS = int64(ev.Dur * 1e3)
		}
		s.Start = time.Unix(0, startNS)
		s.End = s.Start.Add(time.Duration(durNS))
		spans = append(spans, s)
	}
	return spans, nil
}
