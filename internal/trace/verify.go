package trace

import "fmt"

// VerifyOptions tunes protocol verification.
type VerifyOptions struct {
	// AllowRetries accepts duplicate requests (the asynchronous runtime
	// retransmits after timeouts). The synchronous engine never duplicates,
	// so its logs should verify with the zero value.
	AllowRetries bool
}

// Verify lints a recorded protocol log against the rules of Algorithms 1–2
// that are checkable from the event stream alone:
//
//   - a buyer proposes to a seller at most once (Stage I never re-proposes);
//   - accept/reject answer a proposal from that buyer to that seller;
//   - evict only removes a buyer previously accepted and not yet evicted;
//   - a transfer application goes to each seller at most once, and its
//     grant/denial answers an actual application;
//   - a seller invites a buyer at most once, and invite responses answer an
//     actual invitation;
//   - events never regress to an earlier stage (proposals after transfers,
//     transfers after invitations), and rounds never decrease within a
//     stage (each stage restarts its own round counter).
//
// It returns one message per violation; an empty slice certifies the log.
func Verify(events []Event, opts VerifyOptions) []string {
	type pair struct{ buyer, seller int }
	var out []string

	proposed := make(map[pair]bool)
	applied := make(map[pair]bool)
	invited := make(map[pair]bool)
	waitlisted := make(map[pair]bool)

	stageOf := func(kind Kind) int {
		switch kind {
		case KindPropose, KindAccept, KindReject, KindEvict:
			return 1
		case KindTransferApply, KindTransferAccept, KindTransferReject:
			return 2
		case KindInvite, KindInviteAccept, KindInviteDecline:
			return 3
		default:
			return 0 // transitions and unknowns carry no ordering obligation
		}
	}

	lastRound := 0
	lastStage := 0
	for k, e := range events {
		if stage := stageOf(e.Kind); stage != 0 {
			if stage < lastStage {
				out = append(out, fmt.Sprintf("event %d: stage went backwards (%v after stage %d)", k, e.Kind, lastStage))
			}
			if stage > lastStage {
				lastStage = stage
				lastRound = 0 // each stage restarts its round counter
			}
			if e.Round < lastRound {
				out = append(out, fmt.Sprintf("event %d: round went backwards (%d after %d)", k, e.Round, lastRound))
			}
			lastRound = e.Round
		}

		p := pair{buyer: e.Buyer, seller: e.Seller}
		switch e.Kind {
		case KindPropose:
			if proposed[p] && !opts.AllowRetries {
				out = append(out, fmt.Sprintf("event %d: buyer %d proposed to seller %d twice", k, e.Buyer, e.Seller))
			}
			proposed[p] = true
		case KindAccept:
			if !proposed[p] {
				out = append(out, fmt.Sprintf("event %d: accept without a proposal (buyer %d, seller %d)", k, e.Buyer, e.Seller))
			}
			waitlisted[p] = true
		case KindReject:
			if !proposed[p] {
				out = append(out, fmt.Sprintf("event %d: reject without a proposal (buyer %d, seller %d)", k, e.Buyer, e.Seller))
			}
		case KindEvict:
			if !waitlisted[p] {
				out = append(out, fmt.Sprintf("event %d: evicting buyer %d who is not in seller %d's waiting list", k, e.Buyer, e.Seller))
			}
			delete(waitlisted, p)
		case KindTransferApply:
			if applied[p] && !opts.AllowRetries {
				out = append(out, fmt.Sprintf("event %d: buyer %d applied to seller %d twice", k, e.Buyer, e.Seller))
			}
			applied[p] = true
		case KindTransferAccept, KindTransferReject:
			if !applied[p] {
				out = append(out, fmt.Sprintf("event %d: transfer decision without an application (buyer %d, seller %d)", k, e.Buyer, e.Seller))
			}
			if e.Kind == KindTransferAccept {
				waitlisted[p] = true
			}
		case KindInvite:
			if invited[p] && !opts.AllowRetries {
				out = append(out, fmt.Sprintf("event %d: seller %d invited buyer %d twice", k, e.Seller, e.Buyer))
			}
			invited[p] = true
		case KindInviteAccept, KindInviteDecline:
			if !invited[p] {
				out = append(out, fmt.Sprintf("event %d: invite response without an invitation (buyer %d, seller %d)", k, e.Buyer, e.Seller))
			}
		case KindTransition:
			// Stage transitions carry no pairwise obligation.
		default:
			out = append(out, fmt.Sprintf("event %d: unknown kind %v", k, e.Kind))
		}
	}
	return out
}
