package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is the flight recorder: a bounded ring buffer of completed spans,
// cheap enough to leave always on in a serving process. Slot indices are
// claimed with one atomic add (lock-free allocation, so concurrent
// recorders never contend on a shared lock), and each slot then copies
// under its own mutex so a wrapped-around writer and a snapshot reader
// never tear a span. When the ring is full the oldest spans are overwritten
// — a crash dump always holds the most recent window, which is the one that
// explains the crash.
//
// A nil *Flight is valid and discards everything; every method and the
// Start handle are nil-safe, so instrumented code never branches on
// "tracing on?".
type Flight struct {
	slots []flightSlot
	next  atomic.Uint64 // total spans ever recorded; slot = (next-1) % len
}

type flightSlot struct {
	mu   sync.Mutex
	span Span
	set  bool
}

// NewFlight returns a recorder holding the most recent capacity spans.
// Capacity below 16 is raised to 16.
func NewFlight(capacity int) *Flight {
	if capacity < 16 {
		capacity = 16
	}
	return &Flight{slots: make([]flightSlot, capacity)}
}

// Enabled reports whether spans are being kept.
func (f *Flight) Enabled() bool { return f != nil }

// Cap returns the ring capacity; zero on nil.
func (f *Flight) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Record stores one completed span. No-op on nil.
func (f *Flight) Record(s Span) {
	if f == nil {
		return
	}
	slot := &f.slots[(f.next.Add(1)-1)%uint64(len(f.slots))]
	slot.mu.Lock()
	slot.span = s
	slot.set = true
	slot.mu.Unlock()
}

// Recorded returns the total number of spans ever recorded (including
// overwritten ones); zero on nil.
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}

// Overwritten returns how many recorded spans have been pushed out of the
// ring; zero on nil.
func (f *Flight) Overwritten() uint64 {
	if f == nil {
		return 0
	}
	if n := f.next.Load(); n > uint64(len(f.slots)) {
		return n - uint64(len(f.slots))
	}
	return 0
}

// Snapshot copies out the retained spans, ordered by start time (ties by
// span id, for a deterministic dump). Safe concurrently with Record; spans
// recorded while the snapshot is in progress may or may not appear.
func (f *Flight) Snapshot() []Span {
	if f == nil {
		return nil
	}
	out := make([]Span, 0, len(f.slots))
	for i := range f.slots {
		slot := &f.slots[i]
		slot.mu.Lock()
		if slot.set {
			out = append(out, slot.span)
		}
		slot.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Start.Equal(out[b].Start) {
			return out[a].Start.Before(out[b].Start)
		}
		return out[a].ID.String() < out[b].ID.String()
	})
	return out
}

// SpanHandle is a started span. End completes and records it; a handle from
// a nil Flight is inert, so call sites need no nil checks. Handles are
// values; do not share one across goroutines.
type SpanHandle struct {
	fl   *Flight
	span Span
}

// Start opens a span under parent. A zero parent starts a new trace. On a
// nil Flight it returns an inert handle whose Context is zero — children
// started under it will themselves be roots if tracing is on elsewhere.
func (f *Flight) Start(parent SpanContext, name string) SpanHandle {
	if f == nil {
		return SpanHandle{}
	}
	h := SpanHandle{fl: f}
	h.span.Name = name
	if parent.IsZero() {
		h.span.Trace = NewTraceID()
	} else {
		h.span.Trace = parent.Trace
		h.span.Parent = parent.Span
	}
	h.span.ID = NewSpanID()
	h.span.Start = time.Now()
	return h
}

// Active reports whether the handle belongs to a live recorder.
func (h *SpanHandle) Active() bool { return h.fl != nil }

// Context returns the reference children should be parented under; zero on
// an inert handle.
func (h *SpanHandle) Context() SpanContext {
	if h.fl == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: h.span.Trace, Span: h.span.ID}
}

// Annotate sets (or appends to) the span's attribute string. Build the
// string only when Active reports true — the point of the inert handle is
// that the disabled path does no formatting work.
func (h *SpanHandle) Annotate(attrs string) {
	if h.fl == nil {
		return
	}
	if h.span.Attrs == "" {
		h.span.Attrs = attrs
	} else {
		h.span.Attrs += " " + attrs
	}
}

// End completes the span and records it. No-op on an inert handle.
func (h *SpanHandle) End() {
	if h.fl == nil {
		return
	}
	h.span.End = time.Now()
	h.fl.Record(h.span)
	h.fl = nil // a second End must not record twice
}
