package trace

import (
	"net/http"
	"strconv"
)

// Handler serves the flight recorder's retained spans as a Chrome
// trace-event JSON dump — the /debug/trace endpoint. ?n=K limits the reply
// to the K most recent spans (by start time). A nil Flight serves an empty
// dump, matching the nil-registry idiom of /debug/metrics.
func Handler(f *Flight) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := f.Snapshot()
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "trace: ?n= must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteChrome(w, spans, f.Recorded(), f.Overwritten())
	})
}
