// Package trace records structured protocol events. Both the synchronous
// engine (internal/core) and the asynchronous agents (internal/agent) emit
// events through an optional Recorder, which tests and CLIs use to inspect
// round-by-round behavior — e.g. to assert the exact proposal sequence of the
// paper's worked example (Figs. 1–2).
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies a protocol event.
type Kind int

// Event kinds, covering both stages of the matching protocol.
const (
	KindPropose        Kind = iota + 1 // buyer proposes to seller (Stage I)
	KindAccept                         // seller keeps/admits buyer into waiting list
	KindReject                         // seller rejects a proposer
	KindEvict                          // seller evicts a previously wait-listed buyer
	KindTransferApply                  // buyer applies for transfer (Stage II Phase 1)
	KindTransferAccept                 // seller grants a transfer
	KindTransferReject                 // seller denies a transfer (→ invitation list)
	KindInvite                         // seller invites a rejected buyer (Phase 2)
	KindInviteAccept                   // buyer accepts an invitation
	KindInviteDecline                  // buyer declines an invitation
	KindTransition                     // agent performs a stage/phase transition
)

var _kindNames = map[Kind]string{
	KindPropose:        "propose",
	KindAccept:         "accept",
	KindReject:         "reject",
	KindEvict:          "evict",
	KindTransferApply:  "transfer-apply",
	KindTransferAccept: "transfer-accept",
	KindTransferReject: "transfer-reject",
	KindInvite:         "invite",
	KindInviteAccept:   "invite-accept",
	KindInviteDecline:  "invite-decline",
	KindTransition:     "transition",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := _kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("trace.Kind(%d)", int(k))
}

// Event is one protocol step. Buyer and Seller are -1 when not applicable.
type Event struct {
	Round  int    `json:"round"`
	Kind   Kind   `json:"kind"`
	Buyer  int    `json:"buyer"`
	Seller int    `json:"seller"`
	Note   string `json:"note,omitempty"`
}

// String renders the event in a compact single-line form.
func (e Event) String() string {
	return fmt.Sprintf("[r%03d] %-16s buyer=%d seller=%d %s", e.Round, e.Kind, e.Buyer, e.Seller, e.Note)
}

// Recorder accumulates events. A nil *Recorder is valid and discards
// everything, so call sites never need nil checks.
//
// The plain NewRecorder grows without bound — fine for a test or CLI
// inspecting one run, wrong for a long-lived session that steps forever.
// NewBoundedRecorder keeps the first limit events and counts the rest as
// dropped; the serving layer defaults hosted sessions to it.
type Recorder struct {
	events  []Event
	limit   int // 0 = unbounded
	dropped int64
}

// NewRecorder returns an empty, unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewBoundedRecorder returns a recorder that keeps at most limit events and
// counts overflow in Dropped. A non-positive limit falls back to 4096.
func NewBoundedRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 4096
	}
	return &Recorder{limit: limit}
}

// Bounded reports whether the recorder drops events past a limit.
func (r *Recorder) Bounded() bool { return r != nil && r.limit > 0 }

// Dropped returns the number of events discarded at the bound; zero on nil
// or unbounded recorders.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Record appends an event. No-op on a nil recorder; on a full bounded
// recorder the event is counted as dropped instead of retained.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events in order. The caller must not mutate
// the returned slice.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Filter returns the recorded events of the given kind, in order.
func (r *Recorder) Filter(kind Kind) []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	for _, e := range r.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// String renders the full log, one event per line.
func (r *Recorder) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range r.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
