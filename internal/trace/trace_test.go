package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindPropose}) // must not panic
	if r.Events() != nil || r.Len() != 0 || r.String() != "" || r.Filter(KindPropose) != nil {
		t.Error("nil recorder must behave as empty")
	}
}

func TestRecordAndFilter(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Round: 1, Kind: KindPropose, Buyer: 0, Seller: 1})
	r.Record(Event{Round: 1, Kind: KindAccept, Buyer: 0, Seller: 1})
	r.Record(Event{Round: 2, Kind: KindPropose, Buyer: 2, Seller: 0})
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	proposals := r.Filter(KindPropose)
	if len(proposals) != 2 || proposals[0].Buyer != 0 || proposals[1].Buyer != 2 {
		t.Errorf("Filter = %v", proposals)
	}
	if len(r.Filter(KindInvite)) != 0 {
		t.Error("Filter of absent kind should be empty")
	}
}

func TestEventOrderPreserved(t *testing.T) {
	r := NewRecorder()
	for k := 0; k < 10; k++ {
		r.Record(Event{Round: k, Kind: KindReject})
	}
	for k, e := range r.Events() {
		if e.Round != k {
			t.Fatalf("event %d has round %d; order not preserved", k, e.Round)
		}
	}
}

func TestKindString(t *testing.T) {
	tests := map[Kind]string{
		KindPropose:        "propose",
		KindEvict:          "evict",
		KindTransferApply:  "transfer-apply",
		KindInviteAccept:   "invite-accept",
		KindTransition:     "transition",
		KindTransferReject: "transfer-reject",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "trace.Kind(99)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestStringRendering(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Round: 3, Kind: KindInvite, Buyer: 4, Seller: 2, Note: "test"})
	s := r.String()
	for _, want := range []string{"r003", "invite", "buyer=4", "seller=2", "test"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
