// Package mwis solves the maximum-weight independent set problem that sellers
// face when forming their most-preferred spectrum coalition (Algorithm 1 line
// 12 and Algorithm 2 line 13 of the paper): among a candidate set of buyers,
// pick a pairwise non-interfering subset with maximum total offered price.
//
// Exact MWIS is NP-hard, so the paper adopts the linear-time greedy
// algorithms of Sakai, Togasaki and Yamazaki ("A Note on Greedy Algorithms
// for the Maximum Weighted Independent Set Problem", Discrete Applied
// Mathematics 126(2), 2003). This package implements their GWMIN, GWMIN2 and
// GWMAX heuristics, a take-the-best combination, and an exact
// branch-and-bound solver used for small instances, verification, and
// ablations.
//
// All solvers are deterministic: ties break toward the smaller vertex ID, so
// repeated runs over the same market produce identical matchings.
package mwis

import (
	"fmt"
	"math/bits"
	"sort"

	"specmatch/internal/graph"
)

// trailingZeros is math/bits.TrailingZeros64 under a name short enough for
// the word-iteration loops.
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// Algorithm selects a MWIS solving strategy.
type Algorithm int

// Supported algorithms. GWMIN is the package default: it carries the
// w(v)/(deg(v)+1) approximation guarantee from Sakai et al. and is the
// natural reading of the paper's "greedy algorithms ... in linear time".
const (
	GWMIN      Algorithm = iota + 1 // repeatedly take argmax w(v)/(d(v)+1), delete closed neighborhood
	GWMIN2                          // like GWMIN but with weight-relative ratio w(v)/w(N[v])
	GWMAX                           // repeatedly delete argmin w(v)/(d(v)(d(v)+1)) until edgeless
	GreedyBest                      // run GWMIN, GWMIN2 and GWMAX; keep the heaviest result
	Exact                           // branch-and-bound; exponential worst case
)

var _algorithmNames = map[Algorithm]string{
	GWMIN:      "gwmin",
	GWMIN2:     "gwmin2",
	GWMAX:      "gwmax",
	GreedyBest: "greedy-best",
	Exact:      "exact",
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	if s, ok := _algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("mwis.Algorithm(%d)", int(a))
}

// ParseAlgorithm converts a CLI-style name into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range _algorithmNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("mwis: unknown algorithm %q (want one of gwmin, gwmin2, gwmax, greedy-best, exact)", s)
}

// Solve returns an independent subset of candidates in graph g that
// (heuristically or exactly, per alg) maximizes the total weight. Weights are
// indexed by vertex ID. Candidates with non-positive weight are never
// selected: a seller's preference (eq. (6)) is strict in total price, so a
// zero-price buyer never improves a coalition. The result is sorted
// ascending. Duplicate candidates are handled as one.
//
// Solve allocates fresh scratch per call; hot paths that solve repeatedly
// over the same graph should hold a Solver and reuse its buffers.
func Solve(alg Algorithm, g *graph.Graph, weights []float64, candidates []int) ([]int, error) {
	var s Solver
	return s.Solve(alg, g, weights, candidates)
}

// Solver runs the package's algorithms with reusable scratch buffers,
// eliminating the per-call allocations (alive marks, dedup sets, search
// order) that dominate the engine's coalition-formation hot path. Results
// are bit-identical to the package-level Solve. The zero value is ready to
// use; a Solver is not safe for concurrent use — create one per goroutine
// (the matching engine keeps one per seller).
type Solver struct {
	cands  []int      // cleaned candidate list
	alive  graph.Bits // alive mask for the greedy algorithms, cleared per call
	seen   []bool     // dedup marks, cleared per call
	order  []int      // exact: descending-weight search order
	suffix []float64  // exact: remaining-weight bounds
	cur    []int      // exact: current partial set
}

// Solve is the Solver counterpart of the package-level Solve: identical
// semantics and output, but scratch buffers are reused across calls. Only
// the returned set is freshly allocated (callers retain it).
func (s *Solver) Solve(alg Algorithm, g *graph.Graph, weights []float64, candidates []int) ([]int, error) {
	if len(weights) < g.N() {
		return nil, fmt.Errorf("mwis: %d weights for %d vertices", len(weights), g.N())
	}
	cands, err := s.cleanCandidates(g, weights, candidates)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, nil
	}
	var set []int
	switch alg {
	case GWMIN:
		set = s.gwmin(g, weights, cands, ratioGWMIN)
	case GWMIN2:
		set = s.gwmin(g, weights, cands, ratioGWMIN2)
	case GWMAX:
		set = s.gwmax(g, weights, cands)
	case GreedyBest:
		set = bestOf(weights,
			s.gwmin(g, weights, cands, ratioGWMIN),
			s.gwmin(g, weights, cands, ratioGWMIN2),
			s.gwmax(g, weights, cands),
		)
	case Exact:
		set = s.exact(g, weights, cands)
	default:
		return nil, fmt.Errorf("mwis: unsupported algorithm %v", alg)
	}
	sort.Ints(set)
	return set, nil
}

// Weight returns the total weight of the given vertex set.
func Weight(weights []float64, set []int) float64 {
	total := 0.0
	for _, v := range set {
		total += weights[v]
	}
	return total
}

// cleanCandidates validates, deduplicates and filters the candidate list
// into the solver's candidate scratch. The dedup marks are cleared before
// returning on every path, so the buffer is reusable immediately.
func (s *Solver) cleanCandidates(g *graph.Graph, weights []float64, candidates []int) ([]int, error) {
	if len(s.seen) < g.N() {
		s.seen = make([]bool, g.N())
	}
	out := s.cands[:0]
	var err error
	for _, v := range candidates {
		if v < 0 || v >= g.N() {
			err = fmt.Errorf("mwis: candidate %d out of range [0,%d)", v, g.N())
			break
		}
		if s.seen[v] {
			continue
		}
		s.seen[v] = true
		if weights[v] > 0 {
			out = append(out, v)
		}
	}
	for _, v := range candidates { // clear marks (only in-range vertices set)
		if v >= 0 && v < len(s.seen) {
			s.seen[v] = false
		}
	}
	if err != nil {
		return nil, err
	}
	sort.Ints(out)
	s.cands = out
	return out, nil
}

// aliveFor returns the alive mask sized for g, all clear. Callers must
// clear every bit they set before returning.
func (s *Solver) aliveFor(n int) graph.Bits {
	if words := graph.WordsFor(n); len(s.alive) < words {
		s.alive = make(graph.Bits, words)
	}
	return s.alive
}

// ratioFn scores an alive vertex; greater is better for selection.
type ratioFn func(g *graph.Graph, weights []float64, alive graph.Bits, v int) float64

func ratioGWMIN(g *graph.Graph, weights []float64, alive graph.Bits, v int) float64 {
	// Word-parallel induced degree: popcount(Row(v) AND alive).
	return weights[v] / float64(g.InducedDegreeMask(v, alive)+1)
}

func ratioGWMIN2(g *graph.Graph, weights []float64, alive graph.Bits, v int) float64 {
	closed := weights[v]
	// Sum over alive neighbors. Bit iteration over Row(v) AND alive visits
	// vertices in ascending ID order — the same order the sorted neighbor
	// lists gave — so the float accumulation is bit-for-bit unchanged.
	row := g.Row(v)
	for i, w := range row {
		w &= alive[i]
		base := i << 6
		for w != 0 {
			u := base + trailingZeros(w)
			closed += weights[u]
			w &= w - 1
		}
	}
	// closed ≥ weights[v] > 0 for any selectable candidate.
	return weights[v] / closed
}

// gwmin implements the GWMIN family: repeatedly select the alive vertex with
// the best ratio, add it to the set, and delete its closed neighborhood —
// one ANDNOT word sweep against the selected vertex's adjacency row.
func (s *Solver) gwmin(g *graph.Graph, weights []float64, cands []int, ratio ratioFn) []int {
	alive := s.aliveFor(g.N())
	for _, v := range cands {
		alive.Set(v)
	}
	remaining := len(cands)
	set := make([]int, 0, len(cands))
	for remaining > 0 {
		best := -1
		bestRatio := 0.0
		for _, v := range cands { // ascending ID: ties keep the smaller ID
			if !alive.Get(v) {
				continue
			}
			r := ratio(g, weights, alive, v)
			if best == -1 || r > bestRatio {
				best, bestRatio = v, r
			}
		}
		set = append(set, best)
		alive.Clear(best)
		remaining--
		row := g.Row(best)
		remaining -= graph.AndCount(row, alive)
		alive.AndNot(row)
	}
	for _, v := range cands { // clear marks for the next call
		alive.Clear(v)
	}
	return set
}

// gwmax implements GWMAX: repeatedly delete the vertex minimizing
// w(v)/(d(v)(d(v)+1)) among alive vertices with at least one alive neighbor;
// when the alive-induced subgraph is edgeless, the survivors are the set.
func (s *Solver) gwmax(g *graph.Graph, weights []float64, cands []int) []int {
	alive := s.aliveFor(g.N())
	for _, v := range cands {
		alive.Set(v)
	}
	for {
		worst := -1
		worstRatio := 0.0
		for _, v := range cands {
			if !alive.Get(v) {
				continue
			}
			d := g.InducedDegreeMask(v, alive)
			if d == 0 {
				continue
			}
			r := weights[v] / float64(d*(d+1))
			if worst == -1 || r < worstRatio {
				worst, worstRatio = v, r
			}
		}
		if worst == -1 {
			break // edgeless: done
		}
		alive.Clear(worst)
	}
	set := make([]int, 0, len(cands))
	for _, v := range cands {
		if alive.Get(v) {
			set = append(set, v)
		}
		alive.Clear(v) // clear marks for the next call
	}
	return set
}

// bestOf returns the heaviest of the given sets, breaking ties toward the
// earliest argument (so the algorithm order above is the priority order).
func bestOf(weights []float64, sets ...[]int) []int {
	var best []int
	bestW := -1.0
	for _, s := range sets {
		if w := Weight(weights, s); w > bestW {
			best, bestW = s, w
		}
	}
	return best
}

// exact runs a branch-and-bound search over the candidates, ordered by
// descending weight so that good incumbents are found early. The bound is the
// incumbent-relative remaining-weight sum.
func (s *Solver) exact(g *graph.Graph, weights []float64, cands []int) []int {
	order := append(s.order[:0], cands...)
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	s.order = order
	// suffix[i] = total weight of order[i:], the loosest admissible bound.
	if cap(s.suffix) < len(order)+1 {
		s.suffix = make([]float64, len(order)+1)
	}
	suffix := s.suffix[:len(order)+1]
	suffix[len(order)] = 0
	for i := len(order) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + weights[order[i]]
	}

	var (
		best   []int
		bestW  float64
		cur    = s.cur[:0]
		curW   float64
		search func(i int)
	)
	search = func(i int) {
		if curW > bestW {
			bestW = curW
			best = append(best[:0], cur...)
		}
		if i == len(order) || curW+suffix[i] <= bestW {
			return
		}
		v := order[i]
		if !g.ConflictsWith(v, cur) {
			cur = append(cur, v)
			curW += weights[v]
			search(i + 1)
			cur = cur[:len(cur)-1]
			curW -= weights[v]
		}
		search(i + 1)
	}
	search(0)
	s.cur = cur[:0] // retain capacity for the next call
	return append([]int(nil), best...)
}
