package mwis

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"specmatch/internal/graph"
	"specmatch/internal/xrand"
)

func allVertices(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	return vs
}

func TestAlgorithmString(t *testing.T) {
	if GWMIN.String() != "gwmin" || Exact.String() != "exact" {
		t.Error("Algorithm String names wrong")
	}
	if got := Algorithm(99).String(); got != "mwis.Algorithm(99)" {
		t.Errorf("unknown algorithm String = %q", got)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"gwmin", "gwmin2", "gwmax", "greedy-best", "exact"} {
		a, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", name, err)
		}
		if a.String() != name {
			t.Errorf("round-trip %q = %q", name, a.String())
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm of junk should fail")
	}
}

func TestSolveEmptyCandidates(t *testing.T) {
	g := graph.Complete(3)
	w := []float64{1, 2, 3}
	for _, alg := range []Algorithm{GWMIN, GWMIN2, GWMAX, GreedyBest, Exact} {
		set, err := Solve(alg, g, w, nil)
		if err != nil {
			t.Fatalf("%v on empty candidates: %v", alg, err)
		}
		if len(set) != 0 {
			t.Errorf("%v on empty candidates = %v, want empty", alg, set)
		}
	}
}

func TestSolveBadInputs(t *testing.T) {
	g := graph.Complete(3)
	if _, err := Solve(GWMIN, g, []float64{1}, []int{0}); err == nil {
		t.Error("short weight vector should fail")
	}
	if _, err := Solve(GWMIN, g, []float64{1, 2, 3}, []int{5}); err == nil {
		t.Error("out-of-range candidate should fail")
	}
	if _, err := Solve(Algorithm(42), g, []float64{1, 2, 3}, []int{0}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestSolveDropsNonPositiveWeights(t *testing.T) {
	g := graph.Empty(3)
	w := []float64{0, -1, 5}
	set, err := Solve(GWMIN, g, w, allVertices(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, []int{2}) {
		t.Errorf("Solve = %v, want [2]", set)
	}
}

func TestSolveDeduplicatesCandidates(t *testing.T) {
	g := graph.Empty(2)
	set, err := Solve(Exact, g, []float64{1, 2}, []int{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, []int{0, 1}) {
		t.Errorf("Solve = %v, want [0 1]", set)
	}
}

// TestCompleteGraphPicksHeaviest: on a clique every solver must return the
// single heaviest candidate.
func TestCompleteGraphPicksHeaviest(t *testing.T) {
	g := graph.Complete(5)
	w := []float64{3, 9, 4, 1, 5}
	for _, alg := range []Algorithm{GWMIN, GWMIN2, GWMAX, GreedyBest, Exact} {
		set, err := Solve(alg, g, w, allVertices(5))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !reflect.DeepEqual(set, []int{1}) {
			t.Errorf("%v on K5 = %v, want [1]", alg, set)
		}
	}
}

// TestEmptyGraphTakesAll: with no interference everyone is selected.
func TestEmptyGraphTakesAll(t *testing.T) {
	g := graph.Empty(4)
	w := []float64{1, 2, 3, 4}
	for _, alg := range []Algorithm{GWMIN, GWMIN2, GWMAX, GreedyBest, Exact} {
		set, err := Solve(alg, g, w, allVertices(4))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !reflect.DeepEqual(set, allVertices(4)) {
			t.Errorf("%v on empty graph = %v, want all", alg, set)
		}
	}
}

// TestPathGraphExact: on the path 0-1-2 with a heavy middle, Exact must
// compare {1} against {0,2} correctly.
func TestPathGraphExact(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	tests := []struct {
		w    []float64
		want []int
	}{
		{[]float64{1, 10, 1}, []int{1}},
		{[]float64{6, 10, 6}, []int{0, 2}},
	}
	for _, tt := range tests {
		set, err := Solve(Exact, g, tt.w, allVertices(3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(set, tt.want) {
			t.Errorf("Exact(w=%v) = %v, want %v", tt.w, set, tt.want)
		}
	}
}

// TestGWMINKnownApproximation exercises the classic star counterexample:
// GWMIN keeps the center of a star when its ratio wins, losing to the leaves.
func TestGWMINStar(t *testing.T) {
	// Star with center 0 and leaves 1..4.
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	w := []float64{10, 3, 3, 3, 3} // center ratio 10/5 = 2, leaf ratio 3/2 = 1.5
	set, err := Solve(GWMIN, g, w, allVertices(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, []int{0}) {
		t.Errorf("GWMIN star = %v, want [0] (center wins on ratio)", set)
	}
	exact, err := Solve(Exact, g, w, allVertices(5))
	if err != nil {
		t.Fatal(err)
	}
	if Weight(w, exact) != 12 {
		t.Errorf("Exact star weight = %v, want 12 (all leaves)", Weight(w, exact))
	}
}

// TestCandidateRestriction: solvers only choose among candidates.
func TestCandidateRestriction(t *testing.T) {
	g := graph.Empty(5)
	w := []float64{5, 4, 3, 2, 1}
	for _, alg := range []Algorithm{GWMIN, GWMIN2, GWMAX, GreedyBest, Exact} {
		set, err := Solve(alg, g, w, []int{2, 4})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !reflect.DeepEqual(set, []int{2, 4}) {
			t.Errorf("%v restricted = %v, want [2 4]", alg, set)
		}
	}
}

func TestWeight(t *testing.T) {
	w := []float64{1, 2, 3}
	if got := Weight(w, []int{0, 2}); got != 4 {
		t.Errorf("Weight = %v, want 4", got)
	}
	if got := Weight(w, nil); got != 0 {
		t.Errorf("Weight(nil) = %v, want 0", got)
	}
}

// TestGreedyIndependenceProperty: every solver always returns an independent
// set drawn from the candidates.
func TestGreedyIndependenceProperty(t *testing.T) {
	algs := []Algorithm{GWMIN, GWMIN2, GWMAX, GreedyBest, Exact}
	f := func(seed int64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(16)
		g := graph.Gnp(r, n, 0.35)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64()
		}
		cands := r.Perm(n)[:1+r.Intn(n)]
		candSet := make(map[int]bool)
		for _, c := range cands {
			candSet[c] = true
		}
		for _, alg := range algs {
			set, err := Solve(alg, g, w, cands)
			if err != nil {
				return false
			}
			if !g.IsIndependent(set) {
				return false
			}
			for _, v := range set {
				if !candSet[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGreedyApproximationProperty: greedy solutions never beat Exact, and
// GreedyBest achieves at least half the exact optimum on small sparse graphs
// (empirically far better; 0.5 is a conservative floor for the test).
func TestGreedyApproximationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(12)
		g := graph.Gnp(r, n, 0.3)
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.05 + r.Float64()
		}
		exactSet, err := Solve(Exact, g, w, allVertices(n))
		if err != nil {
			return false
		}
		opt := Weight(w, exactSet)
		for _, alg := range []Algorithm{GWMIN, GWMIN2, GWMAX, GreedyBest} {
			set, err := Solve(alg, g, w, allVertices(n))
			if err != nil {
				return false
			}
			if Weight(w, set) > opt+1e-9 {
				return false // greedy beating exact means exact is broken
			}
		}
		bestSet, err := Solve(GreedyBest, g, w, allVertices(n))
		if err != nil {
			return false
		}
		return Weight(w, bestSet) >= 0.5*opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDeterminism: identical inputs give identical outputs.
func TestDeterminism(t *testing.T) {
	r := xrand.New(3)
	g := graph.Gnp(r, 20, 0.3)
	w := make([]float64, 20)
	for i := range w {
		w[i] = r.Float64()
	}
	for _, alg := range []Algorithm{GWMIN, GWMIN2, GWMAX, GreedyBest, Exact} {
		a, err := Solve(alg, g, w, allVertices(20))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(alg, g, w, allVertices(20))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v not deterministic: %v vs %v", alg, a, b)
		}
	}
}

// TestExactMatchesBruteForce cross-checks the branch-and-bound against
// exhaustive enumeration on tiny graphs.
func TestExactMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := xrand.New(seed)
		n := 3 + r.Intn(8)
		g := graph.Gnp(r, n, 0.4)
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.1 + r.Float64()
		}
		set, err := Solve(Exact, g, w, allVertices(n))
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(g, w)
		if math.Abs(Weight(w, set)-want) > 1e-9 {
			t.Errorf("seed %d: Exact weight %v, brute force %v", seed, Weight(w, set), want)
		}
	}
}

func bruteForce(g *graph.Graph, w []float64) float64 {
	n := g.N()
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		if !g.IsIndependent(set) {
			continue
		}
		if tw := Weight(w, set); tw > best {
			best = tw
		}
	}
	return best
}
