package mwis

import (
	"reflect"
	"testing"

	"specmatch/internal/graph"
	"specmatch/internal/xrand"
)

// TestSolverReuseMatchesSolve: one Solver reused across many graphs, weight
// vectors, algorithms and candidate subsets must return exactly what the
// fresh-scratch package-level Solve returns — stale marks or under-cleared
// buffers from a previous call would surface as a diff.
func TestSolverReuseMatchesSolve(t *testing.T) {
	algs := []Algorithm{GWMIN, GWMIN2, GWMAX, GreedyBest, Exact}
	var s Solver
	r := xrand.New(7)
	for trial := 0; trial < 60; trial++ {
		// Vary the graph size up and down so the reused buffers both grow
		// and get partially reused.
		n := 2 + r.Intn(14)
		g := graph.Gnp(r, n, 0.3)
		weights := make([]float64, n)
		for v := range weights {
			weights[v] = r.Float64() * 10
		}
		if trial%3 == 0 {
			weights[r.Intn(n)] = 0 // exercise the non-positive filter
		}
		cands := make([]int, 0, n+2)
		for v := 0; v < n; v++ {
			if r.Float64() < 0.8 {
				cands = append(cands, v)
			}
		}
		cands = append(cands, cands...) // duplicates must collapse

		for _, alg := range algs {
			want, err := Solve(alg, g, weights, cands)
			if err != nil {
				t.Fatalf("trial %d %v: fresh Solve: %v", trial, alg, err)
			}
			got, err := s.Solve(alg, g, weights, cands)
			if err != nil {
				t.Fatalf("trial %d %v: reused Solve: %v", trial, alg, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d %v: reused solver diverged: got %v, want %v", trial, alg, got, want)
			}
		}

		// An out-of-range candidate errors but must not poison the scratch
		// for the next call.
		if _, err := s.Solve(GWMIN, g, weights, []int{0, n + 5}); err == nil {
			t.Fatalf("trial %d: out-of-range candidate accepted", trial)
		}
	}
}

// TestSolverZeroValue: the zero Solver is immediately usable.
func TestSolverZeroValue(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	var s Solver
	set, err := s.Solve(GWMIN, g, []float64{3, 2, 1}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, []int{0, 2}) {
		t.Errorf("got %v, want [0 2]", set)
	}
}
