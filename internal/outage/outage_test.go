package outage

import (
	"math"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/radio"
)

func generatedMarket(t *testing.T, seed int64) *market.Market {
	t.Helper()
	m, err := market.Generate(market.Config{Sellers: 4, Buyers: 30, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidateEmptyMatching(t *testing.T) {
	m := generatedMarket(t, 1)
	mu := matching.New(m.M(), m.N())
	rep, err := ValidateMatching(m, mu, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Links != 0 || rep.Outages != 0 || rep.OutageRate != 0 {
		t.Errorf("empty matching report: %+v", rep)
	}
}

func TestValidateSingleLinkNoOutage(t *testing.T) {
	m := generatedMarket(t, 2)
	mu := matching.New(m.M(), m.N())
	if err := mu.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateMatching(m, mu, LinkParams{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Links != 1 || rep.Outages != 0 {
		t.Errorf("lone link should never be in outage: %+v", rep)
	}
	// Sanity: with no interference, SINR = signal/noise =
	// (range/linkDist)^γ in dB, strongly positive for a short link.
	if rep.MinSINRDB <= 0 {
		t.Errorf("lone-link SINR %.2f dB should be positive", rep.MinSINRDB)
	}
}

// TestMatchingOutageLowerThanNaive: the interference-aware matching yields
// (weakly) fewer outages than piling every buyer onto one channel.
func TestMatchingOutageLowerThanNaive(t *testing.T) {
	var matchedOutage, naiveOutage float64
	for seed := int64(0); seed < 10; seed++ {
		m := generatedMarket(t, seed)
		res, err := core.Run(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ValidateMatching(m, res.Matching, LinkParams{})
		if err != nil {
			t.Fatal(err)
		}
		matchedOutage += rep.OutageRate

		naive := matching.New(m.M(), m.N())
		for j := 0; j < m.N(); j++ {
			if err := naive.Assign(0, j); err != nil {
				t.Fatal(err)
			}
		}
		nrep, err := ValidateMatching(m, naive, LinkParams{})
		if err != nil {
			t.Fatal(err)
		}
		naiveOutage += nrep.OutageRate
	}
	if matchedOutage > naiveOutage {
		t.Errorf("matching outage %.3f should not exceed naive single-channel outage %.3f",
			matchedOutage/10, naiveOutage/10)
	}
	t.Logf("mean outage: matching %.3f vs all-on-one-channel %.3f", matchedOutage/10, naiveOutage/10)
}

// TestLongerLinksDegrade: stretching the access link lowers SINR
// monotonically.
func TestLongerLinksDegrade(t *testing.T) {
	m := generatedMarket(t, 3)
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prevMin := math.Inf(1)
	for _, linkDist := range []float64{0.1, 0.25, 0.5, 1, 2} {
		rep, err := ValidateMatching(m, res.Matching, LinkParams{LinkDist: linkDist})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MinSINRDB > prevMin+1e-9 {
			t.Errorf("min SINR rose from %.2f to %.2f as the link stretched to %v",
				prevMin, rep.MinSINRDB, linkDist)
		}
		prevMin = rep.MinSINRDB
	}
}

func TestValidateErrors(t *testing.T) {
	m := generatedMarket(t, 4)
	mu := matching.New(m.M(), m.N())
	if _, err := ValidateMatching(m, mu, LinkParams{LinkDist: -1}); err == nil {
		t.Error("negative link distance should fail")
	}
	if _, err := ValidateMatching(m, mu, LinkParams{Params: radio.Params{PathLossExp: 0.1}}); err == nil {
		t.Error("absurd exponent should fail")
	}
}

// TestLinkFractionNormalizesChannels: with range-proportional links, a lone
// link's SINR is the same on every channel regardless of its range.
func TestLinkFractionNormalizesChannels(t *testing.T) {
	m := generatedMarket(t, 6)
	var sinrs []float64
	for i := 0; i < m.M(); i++ {
		mu := matching.New(m.M(), m.N())
		if err := mu.Assign(i, 0); err != nil {
			t.Fatal(err)
		}
		rep, err := ValidateMatching(m, mu, LinkParams{LinkFraction: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		sinrs = append(sinrs, rep.MinSINRDB)
	}
	for _, s := range sinrs[1:] {
		if math.Abs(s-sinrs[0]) > 1e-6 {
			t.Fatalf("lone-link SINRs differ across channels: %v", sinrs)
		}
	}
}

// TestMarginReducesInterferenceOutage: with channel-normalized links, a
// stricter interference predicate (negative dB offset on the calibrated
// SINR model) reduces aggregate-interference outage on average.
func TestMarginReducesInterferenceOutage(t *testing.T) {
	outageAt := func(deltaDB float64) float64 {
		var total float64
		const runs = 12
		for seed := int64(0); seed < runs; seed++ {
			cfg := market.Config{Sellers: 5, Buyers: 80, Seed: seed}
			if deltaDB != 0 {
				cfg.Radio = &market.RadioConfig{DeltaDB: deltaDB}
			}
			m, err := market.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(m, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ValidateMatching(m, res.Matching, LinkParams{LinkFraction: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			total += rep.OutageRate
		}
		return total / runs
	}
	disk, margin := outageAt(0), outageAt(-6)
	if margin > disk+0.02 {
		t.Errorf("6 dB margin raised mean outage: %.3f vs disk %.3f", margin, disk)
	}
	t.Logf("mean outage: disk %.3f vs 6 dB margin %.3f", disk, margin)
}

func TestLinkFractionValidation(t *testing.T) {
	m := generatedMarket(t, 7)
	mu := matching.New(m.M(), m.N())
	if _, err := ValidateMatching(m, mu, LinkParams{LinkFraction: -0.1}); err == nil {
		t.Error("negative link fraction should fail")
	}
}
