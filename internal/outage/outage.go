// Package outage audits a matching at the physical layer. The pairwise
// disk/SINR predicate used during matching considers interferers one at a
// time; real receivers see the *sum* of all co-channel transmitters.
// ValidateMatching closes that loop: given a final matching, it computes
// each link's aggregate SINR under the log-distance model of package radio
// and reports which links would actually fail — the standard
// protocol-model vs physical-model gap analysis for DSA mechanisms.
package outage

import (
	"fmt"
	"math"
	"sort"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/radio"
)

// LinkParams extends Params with the access-link geometry and the decoding
// requirement.
type LinkParams struct {
	radio.Params
	// LinkDist is each matched buyer's transmitter→receiver distance; zero
	// means 0.25 (a short access link relative to the paper's 10×10 area).
	LinkDist float64
	// LinkFraction, when positive, overrides LinkDist with a per-channel
	// link length of LinkFraction × the channel's transmission range. This
	// makes the interference-free SINR identical on every channel
	// ((1/LinkFraction)^γ), so outage isolates *aggregate interference*
	// rather than intrinsically weak low-power channels.
	LinkFraction float64
	// SINRThresholdDB is the minimum SINR for successful decoding; zero
	// means 5 dB.
	SINRThresholdDB float64
}

func (p LinkParams) withDefaults() (LinkParams, error) {
	normalized, err := p.Params.Normalized()
	if err != nil {
		return LinkParams{}, err
	}
	p.Params = normalized
	if p.LinkDist == 0 {
		p.LinkDist = 0.25
	}
	if p.SINRThresholdDB == 0 {
		p.SINRThresholdDB = 5
	}
	return p, nil
}

// OutageReport summarizes the physical-layer audit of a matching.
type OutageReport struct {
	// Links is the number of matched buyers audited.
	Links int `json:"links"`
	// Outages counts links whose aggregate SINR falls below the threshold.
	Outages int `json:"outages"`
	// OutageRate is Outages / Links (0 for an empty matching).
	OutageRate float64 `json:"outage_rate"`
	// MinSINRDB and MedianSINRDB summarize the link SINR distribution.
	MinSINRDB    float64 `json:"min_sinr_db"`
	MedianSINRDB float64 `json:"median_sinr_db"`
}

// ValidateMatching audits a matching's links under aggregate interference.
//
// Power normalization: per channel, transmit power is calibrated so that a
// single interferer at the channel's nominal range produces exactly
// noise-floor power at a receiver (I/N = 0 dB at the range boundary, the
// same calibration the pairwise model uses). Every co-channel transmitter
// then contributes P·(d0/d)^γ of interference, and
// SINR = S / (N0 + Σ I_k).
func ValidateMatching(m *market.Market, mu *matching.Matching, params LinkParams) (OutageReport, error) {
	params, err := params.withDefaults()
	if err != nil {
		return OutageReport{}, err
	}
	if params.LinkDist <= 0 {
		return OutageReport{}, fmt.Errorf("outage: non-positive link distance %v", params.LinkDist)
	}
	if params.LinkFraction < 0 {
		return OutageReport{}, fmt.Errorf("outage: negative link fraction %v", params.LinkFraction)
	}
	if _, ok := m.BuyerPos(0); m.N() > 0 && !ok {
		return OutageReport{}, fmt.Errorf("outage: market has no geometry; generate it with positions")
	}

	gamma := params.PathLossExp
	d0 := params.ReferenceDist
	// Relative received power at distance d from a unit-power transmitter.
	rx := func(d float64) float64 {
		if d < d0 {
			d = d0
		}
		return math.Pow(d0/d, gamma)
	}

	var sinrsDB []float64
	report := OutageReport{MinSINRDB: math.Inf(1)}
	for i := 0; i < m.M(); i++ {
		coalition := mu.Coalition(i)
		if len(coalition) == 0 {
			continue
		}
		rng, ok := m.Range(i)
		if !ok || rng <= 0 {
			return OutageReport{}, fmt.Errorf("outage: channel %d has no transmission range", i)
		}
		// Calibration: unit TX power scaled so rx(rng)·P = N0; with N0 = 1,
		// P = 1/rx(rng).
		power := 1 / rx(rng)
		const noise = 1.0
		linkDist := params.LinkDist
		if params.LinkFraction > 0 {
			linkDist = params.LinkFraction * rng
		}
		for _, j := range coalition {
			pj, _ := m.BuyerPos(j)
			signal := power * rx(linkDist)
			interference := 0.0
			for _, k := range coalition {
				if k == j {
					continue
				}
				pk, _ := m.BuyerPos(k)
				// Worst case: the receiver sits at the buyer's own
				// position relative to interferers.
				interference += power * rx(pj.Dist(pk))
			}
			sinrDB := 10 * math.Log10(signal/(noise+interference))
			sinrsDB = append(sinrsDB, sinrDB)
			report.Links++
			if sinrDB < params.SINRThresholdDB {
				report.Outages++
			}
			if sinrDB < report.MinSINRDB {
				report.MinSINRDB = sinrDB
			}
		}
	}
	if report.Links == 0 {
		report.MinSINRDB = 0
		return report, nil
	}
	report.OutageRate = float64(report.Outages) / float64(report.Links)
	sort.Float64s(sinrsDB)
	report.MedianSINRDB = sinrsDB[len(sinrsDB)/2]
	return report, nil
}
