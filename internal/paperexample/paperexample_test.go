package paperexample

import (
	"testing"
)

func TestToyConsistent(t *testing.T) {
	m := Toy()
	if m.M() != 3 || m.N() != 5 {
		t.Fatalf("toy dims (%d,%d), want (3,5)", m.M(), m.N())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("toy market invalid: %v", err)
	}
	// Spot-check prices against Fig. 3(b).
	if m.Price(0, 0) != 7 || m.Price(1, 2) != 10 || m.Price(2, 4) != 3 {
		t.Error("toy prices disagree with Fig. 3(b)")
	}
	// Edges pinned by the trace.
	if !m.Interferes(0, 0, 1) || !m.Interferes(1, 2, 3) || !m.Interferes(2, 1, 4) {
		t.Error("missing a trace-forced interference edge")
	}
	// Non-edges pinned by the published coalitions.
	if m.Interferes(0, 1, 3) || m.Interferes(1, 2, 4) || m.Interferes(2, 0, 1) || m.Interferes(2, 0, 4) {
		t.Error("an edge forbidden by the published coalitions is present")
	}
}

func TestToyExpectedMatchings(t *testing.T) {
	stage1 := ToyStageIMatching()
	final := ToyFinalMatching()
	if len(stage1) != 3 || len(final) != 3 {
		t.Fatal("matchings must list all 3 sellers")
	}
	count := func(mm [][]int) int {
		total := 0
		for _, c := range mm {
			total += len(c)
		}
		return total
	}
	if count(stage1) != 5 || count(final) != 5 {
		t.Error("every buyer is matched in both published matchings")
	}
}

func TestCounterexampleConsistent(t *testing.T) {
	m := Counterexample()
	if m.M() != 3 || m.N() != 9 {
		t.Fatalf("counterexample dims (%d,%d), want (3,9)", m.M(), m.N())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("counterexample invalid: %v", err)
	}
	// The blocking pair's preconditions: buyer 2 (index 1) interferes with
	// buyer 4 (index 3) but not with buyers 3 or 7 (indices 2, 6) on
	// channel b (index 1).
	if !m.Interferes(1, 1, 3) {
		t.Error("buyers 2 and 4 must interfere on channel b")
	}
	if m.Interferes(1, 1, 2) || m.Interferes(1, 1, 6) {
		t.Error("buyer 2 must not interfere with the sacrifice-exempt set {3,7} on channel b")
	}
	// The improving swap's preconditions: buyer 4 compatible with {6,8} on
	// channel c; buyer 2 (index 1) interferes with buyer 4 on channel c.
	if m.Interferes(2, 3, 5) || m.Interferes(2, 3, 7) {
		t.Error("buyer 4 must be compatible with buyers 6 and 8 on channel c")
	}
	if !m.Interferes(2, 1, 3) {
		t.Error("buyers 2 and 4 must interfere on channel c (what blocks the swap)")
	}
	// Welfare bookkeeping of the two published matchings.
	if CounterexampleImprovedWelfare-CounterexampleWelfare != 2 {
		t.Error("the swap gains exactly 1 per swapped buyer")
	}
}
