package paperexample

import (
	"fmt"

	"specmatch/internal/graph"
	"specmatch/internal/market"
)

// Counterexample returns the 9-buyer/3-seller instance of Figs. 4–5, which
// the paper uses to show its algorithm is neither pairwise stable (Def. 4)
// nor buyer-optimal among Nash-stable matchings (Def. 5).
//
// The published figure does not list the interference edges legibly, so the
// edge sets below are reconstructed to satisfy every constraint the paper
// states: the four-round Stage I trace of Fig. 4 under the greedy
// coalition rule, Stage II leaving the matching unchanged, the blocking pair
// (seller b, buyer 2) with sacrifice set S = {3, 7} (buyer 2 interferes with
// buyer 4 but not with 3 or 7 on channel b), and the strictly improving
// Nash-stable swap of buyers 2 and 4 across sellers b and c being enabled
// precisely because buyer 2 — matched to seller c — interferes with buyer 4
// on channel c. Each reconstructed edge is forced by one of those published
// decisions; the golden tests in internal/stability replay all of them.
//
// Indexing: the paper's buyers 1..9 are indices 0..8, sellers a, b, c are
// channels 0, 1, 2.
func Counterexample() *market.Market {
	prices := [][]float64{
		{3, 1, 5, 1, 7, 7, 13, 12, 8},   // channel a
		{4, 3, 6, 2, 9, 11, 14, 13, 7},  // channel b
		{5, 2, 7, 3, 8, 6.5, 12, 14, 6}, // channel c
	}
	graphs := []*graph.Graph{
		// channel a: buyer 6 interferes with buyer 9 (round-2 rejection).
		graph.MustFromEdges(9, [][2]int{{5, 8}}),
		// channel b: {1,2}, {1,3}, {2,4}, and the {5,6,7} triangle.
		graph.MustFromEdges(9, [][2]int{{0, 1}, {0, 2}, {1, 3}, {4, 5}, {4, 6}, {5, 6}}),
		// channel c: {1,8}, {3,4}, {2,4}, {3,5}, {2,5}, {5,6}, {3,6}.
		graph.MustFromEdges(9, [][2]int{{0, 7}, {2, 3}, {1, 3}, {2, 4}, {1, 4}, {4, 5}, {2, 5}}),
	}
	m, err := market.New(prices, graphs)
	if err != nil {
		panic(fmt.Sprintf("paperexample: counterexample market invalid: %v", err))
	}
	return m
}

// CounterexampleMatching is the Fig. 4(e) outcome µ(a)={1,5,9},
// µ(b)={3,4,7}, µ(c)={2,6,8}, 0-indexed: seller → sorted buyers.
func CounterexampleMatching() [][]int {
	return [][]int{{0, 4, 8}, {2, 3, 6}, {1, 5, 7}}
}

// CounterexampleWelfare is the social welfare of the Fig. 4(e) outcome:
// (3+7+8) + (6+2+14) + (2+6.5+14) = 62.5.
const CounterexampleWelfare = 62.5

// CounterexampleImproved returns the strictly better Nash-stable matching of
// §III-D obtained by swapping buyers 2 and 4 across sellers b and c:
// µ'(a)={1,5,9}, µ'(b)={2,3,7}, µ'(c)={4,6,8}, 0-indexed.
func CounterexampleImproved() [][]int {
	return [][]int{{0, 4, 8}, {1, 2, 6}, {3, 5, 7}}
}

// CounterexampleImprovedWelfare is the welfare of the swapped matching:
// buyers 2 and 4 each gain 1 over the algorithm's outcome.
const CounterexampleImprovedWelfare = 64.5
