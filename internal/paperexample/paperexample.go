// Package paperexample pins the worked examples of the paper as concrete
// market fixtures, shared by golden tests, examples and CLIs.
//
// Toy is the 5-buyer/3-seller instance of Fig. 3, whose Stage I trace
// (Fig. 1, welfare 27) and Stage II trace (Fig. 2, welfare 30) the paper
// walks through round by round. The interference edges are reconstructed
// from that trace; every edge below is forced by a decision in Figs. 1–2.
//
// Indexing: the paper's buyers 1..5 are indices 0..4 and sellers a, b, c are
// channels 0, 1, 2.
package paperexample

import (
	"fmt"

	"specmatch/internal/graph"
	"specmatch/internal/market"
)

// Toy returns the Fig. 3 market.
//
// Utility vectors (b_a, b_b, b_c) per buyer: 1:(7,6,3), 2:(6,5,4),
// 3:(9,10,8), 4:(8,9,7), 5:(1,2,3).
//
// Interference edges implied by the published trace:
//   - channel a: {1,2} (round 1: seller a keeps only buyer 1),
//     {1,4} (round 2: accepting buyer 4 evicts buyer 1); buyers 2 and 4 do
//     not interfere (Stage II grants buyer 2's transfer alongside buyer 4).
//   - channel b: {3,4} (round 1), {2,3} (round 2 rejection), {1,3} (round 3
//     rejection); buyers 3 and 5 do not interfere (final µ(b) = {3,5}).
//   - channel c: {2,5} (round 3: buyer 2 displaces buyer 5); buyers 1,2 and
//     1,5 do not interfere (final coalitions {1,2} then {1,5}).
func Toy() *market.Market {
	prices := [][]float64{
		{7, 6, 9, 8, 1},  // channel a
		{6, 5, 10, 9, 2}, // channel b
		{3, 4, 8, 7, 3},  // channel c
	}
	graphs := []*graph.Graph{
		graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 3}}),         // a
		graph.MustFromEdges(5, [][2]int{{0, 2}, {1, 2}, {2, 3}}), // b
		graph.MustFromEdges(5, [][2]int{{1, 4}}),                 // c
	}
	m, err := market.New(prices, graphs)
	if err != nil {
		// The fixture is a compile-time constant; failure is a programming
		// error in this package, not a runtime condition.
		panic(fmt.Sprintf("paperexample: toy market invalid: %v", err))
	}
	return m
}

// ToyStageIWelfare is the social welfare after Stage I in Fig. 1(e).
const ToyStageIWelfare = 27.0

// ToyFinalWelfare is the social welfare after Stage II in Fig. 2(d).
const ToyFinalWelfare = 30.0

// ToyStageIMatching returns the Fig. 1(e) matching µ(a)={4}, µ(b)={3,5},
// µ(c)={1,2} in 0-indexed form: seller → sorted buyers.
func ToyStageIMatching() [][]int {
	return [][]int{{3}, {2, 4}, {0, 1}}
}

// ToyFinalMatching returns the Fig. 2(d) matching µ(a)={2,4}, µ(b)={3},
// µ(c)={1,5} in 0-indexed form.
func ToyFinalMatching() [][]int {
	return [][]int{{1, 3}, {2}, {0, 4}}
}
