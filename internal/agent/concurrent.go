package agent

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/simnet"
	"specmatch/internal/stats"
)

// netSender is the one capability agents need from the network. The
// sequential runner hands agents the simnet.Network directly; the concurrent
// runner hands them an interceptor that re-serializes sends at the slot
// barrier.
type netSender interface {
	Send(msg simnet.Message)
}

var _ netSender = (*simnet.Network)(nil)

// RunConcurrent executes the asynchronous protocol with one goroutine per
// agent, synchronized at a per-slot barrier, instead of the sequential loop
// of Run. Agents never share state and communicate only through the
// network, so the only coordination is the barrier itself; the race
// detector validates that claim in the tests.
//
// Each agent's sends are buffered during the slot and forwarded to the
// underlying network in deterministic agent order (buyers by index, then
// sellers) at the barrier, so runs are reproducible regardless of goroutine
// scheduling. On a reliable network the result is bit-identical to Run;
// with fault injection both runners are individually deterministic but may
// consume the drop/delay randomness in different orders and so diverge from
// each other.
func RunConcurrent(m *market.Market, cfg Config) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("agent: invalid market: %w", err)
	}
	cfg = cfg.withDefaults(m.M(), m.N())
	sched := defaultSchedule(m.M(), m.N())

	root := cfg.Flight.Start(cfg.SpanParent, "agent.run")
	defer root.End()
	netCfg := cfg.Net
	netCfg.Flight = cfg.Flight
	netCfg.SpanParent = root.Context()
	inner, err := simnet.New(netCfg)
	if err != nil {
		return nil, fmt.Errorf("agent: network: %w", err)
	}
	interceptor := &slotBuffer{}
	met := newMsgMeter(cfg.Metrics, cfg.Events)
	sender := met.meter(interceptor)

	buyers := make([]*buyerAgent, m.N())
	for j := range buyers {
		buyers[j] = newBuyerAgent(j, m, cfg, sched, sender)
	}
	sellers := make([]*sellerAgent, m.M())
	for i := range sellers {
		sellers[i] = newSellerAgent(i, m, cfg, sched, sender)
	}

	res := &Result{}
	var (
		statsMu           sync.Mutex
		firstErr          error
		buyerTransitions  []float64
		sellerTransitions []float64
	)

	for slot := 1; slot <= cfg.MaxSlots; slot++ {
		inbox := groupByRecipient(inner.Step())
		now := inner.Now()

		var wg sync.WaitGroup
		for j := range buyers {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				b := buyers[j]
				for _, msg := range inbox[simnet.Buyer(j)] {
					met.onDeliver(msg)
					h := cfg.Flight.Start(root.Context(), "agent.handle")
					b.handle(msg)
					if h.Active() {
						h.Annotate("slot=" + strconv.Itoa(now) + " to=" + msg.To.String() + " type=" + PayloadName(msg.Payload))
					}
					h.End()
				}
				wasStageI := b.stage == 1
				b.tick(now)
				if wasStageI && b.stage == 2 {
					statsMu.Lock()
					buyerTransitions = append(buyerTransitions, float64(now))
					if now > res.LastBuyerTransition {
						res.LastBuyerTransition = now
					}
					if now < sched.stageII {
						res.EarlyBuyerTransitions++
					}
					statsMu.Unlock()
					met.onTransition(simnet.KindBuyer, j, now)
				}
			}(j)
		}
		for i := range sellers {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s := sellers[i]
				for _, msg := range inbox[simnet.Seller(i)] {
					met.onDeliver(msg)
					h := cfg.Flight.Start(root.Context(), "agent.handle")
					s.handle(msg)
					if h.Active() {
						h.Annotate("slot=" + strconv.Itoa(now) + " to=" + msg.To.String() + " type=" + PayloadName(msg.Payload))
					}
					h.End()
				}
				wasStageI := s.stage == 1
				if err := s.tick(now); err != nil {
					statsMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					statsMu.Unlock()
					return
				}
				if wasStageI && s.stage == 2 {
					statsMu.Lock()
					sellerTransitions = append(sellerTransitions, float64(now))
					if now > res.LastSellerTransition {
						res.LastSellerTransition = now
					}
					if now < sched.stageII {
						res.EarlySellerTransitions++
					}
					statsMu.Unlock()
					met.onTransition(simnet.KindSeller, i, now)
				}
			}(i)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		interceptor.flushTo(inner)

		if inner.InFlight() == 0 && allQuiescent(buyers, sellers) {
			res.Slots = inner.Now()
			res.Terminated = true
			break
		}
	}
	if !res.Terminated {
		res.Slots = inner.Now()
	}

	res.MeanBuyerTransition = stats.Mean(buyerTransitions)
	res.MeanSellerTransition = stats.Mean(sellerTransitions)
	res.Matching, res.DisagreedPairs = assemble(m, buyers, sellers)
	res.Welfare = matching.Welfare(m, res.Matching)
	res.Net = inner.Stats()
	met.onDone(res.Slots, res.Terminated)
	if root.Active() {
		root.Annotate(fmt.Sprintf("runtime=concurrent slots=%d terminated=%t matched=%d welfare=%.6g",
			res.Slots, res.Terminated, res.Matching.MatchedCount(), res.Welfare))
	}
	return res, nil
}

func allQuiescent(buyers []*buyerAgent, sellers []*sellerAgent) bool {
	for _, s := range sellers {
		if !s.quiescent() {
			return false
		}
	}
	for _, b := range buyers {
		if !b.idle() {
			return false
		}
	}
	return true
}

// groupByRecipient indexes a slot's deliveries by destination, preserving
// simnet's deterministic per-recipient order.
func groupByRecipient(msgs []simnet.Message) map[simnet.NodeID][]simnet.Message {
	inbox := make(map[simnet.NodeID][]simnet.Message)
	for _, msg := range msgs {
		inbox[msg.To] = append(inbox[msg.To], msg)
	}
	return inbox
}

// slotBuffer intercepts agent sends during a concurrent slot and forwards
// them at the barrier in deterministic (sender kind, sender index, FIFO)
// order. Each agent is single-goroutine within the slot, so per-sender FIFO
// reflects the agent's own send order.
type slotBuffer struct {
	mu       sync.Mutex
	bySender map[simnet.NodeID][]simnet.Message
}

// Send implements netSender.
func (sb *slotBuffer) Send(msg simnet.Message) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.bySender == nil {
		sb.bySender = make(map[simnet.NodeID][]simnet.Message)
	}
	sb.bySender[msg.From] = append(sb.bySender[msg.From], msg)
}

// flushTo forwards buffered messages to the real network in the same global
// order the sequential runner would have produced: buyers by index, then
// sellers by index, FIFO within each sender.
func (sb *slotBuffer) flushTo(net *simnet.Network) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	senders := make([]simnet.NodeID, 0, len(sb.bySender))
	for id := range sb.bySender {
		senders = append(senders, id)
	}
	sort.Slice(senders, func(a, b int) bool {
		if senders[a].Kind != senders[b].Kind {
			return senders[a].Kind < senders[b].Kind
		}
		return senders[a].Index < senders[b].Index
	})
	for _, id := range senders {
		for _, msg := range sb.bySender[id] {
			net.Send(msg)
		}
	}
	sb.bySender = nil
}
