// Package agent implements the asynchronous realization of the two-stage
// matching protocol (§IV of the paper). Buyers and sellers run as
// independent state machines exchanging messages over a slot-synchronous
// simulated network (internal/simnet); nobody observes global state, so each
// agent decides locally when to move from Stage I (deferred acceptance) to
// Stage II (transfer, then invitation) using the paper's transition rules:
//
//   - Default rule: fixed slot schedule derived from the O(MN), O(M), O(N)
//     bounds of Props. 1–2.
//   - Buyer rule I: transit once every interfering neighbor has proposed to
//     the buyer's current seller (observed through seller digests).
//   - Buyer rule II: transit once the estimated eviction probability P^k
//     (eqs. (7)–(8), package transition) falls below a threshold.
//   - Buyer rule III: transit upon a SellerTransition notification (always
//     active, as in the paper).
//   - Seller rule: on receiving transfer applications while still in Stage
//     I, transit once the better-proposal probability Q^k (eq. (9)) falls
//     below a threshold, then notify matched buyers.
//
// One synchronous round of the paper costs two network slots here (proposal
// up, decision down), so the default schedule doubles the paper's slot
// counts. The protocol also carries timeout-driven retransmissions so it
// keeps terminating under message loss, which the paper's idealized channel
// never exercises.
package agent

import (
	"fmt"

	"specmatch/internal/mwis"
	"specmatch/internal/obs"
	"specmatch/internal/simnet"
	"specmatch/internal/trace"
	"specmatch/internal/transition"
)

// BuyerRule selects the buyers' Stage I → Stage II transition rule.
type BuyerRule int

// Buyer transition rules (§IV-A). Rule III (seller notification) is always
// active in addition to the selected rule, as in the paper.
const (
	BuyerDefault BuyerRule = iota + 1 // wait the default schedule
	BuyerRuleI                        // all interfering neighbors proposed to my seller
	BuyerRuleII                       // eviction probability below threshold
)

var _buyerRuleNames = map[BuyerRule]string{
	BuyerDefault: "default",
	BuyerRuleI:   "rule-i",
	BuyerRuleII:  "rule-ii",
}

// String implements fmt.Stringer.
func (r BuyerRule) String() string {
	if s, ok := _buyerRuleNames[r]; ok {
		return s
	}
	return fmt.Sprintf("agent.BuyerRule(%d)", int(r))
}

// ParseBuyerRule converts a CLI-style name into a BuyerRule.
func ParseBuyerRule(s string) (BuyerRule, error) {
	for r, name := range _buyerRuleNames {
		if name == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("agent: unknown buyer rule %q (want default, rule-i or rule-ii)", s)
}

// SellerRule selects the sellers' transition rule.
type SellerRule int

// Seller transition rules (§IV-B).
const (
	SellerDefault       SellerRule = iota + 1 // wait the default schedule
	SellerProbabilistic                       // Q^k below threshold
)

var _sellerRuleNames = map[SellerRule]string{
	SellerDefault:       "default",
	SellerProbabilistic: "probabilistic",
}

// String implements fmt.Stringer.
func (r SellerRule) String() string {
	if s, ok := _sellerRuleNames[r]; ok {
		return s
	}
	return fmt.Sprintf("agent.SellerRule(%d)", int(r))
}

// ParseSellerRule converts a CLI-style name into a SellerRule.
func ParseSellerRule(s string) (SellerRule, error) {
	for r, name := range _sellerRuleNames {
		if name == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("agent: unknown seller rule %q (want default or probabilistic)", s)
}

// Config tunes an asynchronous protocol run.
type Config struct {
	// Net configures the underlying network (faults, seed).
	Net simnet.Config

	// BuyerRule and SellerRule select transition rules; zero values mean
	// the default schedule.
	BuyerRule  BuyerRule
	SellerRule SellerRule

	// BuyerThreshold is the P^k threshold for BuyerRuleII; zero means 0.05.
	BuyerThreshold float64
	// SellerThreshold is the Q^k threshold for SellerProbabilistic; zero
	// means 0.05.
	SellerThreshold float64

	// PriceCDF is the assumed price distribution F for the probabilistic
	// rules; nil means transition.Uniform01 (the paper's setting).
	PriceCDF transition.CDF

	// LearnCDF drops the common-prior assumption: each buyer estimates F
	// from the empirical distribution of her own utility vector (a
	// legitimate i.i.d. sample of F in the paper's model) instead of using
	// PriceCDF. Sellers keep PriceCDF — their rule already conditions on
	// observed interference structure via θ.
	LearnCDF bool

	// MWIS selects the sellers' coalition solver; zero means mwis.GWMIN.
	MWIS mwis.Algorithm

	// RetryAfter is the per-request retransmission timeout in slots; zero
	// derives it from the network's delay bound. Retries keep the protocol
	// live under message loss.
	RetryAfter int
	// MaxRetries bounds retransmissions per request; zero means 3.
	MaxRetries int

	// MaxSlots aborts a run that fails to terminate; zero derives a bound
	// from the default schedule with slack.
	MaxSlots int

	// Recorder, when non-nil, receives protocol events.
	Recorder *trace.Recorder

	// Metrics, when non-nil, receives agent-layer instrumentation: per-type
	// sent/delivered message counts (agent.sent.<type> and
	// agent.delivered.<type>, one pair per protocol message), Stage II
	// transition counts, and the agent.slots convergence gauge. Counters are
	// cumulative across runs sharing the registry. Metric names are
	// catalogued in PROTOCOL.md. Nil disables instrumentation at near-zero
	// cost and never changes protocol behavior.
	Metrics *obs.Registry

	// Events, when non-nil, receives structured protocol events — one
	// "agent.transition" per Stage II entry and one "agent.done" per run.
	// Nil disables event recording entirely.
	Events *obs.Sink

	// Flight, when non-nil, receives causal spans: agent.run as the run's
	// root, one agent.handle per delivered protocol message, and simnet.slot
	// per network slot (propagated into Net). Nil disables tracing.
	Flight *trace.Flight

	// SpanParent parents the run's root span; zero starts a fresh trace.
	SpanParent trace.SpanContext
}

func (c Config) withDefaults(numSellers, numBuyers int) Config {
	if c.BuyerRule == 0 {
		c.BuyerRule = BuyerDefault
	}
	if c.SellerRule == 0 {
		c.SellerRule = SellerDefault
	}
	if c.BuyerThreshold == 0 {
		c.BuyerThreshold = 0.05
	}
	if c.SellerThreshold == 0 {
		c.SellerThreshold = 0.05
	}
	if c.PriceCDF == nil {
		c.PriceCDF = transition.Uniform01{}
	}
	if c.MWIS == 0 {
		c.MWIS = mwis.GWMIN
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 2*c.Net.DelayMax + 4
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxSlots == 0 {
		sched := defaultSchedule(numSellers, numBuyers)
		c.MaxSlots = sched.end + 40*(c.Net.DelayMax+1) + 200
	}
	return c
}

// schedule holds the slot-based default transition schedule: the paper's
// MN / M / N waits, doubled because one algorithm round spans two slots
// (request up, decision down).
type schedule struct {
	stageII int // first slot of Stage II Phase 1
	phase2  int // first slot of Stage II Phase 2
	end     int // default termination slot
}

func defaultSchedule(numSellers, numBuyers int) schedule {
	d := transition.DefaultRule{M: numSellers, N: numBuyers}
	return schedule{
		stageII: 2 * d.StageIISlot(),
		phase2:  2 * d.Phase2Slot(),
		end:     2 * d.EndSlot(),
	}
}
