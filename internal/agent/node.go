package agent

import (
	"specmatch/internal/market"
	"specmatch/internal/simnet"
	"specmatch/internal/trace"
)

// BuyerNode and SellerNode wrap the agent state machines for external
// transports (package wire runs them over real TCP connections): the caller
// delivers inbound messages, ticks the node once per slot, and ships the
// returned outbound messages however it likes. The state machines are
// exactly the ones the simulated runners use, so protocol behavior is
// transport-independent by construction.

// sendBuffer captures an agent's sends for the caller to transport.
type sendBuffer struct {
	msgs []simnet.Message
}

// Send implements netSender.
func (sb *sendBuffer) Send(msg simnet.Message) { sb.msgs = append(sb.msgs, msg) }

func (sb *sendBuffer) drain() []simnet.Message {
	out := sb.msgs
	sb.msgs = nil
	return out
}

// BuyerNode is a transport-agnostic buyer protocol endpoint.
type BuyerNode struct {
	b          *buyerAgent
	buf        *sendBuffer
	met        *msgMeter
	fl         *trace.Flight
	spanParent trace.SpanContext
}

// NewBuyerNode creates the endpoint for buyer id. The config's network
// settings are ignored — the caller owns the transport — but Metrics and
// Events are honored, so deployed nodes report the same agent.* metrics as
// the simulated runners.
func NewBuyerNode(id int, m *market.Market, cfg Config) *BuyerNode {
	cfg = cfg.withDefaults(m.M(), m.N())
	buf := &sendBuffer{}
	met := newMsgMeter(cfg.Metrics, cfg.Events)
	return &BuyerNode{
		b:   newBuyerAgent(id, m, cfg, defaultSchedule(m.M(), m.N()), met.meter(buf)),
		buf: buf,
		met: met,
		fl:  cfg.Flight,
	}
}

// SetSpanParent sets the default parent for spans recorded by Deliver — the
// transport's current tick or frame span.
func (n *BuyerNode) SetSpanParent(sc trace.SpanContext) { n.spanParent = sc }

// Deliver feeds one inbound message to the state machine.
func (n *BuyerNode) Deliver(msg simnet.Message) {
	n.DeliverTraced(msg, n.spanParent)
}

// DeliverTraced is Deliver under an explicit trace parent, recording one
// agent.handle span per message when the node carries a Flight.
func (n *BuyerNode) DeliverTraced(msg simnet.Message, parent trace.SpanContext) {
	h := n.fl.Start(parent, "agent.handle")
	n.met.onDeliver(msg)
	n.b.handle(msg)
	if h.Active() {
		h.Annotate("to=" + msg.To.String() + " type=" + PayloadName(msg.Payload))
	}
	h.End()
}

// Tick advances the node to the given slot and returns its outbound
// messages.
func (n *BuyerNode) Tick(now int) []simnet.Message {
	wasStageI := n.b.stage == 1
	n.b.tick(now)
	if wasStageI && n.b.stage == 2 {
		n.met.onTransition(simnet.KindBuyer, n.b.id, now)
	}
	return n.buf.drain()
}

// Idle reports whether the node has no pending work.
func (n *BuyerNode) Idle() bool { return n.b.idle() }

// MatchedTo returns the seller the buyer believes she holds, or
// market.Unmatched.
func (n *BuyerNode) MatchedTo() int { return n.b.matchedTo }

// SellerNode is a transport-agnostic seller protocol endpoint.
type SellerNode struct {
	s          *sellerAgent
	buf        *sendBuffer
	met        *msgMeter
	fl         *trace.Flight
	spanParent trace.SpanContext
}

// NewSellerNode creates the endpoint for seller id.
func NewSellerNode(id int, m *market.Market, cfg Config) *SellerNode {
	cfg = cfg.withDefaults(m.M(), m.N())
	buf := &sendBuffer{}
	met := newMsgMeter(cfg.Metrics, cfg.Events)
	return &SellerNode{
		s:   newSellerAgent(id, m, cfg, defaultSchedule(m.M(), m.N()), met.meter(buf)),
		buf: buf,
		met: met,
		fl:  cfg.Flight,
	}
}

// SetSpanParent sets the default parent for spans recorded by Deliver.
func (n *SellerNode) SetSpanParent(sc trace.SpanContext) { n.spanParent = sc }

// Deliver feeds one inbound message to the state machine.
func (n *SellerNode) Deliver(msg simnet.Message) {
	n.DeliverTraced(msg, n.spanParent)
}

// DeliverTraced is Deliver under an explicit trace parent, recording one
// agent.handle span per message when the node carries a Flight.
func (n *SellerNode) DeliverTraced(msg simnet.Message, parent trace.SpanContext) {
	h := n.fl.Start(parent, "agent.handle")
	n.met.onDeliver(msg)
	n.s.handle(msg)
	if h.Active() {
		h.Annotate("to=" + msg.To.String() + " type=" + PayloadName(msg.Payload))
	}
	h.End()
}

// Tick advances the node to the given slot and returns its outbound
// messages.
func (n *SellerNode) Tick(now int) ([]simnet.Message, error) {
	wasStageI := n.s.stage == 1
	if err := n.s.tick(now); err != nil {
		return nil, err
	}
	if wasStageI && n.s.stage == 2 {
		n.met.onTransition(simnet.KindSeller, n.s.id, now)
	}
	return n.buf.drain(), nil
}

// Quiescent reports whether the seller has finished her invitation list.
func (n *SellerNode) Quiescent() bool { return n.s.quiescent() }

// Coalition returns the seller's current matched buyers, sorted.
func (n *SellerNode) Coalition() []int { return n.s.coalitionMembers() }
