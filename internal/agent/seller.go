package agent

import (
	"fmt"
	"sort"

	"specmatch/internal/market"
	"specmatch/internal/mwis"
	"specmatch/internal/simnet"
	"specmatch/internal/trace"
	"specmatch/internal/transition"
)

// sellerAgent is the seller state machine for one channel. It knows its own
// channel's interference graph and learns offered prices from the messages
// it receives.
type sellerAgent struct {
	id    int
	m     *market.Market
	cfg   Config
	sched schedule
	net   netSender

	stage int // 1 or 2
	phase int // within stage 2: 1 (transfer) or 2 (invitation)

	coalition map[int]bool // currently matched buyers (the waiting list)

	cumProposers map[int]bool // every buyer that ever proposed here
	newProposals []int        // proposals delivered this slot
	gotProposal  bool         // a proposal arrived this slot (seller rule input)

	pendingTransfers []int // applications awaiting processing, arrival order
	inTransfers      map[int]bool

	inviteList []int // rejected transfer applicants, arrival order
	inInvites  map[int]bool
	invited    map[int]bool // buyers already invited (at most once each)

	awaitingInvite *request
	stage2Start    int
	done           bool

	prices []float64 // this channel's price row, for MWIS weights
}

func newSellerAgent(id int, m *market.Market, cfg Config, sched schedule, net netSender) *sellerAgent {
	prices := make([]float64, m.N())
	for j := range prices {
		prices[j] = m.Price(id, j)
	}
	return &sellerAgent{
		id:           id,
		m:            m,
		cfg:          cfg,
		sched:        sched,
		net:          net,
		stage:        1,
		phase:        1,
		coalition:    make(map[int]bool),
		cumProposers: make(map[int]bool),
		inTransfers:  make(map[int]bool),
		inInvites:    make(map[int]bool),
		invited:      make(map[int]bool),
		prices:       prices,
	}
}

func (s *sellerAgent) send(to int, payload any) {
	s.net.Send(simnet.Message{From: simnet.Seller(s.id), To: simnet.Buyer(to), Payload: payload})
}

func (s *sellerAgent) coalitionMembers() []int {
	out := make([]int, 0, len(s.coalition))
	for j := range s.coalition {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

func (s *sellerAgent) proposerList() []int {
	out := make([]int, 0, len(s.cumProposers))
	for j := range s.cumProposers {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// handle processes one delivered message.
func (s *sellerAgent) handle(msg simnet.Message) {
	buyer := msg.From.Index
	switch msg.Payload.(type) {
	case Propose:
		s.cumProposers[buyer] = true
		if s.stage != 1 {
			// Stage II sellers no longer grant proposals (§IV-B); answer so
			// the buyer unblocks. An already-matched buyer retrying keeps
			// her seat.
			s.send(buyer, ProposalDecision{Accepted: s.coalition[buyer], Proposers: s.proposerList()})
			return
		}
		s.gotProposal = true
		if !s.inNewProposals(buyer) {
			s.newProposals = append(s.newProposals, buyer)
		}
	case TransferApply:
		if s.coalition[buyer] {
			// Idempotent retry of an already granted transfer.
			s.send(buyer, TransferDecision{Accepted: true})
			return
		}
		if s.stage == 2 && s.phase == 2 {
			// Too late to transfer; the buyer joins the invitation pool
			// (screened when her turn comes).
			s.send(buyer, TransferDecision{Accepted: false})
			s.addInvite(buyer)
			return
		}
		if !s.inTransfers[buyer] {
			s.inTransfers[buyer] = true
			s.pendingTransfers = append(s.pendingTransfers, buyer)
		}
	case Leave:
		delete(s.coalition, buyer)
	case InviteResponse:
		resp, ok := msg.Payload.(InviteResponse)
		if !ok {
			return
		}
		if s.awaitingInvite == nil || s.awaitingInvite.peer != buyer {
			return
		}
		s.awaitingInvite = nil
		if resp.Accepted {
			s.coalition[buyer] = true
			s.pruneInvitesAround(buyer)
		}
	}
}

func (s *sellerAgent) inNewProposals(buyer int) bool {
	for _, j := range s.newProposals {
		if j == buyer {
			return true
		}
	}
	return false
}

func (s *sellerAgent) addInvite(buyer int) {
	if s.inInvites[buyer] || s.invited[buyer] {
		return
	}
	s.inInvites[buyer] = true
	s.inviteList = append(s.inviteList, buyer)
	s.done = false // a late arrival reopens the invitation loop
}

// pruneInvitesAround drops the new member's interfering neighbors from the
// invitation list (Algorithm 2 line 29).
func (s *sellerAgent) pruneInvitesAround(member int) {
	kept := s.inviteList[:0]
	for _, j := range s.inviteList {
		if s.m.Interferes(s.id, member, j) {
			delete(s.inInvites, j)
			continue
		}
		kept = append(kept, j)
	}
	s.inviteList = kept
}

// tick runs the seller's per-slot action phase.
func (s *sellerAgent) tick(now int) error {
	switch s.stage {
	case 1:
		if err := s.decideProposals(now); err != nil {
			return err
		}
		if s.shouldTransition(now) {
			s.enterStageII(now)
		}
	case 2:
		if s.phase == 1 {
			if err := s.decideTransfers(now); err != nil {
				return err
			}
			if now >= s.stage2Start+(s.sched.phase2-s.sched.stageII) {
				s.enterPhase2(now)
			}
		}
		if s.phase == 2 {
			s.runInvitations(now)
		}
	}
	s.gotProposal = false
	return nil
}

// decideProposals re-forms the waiting list against this slot's proposers
// (Algorithm 1 lines 11–14) and notifies everyone affected.
func (s *sellerAgent) decideProposals(now int) error {
	if len(s.newProposals) == 0 {
		return nil
	}
	candidates := append(s.coalitionMembers(), s.newProposals...)
	selected, err := mwis.Solve(s.cfg.MWIS, s.m.Graph(s.id), s.prices, candidates)
	if err != nil {
		return fmt.Errorf("agent: seller %d coalition: %w", s.id, err)
	}
	keep := make(map[int]bool, len(selected))
	for _, j := range selected {
		keep[j] = true
	}
	proposers := s.proposerList()
	for _, j := range s.coalitionMembers() {
		if !keep[j] {
			delete(s.coalition, j)
			s.send(j, Evict{})
			s.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindEvict, Buyer: j, Seller: s.id})
		}
	}
	for _, j := range s.newProposals {
		accepted := keep[j]
		s.send(j, ProposalDecision{Accepted: accepted, Proposers: proposers})
		if accepted {
			s.coalition[j] = true
			s.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindAccept, Buyer: j, Seller: s.id})
		} else {
			s.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindReject, Buyer: j, Seller: s.id})
		}
	}
	// Keep surviving incumbents informed of who has proposed so far, for
	// buyer rules I/II.
	for _, j := range s.coalitionMembers() {
		if !s.inNewProposals(j) {
			s.send(j, Digest{Proposers: proposers})
		}
	}
	s.newProposals = s.newProposals[:0]
	return nil
}

// shouldTransition evaluates the seller's Stage I → Stage II rule (§IV-B).
func (s *sellerAgent) shouldTransition(now int) bool {
	if now >= s.sched.stageII {
		return true // default schedule, also the liveness fallback
	}
	if s.cfg.SellerRule != SellerProbabilistic {
		return false
	}
	// "A seller has to make the stage transition decision if she receives no
	// proposal but some transfer applications in the current time slot."
	if s.gotProposal || len(s.pendingTransfers) == 0 {
		return false
	}
	lowest, ok := s.lowestMatchedPrice()
	if !ok {
		// Empty coalition: any transfer application is pure gain.
		return true
	}
	candidates := s.unproposedBuyers()
	theta := transition.EstimateTheta(candidates, s.coalitionMembers(), s.lowestMatchedBuyer(), func(a, b int) bool {
		return s.m.Interferes(s.id, a, b)
	})
	chance := transition.BetterProposalChance(
		now/2+1, s.m.M(), s.m.M()*s.m.N(),
		len(candidates), lowest, theta, s.cfg.PriceCDF)
	return chance < s.cfg.SellerThreshold
}

func (s *sellerAgent) lowestMatchedPrice() (float64, bool) {
	found := false
	lowest := 0.0
	for j := range s.coalition {
		if !found || s.prices[j] < lowest {
			lowest = s.prices[j]
			found = true
		}
	}
	return lowest, found
}

func (s *sellerAgent) lowestMatchedBuyer() int {
	best, bestPrice := -1, 0.0
	for _, j := range s.coalitionMembers() {
		if best == -1 || s.prices[j] < bestPrice {
			best, bestPrice = j, s.prices[j]
		}
	}
	return best
}

func (s *sellerAgent) unproposedBuyers() []int {
	out := make([]int, 0, s.m.N())
	for j := 0; j < s.m.N(); j++ {
		if !s.cumProposers[j] {
			out = append(out, j)
		}
	}
	return out
}

func (s *sellerAgent) enterStageII(now int) {
	s.stage = 2
	s.phase = 1
	s.stage2Start = now
	s.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindTransition, Buyer: -1, Seller: s.id, Note: "seller → stage II"})
	// Rule III: matched buyers may safely transition too.
	for _, j := range s.coalitionMembers() {
		s.send(j, SellerTransition{})
	}
	// Outstanding proposals can no longer be granted.
	for _, j := range s.newProposals {
		s.send(j, ProposalDecision{Accepted: s.coalition[j], Proposers: s.proposerList()})
	}
	s.newProposals = s.newProposals[:0]
}

// decideTransfers admits the best independent, coalition-compatible subset
// of pending applications (Algorithm 2 lines 12–16) without evicting anyone.
func (s *sellerAgent) decideTransfers(now int) error {
	if len(s.pendingTransfers) == 0 {
		return nil
	}
	members := s.coalitionMembers()
	compatible := make([]int, 0, len(s.pendingTransfers))
	for _, j := range s.pendingTransfers {
		if !s.m.Graph(s.id).ConflictsWith(j, members) {
			compatible = append(compatible, j)
		}
	}
	selected, err := mwis.Solve(s.cfg.MWIS, s.m.Graph(s.id), s.prices, compatible)
	if err != nil {
		return fmt.Errorf("agent: seller %d transfer coalition: %w", s.id, err)
	}
	granted := make(map[int]bool, len(selected))
	for _, j := range selected {
		granted[j] = true
	}
	for _, j := range s.pendingTransfers {
		delete(s.inTransfers, j)
		if granted[j] {
			s.coalition[j] = true
			s.send(j, TransferDecision{Accepted: true})
			s.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindTransferAccept, Buyer: j, Seller: s.id})
		} else {
			s.send(j, TransferDecision{Accepted: false})
			s.addInvite(j)
			s.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindTransferReject, Buyer: j, Seller: s.id})
		}
	}
	s.pendingTransfers = s.pendingTransfers[:0]
	return nil
}

func (s *sellerAgent) enterPhase2(now int) {
	s.phase = 2
	s.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindTransition, Buyer: -1, Seller: s.id, Note: "seller → phase 2"})
	// Screening (Algorithm 2 lines 19–21): keep compatible non-members,
	// ordered by descending price (ties toward the smaller buyer).
	members := s.coalitionMembers()
	kept := s.inviteList[:0]
	for _, j := range s.inviteList {
		if s.coalition[j] || s.m.Graph(s.id).ConflictsWith(j, members) {
			delete(s.inInvites, j)
			continue
		}
		kept = append(kept, j)
	}
	s.inviteList = kept
	sort.SliceStable(s.inviteList, func(a, b int) bool {
		pa, pb := s.prices[s.inviteList[a]], s.prices[s.inviteList[b]]
		if pa != pb {
			return pa > pb
		}
		return s.inviteList[a] < s.inviteList[b]
	})
}

// runInvitations sends at most one invitation at a time, retrying on
// timeout, and marks the seller done when the list drains (§IV-C: "each
// seller will put an end to the matching process when she has no invitation
// to make").
func (s *sellerAgent) runInvitations(now int) {
	if s.awaitingInvite != nil {
		if now-s.awaitingInvite.sentAt <= s.cfg.RetryAfter {
			return
		}
		if s.awaitingInvite.retries < s.cfg.MaxRetries {
			s.awaitingInvite.retries++
			s.awaitingInvite.sentAt = now
			s.send(s.awaitingInvite.peer, Invite{})
			return
		}
		s.awaitingInvite = nil // give up on an unresponsive buyer
	}
	members := s.coalitionMembers()
	for len(s.inviteList) > 0 {
		j := s.inviteList[0]
		s.inviteList = s.inviteList[1:]
		delete(s.inInvites, j)
		if s.invited[j] || s.coalition[j] || s.m.Graph(s.id).ConflictsWith(j, members) {
			continue
		}
		s.invited[j] = true
		s.awaitingInvite = &request{peer: j, sentAt: now}
		s.send(j, Invite{})
		s.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindInvite, Buyer: j, Seller: s.id})
		return
	}
	s.done = true
}

// quiescent reports whether the seller has finished: Stage II Phase 2 with
// nothing left to invite.
func (s *sellerAgent) quiescent() bool {
	return s.done && s.awaitingInvite == nil && len(s.pendingTransfers) == 0
}
