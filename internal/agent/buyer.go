package agent

import (
	"sort"

	"specmatch/internal/market"
	"specmatch/internal/simnet"
	"specmatch/internal/trace"
	"specmatch/internal/transition"
)

// request tracks one in-flight buyer request awaiting a seller's decision.
type request struct {
	peer    int
	sentAt  int
	retries int
	// transfer distinguishes a Stage II application from a Stage I proposal.
	transfer bool
}

// buyerAgent is the buyer state machine. It only reads its own utility
// vector, its own interference neighborhoods, and the messages it receives.
type buyerAgent struct {
	id    int
	m     *market.Market
	cfg   Config
	sched schedule
	net   netSender

	stage     int // 1 or 2
	matchedTo int // believed seller, or market.Unmatched

	proposed map[int]bool // Stage I: sellers proposed to
	applied  map[int]bool // Stage II: sellers applied to

	// neighbors[i] is this buyer's interference neighborhood on channel i
	// (local knowledge, e.g. carrier sensing).
	neighbors [][]int

	// proposersAt[i] accumulates buyers known (via digests and decisions) to
	// have proposed to seller i; feeds transition rules I and II.
	proposersAt map[int]map[int]bool

	awaiting       *request
	pendingInvites []int // sellers that invited this slot
	sellerNotified bool  // rule III trigger received
	transitionSlot int   // slot of Stage II entry, -1 while in Stage I

	// priceCDF is the buyer's working estimate of F: the configured prior,
	// or — under Config.LearnCDF — the empirical CDF of her own utility
	// vector (a legitimate i.i.d. sample of F in the paper's model).
	priceCDF transition.CDF
}

func newBuyerAgent(id int, m *market.Market, cfg Config, sched schedule, net netSender) *buyerAgent {
	neighbors := make([][]int, m.M())
	for i := 0; i < m.M(); i++ {
		neighbors[i] = m.Graph(i).Neighbors(id)
	}
	priceCDF := cfg.PriceCDF
	if cfg.LearnCDF {
		sample := make([]float64, m.M())
		for i := range sample {
			sample[i] = m.Price(i, id)
		}
		if empirical, err := transition.NewEmpirical(sample); err == nil {
			priceCDF = empirical
		}
	}
	return &buyerAgent{
		id:             id,
		m:              m,
		cfg:            cfg,
		sched:          sched,
		net:            net,
		stage:          1,
		matchedTo:      market.Unmatched,
		proposed:       make(map[int]bool),
		applied:        make(map[int]bool),
		neighbors:      neighbors,
		proposersAt:    make(map[int]map[int]bool),
		transitionSlot: -1,
		priceCDF:       priceCDF,
	}
}

func (b *buyerAgent) currentUtility() float64 {
	if b.matchedTo == market.Unmatched {
		return 0
	}
	return b.m.Price(b.matchedTo, b.id)
}

func (b *buyerAgent) noteProposers(seller int, proposers []int) {
	set := b.proposersAt[seller]
	if set == nil {
		set = make(map[int]bool)
		b.proposersAt[seller] = set
	}
	for _, j := range proposers {
		set[j] = true
	}
}

// handle processes one delivered message. Decisions that require comparing
// alternatives are deferred to tick.
func (b *buyerAgent) handle(msg simnet.Message) {
	seller := msg.From.Index
	switch payload := msg.Payload.(type) {
	case ProposalDecision:
		if b.awaiting != nil && !b.awaiting.transfer && b.awaiting.peer == seller {
			b.awaiting = nil
		}
		b.noteProposers(seller, payload.Proposers)
		if payload.Accepted {
			b.matchedTo = seller
		} else if b.matchedTo == seller {
			// An idempotent retry answered "not in waiting list".
			b.matchedTo = market.Unmatched
		}
	case Evict:
		if b.matchedTo == seller {
			b.matchedTo = market.Unmatched
		}
	case Digest:
		b.noteProposers(seller, payload.Proposers)
	case TransferDecision:
		if b.awaiting != nil && b.awaiting.transfer && b.awaiting.peer == seller {
			b.awaiting = nil
		}
		if payload.Accepted && b.matchedTo != seller {
			if b.matchedTo != market.Unmatched {
				b.net.Send(simnet.Message{From: simnet.Buyer(b.id), To: simnet.Seller(b.matchedTo), Payload: Leave{}})
			}
			b.matchedTo = seller
		}
	case Invite:
		b.pendingInvites = append(b.pendingInvites, seller)
	case SellerTransition:
		if b.matchedTo == seller {
			b.sellerNotified = true
		}
	}
}

// tick runs the buyer's per-slot action phase.
func (b *buyerAgent) tick(now int) {
	b.retryIfStale(now)
	b.answerInvites(now)
	if b.stage == 1 && b.shouldTransition(now) {
		b.stage = 2
		b.transitionSlot = now
		b.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindTransition, Buyer: b.id, Seller: -1, Note: "buyer → stage II"})
	}
	if b.awaiting != nil {
		return
	}
	switch b.stage {
	case 1:
		b.propose(now)
	case 2:
		b.applyTransfer(now)
	}
}

// retryIfStale retransmits a timed-out request, or gives up after MaxRetries
// and treats the request as rejected.
func (b *buyerAgent) retryIfStale(now int) {
	if b.awaiting == nil || now-b.awaiting.sentAt <= b.cfg.RetryAfter {
		return
	}
	if b.awaiting.retries >= b.cfg.MaxRetries {
		b.awaiting = nil
		return
	}
	b.awaiting.retries++
	b.awaiting.sentAt = now
	price := b.m.Price(b.awaiting.peer, b.id)
	var payload any = Propose{Price: price}
	if b.awaiting.transfer {
		payload = TransferApply{Price: price}
	}
	b.net.Send(simnet.Message{From: simnet.Buyer(b.id), To: simnet.Seller(b.awaiting.peer), Payload: payload})
}

// answerInvites accepts the best strictly improving invitation received this
// slot and declines the rest (the synchronous engine's semantics).
func (b *buyerAgent) answerInvites(now int) {
	if len(b.pendingInvites) == 0 {
		return
	}
	sort.Ints(b.pendingInvites)
	best := market.Unmatched
	bestPrice := b.currentUtility()
	for _, i := range b.pendingInvites {
		if p := b.m.Price(i, b.id); p > bestPrice {
			best, bestPrice = i, p
		}
	}
	for _, i := range b.pendingInvites {
		accepted := i == best || i == b.matchedTo
		b.net.Send(simnet.Message{From: simnet.Buyer(b.id), To: simnet.Seller(i), Payload: InviteResponse{Accepted: accepted}})
		if accepted && i == best {
			if b.matchedTo != market.Unmatched && b.matchedTo != i {
				b.net.Send(simnet.Message{From: simnet.Buyer(b.id), To: simnet.Seller(b.matchedTo), Payload: Leave{}})
			}
			b.matchedTo = i
			b.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindInviteAccept, Buyer: b.id, Seller: i})
		}
	}
	b.pendingInvites = b.pendingInvites[:0]
}

// exhausted reports whether Stage I has nothing left to propose.
func (b *buyerAgent) exhausted() bool {
	for _, i := range b.m.BuyerPrefOrder(b.id) {
		if !b.proposed[i] {
			return false
		}
	}
	return true
}

// shouldTransition evaluates the buyer's Stage I → Stage II rules (§IV-A).
func (b *buyerAgent) shouldTransition(now int) bool {
	// Rule III: the matched seller froze her coalition.
	if b.sellerNotified {
		return true
	}
	// The default schedule is also the liveness fallback for rules I/II.
	if now >= b.sched.stageII {
		return true
	}
	// An unmatched buyer with nothing left to propose risks nothing by
	// transitioning.
	if b.matchedTo == market.Unmatched {
		return b.awaiting == nil && b.exhausted()
	}
	switch b.cfg.BuyerRule {
	case BuyerRuleI:
		return b.outstandingNeighbors() == 0
	case BuyerRuleII:
		risk := transition.EvictionRisk(
			now/2+1, b.m.M(), b.m.M()*b.m.N(),
			b.outstandingNeighbors(), b.currentUtility(), b.priceCDF)
		return risk < b.cfg.BuyerThreshold
	default:
		return false
	}
}

// outstandingNeighbors counts interfering neighbors on the current channel
// not yet known to have proposed to the current seller — the n of eq. (7).
func (b *buyerAgent) outstandingNeighbors() int {
	if b.matchedTo == market.Unmatched {
		return 0
	}
	known := b.proposersAt[b.matchedTo]
	n := 0
	for _, j := range b.neighbors[b.matchedTo] {
		if !known[j] {
			n++
		}
	}
	return n
}

// propose sends the Stage I proposal to the best unproposed seller.
func (b *buyerAgent) propose(now int) {
	if b.matchedTo != market.Unmatched {
		return
	}
	for _, i := range b.m.BuyerPrefOrder(b.id) {
		if b.proposed[i] {
			continue
		}
		b.proposed[i] = true
		b.awaiting = &request{peer: i, sentAt: now}
		b.net.Send(simnet.Message{From: simnet.Buyer(b.id), To: simnet.Seller(i), Payload: Propose{Price: b.m.Price(i, b.id)}})
		b.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindPropose, Buyer: b.id, Seller: i})
		return
	}
}

// applyTransfer sends the Stage II application to the best strictly better
// seller not yet applied to.
func (b *buyerAgent) applyTransfer(now int) {
	cur := b.currentUtility()
	best, bestPrice := market.Unmatched, cur
	for i := 0; i < b.m.M(); i++ {
		if b.applied[i] || i == b.matchedTo {
			continue
		}
		if p := b.m.Price(i, b.id); p > bestPrice {
			best, bestPrice = i, p
		}
	}
	if best == market.Unmatched {
		return
	}
	b.applied[best] = true
	b.awaiting = &request{peer: best, sentAt: now, transfer: true}
	b.net.Send(simnet.Message{From: simnet.Buyer(b.id), To: simnet.Seller(best), Payload: TransferApply{Price: b.m.Price(best, b.id)}})
	b.cfg.Recorder.Record(trace.Event{Round: now, Kind: trace.KindTransferApply, Buyer: b.id, Seller: best})
}

// idle reports whether the buyer has no pending work: nothing in flight, no
// unanswered invites, and no next action available.
func (b *buyerAgent) idle() bool {
	if b.awaiting != nil || len(b.pendingInvites) > 0 {
		return false
	}
	switch b.stage {
	case 1:
		return b.matchedTo != market.Unmatched || b.exhausted()
	default:
		cur := b.currentUtility()
		for i := 0; i < b.m.M(); i++ {
			if !b.applied[i] && i != b.matchedTo && b.m.Price(i, b.id) > cur {
				return false
			}
		}
		return true
	}
}
