package agent

import (
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/paperexample"
	"specmatch/internal/simnet"
	"specmatch/internal/stability"
)

// TestAsyncEqualsSyncOnToy: under the default schedule on a reliable
// network, the asynchronous protocol reproduces the synchronous engine's
// result on the paper's toy market exactly.
func TestAsyncEqualsSyncOnToy(t *testing.T) {
	m := paperexample.Toy()
	asyncRes, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	syncRes, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !asyncRes.Matching.Equal(syncRes.Matching) {
		t.Errorf("async %v != sync %v", asyncRes.Matching, syncRes.Matching)
	}
	if asyncRes.Welfare != paperexample.ToyFinalWelfare {
		t.Errorf("welfare = %v, want %v", asyncRes.Welfare, paperexample.ToyFinalWelfare)
	}
	if !asyncRes.Terminated {
		t.Error("did not terminate")
	}
	if asyncRes.DisagreedPairs != 0 {
		t.Errorf("reliable network produced %d disagreed pairs", asyncRes.DisagreedPairs)
	}
}

// TestAsyncEqualsSyncAcrossSeeds: the equivalence holds on random geometric
// markets of various shapes.
func TestAsyncEqualsSyncAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		cfg := market.Config{Sellers: 3 + int(seed%4), Buyers: 10 + int(seed%25), Seed: seed}
		m, err := market.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		asyncRes, err := Run(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		syncRes, err := core.Run(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !asyncRes.Matching.Equal(syncRes.Matching) {
			t.Errorf("seed %d: async welfare %v != sync welfare %v", seed, asyncRes.Welfare, syncRes.Welfare)
		}
		if !asyncRes.Terminated {
			t.Errorf("seed %d: did not terminate", seed)
		}
	}
}

// TestRulesAccelerateToy reproduces the paper's §IV motivation: on the toy
// market the default rule takes the full schedule while the local transition
// rules finish in far fewer slots at the same welfare (the paper's "23 time
// slots, but in fact, 7 are enough", in our 2-slots-per-round encoding).
func TestRulesAccelerateToy(t *testing.T) {
	m := paperexample.Toy()
	defaultRes, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{BuyerRule: BuyerRuleI, SellerRule: SellerProbabilistic},
		{BuyerRule: BuyerRuleII, SellerRule: SellerProbabilistic},
	} {
		res, err := Run(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Welfare != defaultRes.Welfare {
			t.Errorf("%v: welfare %v != default %v", cfg.BuyerRule, res.Welfare, defaultRes.Welfare)
		}
		if res.Slots >= defaultRes.Slots/2 {
			t.Errorf("%v: %d slots, want well under default %d", cfg.BuyerRule, res.Slots, defaultRes.Slots)
		}
	}
}

// TestRulesKeepStability: under every transition rule the realized matching
// stays interference-free and individually rational on random markets, and
// welfare stays close to the synchronous baseline.
func TestRulesKeepStability(t *testing.T) {
	rules := []Config{
		{BuyerRule: BuyerRuleI, SellerRule: SellerProbabilistic},
		{BuyerRule: BuyerRuleII, SellerRule: SellerProbabilistic},
		{BuyerRule: BuyerRuleII, BuyerThreshold: 0.3, SellerRule: SellerProbabilistic, SellerThreshold: 0.3},
	}
	for seed := int64(0); seed < 15; seed++ {
		m, err := market.Generate(market.Config{Sellers: 4, Buyers: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		syncRes, err := core.Run(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range rules {
			res, err := Run(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Terminated {
				t.Errorf("seed %d %v: did not terminate", seed, cfg.BuyerRule)
			}
			if v := stability.CheckInterferenceFree(m, res.Matching); len(v) != 0 {
				t.Errorf("seed %d %v: interference %v", seed, cfg.BuyerRule, v)
			}
			if v := stability.CheckIndividualRational(m, res.Matching); len(v) != 0 {
				t.Errorf("seed %d %v: IR violations %v", seed, cfg.BuyerRule, v)
			}
			if res.Welfare < 0.85*syncRes.Welfare {
				t.Errorf("seed %d %v: welfare %.3f below 85%% of sync %.3f", seed, cfg.BuyerRule, res.Welfare, syncRes.Welfare)
			}
		}
	}
}

// TestRuleMeansBeatDefault: under rules I/II most buyers transition before
// the default-schedule slot.
func TestRuleMeansBeatDefault(t *testing.T) {
	m, err := market.Generate(market.Config{Sellers: 5, Buyers: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defaultRes, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, Config{BuyerRule: BuyerRuleII, SellerRule: SellerProbabilistic})
	if err != nil {
		t.Fatal(err)
	}
	if res.EarlyBuyerTransitions < m.N()*3/4 {
		t.Errorf("only %d of %d buyers transitioned early under rule II", res.EarlyBuyerTransitions, m.N())
	}
	if res.MeanBuyerTransition >= defaultRes.MeanBuyerTransition {
		t.Errorf("mean buyer transition %.1f not below default %.1f", res.MeanBuyerTransition, defaultRes.MeanBuyerTransition)
	}
}

// TestFaultTolerance: with message loss the protocol still terminates,
// produces an interference-free matching, and reports its drops. Welfare may
// degrade but must stay positive on a healthy market.
func TestFaultTolerance(t *testing.T) {
	for _, dropProb := range []float64{0.01, 0.05, 0.2} {
		for seed := int64(0); seed < 8; seed++ {
			m, err := market.Generate(market.Config{Sellers: 4, Buyers: 20, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(m, Config{Net: simnet.Config{DropProb: dropProb, Seed: seed}})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Terminated {
				t.Errorf("drop %v seed %d: did not terminate", dropProb, seed)
			}
			if v := stability.CheckInterferenceFree(m, res.Matching); len(v) != 0 {
				t.Errorf("drop %v seed %d: interference %v", dropProb, seed, v)
			}
			if dropProb >= 0.1 && res.Net.Dropped == 0 {
				t.Errorf("drop %v seed %d: no drops recorded", dropProb, seed)
			}
			if res.Welfare <= 0 {
				t.Errorf("drop %v seed %d: welfare %v", dropProb, seed, res.Welfare)
			}
		}
	}
}

// TestDelayTolerance: bounded extra delays shake the lockstep but the
// protocol still terminates with a valid matching.
func TestDelayTolerance(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m, err := market.Generate(market.Config{Sellers: 4, Buyers: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(m, Config{Net: simnet.Config{DelayMax: 3, Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Terminated {
			t.Errorf("seed %d: did not terminate under delays", seed)
		}
		if v := stability.CheckInterferenceFree(m, res.Matching); len(v) != 0 {
			t.Errorf("seed %d: interference %v", seed, v)
		}
		if res.Matching.Validate() != nil {
			t.Errorf("seed %d: inconsistent matching", seed)
		}
	}
}

// TestDeterministicRuns: same market, same config, same result.
func TestDeterministicRuns(t *testing.T) {
	m, err := market.Generate(market.Config{Sellers: 4, Buyers: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{BuyerRule: BuyerRuleII, SellerRule: SellerProbabilistic, Net: simnet.Config{DropProb: 0.05, Seed: 11}}
	a, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Matching.Equal(b.Matching) || a.Slots != b.Slots || a.Net != b.Net {
		t.Error("asynchronous run is not deterministic")
	}
}

// TestParseRules round-trips the rule name parsers.
func TestParseRules(t *testing.T) {
	for _, name := range []string{"default", "rule-i", "rule-ii"} {
		r, err := ParseBuyerRule(name)
		if err != nil {
			t.Fatalf("ParseBuyerRule(%q): %v", name, err)
		}
		if r.String() != name {
			t.Errorf("round trip %q = %q", name, r.String())
		}
	}
	if _, err := ParseBuyerRule("bogus"); err == nil {
		t.Error("bogus buyer rule should fail")
	}
	for _, name := range []string{"default", "probabilistic"} {
		r, err := ParseSellerRule(name)
		if err != nil {
			t.Fatalf("ParseSellerRule(%q): %v", name, err)
		}
		if r.String() != name {
			t.Errorf("round trip %q = %q", name, r.String())
		}
	}
	if _, err := ParseSellerRule("bogus"); err == nil {
		t.Error("bogus seller rule should fail")
	}
	if BuyerRule(77).String() == "" || SellerRule(77).String() == "" {
		t.Error("unknown rules should still render")
	}
}

// TestInvalidNetworkConfig propagates simnet validation.
func TestInvalidNetworkConfig(t *testing.T) {
	m := paperexample.Toy()
	if _, err := Run(m, Config{Net: simnet.Config{DropProb: -1}}); err == nil {
		t.Error("invalid network config should fail")
	}
}

// TestCounterexampleAsync: the async protocol also reproduces the Fig. 4
// outcome.
func TestCounterexampleAsync(t *testing.T) {
	m := paperexample.Counterexample()
	res, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare != paperexample.CounterexampleWelfare {
		t.Errorf("welfare = %v, want %v", res.Welfare, paperexample.CounterexampleWelfare)
	}
}

// TestMaxSlotsAbort: an absurdly small MaxSlots yields an untermination
// report rather than an error or a hang.
func TestMaxSlotsAbort(t *testing.T) {
	m := paperexample.Toy()
	res, err := Run(m, Config{MaxSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Error("3 slots cannot complete the toy protocol")
	}
	if res.Matching.Validate() != nil {
		t.Error("partial matching must still be consistent")
	}
}

// TestBlackoutLiveness: a mid-protocol outage window drops every message,
// yet retransmission keeps the protocol live and the result valid.
func TestBlackoutLiveness(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 15, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(m, Config{
			Net:        simnet.Config{Blackouts: []simnet.Blackout{{From: 3, To: 9}}, Seed: seed},
			MaxRetries: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Terminated {
			t.Errorf("seed %d: did not terminate through the blackout", seed)
		}
		if res.Net.Dropped == 0 {
			t.Errorf("seed %d: blackout dropped nothing", seed)
		}
		if v := stability.CheckInterferenceFree(m, res.Matching); len(v) != 0 {
			t.Errorf("seed %d: interference %v", seed, v)
		}
		if res.Welfare <= 0 {
			t.Errorf("seed %d: welfare %v", seed, res.Welfare)
		}
	}
}

// TestLearnCDFRule: rule II with a per-buyer empirical CDF (no common
// prior) still terminates, keeps the stability guarantees, and yields
// welfare comparable to the known-prior run.
func TestLearnCDFRule(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m, err := market.Generate(market.Config{Sellers: 4, Buyers: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		known, err := Run(m, Config{BuyerRule: BuyerRuleII, SellerRule: SellerProbabilistic})
		if err != nil {
			t.Fatal(err)
		}
		learned, err := Run(m, Config{BuyerRule: BuyerRuleII, SellerRule: SellerProbabilistic, LearnCDF: true})
		if err != nil {
			t.Fatal(err)
		}
		if !learned.Terminated {
			t.Errorf("seed %d: learned-CDF run did not terminate", seed)
		}
		if v := stability.CheckInterferenceFree(m, learned.Matching); len(v) != 0 {
			t.Errorf("seed %d: interference %v", seed, v)
		}
		if learned.Welfare < 0.85*known.Welfare {
			t.Errorf("seed %d: learned welfare %.3f far below known-prior %.3f", seed, learned.Welfare, known.Welfare)
		}
	}
}
