package agent

import (
	"fmt"
	"testing"

	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/simnet"
	"specmatch/internal/stability"
)

// TestFaultMatrix sweeps the protocol across a fault grid — drop probability
// × extra delay, several seeds each — and checks the properties that must
// survive an unreliable channel:
//
//   - the run terminates and the realized matching is interference-free and
//     individually rational (welfare properties degrade under loss; safety
//     properties must not);
//   - the obs counters reconcile with the network's own Stats, and
//     sent = delivered + dropped + in-flight at termination, so the metrics
//     a deployment would alert on are provably consistent with the ground
//     truth the simulator keeps.
func TestFaultMatrix(t *testing.T) {
	drops := []float64{0, 0.05, 0.15}
	delays := []int{0, 1, 2}
	for _, drop := range drops {
		for _, delay := range delays {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("drop=%.2f/delay=%d/seed=%d", drop, delay, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					m, err := market.Generate(market.Config{Sellers: 3, Buyers: 15, Seed: seed})
					if err != nil {
						t.Fatal(err)
					}
					reg := obs.NewRegistry()
					res, err := Run(m, Config{
						Net: simnet.Config{
							DropProb: drop,
							DelayMax: delay,
							Seed:     seed * 7,
							Metrics:  reg,
						},
						BuyerRule:  BuyerRuleII,
						SellerRule: SellerProbabilistic,
						Metrics:    reg,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Terminated {
						t.Fatalf("run hit MaxSlots without quiescing (slots=%d)", res.Slots)
					}

					// Safety properties hold at every fault level.
					if v := stability.CheckInterferenceFree(m, res.Matching); len(v) != 0 {
						t.Errorf("interference violations: %v", v)
					}
					if v := stability.CheckIndividualRational(m, res.Matching); len(v) != 0 {
						t.Errorf("IR violations: %v", v)
					}

					// The registry's simnet counters mirror the network's own
					// Stats exactly.
					if got := reg.CounterValue("simnet.sent"); got != int64(res.Net.Sent) {
						t.Errorf("simnet.sent = %d, Stats.Sent = %d", got, res.Net.Sent)
					}
					if got := reg.CounterValue("simnet.delivered"); got != int64(res.Net.Delivered) {
						t.Errorf("simnet.delivered = %d, Stats.Delivered = %d", got, res.Net.Delivered)
					}
					if got := reg.CounterValue("simnet.dropped"); got != int64(res.Net.Dropped) {
						t.Errorf("simnet.dropped = %d, Stats.Dropped = %d", got, res.Net.Dropped)
					}

					// Conservation: every sent message is delivered, dropped,
					// or still queued (the in_flight gauge) at termination.
					inFlight := reg.GaugeValue("simnet.in_flight")
					if inFlight < 0 {
						t.Errorf("in_flight gauge went negative: %d", inFlight)
					}
					sent := reg.CounterValue("simnet.sent")
					accounted := reg.CounterValue("simnet.delivered") + reg.CounterValue("simnet.dropped") + inFlight
					if sent != accounted {
						t.Errorf("conservation: sent %d != delivered+dropped+in_flight %d", sent, accounted)
					}

					// The agent layer's view agrees with the network's: what
					// agents handed to the transport is what the network says
					// was sent, and per-type deliveries sum to Delivered.
					var agentSent, agentDelivered int64
					for _, name := range PayloadNames() {
						agentSent += reg.CounterValue("agent.sent." + name)
						agentDelivered += reg.CounterValue("agent.delivered." + name)
					}
					if agentSent != sent {
						t.Errorf("agent.sent.* total %d != simnet.sent %d", agentSent, sent)
					}
					if agentDelivered != reg.CounterValue("simnet.delivered") {
						t.Errorf("agent.delivered.* total %d != simnet.delivered %d",
							agentDelivered, reg.CounterValue("simnet.delivered"))
					}
					if got := reg.GaugeValue("agent.slots"); got != int64(res.Slots) {
						t.Errorf("agent.slots gauge = %d, Result.Slots = %d", got, res.Slots)
					}
				})
			}
		}
	}
}
