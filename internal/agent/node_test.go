package agent

import (
	"reflect"
	"testing"

	"specmatch/internal/market"
	"specmatch/internal/paperexample"
	"specmatch/internal/simnet"
)

// The node shells expose the raw state machines, which these tests drive
// step by step — the micro-level complement to the runner-level suites.

func toyBuyer(t *testing.T, j int) *BuyerNode {
	t.Helper()
	return NewBuyerNode(j, paperexample.Toy(), Config{})
}

func toySeller(t *testing.T, i int) *SellerNode {
	t.Helper()
	return NewSellerNode(i, paperexample.Toy(), Config{})
}

func payloadsTo(msgs []simnet.Message, to simnet.NodeID) []any {
	var out []any
	for _, m := range msgs {
		if m.To == to {
			out = append(out, m.Payload)
		}
	}
	return out
}

// TestBuyerProposalOrder: buyer 1 of the toy (prices 7,6,3) proposes to
// sellers 0, 1, 2 in that order as rejections arrive, exactly once each.
func TestBuyerProposalOrder(t *testing.T) {
	b := toyBuyer(t, 0)
	var sequence []int
	now := 1
	for round := 0; round < 4; round++ {
		out := b.Tick(now)
		for _, msg := range out {
			if _, ok := msg.Payload.(Propose); ok {
				sequence = append(sequence, msg.To.Index)
				// Reject it to force the next proposal.
				b.Deliver(simnet.Message{From: msg.To, To: simnet.Buyer(0), Payload: ProposalDecision{Accepted: false}})
			}
		}
		now++
	}
	if !reflect.DeepEqual(sequence, []int{0, 1, 2}) {
		t.Errorf("proposal sequence = %v, want [0 1 2]", sequence)
	}
	// Exhausted and unmatched, the buyer self-transitions to Stage II and
	// keeps working through transfer applications — she must not be idle.
	if b.Idle() {
		t.Error("exhausted unmatched buyer should move to Stage II transfers, not idle")
	}
}

// TestBuyerStopsWhileAwaiting: a buyer never has two requests in flight.
func TestBuyerStopsWhileAwaiting(t *testing.T) {
	b := toyBuyer(t, 0)
	first := b.Tick(1)
	if len(first) != 1 {
		t.Fatalf("tick 1 sent %d messages, want 1", len(first))
	}
	if more := b.Tick(2); len(more) != 0 {
		t.Errorf("tick 2 sent %v while awaiting a decision", more)
	}
}

// TestBuyerRetryThenGiveUp: a lost decision triggers bounded retransmission
// and then the buyer moves on.
func TestBuyerRetryThenGiveUp(t *testing.T) {
	m := paperexample.Toy()
	b := NewBuyerNode(0, m, Config{RetryAfter: 2, MaxRetries: 2})
	out := b.Tick(1)
	if len(out) != 1 {
		t.Fatal("expected initial proposal")
	}
	target := out[0].To
	retries := 0
	var moved bool
	for now := 2; now < 20 && !moved; now++ {
		for _, msg := range b.Tick(now) {
			if _, ok := msg.Payload.(Propose); !ok {
				continue
			}
			if msg.To == target {
				retries++
			} else {
				moved = true
			}
		}
	}
	if retries != 2 {
		t.Errorf("retries to the silent seller = %d, want 2", retries)
	}
	if !moved {
		t.Error("buyer never moved on to the next seller")
	}
}

// TestBuyerEvictionResumesProposals: after eviction the buyer continues
// down her list without re-proposing to the evicting seller.
func TestBuyerEvictionResumesProposals(t *testing.T) {
	b := toyBuyer(t, 0)
	out := b.Tick(1) // proposes to seller 0
	b.Deliver(simnet.Message{From: out[0].To, To: simnet.Buyer(0), Payload: ProposalDecision{Accepted: true}})
	if b.MatchedTo() != 0 {
		t.Fatalf("MatchedTo = %d, want 0", b.MatchedTo())
	}
	b.Deliver(simnet.Message{From: simnet.Seller(0), To: simnet.Buyer(0), Payload: Evict{}})
	if b.MatchedTo() != market.Unmatched {
		t.Fatal("eviction should unmatch the buyer")
	}
	out = b.Tick(2)
	if len(out) != 1 || out[0].To != simnet.Seller(1) {
		t.Errorf("post-eviction proposal = %v, want seller 1", out)
	}
}

// TestBuyerAcceptsBestInvite: among simultaneous invitations the buyer
// accepts the best improving one, declines the rest, and leaves her old
// seller.
func TestBuyerAcceptsBestInvite(t *testing.T) {
	b := toyBuyer(t, 0) // prices (7, 6, 3)
	// Matched to seller 2 (utility 3).
	out := b.Tick(1)
	_ = out
	b.Deliver(simnet.Message{From: simnet.Seller(0), To: simnet.Buyer(0), Payload: ProposalDecision{Accepted: false}})
	out = b.Tick(2)
	_ = out
	b.Deliver(simnet.Message{From: simnet.Seller(1), To: simnet.Buyer(0), Payload: ProposalDecision{Accepted: false}})
	out = b.Tick(3)
	_ = out
	b.Deliver(simnet.Message{From: simnet.Seller(2), To: simnet.Buyer(0), Payload: ProposalDecision{Accepted: true}})
	if b.MatchedTo() != 2 {
		t.Fatalf("MatchedTo = %d, want 2", b.MatchedTo())
	}
	// Invites from sellers 0 (price 7) and 1 (price 6) in one slot.
	b.Deliver(simnet.Message{From: simnet.Seller(0), To: simnet.Buyer(0), Payload: Invite{}})
	b.Deliver(simnet.Message{From: simnet.Seller(1), To: simnet.Buyer(0), Payload: Invite{}})
	out = b.Tick(4)

	accepts := payloadsTo(out, simnet.Seller(0))
	declines := payloadsTo(out, simnet.Seller(1))
	leaves := payloadsTo(out, simnet.Seller(2))
	if len(accepts) != 1 || accepts[0] != (InviteResponse{Accepted: true}) {
		t.Errorf("seller 0 should get an acceptance, got %v", accepts)
	}
	if len(declines) != 1 || declines[0] != (InviteResponse{Accepted: false}) {
		t.Errorf("seller 1 should get a decline, got %v", declines)
	}
	if len(leaves) != 1 || leaves[0] != (Leave{}) {
		t.Errorf("seller 2 should get a leave, got %v", leaves)
	}
	if b.MatchedTo() != 0 {
		t.Errorf("MatchedTo = %d, want 0 (the best invite)", b.MatchedTo())
	}
}

// TestSellerCoalitionFormation: the seller keeps the best independent set
// among waiting and new proposers, evicting and rejecting the rest.
func TestSellerCoalitionFormation(t *testing.T) {
	s := toySeller(t, 0) // channel a: edges {0,1}, {0,3}; prices 7,6,9,8,1
	// Buyers 0 and 1 propose (interfering, 7 vs 6): keeps 0.
	s.Deliver(simnet.Message{From: simnet.Buyer(0), To: simnet.Seller(0), Payload: Propose{Price: 7}})
	s.Deliver(simnet.Message{From: simnet.Buyer(1), To: simnet.Seller(0), Payload: Propose{Price: 6}})
	out, err := s.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloadsTo(out, simnet.Buyer(0)); len(got) != 1 || got[0].(ProposalDecision).Accepted != true {
		t.Errorf("buyer 0 decision = %v, want accept", got)
	}
	if got := payloadsTo(out, simnet.Buyer(1)); len(got) != 1 || got[0].(ProposalDecision).Accepted != false {
		t.Errorf("buyer 1 decision = %v, want reject", got)
	}
	if !reflect.DeepEqual(s.Coalition(), []int{0}) {
		t.Fatalf("coalition = %v, want [0]", s.Coalition())
	}
	// Buyer 3 proposes (8, interferes with 0): evicts 0.
	s.Deliver(simnet.Message{From: simnet.Buyer(3), To: simnet.Seller(0), Payload: Propose{Price: 8}})
	out, err = s.Tick(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloadsTo(out, simnet.Buyer(0)); len(got) != 1 || got[0] != (Evict{}) {
		t.Errorf("buyer 0 should be evicted, got %v", got)
	}
	if !reflect.DeepEqual(s.Coalition(), []int{3}) {
		t.Errorf("coalition = %v, want [3]", s.Coalition())
	}
}

// TestSellerLeaveShrinksCoalition: a Leave removes the buyer immediately.
func TestSellerLeaveShrinksCoalition(t *testing.T) {
	s := toySeller(t, 2) // channel c: edge {1,4} only
	s.Deliver(simnet.Message{From: simnet.Buyer(0), To: simnet.Seller(2), Payload: Propose{Price: 3}})
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	s.Deliver(simnet.Message{From: simnet.Buyer(0), To: simnet.Seller(2), Payload: Leave{}})
	if len(s.Coalition()) != 0 {
		t.Errorf("coalition after leave = %v, want empty", s.Coalition())
	}
}

// TestSellerDigestInformsIncumbents: once matched, a buyer receives digests
// naming later proposers (the observability needed by rules I/II).
func TestSellerDigestInformsIncumbents(t *testing.T) {
	s := toySeller(t, 2) // channel c
	s.Deliver(simnet.Message{From: simnet.Buyer(0), To: simnet.Seller(2), Payload: Propose{Price: 3}})
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	// Buyer 2 proposes next slot; buyer 0 (incumbent, compatible) must get
	// a digest naming both proposers.
	s.Deliver(simnet.Message{From: simnet.Buyer(2), To: simnet.Seller(2), Payload: Propose{Price: 8}})
	out, err := s.Tick(2)
	if err != nil {
		t.Fatal(err)
	}
	var digest *Digest
	for _, p := range payloadsTo(out, simnet.Buyer(0)) {
		if d, ok := p.(Digest); ok {
			digest = &d
		}
	}
	if digest == nil {
		t.Fatal("incumbent got no digest")
	}
	if !reflect.DeepEqual(digest.Proposers, []int{0, 2}) {
		t.Errorf("digest proposers = %v, want [0 2]", digest.Proposers)
	}
}

// TestSellerTransferNoEviction: in Stage II the seller admits compatible
// applicants but never evicts incumbents, and rejected applicants join the
// invitation pool.
func TestSellerTransferNoEviction(t *testing.T) {
	m := paperexample.Toy()
	s := NewSellerNode(0, m, Config{}) // channel a: edges {0,1}, {0,3}
	// Stage I: buyer 0 (price 7) matched.
	s.Deliver(simnet.Message{From: simnet.Buyer(0), To: simnet.Seller(0), Payload: Propose{Price: 7}})
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	// Jump to Stage II via the default schedule slot.
	sched := defaultSchedule(m.M(), m.N())
	if _, err := s.Tick(sched.stageII); err != nil {
		t.Fatal(err)
	}
	// Buyer 3 (price 8 — interferes with 0) applies: rejected, no eviction.
	s.Deliver(simnet.Message{From: simnet.Buyer(3), To: simnet.Seller(0), Payload: TransferApply{Price: 8}})
	out, err := s.Tick(sched.stageII + 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloadsTo(out, simnet.Buyer(3)); len(got) != 1 || got[0].(TransferDecision).Accepted {
		t.Errorf("interfering transfer should be rejected, got %v", got)
	}
	if !reflect.DeepEqual(s.Coalition(), []int{0}) {
		t.Errorf("coalition = %v; Stage II must not evict", s.Coalition())
	}
	// Buyer 2 (price 9, compatible) applies: granted.
	s.Deliver(simnet.Message{From: simnet.Buyer(2), To: simnet.Seller(0), Payload: TransferApply{Price: 9}})
	if _, err := s.Tick(sched.stageII + 2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Coalition(), []int{0, 2}) {
		t.Errorf("coalition = %v, want [0 2]", s.Coalition())
	}
}
