package agent

import (
	"fmt"

	"specmatch/internal/obs"
	"specmatch/internal/simnet"
)

// msgMeter holds the agent layer's prebuilt observability handles: one
// sent/delivered counter pair per protocol message type, stage-transition
// counters, and the slots-to-convergence gauge. The maps are built once and
// only read afterwards, so metering is safe from the concurrent runner's
// per-agent goroutines (the counters themselves are atomic). A nil *msgMeter
// disables everything at the cost of one pointer check per call.
type msgMeter struct {
	events    *obs.Sink
	sent      map[string]*obs.Counter // agent.sent.<type>
	delivered map[string]*obs.Counter // agent.delivered.<type>

	buyerTransitions  *obs.Counter // agent.transitions.buyer
	sellerTransitions *obs.Counter // agent.transitions.seller
	slots             *obs.Gauge   // agent.slots
	runs              *obs.Counter // agent.runs
}

func newMsgMeter(reg *obs.Registry, events *obs.Sink) *msgMeter {
	if reg == nil && !events.Enabled() {
		return nil
	}
	names := PayloadNames()
	mm := &msgMeter{
		events:            events,
		sent:              make(map[string]*obs.Counter, len(names)),
		delivered:         make(map[string]*obs.Counter, len(names)),
		buyerTransitions:  reg.Counter("agent.transitions.buyer"),
		sellerTransitions: reg.Counter("agent.transitions.seller"),
		slots:             reg.Gauge("agent.slots"),
		runs:              reg.Counter("agent.runs"),
	}
	for _, name := range names {
		mm.sent[name] = reg.Counter("agent.sent." + name)
		mm.delivered[name] = reg.Counter("agent.delivered." + name)
	}
	return mm
}

// onSend counts one message handed to the transport.
func (mm *msgMeter) onSend(msg simnet.Message) {
	if mm == nil {
		return
	}
	mm.sent[PayloadName(msg.Payload)].Inc()
}

// onDeliver counts one message handed to a recipient state machine.
func (mm *msgMeter) onDeliver(msg simnet.Message) {
	if mm == nil {
		return
	}
	mm.delivered[PayloadName(msg.Payload)].Inc()
}

// onTransition records one agent's Stage I → Stage II transition. Safe from
// concurrent per-agent goroutines; event order within a slot is therefore
// unspecified, which is fine for a debugging sink.
func (mm *msgMeter) onTransition(kind simnet.Kind, index, slot int) {
	if mm == nil {
		return
	}
	node := "seller"
	c := mm.sellerTransitions
	if kind == simnet.KindBuyer {
		node = "buyer"
		c = mm.buyerTransitions
	}
	c.Inc()
	if mm.events.Enabled() {
		mm.events.Emit(obs.Event{
			Slot: slot,
			Kind: "agent.transition",
			Node: fmt.Sprintf("%s-%d", node, index),
		})
	}
}

// onDone records the run's slots-to-convergence.
func (mm *msgMeter) onDone(slots int, terminated bool) {
	if mm == nil {
		return
	}
	mm.runs.Inc()
	mm.slots.Set(int64(slots))
	if mm.events.Enabled() {
		mm.events.Emit(obs.Event{
			Slot: slots,
			Kind: "agent.done",
			Note: fmt.Sprintf("terminated=%v", terminated),
		})
	}
}

// meteredSender wraps a netSender, counting every send by payload type.
type meteredSender struct {
	inner netSender
	met   *msgMeter
}

// Send implements netSender.
func (ms *meteredSender) Send(msg simnet.Message) {
	ms.met.onSend(msg)
	ms.inner.Send(msg)
}

// meter wraps sender with send metering when observability is on; with a nil
// meter it returns the sender untouched, keeping the disabled path free.
func (mm *msgMeter) meter(sender netSender) netSender {
	if mm == nil {
		return sender
	}
	return &meteredSender{inner: sender, met: mm}
}
