package agent

import (
	"fmt"
	"strconv"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/simnet"
	"specmatch/internal/stats"
)

// Result is the outcome of an asynchronous protocol run.
type Result struct {
	// Matching is the realized assignment: buyer j is matched to seller i
	// iff seller i lists j AND buyer j believes she holds channel i. Under a
	// reliable network the two views always agree; under message loss a
	// stale view on either side voids the pairing, which is exactly what
	// would happen over the air.
	Matching *matching.Matching

	// Welfare is the social welfare of Matching.
	Welfare float64

	// Slots is the number of network slots until quiescence (the
	// paper's "running time" unit for §IV; one algorithm round = 2 slots).
	Slots int

	// Terminated is false when the run hit MaxSlots before quiescing.
	Terminated bool

	// LastBuyerTransition and LastSellerTransition are the latest slots at
	// which some buyer / seller entered Stage II — the realized cost of the
	// transition rules compared to the default schedule.
	LastBuyerTransition  int
	LastSellerTransition int

	// MeanBuyerTransition and MeanSellerTransition average the Stage II
	// entry slots across agents. Under the probabilistic rules most agents
	// transition long before the default schedule even when a few stragglers
	// ride the fallback, so the mean — not the max — shows the rules' value.
	MeanBuyerTransition  float64
	MeanSellerTransition float64

	// EarlyBuyerTransitions and EarlySellerTransitions count agents that
	// entered Stage II before the default-schedule slot.
	EarlyBuyerTransitions  int
	EarlySellerTransitions int

	// Net reports message-level statistics including drops.
	Net simnet.Stats

	// DisagreedPairs counts (seller lists j, buyer disagrees) pairs voided
	// when assembling Matching; always 0 on a reliable network.
	DisagreedPairs int
}

// Run executes the asynchronous two-stage protocol on the market and returns
// the realized matching.
func Run(m *market.Market, cfg Config) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("agent: invalid market: %w", err)
	}
	cfg = cfg.withDefaults(m.M(), m.N())
	sched := defaultSchedule(m.M(), m.N())

	root := cfg.Flight.Start(cfg.SpanParent, "agent.run")
	defer root.End()
	netCfg := cfg.Net
	netCfg.Flight = cfg.Flight
	netCfg.SpanParent = root.Context()
	net, err := simnet.New(netCfg)
	if err != nil {
		return nil, fmt.Errorf("agent: network: %w", err)
	}
	met := newMsgMeter(cfg.Metrics, cfg.Events)
	sender := met.meter(net)

	buyers := make([]*buyerAgent, m.N())
	for j := range buyers {
		buyers[j] = newBuyerAgent(j, m, cfg, sched, sender)
	}
	sellers := make([]*sellerAgent, m.M())
	for i := range sellers {
		sellers[i] = newSellerAgent(i, m, cfg, sched, sender)
	}

	res := &Result{Terminated: false}
	buyerTransitions := make([]float64, 0, m.N())
	sellerTransitions := make([]float64, 0, m.M())
	for slot := 1; slot <= cfg.MaxSlots; slot++ {
		for _, msg := range net.Step() {
			met.onDeliver(msg)
			h := cfg.Flight.Start(root.Context(), "agent.handle")
			switch msg.To.Kind {
			case simnet.KindBuyer:
				buyers[msg.To.Index].handle(msg)
			case simnet.KindSeller:
				sellers[msg.To.Index].handle(msg)
			}
			if h.Active() {
				h.Annotate("slot=" + strconv.Itoa(net.Now()) + " to=" + msg.To.String() + " type=" + PayloadName(msg.Payload))
			}
			h.End()
		}
		for _, b := range buyers {
			wasStageI := b.stage == 1
			b.tick(net.Now())
			if wasStageI && b.stage == 2 {
				res.LastBuyerTransition = net.Now()
				buyerTransitions = append(buyerTransitions, float64(net.Now()))
				if net.Now() < sched.stageII {
					res.EarlyBuyerTransitions++
				}
				met.onTransition(simnet.KindBuyer, b.id, net.Now())
			}
		}
		for _, s := range sellers {
			wasStageI := s.stage == 1
			if err := s.tick(net.Now()); err != nil {
				return nil, err
			}
			if wasStageI && s.stage == 2 {
				res.LastSellerTransition = net.Now()
				sellerTransitions = append(sellerTransitions, float64(net.Now()))
				if net.Now() < sched.stageII {
					res.EarlySellerTransitions++
				}
				met.onTransition(simnet.KindSeller, s.id, net.Now())
			}
		}
		if quiesced(buyers, sellers, net) {
			res.Slots = net.Now()
			res.Terminated = true
			break
		}
	}
	if !res.Terminated {
		res.Slots = net.Now()
	}
	res.MeanBuyerTransition = stats.Mean(buyerTransitions)
	res.MeanSellerTransition = stats.Mean(sellerTransitions)

	res.Matching, res.DisagreedPairs = assemble(m, buyers, sellers)
	res.Welfare = matching.Welfare(m, res.Matching)
	res.Net = net.Stats()
	met.onDone(res.Slots, res.Terminated)
	if root.Active() {
		root.Annotate(fmt.Sprintf("runtime=sequential slots=%d terminated=%t matched=%d welfare=%.6g",
			res.Slots, res.Terminated, res.Matching.MatchedCount(), res.Welfare))
	}
	return res, nil
}

// quiesced reports global termination: every seller finished her invitation
// list, every buyer has no pending work, and no message is in flight.
func quiesced(buyers []*buyerAgent, sellers []*sellerAgent, net *simnet.Network) bool {
	if net.InFlight() > 0 {
		return false
	}
	for _, s := range sellers {
		if !s.quiescent() {
			return false
		}
	}
	for _, b := range buyers {
		if !b.idle() {
			return false
		}
	}
	return true
}

// assemble reconciles seller and buyer views into the realized matching.
func assemble(m *market.Market, buyers []*buyerAgent, sellers []*sellerAgent) (*matching.Matching, int) {
	mu := matching.New(m.M(), m.N())
	disagreed := 0
	for i, s := range sellers {
		for _, j := range s.coalitionMembers() {
			if buyers[j].matchedTo == i {
				// In-range by construction; Assign cannot fail.
				_ = mu.Assign(i, j)
			} else {
				disagreed++
			}
		}
	}
	return mu, disagreed
}
