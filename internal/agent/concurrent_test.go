package agent

import (
	"testing"

	"specmatch/internal/market"
	"specmatch/internal/paperexample"
	"specmatch/internal/simnet"
	"specmatch/internal/stability"
)

// TestConcurrentEqualsSequentialReliable: on a reliable network the
// goroutine-per-agent runner reproduces the sequential runner exactly —
// same matching, same slots, same transition statistics.
func TestConcurrentEqualsSequentialReliable(t *testing.T) {
	configs := []Config{
		{},
		{BuyerRule: BuyerRuleI, SellerRule: SellerProbabilistic},
		{BuyerRule: BuyerRuleII, SellerRule: SellerProbabilistic},
	}
	for seed := int64(0); seed < 10; seed++ {
		m, err := market.Generate(market.Config{Sellers: 4, Buyers: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range configs {
			seq, err := Run(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			conc, err := RunConcurrent(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Matching.Equal(conc.Matching) {
				t.Errorf("seed %d %v: matchings differ", seed, cfg.BuyerRule)
			}
			if seq.Slots != conc.Slots || seq.Welfare != conc.Welfare {
				t.Errorf("seed %d %v: slots/welfare differ: %d/%.3f vs %d/%.3f",
					seed, cfg.BuyerRule, seq.Slots, seq.Welfare, conc.Slots, conc.Welfare)
			}
			if seq.MeanBuyerTransition != conc.MeanBuyerTransition {
				t.Errorf("seed %d %v: transition stats differ", seed, cfg.BuyerRule)
			}
		}
	}
}

// TestConcurrentToyGolden: the concurrent runner also reproduces the
// paper's toy outcome.
func TestConcurrentToyGolden(t *testing.T) {
	m := paperexample.Toy()
	res, err := RunConcurrent(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare != paperexample.ToyFinalWelfare {
		t.Errorf("welfare = %v, want %v", res.Welfare, paperexample.ToyFinalWelfare)
	}
}

// TestConcurrentDeterministicUnderFaults: with fault injection the
// concurrent runner is reproducible run-to-run (though it may differ from
// the sequential runner's fault realization).
func TestConcurrentDeterministicUnderFaults(t *testing.T) {
	m, err := market.Generate(market.Config{Sellers: 4, Buyers: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Net: simnet.Config{DropProb: 0.1, DelayMax: 2, Seed: 9}}
	a, err := RunConcurrent(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConcurrent(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Matching.Equal(b.Matching) || a.Slots != b.Slots || a.Net != b.Net {
		t.Error("concurrent runs with identical config diverged")
	}
	if v := stability.CheckInterferenceFree(m, a.Matching); len(v) != 0 {
		t.Errorf("interference under faults: %v", v)
	}
}

// TestConcurrentValidatesMarket propagates validation errors.
func TestConcurrentValidatesMarket(t *testing.T) {
	m := paperexample.Toy()
	if _, err := RunConcurrent(m, Config{Net: simnet.Config{DropProb: -2}}); err == nil {
		t.Error("invalid network config should fail")
	}
}
