package agent

// Protocol messages exchanged between buyer and seller agents. All payloads
// are small value types carried by simnet.Message.
//
// Knowledge model (standard for DSA protocols and implicit in §IV): every
// participant knows the market dimensions M and N and the price distribution
// F; a buyer knows her own utility vector and her interference neighborhoods
// (carrier sensing); a seller knows her own channel's interference graph.
// Nobody observes the global matching state — coordination happens only
// through these messages.

// Propose is a Stage I proposal (Algorithm 1 line 7).
type Propose struct {
	Price float64
}

// ProposalDecision answers a Propose: Accepted means the buyer is in the
// seller's waiting list. Proposers is the seller's cumulative proposer set,
// which matched buyers use for transition rules I and II ("all her
// interfering neighbors have proposed to her currently matched seller" is
// observable only if the seller shares who proposed).
type ProposalDecision struct {
	Accepted  bool
	Proposers []int
}

// Evict tells a previously wait-listed buyer she was displaced by a
// preferred coalition (Algorithm 1 line 12 aftermath).
type Evict struct{}

// Digest is the seller's per-slot broadcast to her currently matched buyers:
// the cumulative set of buyers that have proposed to her so far. It feeds
// buyer transition rules I and II.
type Digest struct {
	Proposers []int
}

// TransferApply is a Stage II Phase 1 transfer application (Algorithm 2
// line 8).
type TransferApply struct {
	Price float64
}

// TransferDecision answers a TransferApply.
type TransferDecision struct {
	Accepted bool
}

// Invite is a Stage II Phase 2 invitation (Algorithm 2 line 25).
type Invite struct{}

// InviteResponse answers an Invite.
type InviteResponse struct {
	Accepted bool
}

// Leave tells a seller that one of her matched buyers moved elsewhere
// (granted transfer or accepted invitation).
type Leave struct{}

// SellerTransition notifies a seller's matched buyers that she entered Stage
// II and will no longer evict them — buyer transition rule III.
type SellerTransition struct{}

// PayloadName returns the canonical protocol name of a message payload —
// the same names package wire puts on the frame and PROTOCOL.md documents
// ("propose", "proposal-decision", …) — or "" for an unregistered type.
func PayloadName(p any) string {
	switch p.(type) {
	case Propose:
		return "propose"
	case ProposalDecision:
		return "proposal-decision"
	case Evict:
		return "evict"
	case Digest:
		return "digest"
	case TransferApply:
		return "transfer-apply"
	case TransferDecision:
		return "transfer-decision"
	case Invite:
		return "invite"
	case InviteResponse:
		return "invite-response"
	case Leave:
		return "leave"
	case SellerTransition:
		return "seller-transition"
	default:
		return ""
	}
}

// PayloadNames lists every protocol message name, in protocol order.
func PayloadNames() []string {
	return []string{
		"propose", "proposal-decision", "evict", "digest",
		"transfer-apply", "transfer-decision",
		"invite", "invite-response", "leave", "seller-transition",
	}
}
