// Package market implements the spectrum-market model of §II of the paper.
//
// A market has I physical sellers owning m_i channels each and J physical
// buyers demanding n_j channels each. Following the paper (and TAMES [7],
// which it cites for the construction), both sides are expanded into
// "virtual" participants: M = Σ m_i virtual sellers — each a single channel —
// and N = Σ n_j virtual buyers, each trading exactly one channel. Virtual
// buyers originating from the same physical buyer interfere with each other
// on every channel so that they are never matched to the same seller.
//
// Channel heterogeneity is captured by one interference graph per channel
// over the virtual buyers; buyer j's value for (and offered price on) channel
// i is b_{i,j} = Prices[i][j].
package market

import (
	"fmt"

	"specmatch/internal/geom"
	"specmatch/internal/graph"
	"specmatch/internal/stats"
)

// Unmatched is the sentinel seller index for a buyer that holds no channel.
const Unmatched = -1

// Market is a fully expanded (virtual) spectrum market. Construct with New,
// Generate, or FromSpec; the zero value is not usable.
type Market struct {
	// prices[i][j] is b_{i,j}: buyer j's utility for, and offered price on,
	// channel i.
	prices [][]float64
	// graphs[i] is the interference graph G_i over virtual buyers.
	graphs []*graph.Graph

	// sellerOwner[i] / buyerOwner[j] map virtual participants to physical
	// ones. For directly constructed markets they default to the identity.
	sellerOwner []int
	buyerOwner  []int

	// Geometry, retained when the market was generated from a deployment so
	// examples and ablations can inspect it. Empty for abstract markets.
	buyerPos []geom.Point
	ranges   []float64
}

// New builds a market from explicit prices and per-channel interference
// graphs: prices[i][j] = b_{i,j}; graphs[i] over the N virtual buyers.
func New(prices [][]float64, graphs []*graph.Graph) (*Market, error) {
	m := &Market{prices: prices, graphs: graphs}
	m.sellerOwner = identity(len(prices))
	if len(prices) > 0 {
		m.buyerOwner = identity(len(prices[0]))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// M returns the number of virtual sellers (channels).
func (m *Market) M() int { return len(m.prices) }

// N returns the number of virtual buyers.
func (m *Market) N() int {
	if len(m.prices) == 0 {
		return 0
	}
	return len(m.prices[0])
}

// Price returns b_{i,j}, buyer j's utility for and offered price on channel i.
func (m *Market) Price(i, j int) float64 { return m.prices[i][j] }

// Graph returns the interference graph of channel i.
func (m *Market) Graph(i int) *graph.Graph { return m.graphs[i] }

// SellerOwner returns the physical seller owning virtual seller i.
func (m *Market) SellerOwner(i int) int { return m.sellerOwner[i] }

// BuyerOwner returns the physical buyer behind virtual buyer j.
func (m *Market) BuyerOwner(j int) int { return m.buyerOwner[j] }

// BuyerPos returns virtual buyer j's location and whether geometry is known.
func (m *Market) BuyerPos(j int) (geom.Point, bool) {
	if j >= len(m.buyerPos) {
		return geom.Point{}, false
	}
	return m.buyerPos[j], true
}

// Range returns channel i's transmission range and whether geometry is known.
func (m *Market) Range(i int) (float64, bool) {
	if i >= len(m.ranges) {
		return 0, false
	}
	return m.ranges[i], true
}

// HasGeometry reports whether the market retains full deployment geometry —
// a position for every virtual buyer and a transmission range for every
// channel — the precondition for mobility (MoveBuyer). Generated markets
// have it; abstract (New/FromSpec-without-geometry) markets do not.
func (m *Market) HasGeometry() bool {
	return m.N() > 0 && len(m.buyerPos) == m.N() && len(m.ranges) == m.M()
}

// Clone returns a copy of m whose mutable state — interference graphs and
// buyer positions, the two things MoveBuyer touches — is deep-copied.
// Prices, owner maps, and ranges are immutable after construction and are
// shared. Sessions clone the market they are given so mobility never leaks
// into the caller's instance.
func (m *Market) Clone() *Market {
	c := *m
	c.graphs = make([]*graph.Graph, len(m.graphs))
	for i, g := range m.graphs {
		c.graphs[i] = g.Clone()
	}
	c.buyerPos = append([]geom.Point(nil), m.buyerPos...)
	return &c
}

// MoveBuyer relocates virtual buyer j to p and re-derives j's interference
// edges on every channel from the market's radio rule at calibration: two
// buyers conflict on channel i when they are within its transmission range
// (the disk rule, which the SINR model reproduces at its nominal threshold)
// or share a physical owner — co-owner edges are structural (§II-A) and
// survive any move, keeping Validate an invariant. Only j's rows are
// rewired, via the graph's in-place kernel. It returns the channels whose
// graph actually changed, ascending; a move that flips no edge returns an
// empty set but still records the position, so later moves measure from p.
func (m *Market) MoveBuyer(j int, p geom.Point) ([]int, error) {
	if !m.HasGeometry() {
		return nil, fmt.Errorf("market: move buyer %d: market retains no geometry", j)
	}
	if j < 0 || j >= m.N() {
		return nil, fmt.Errorf("market: move buyer %d out of range [0,%d)", j, m.N())
	}
	m.buyerPos[j] = p
	var changed []int
	nbrs := make([]int, 0, m.N()-1)
	for i, g := range m.graphs {
		r2 := m.ranges[i] * m.ranges[i]
		nbrs = nbrs[:0]
		for k := 0; k < m.N(); k++ {
			if k == j {
				continue
			}
			if m.buyerOwner[k] == m.buyerOwner[j] || p.DistSq(m.buyerPos[k]) <= r2 {
				nbrs = append(nbrs, k)
			}
		}
		flipped, err := g.RewireVertex(j, nbrs)
		if err != nil {
			return nil, fmt.Errorf("market: move buyer %d: channel %d: %w", j, i, err)
		}
		if flipped {
			changed = append(changed, i)
		}
	}
	return changed, nil
}

// Interferes reports whether buyers j and j2 interfere on channel i
// (e^i_{j,j2} = 1).
func (m *Market) Interferes(i, j, j2 int) bool { return m.graphs[i].HasEdge(j, j2) }

// InterfererIn reports whether buyer j interferes on channel i with any buyer
// in the coalition (j itself is skipped, so a coalition may include j).
func (m *Market) InterfererIn(i, j int, coalition []int) bool {
	for _, j2 := range coalition {
		if j2 != j && m.graphs[i].HasEdge(j, j2) {
			return true
		}
	}
	return false
}

// BuyerPrefOrder returns buyer j's proposal order: channels sorted by
// descending b_{i,j} (ties toward the smaller channel index), excluding
// channels with non-positive utility — a rational buyer never proposes where
// her utility would not beat being unmatched.
func (m *Market) BuyerPrefOrder(j int) []int {
	order := make([]int, 0, m.M())
	for i := 0; i < m.M(); i++ {
		if m.prices[i][j] > 0 {
			order = append(order, i)
		}
	}
	// Insertion sort keeps the smaller-index-first tie break explicit and is
	// plenty fast for the M values markets use.
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && m.prices[order[b]][j] > m.prices[order[b-1]][j]; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	return order
}

// UtilityVectors returns each physical buyer's utility vector over channels,
// as used by the paper's SRCC similarity metric. Virtual buyers of the same
// physical buyer share a vector; the first virtual buyer's column is used.
func (m *Market) UtilityVectors() [][]float64 {
	firstVirtual := make(map[int]int)
	ownerOrder := make([]int, 0)
	for j := 0; j < m.N(); j++ {
		o := m.buyerOwner[j]
		if _, ok := firstVirtual[o]; !ok {
			firstVirtual[o] = j
			ownerOrder = append(ownerOrder, o)
		}
	}
	vectors := make([][]float64, 0, len(ownerOrder))
	for _, o := range ownerOrder {
		j := firstVirtual[o]
		vec := make([]float64, m.M())
		for i := 0; i < m.M(); i++ {
			vec[i] = m.prices[i][j]
		}
		vectors = append(vectors, vec)
	}
	return vectors
}

// AvgSimilarity returns the average pairwise SRCC across physical buyers'
// utility vectors (§V-A).
func (m *Market) AvgSimilarity() (float64, error) {
	rho, err := stats.AveragePairwiseSRCC(m.UtilityVectors())
	if err != nil {
		return 0, fmt.Errorf("market: similarity: %w", err)
	}
	return rho, nil
}

// WelfareUpperBound returns Σ_j max_i b_{i,j}, a trivial upper bound on any
// matching's social welfare (useful for sanity checks and B&B seeding).
func (m *Market) WelfareUpperBound() float64 {
	var total float64
	for j := 0; j < m.N(); j++ {
		best := 0.0
		for i := 0; i < m.M(); i++ {
			if m.prices[i][j] > best {
				best = m.prices[i][j]
			}
		}
		total += best
	}
	return total
}

// Validate checks internal consistency: rectangular prices, one graph per
// channel sized to N, owner maps covering every virtual participant, and
// co-owned virtual buyers interfering on every channel (§II-A).
func (m *Market) Validate() error {
	if len(m.prices) == 0 {
		return fmt.Errorf("market: no channels")
	}
	n := len(m.prices[0])
	if n == 0 {
		return fmt.Errorf("market: no buyers")
	}
	for i, row := range m.prices {
		if len(row) != n {
			return fmt.Errorf("market: price row %d has %d entries, want %d", i, len(row), n)
		}
		for j, p := range row {
			if p < 0 {
				return fmt.Errorf("market: negative price b[%d][%d] = %v", i, j, p)
			}
		}
	}
	if len(m.graphs) != len(m.prices) {
		return fmt.Errorf("market: %d interference graphs for %d channels", len(m.graphs), len(m.prices))
	}
	for i, g := range m.graphs {
		if g == nil {
			return fmt.Errorf("market: channel %d has no interference graph", i)
		}
		if g.N() != n {
			return fmt.Errorf("market: channel %d graph has %d vertices, want %d", i, g.N(), n)
		}
	}
	if len(m.sellerOwner) != len(m.prices) {
		return fmt.Errorf("market: seller owner map has %d entries, want %d", len(m.sellerOwner), len(m.prices))
	}
	if len(m.buyerOwner) != n {
		return fmt.Errorf("market: buyer owner map has %d entries, want %d", len(m.buyerOwner), n)
	}
	for j := 0; j < n; j++ {
		for j2 := j + 1; j2 < n; j2++ {
			if m.buyerOwner[j] != m.buyerOwner[j2] {
				continue
			}
			for i, g := range m.graphs {
				if !g.HasEdge(j, j2) {
					return fmt.Errorf("market: co-owned virtual buyers %d and %d must interfere on channel %d", j, j2, i)
				}
			}
		}
	}
	return nil
}

// String returns a compact description.
func (m *Market) String() string {
	return fmt.Sprintf("market(M=%d sellers, N=%d buyers)", m.M(), m.N())
}
