package market

import (
	"fmt"
	"math/rand"
	"sort"

	"specmatch/internal/geom"
	"specmatch/internal/graph"
	"specmatch/internal/radio"
	"specmatch/internal/xrand"
)

// Config describes a random market in the paper's evaluation setup (§V-A):
// physical buyers placed uniformly in a square area, one disk-model
// interference graph per channel with a uniform (0, RangeMax] transmission
// range, and i.i.d. U[0,1] utility vectors, optionally post-processed for
// similarity control.
type Config struct {
	// Sellers and Buyers are the numbers of physical participants.
	Sellers int `json:"sellers"`
	Buyers  int `json:"buyers"`

	// SellerChannels[i] is the number of channels seller i owns (m_i) and
	// BuyerDemands[j] the number of channels buyer j requests (n_j). Empty
	// slices mean one each, in which case virtual and physical participants
	// coincide — the configuration of every figure in the paper, where M and
	// N count virtual participants directly.
	SellerChannels []int `json:"seller_channels,omitempty"`
	BuyerDemands   []int `json:"buyer_demands,omitempty"`

	// AreaSide is the side of the square deployment area; 0 means the
	// paper's 10. RangeMax bounds the per-channel transmission range drawn
	// uniformly from (0, RangeMax]; 0 means the paper's 5.
	AreaSide float64 `json:"area_side,omitempty"`
	RangeMax float64 `json:"range_max,omitempty"`

	// Similarity, when non-nil, switches utility generation to the paper's
	// similarity-controlled procedure. Nil keeps raw i.i.d. vectors.
	Similarity *SimilarityConfig `json:"similarity,omitempty"`

	// Radio, when non-nil, replaces the paper's disk interference predicate
	// with the SINR-style model of package radio, calibrated so DeltaDB = 0
	// coincides with the disk rule at each channel's nominal range.
	Radio *RadioConfig `json:"radio,omitempty"`

	// Hotspots, when non-nil, replaces the paper's uniform buyer placement
	// with a clustered deployment — the urban pattern the introduction's
	// workloads actually exhibit, and a stress test for interference
	// density.
	Hotspots *HotspotConfig `json:"hotspots,omitempty"`

	// Seed drives all randomness; equal configs generate equal markets.
	Seed int64 `json:"seed"`
}

// RadioConfig selects the physical-layer interference model (see package
// radio): log-distance path loss with exponent PathLossExp, conflicts at an
// interference-to-noise threshold offset DeltaDB from the calibration that
// reproduces the disk rule.
type RadioConfig struct {
	PathLossExp float64 `json:"path_loss_exp,omitempty"`
	DeltaDB     float64 `json:"delta_db,omitempty"`
}

// HotspotConfig clusters buyers around uniformly placed centers with
// Gaussian spread (clipped to the area).
type HotspotConfig struct {
	// Clusters is the number of hotspot centers; must be positive.
	Clusters int `json:"clusters"`
	// Spread is the Gaussian standard deviation around a center; zero
	// means a tenth of the area side.
	Spread float64 `json:"spread,omitempty"`
}

// SimilarityConfig controls price similarity across buyers as in §V-A: each
// buyer's utility vector is sorted ascending (average pairwise SRCC 1), then
// PermuteM randomly chosen entries are randomly permuted. PermuteM = 0 keeps
// SRCC at 1; PermuteM = M drives it to roughly 0.
type SimilarityConfig struct {
	PermuteM int `json:"permute_m"`
}

func (c Config) withDefaults() Config {
	if c.AreaSide == 0 {
		c.AreaSide = geom.PaperArea().Side
	}
	if c.RangeMax == 0 {
		c.RangeMax = 5
	}
	return c
}

func (c Config) validate() error {
	if c.Sellers <= 0 || c.Buyers <= 0 {
		return fmt.Errorf("market: need positive seller and buyer counts, got %d and %d", c.Sellers, c.Buyers)
	}
	if len(c.SellerChannels) != 0 && len(c.SellerChannels) != c.Sellers {
		return fmt.Errorf("market: %d seller channel counts for %d sellers", len(c.SellerChannels), c.Sellers)
	}
	if len(c.BuyerDemands) != 0 && len(c.BuyerDemands) != c.Buyers {
		return fmt.Errorf("market: %d buyer demands for %d buyers", len(c.BuyerDemands), c.Buyers)
	}
	for i, m := range c.SellerChannels {
		if m <= 0 {
			return fmt.Errorf("market: seller %d owns %d channels; must be positive", i, m)
		}
	}
	for j, n := range c.BuyerDemands {
		if n <= 0 {
			return fmt.Errorf("market: buyer %d demands %d channels; must be positive", j, n)
		}
	}
	if c.AreaSide < 0 || c.RangeMax < 0 {
		return fmt.Errorf("market: negative geometry (area %v, range %v)", c.AreaSide, c.RangeMax)
	}
	if s := c.Similarity; s != nil && s.PermuteM < 0 {
		return fmt.Errorf("market: negative similarity permutation size %d", s.PermuteM)
	}
	if h := c.Hotspots; h != nil {
		if h.Clusters <= 0 {
			return fmt.Errorf("market: hotspot cluster count %d must be positive", h.Clusters)
		}
		if h.Spread < 0 {
			return fmt.Errorf("market: negative hotspot spread %v", h.Spread)
		}
	}
	return nil
}

// expand maps physical multiplicities to a virtual owner list.
func expand(count int, multiplicities []int) []int {
	owners := make([]int, 0, count)
	for p := 0; p < count; p++ {
		k := 1
		if len(multiplicities) != 0 {
			k = multiplicities[p]
		}
		for c := 0; c < k; c++ {
			owners = append(owners, p)
		}
	}
	return owners
}

// Generate builds a random market per the configuration. Generation is fully
// deterministic in cfg (including Seed).
func Generate(cfg Config) (*Market, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := xrand.New(cfg.Seed)

	sellerOwner := expand(cfg.Sellers, cfg.SellerChannels)
	buyerOwner := expand(cfg.Buyers, cfg.BuyerDemands)
	numChannels, numVirtualBuyers := len(sellerOwner), len(buyerOwner)

	// Physical buyer locations; virtual buyers inherit their owner's spot.
	area := geom.Area{Side: cfg.AreaSide}
	var physPos []geom.Point
	if cfg.Hotspots != nil {
		physPos = hotspotPoints(r, area, cfg.Buyers, *cfg.Hotspots)
	} else {
		physPos = area.RandomPoints(r, cfg.Buyers)
	}
	buyerPos := make([]geom.Point, numVirtualBuyers)
	for j, owner := range buyerOwner {
		buyerPos[j] = physPos[owner]
	}

	// Utility vectors per physical buyer over channels, shared by dummies.
	vectors := utilityVectors(r, cfg, cfg.Buyers, numChannels)
	prices := make([][]float64, numChannels)
	for i := range prices {
		row := make([]float64, numVirtualBuyers)
		for j, owner := range buyerOwner {
			row[j] = vectors[owner][i]
		}
		prices[i] = row
	}

	// One disk-model interference graph per channel, plus the mandatory
	// edges between co-owned dummies (distance 0 already implies them under
	// the disk rule, but they are structural, not geometric, so they are
	// added explicitly).
	ranges := make([]float64, numChannels)
	graphs := make([]*graph.Graph, numChannels)
	for i := range graphs {
		ranges[i] = xrand.UniformOpenClosed(r, cfg.RangeMax)
		var g *graph.Graph
		if cfg.Radio != nil {
			model, err := radio.NewModel(ranges[i], radio.Params{PathLossExp: cfg.Radio.PathLossExp})
			if err != nil {
				return nil, fmt.Errorf("market: radio model for channel %d: %w", i, err)
			}
			g = model.Graph(buyerPos, cfg.Radio.DeltaDB)
		} else {
			g = graph.Geometric(buyerPos, ranges[i])
		}
		for a := 0; a < numVirtualBuyers; a++ {
			for b := a + 1; b < numVirtualBuyers; b++ {
				if buyerOwner[a] == buyerOwner[b] {
					if err := g.AddEdge(a, b); err != nil {
						return nil, fmt.Errorf("market: dummy interference edge: %w", err)
					}
				}
			}
		}
		graphs[i] = g
	}

	m := &Market{
		prices:      prices,
		graphs:      graphs,
		sellerOwner: sellerOwner,
		buyerOwner:  buyerOwner,
		buyerPos:    buyerPos,
		ranges:      ranges,
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("market: generated market invalid: %w", err)
	}
	return m, nil
}

// hotspotPoints draws buyer locations clustered around uniformly placed
// centers, clipping Gaussian offsets to the deployment area.
func hotspotPoints(r *rand.Rand, area geom.Area, buyers int, cfg HotspotConfig) []geom.Point {
	spread := cfg.Spread
	if spread == 0 {
		spread = area.Side / 10
	}
	centers := area.RandomPoints(r, cfg.Clusters)
	clip := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > area.Side {
			return area.Side
		}
		return v
	}
	points := make([]geom.Point, buyers)
	for b := range points {
		c := centers[r.Intn(len(centers))]
		points[b] = geom.Point{
			X: clip(c.X + r.NormFloat64()*spread),
			Y: clip(c.Y + r.NormFloat64()*spread),
		}
	}
	return points
}

// utilityVectors draws one utility vector per physical buyer. Raw mode is
// i.i.d. U[0,1]; similarity mode applies the paper's sort-then-permute
// procedure.
func utilityVectors(r *rand.Rand, cfg Config, buyers, channels int) [][]float64 {
	vectors := make([][]float64, buyers)
	for b := range vectors {
		vec := make([]float64, channels)
		for i := range vec {
			vec[i] = r.Float64()
		}
		if cfg.Similarity != nil {
			sort.Float64s(vec)
			permuteM := cfg.Similarity.PermuteM
			if permuteM > channels {
				permuteM = channels
			}
			if permuteM >= 2 {
				// Choose permuteM distinct positions, then randomly permute
				// the values held at those positions.
				positions := r.Perm(channels)[:permuteM]
				shuffled := r.Perm(permuteM)
				orig := make([]float64, permuteM)
				for k, pos := range positions {
					orig[k] = vec[pos]
				}
				for k, pos := range positions {
					vec[pos] = orig[shuffled[k]]
				}
			}
		}
		vectors[b] = vec
	}
	return vectors
}
