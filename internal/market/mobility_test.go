package market

import (
	"fmt"
	"reflect"
	"testing"

	"specmatch/internal/geom"
	"specmatch/internal/graph"
	"specmatch/internal/xrand"
)

// geoMarket builds a market with explicit geometry: per-channel graphs are
// constructed naively from the rewire predicate (co-owned buyers always
// conflict; otherwise DistSq <= range^2), the same rule MoveBuyer re-derives
// incrementally. Tests compare the incremental result against this
// from-scratch construction.
func geoMarket(t *testing.T, positions []geom.Point, owners []int, ranges []float64) *Market {
	t.Helper()
	n := len(positions)
	prices := make([][]float64, len(ranges))
	for i := range prices {
		prices[i] = make([]float64, n)
		for j := range prices[i] {
			prices[i][j] = float64(1 + (i+j)%5)
		}
	}
	graphs := make([]*graph.Graph, len(ranges))
	for i := range graphs {
		graphs[i] = predicateGraph(positions, owners, ranges[i])
	}
	m, err := New(prices, graphs)
	if err != nil {
		t.Fatal(err)
	}
	m.buyerOwner = append([]int(nil), owners...)
	m.buyerPos = append([]geom.Point(nil), positions...)
	m.ranges = append([]float64(nil), ranges...)
	return m
}

func predicateGraph(positions []geom.Point, owners []int, rng float64) *graph.Graph {
	g := graph.New(len(positions))
	r2 := rng * rng
	for j := range positions {
		for k := j + 1; k < len(positions); k++ {
			if owners[j] == owners[k] || positions[j].DistSq(positions[k]) <= r2 {
				if err := g.AddEdge(j, k); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func randomDeployment(r interface{ Float64() float64 }, n int) ([]geom.Point, []int) {
	positions := make([]geom.Point, n)
	owners := make([]int, n)
	for j := range positions {
		positions[j] = geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}
		owners[j] = j
	}
	// One co-owned pair so every trace carries owner edges that must survive
	// arbitrary rewires regardless of distance.
	if n >= 2 {
		owners[n-1] = owners[0]
	}
	return positions, owners
}

// TestMoveBuyerMatchesNaiveRebuild: after every incremental MoveBuyer, each
// channel graph must equal the graph rebuilt from scratch over the current
// positions — the mobility analogue of the churn engine's differential pin.
func TestMoveBuyerMatchesNaiveRebuild(t *testing.T) {
	for _, seed := range []int64{61, 62, 63} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := xrand.New(seed)
			positions, owners := randomDeployment(r, 17)
			ranges := []float64{1.2, 2.5, 4}
			m := geoMarket(t, positions, owners, ranges)
			for step := 0; step < 60; step++ {
				j := int(r.Float64() * float64(len(positions)))
				p := geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}
				if _, err := m.MoveBuyer(j, p); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				positions[j] = p
				for i := range ranges {
					want := predicateGraph(positions, owners, ranges[i])
					if got := m.Graph(i); got.M() != want.M() || !reflect.DeepEqual(got.Edges(), want.Edges()) {
						t.Fatalf("step %d channel %d: incremental graph diverged from rebuild\n got %v\nwant %v",
							step, i, got.Edges(), want.Edges())
					}
				}
			}
		})
	}
}

// TestMoveOutAndBackRestoresRows: moving a buyer away and then back to its
// exact original position must restore every channel's interference rows —
// neighbor lists, edge counts, and reported rewired channels all symmetric.
func TestMoveOutAndBackRestoresRows(t *testing.T) {
	r := xrand.New(71)
	positions, owners := randomDeployment(r, 13)
	ranges := []float64{1.5, 3}
	m := geoMarket(t, positions, owners, ranges)
	for j := 0; j < m.N(); j++ {
		home, ok := m.BuyerPos(j)
		if !ok {
			t.Fatalf("buyer %d lost its position", j)
		}
		before := make([][]int, m.M())
		counts := make([]int, m.M())
		for i := 0; i < m.M(); i++ {
			before[i] = m.Graph(i).Neighbors(j)
			counts[i] = m.Graph(i).M()
		}
		out, err := m.MoveBuyer(j, geom.Point{X: -50, Y: -50})
		if err != nil {
			t.Fatal(err)
		}
		back, err := m.MoveBuyer(j, home)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, back) {
			t.Errorf("buyer %d: asymmetric rewired channels: out %v, back %v", j, out, back)
		}
		for i := 0; i < m.M(); i++ {
			if got := m.Graph(i).Neighbors(j); !reflect.DeepEqual(got, before[i]) {
				t.Errorf("buyer %d channel %d: neighbors %v after round trip, want %v", j, i, got, before[i])
			}
			if got := m.Graph(i).M(); got != counts[i] {
				t.Errorf("buyer %d channel %d: %d edges after round trip, want %d", j, i, got, counts[i])
			}
		}
	}
}

// TestRangeMonotonicityUnderRewires: a market whose channels hear further
// (larger conflict ranges) must conflict on a superset of edges, and
// arbitrary mobility must preserve that containment channel by channel —
// the radio-model monotonicity the paper's disk calibration relies on.
func TestRangeMonotonicityUnderRewires(t *testing.T) {
	r := xrand.New(83)
	positions, owners := randomDeployment(r, 19)
	near := []float64{1, 2, 3}
	far := []float64{1.5, 3, 4.5}
	a := geoMarket(t, positions, owners, near)
	b := geoMarket(t, positions, owners, far)
	assertSubset := func(step int) {
		t.Helper()
		for i := range near {
			for _, e := range a.Graph(i).Edges() {
				if !b.Graph(i).HasEdge(e[0], e[1]) {
					t.Fatalf("step %d channel %d: edge %v present at range %.1f but missing at %.1f",
						step, i, e, near[i], far[i])
				}
			}
		}
	}
	assertSubset(-1)
	for step := 0; step < 80; step++ {
		j := int(r.Float64() * float64(len(positions)))
		p := geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}
		if _, err := a.MoveBuyer(j, p); err != nil {
			t.Fatal(err)
		}
		if _, err := b.MoveBuyer(j, p); err != nil {
			t.Fatal(err)
		}
		assertSubset(step)
	}
}

// TestMoveBuyerErrors: geometry-less and out-of-range moves are rejected
// without mutating the market.
func TestMoveBuyerErrors(t *testing.T) {
	abstract, err := New(
		[][]float64{{1, 2}, {3, 4}},
		[]*graph.Graph{graph.New(2), graph.Complete(2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if abstract.HasGeometry() {
		t.Fatal("abstract market claims geometry")
	}
	if _, err := abstract.MoveBuyer(0, geom.Point{X: 1, Y: 1}); err == nil {
		t.Error("geometry-less move accepted")
	}

	r := xrand.New(91)
	positions, owners := randomDeployment(r, 5)
	m := geoMarket(t, positions, owners, []float64{2})
	edges := m.Graph(0).Edges()
	for _, j := range []int{-1, 5, 99} {
		if _, err := m.MoveBuyer(j, geom.Point{}); err == nil {
			t.Errorf("out-of-range buyer %d accepted", j)
		}
	}
	if !reflect.DeepEqual(m.Graph(0).Edges(), edges) {
		t.Error("rejected move mutated the graph")
	}
}
