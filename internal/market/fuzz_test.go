package market

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzSpecDecode hardens the JSON boundary: arbitrary bytes must either
// fail to decode or produce a market that validates and round-trips.
func FuzzSpecDecode(f *testing.F) {
	m, err := Generate(Config{Sellers: 2, Buyers: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	good, err := json.Marshal(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"prices":[[1,2]],"edges":[[[0,1]]]}`))
	f.Add([]byte(`{"prices":[[1]],"edges":[[[0,0]]]}`))
	f.Add([]byte(`{"prices":[],"edges":[]}`))
	f.Add([]byte(`{"prices":[[1,-2]],"edges":[[]]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded Market
		if err := json.Unmarshal(data, &decoded); err != nil {
			return // rejected, fine
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid market: %v", err)
		}
		re, err := json.Marshal(&decoded)
		if err != nil {
			t.Fatalf("accepted market fails to re-encode: %v", err)
		}
		var again Market
		if err := json.Unmarshal(re, &again); err != nil {
			t.Fatalf("re-encoded market fails to decode: %v", err)
		}
		if !reflect.DeepEqual(decoded.Spec().Prices, again.Spec().Prices) {
			t.Fatal("round trip changed prices")
		}
	})
}
