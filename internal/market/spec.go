package market

import (
	"encoding/json"
	"fmt"

	"specmatch/internal/geom"
	"specmatch/internal/graph"
)

// Spec is the JSON interchange form of a market, used by the CLIs to pass
// concrete instances between tools and to pin fixtures in tests.
type Spec struct {
	// Prices[i][j] = b_{i,j}.
	Prices [][]float64 `json:"prices"`
	// Edges[i] lists interference edges of channel i as [u, v] buyer pairs.
	Edges [][][2]int `json:"edges"`
	// SellerOwner and BuyerOwner map virtual to physical participants;
	// empty means identity.
	SellerOwner []int `json:"seller_owner,omitempty"`
	BuyerOwner  []int `json:"buyer_owner,omitempty"`
	// Optional geometry for generated markets.
	BuyerPos []geom.Point `json:"buyer_pos,omitempty"`
	Ranges   []float64    `json:"ranges,omitempty"`
}

// Spec exports the market to its interchange form.
func (m *Market) Spec() Spec {
	s := Spec{
		Prices:      m.prices,
		Edges:       make([][][2]int, len(m.graphs)),
		SellerOwner: m.sellerOwner,
		BuyerOwner:  m.buyerOwner,
		BuyerPos:    m.buyerPos,
		Ranges:      m.ranges,
	}
	for i, g := range m.graphs {
		s.Edges[i] = g.Edges()
	}
	return s
}

// FromSpec builds and validates a market from its interchange form.
func FromSpec(s Spec) (*Market, error) {
	if len(s.Prices) == 0 || len(s.Prices[0]) == 0 {
		return nil, fmt.Errorf("market: spec has no prices")
	}
	if len(s.Edges) != len(s.Prices) {
		return nil, fmt.Errorf("market: spec has %d edge lists for %d channels", len(s.Edges), len(s.Prices))
	}
	n := len(s.Prices[0])
	graphs := make([]*graph.Graph, len(s.Edges))
	for i, edges := range s.Edges {
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			return nil, fmt.Errorf("market: spec channel %d: %w", i, err)
		}
		graphs[i] = g
	}
	m := &Market{
		prices:      s.Prices,
		graphs:      graphs,
		sellerOwner: s.SellerOwner,
		buyerOwner:  s.BuyerOwner,
		buyerPos:    s.BuyerPos,
		ranges:      s.Ranges,
	}
	if len(m.sellerOwner) == 0 {
		m.sellerOwner = identity(len(s.Prices))
	}
	if len(m.buyerOwner) == 0 {
		m.buyerOwner = identity(n)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MarshalJSON implements json.Marshaler via the interchange form.
func (m *Market) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Spec())
}

// UnmarshalJSON implements json.Unmarshaler via the interchange form.
func (m *Market) UnmarshalJSON(data []byte) error {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("market: decoding spec: %w", err)
	}
	decoded, err := FromSpec(s)
	if err != nil {
		return err
	}
	*m = *decoded
	return nil
}
