package market

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"specmatch/internal/graph"
)

func twoByThree(t *testing.T) *Market {
	t.Helper()
	prices := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
	}
	graphs := []*graph.Graph{
		graph.MustFromEdges(3, [][2]int{{0, 1}}),
		graph.Empty(3),
	}
	m, err := New(prices, graphs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewBasics(t *testing.T) {
	m := twoByThree(t)
	if m.M() != 2 || m.N() != 3 {
		t.Errorf("dims = (%d,%d), want (2,3)", m.M(), m.N())
	}
	if m.Price(1, 2) != 6 {
		t.Errorf("Price(1,2) = %v, want 6", m.Price(1, 2))
	}
	if !m.Interferes(0, 0, 1) || m.Interferes(1, 0, 1) {
		t.Error("interference lookup wrong")
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name   string
		prices [][]float64
		graphs []*graph.Graph
	}{
		{"no channels", nil, nil},
		{"ragged prices", [][]float64{{1, 2}, {3}}, []*graph.Graph{graph.Empty(2), graph.Empty(2)}},
		{"negative price", [][]float64{{-1}}, []*graph.Graph{graph.Empty(1)}},
		{"graph count", [][]float64{{1}, {2}}, []*graph.Graph{graph.Empty(1)}},
		{"graph size", [][]float64{{1, 2}}, []*graph.Graph{graph.Empty(9)}},
		{"nil graph", [][]float64{{1}}, []*graph.Graph{nil}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.prices, tt.graphs); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestInterfererIn(t *testing.T) {
	m := twoByThree(t)
	if !m.InterfererIn(0, 0, []int{2, 1}) {
		t.Error("buyer 0 interferes with 1 on channel 0")
	}
	if m.InterfererIn(0, 0, []int{0, 2}) {
		t.Error("self must be skipped; 2 does not interfere")
	}
}

func TestBuyerPrefOrder(t *testing.T) {
	prices := [][]float64{
		{2, 0},
		{3, 0},
		{1, 0},
	}
	m, err := New(prices, []*graph.Graph{graph.Empty(2), graph.Empty(2), graph.Empty(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BuyerPrefOrder(0); !reflect.DeepEqual(got, []int{1, 0, 2}) {
		t.Errorf("BuyerPrefOrder(0) = %v, want [1 0 2]", got)
	}
	if got := m.BuyerPrefOrder(1); len(got) != 0 {
		t.Errorf("BuyerPrefOrder of all-zero buyer = %v, want empty", got)
	}
}

func TestBuyerPrefOrderTieBreak(t *testing.T) {
	prices := [][]float64{{5}, {5}, {7}}
	m, err := New(prices, []*graph.Graph{graph.Empty(1), graph.Empty(1), graph.Empty(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BuyerPrefOrder(0); !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Errorf("tie break = %v, want [2 0 1] (equal prices keep channel order)", got)
	}
}

func TestWelfareUpperBound(t *testing.T) {
	m := twoByThree(t)
	// Per-buyer maxima: 4, 5, 6.
	if got := m.WelfareUpperBound(); got != 15 {
		t.Errorf("WelfareUpperBound = %v, want 15", got)
	}
}

func TestGenerateDims(t *testing.T) {
	m, err := Generate(Config{Sellers: 4, Buyers: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.M() != 4 || m.N() != 9 {
		t.Errorf("dims = (%d,%d), want (4,9)", m.M(), m.N())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("generated market invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Sellers: 3, Buyers: 8, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Spec(), b.Spec()) {
		t.Error("same config should generate identical markets")
	}
	c, err := Generate(Config{Sellers: 3, Buyers: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Spec(), c.Spec()) {
		t.Error("different seeds should generate different markets")
	}
}

func TestGeneratePricesInUnitInterval(t *testing.T) {
	m, err := Generate(Config{Sellers: 5, Buyers: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.M(); i++ {
		for j := 0; j < m.N(); j++ {
			if p := m.Price(i, j); p < 0 || p >= 1 {
				t.Fatalf("price out of [0,1): %v", p)
			}
		}
	}
}

func TestGenerateGeometry(t *testing.T) {
	m, err := Generate(Config{Sellers: 3, Buyers: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.N(); j++ {
		p, ok := m.BuyerPos(j)
		if !ok {
			t.Fatal("generated market should have geometry")
		}
		if p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 10 {
			t.Errorf("buyer %d at %v outside the 10×10 area", j, p)
		}
	}
	for i := 0; i < m.M(); i++ {
		r, ok := m.Range(i)
		if !ok || r <= 0 || r > 5 {
			t.Errorf("channel %d range %v, want in (0,5]", i, r)
		}
	}
}

// TestGenerateGraphConsistency: generated interference edges agree with the
// disk rule dist ≤ range.
func TestGenerateGraphConsistency(t *testing.T) {
	m, err := Generate(Config{Sellers: 4, Buyers: 15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.M(); i++ {
		rng, _ := m.Range(i)
		for a := 0; a < m.N(); a++ {
			for b := a + 1; b < m.N(); b++ {
				pa, _ := m.BuyerPos(a)
				pb, _ := m.BuyerPos(b)
				want := pa.Dist(pb) <= rng
				if got := m.Interferes(i, a, b); got != want {
					t.Errorf("channel %d edge (%d,%d) = %v, want %v (dist %.3f vs range %.3f)",
						i, a, b, got, want, pa.Dist(pb), rng)
				}
			}
		}
	}
}

func TestGenerateMultiDemandDummies(t *testing.T) {
	m, err := Generate(Config{
		Sellers:        2,
		Buyers:         3,
		SellerChannels: []int{2, 1},
		BuyerDemands:   []int{2, 1, 3},
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.M() != 3 || m.N() != 6 {
		t.Fatalf("dims = (%d,%d), want (3,6)", m.M(), m.N())
	}
	if m.SellerOwner(0) != 0 || m.SellerOwner(1) != 0 || m.SellerOwner(2) != 1 {
		t.Error("seller owners wrong")
	}
	wantOwners := []int{0, 0, 1, 2, 2, 2}
	for j, want := range wantOwners {
		if m.BuyerOwner(j) != want {
			t.Errorf("BuyerOwner(%d) = %d, want %d", j, m.BuyerOwner(j), want)
		}
	}
	// Dummies of one buyer interfere on every channel (enforced by Validate,
	// but assert directly too).
	for i := 0; i < m.M(); i++ {
		if !m.Interferes(i, 0, 1) || !m.Interferes(i, 3, 4) || !m.Interferes(i, 4, 5) {
			t.Errorf("channel %d: co-owned dummies must interfere", i)
		}
	}
	// Dummies share the owner's utility vector.
	for i := 0; i < m.M(); i++ {
		if m.Price(i, 3) != m.Price(i, 4) || m.Price(i, 4) != m.Price(i, 5) {
			t.Errorf("channel %d: dummies of buyer 2 must share prices", i)
		}
	}
}

func TestGenerateValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no sellers", Config{Sellers: 0, Buyers: 5}},
		{"no buyers", Config{Sellers: 2, Buyers: 0}},
		{"bad channel counts", Config{Sellers: 2, Buyers: 2, SellerChannels: []int{1}}},
		{"bad demands", Config{Sellers: 2, Buyers: 2, BuyerDemands: []int{1, 0}}},
		{"zero channels", Config{Sellers: 1, Buyers: 1, SellerChannels: []int{0}}},
		{"negative similarity", Config{Sellers: 2, Buyers: 2, Similarity: &SimilarityConfig{PermuteM: -1}}},
		{"negative area", Config{Sellers: 2, Buyers: 2, AreaSide: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestSimilarityExtremes(t *testing.T) {
	// PermuteM = 0: vectors sorted identically → SRCC exactly 1.
	m, err := Generate(Config{Sellers: 8, Buyers: 12, Similarity: &SimilarityConfig{PermuteM: 0}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := m.AvgSimilarity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-9 {
		t.Errorf("PermuteM=0 similarity = %v, want 1", rho)
	}

	// PermuteM = M: approximately independent → SRCC near 0.
	m, err = Generate(Config{Sellers: 8, Buyers: 40, Similarity: &SimilarityConfig{PermuteM: 8}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rho, err = m.AvgSimilarity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.25 {
		t.Errorf("PermuteM=M similarity = %v, want ≈ 0", rho)
	}
}

// TestSimilarityMonotoneProperty: average SRCC decreases (weakly, up to
// noise) as PermuteM grows, reproducing the paper's similarity knob.
func TestSimilarityMonotoneProperty(t *testing.T) {
	prev := 2.0
	for _, permuteM := range []int{0, 2, 4, 8} {
		var sum float64
		const reps = 10
		for seed := int64(0); seed < reps; seed++ {
			m, err := Generate(Config{
				Sellers: 8, Buyers: 15,
				Similarity: &SimilarityConfig{PermuteM: permuteM},
				Seed:       seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			rho, err := m.AvgSimilarity()
			if err != nil {
				t.Fatal(err)
			}
			sum += rho
		}
		avg := sum / reps
		if avg > prev+0.1 {
			t.Errorf("similarity at PermuteM=%d is %v, above previous %v", permuteM, avg, prev)
		}
		prev = avg
	}
}

func TestSpecRoundTrip(t *testing.T) {
	m, err := Generate(Config{Sellers: 3, Buyers: 7, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Market
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Spec(), decoded.Spec()) {
		t.Error("JSON round trip changed the market")
	}
}

func TestFromSpecErrors(t *testing.T) {
	if _, err := FromSpec(Spec{}); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := FromSpec(Spec{Prices: [][]float64{{1}}, Edges: nil}); err == nil {
		t.Error("mismatched edge lists should fail")
	}
	if _, err := FromSpec(Spec{Prices: [][]float64{{1, 2}}, Edges: [][][2]int{{{0, 9}}}}); err == nil {
		t.Error("bad edge should fail")
	}
}

func TestUnmarshalBadJSON(t *testing.T) {
	var m Market
	if err := json.Unmarshal([]byte("{"), &m); err == nil {
		t.Error("bad JSON should fail")
	}
}

// TestGeneratePropertyValid: any legal config yields a valid market whose
// every channel range respects (0, RangeMax].
func TestGeneratePropertyValid(t *testing.T) {
	f := func(seed int64) bool {
		r := seed % 97
		m, err := Generate(Config{Sellers: 2 + int(abs(r)%6), Buyers: 2 + int(abs(seed)%20), Seed: seed})
		if err != nil {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestRadioCalibrationEqualsDisk: at DeltaDB = 0 the SINR predicate is
// calibrated to coincide with the paper's disk rule, so generation under
// either model yields identical markets.
func TestRadioCalibrationEqualsDisk(t *testing.T) {
	disk, err := Generate(Config{Sellers: 4, Buyers: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sinr, err := Generate(Config{Sellers: 4, Buyers: 15, Seed: 6, Radio: &RadioConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(disk.Spec(), sinr.Spec()) {
		t.Error("calibrated SINR generation should equal disk generation")
	}
}

// TestRadioDeltaChangesDensity: a laxer threshold strictly prunes edges, a
// stricter one adds them.
func TestRadioDeltaChangesDensity(t *testing.T) {
	edgeCount := func(deltaDB float64) int {
		m, err := Generate(Config{Sellers: 4, Buyers: 20, Seed: 3, Radio: &RadioConfig{DeltaDB: deltaDB}})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < m.M(); i++ {
			total += m.Graph(i).M()
		}
		return total
	}
	lax, base, strict := edgeCount(6), edgeCount(0), edgeCount(-6)
	if !(lax < base && base < strict) {
		t.Errorf("edge counts lax/base/strict = %d/%d/%d, want increasing", lax, base, strict)
	}
}

// TestRadioBadParams propagates model validation.
func TestRadioBadParams(t *testing.T) {
	if _, err := Generate(Config{Sellers: 2, Buyers: 4, Radio: &RadioConfig{PathLossExp: 0.2}}); err == nil {
		t.Error("absurd path loss exponent should fail")
	}
}

// TestHotspotPlacement: clustered deployment stays inside the area, densifies
// interference versus uniform placement, and validates.
func TestHotspotPlacement(t *testing.T) {
	uniform, err := Generate(Config{Sellers: 4, Buyers: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := Generate(Config{Sellers: 4, Buyers: 60, Seed: 8, Hotspots: &HotspotConfig{Clusters: 2, Spread: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < clustered.N(); j++ {
		p, ok := clustered.BuyerPos(j)
		if !ok || p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 10 {
			t.Fatalf("buyer %d at %v outside the area", j, p)
		}
	}
	edges := func(m *Market) int {
		total := 0
		for i := 0; i < m.M(); i++ {
			total += m.Graph(i).M()
		}
		return total
	}
	if edges(clustered) <= edges(uniform) {
		t.Errorf("tight hotspots should densify interference: %d vs uniform %d",
			edges(clustered), edges(uniform))
	}
}

// TestHotspotValidation rejects bad hotspot configs.
func TestHotspotValidation(t *testing.T) {
	if _, err := Generate(Config{Sellers: 2, Buyers: 4, Hotspots: &HotspotConfig{Clusters: 0}}); err == nil {
		t.Error("zero clusters should fail")
	}
	if _, err := Generate(Config{Sellers: 2, Buyers: 4, Hotspots: &HotspotConfig{Clusters: 2, Spread: -1}}); err == nil {
		t.Error("negative spread should fail")
	}
}
