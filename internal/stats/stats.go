// Package stats provides the statistical substrate for the evaluation:
// Spearman's rank correlation coefficient (the paper's price-similarity
// metric, §V-A), and summary statistics used to aggregate replicated
// simulation runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Ranks returns the fractional ranks of xs (1-based; ties receive the average
// of the ranks they span), the convention required by Spearman's rho.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) are tied; average rank is the midpoint.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// SRCC returns Spearman's rank correlation coefficient between xs and ys,
// computed as Pearson correlation of the fractional ranks (tie-safe).
func SRCC(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: SRCC over mismatched lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: SRCC needs at least 2 observations, got %d", len(xs))
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Pearson returns the Pearson correlation coefficient of xs and ys. When
// either vector is constant the correlation is undefined; this returns an
// error so callers surface degenerate inputs instead of silently using NaN.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson over mismatched lengths %d and %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 observations, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: Pearson undefined for constant input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// AveragePairwiseSRCC computes the mean SRCC over all unordered pairs of
// vectors, the paper's similarity score for a set of buyer utility vectors.
func AveragePairwiseSRCC(vectors [][]float64) (float64, error) {
	if len(vectors) < 2 {
		return 0, fmt.Errorf("stats: pairwise SRCC needs at least 2 vectors, got %d", len(vectors))
	}
	var sum float64
	var pairs int
	for a := 0; a < len(vectors); a++ {
		for b := a + 1; b < len(vectors); b++ {
			rho, err := SRCC(vectors[a], vectors[b])
			if err != nil {
				return 0, fmt.Errorf("stats: pair (%d,%d): %w", a, b, err)
			}
			sum += rho
			pairs++
		}
	}
	return sum / float64(pairs), nil
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (q in [0,1]) of an ascending-sorted
// sample, linearly interpolated between order statistics — the exact-sample
// counterpart to obs.Histogram.Quantile's bucket estimate. Returns 0 for
// empty input; q is clamped to [0,1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + (sorted[lo+1]-sorted[lo])*frac
}

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary aggregates replicated measurements of one quantity.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	StdErr float64 `json:"std_err"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), StdErr: StdErr(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean.
func (s Summary) CI95() float64 { return 1.96 * s.StdErr }

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) of an allocation:
// 1 when everyone receives the same amount, approaching 1/n as one
// participant takes everything. Used to compare how evenly matching and the
// double-auction baseline spread buyer utility. Empty or all-zero input is
// conventionally perfectly fair (index 1).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
