package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"specmatch/internal/xrand"
)

func TestRanksSimple(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ranks = %v, want %v", got, want)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ranks with ties = %v, want %v", got, want)
	}
}

func TestRanksAllEqual(t *testing.T) {
	got := Ranks([]float64{5, 5, 5})
	want := []float64{2, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ranks all-equal = %v, want %v", got, want)
	}
}

func TestSRCCPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	rho, err := SRCC(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("SRCC of co-monotone vectors = %v, want 1", rho)
	}
}

func TestSRCCReversed(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{4, 3, 2, 1}
	rho, err := SRCC(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho+1) > 1e-12 {
		t.Errorf("SRCC of anti-monotone vectors = %v, want -1", rho)
	}
}

// TestSRCCIsRankInvariant: SRCC depends only on ranks, so any monotone
// transform of one vector leaves it unchanged.
func TestSRCCIsRankInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		n := 5 + r.Intn(10)
		x := make([]float64, n)
		y := make([]float64, n)
		yT := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
			yT[i] = math.Exp(3 * y[i]) // strictly monotone transform
		}
		a, err1 := SRCC(x, y)
		b, err2 := SRCC(x, yT)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSRCCBounded: |rho| ≤ 1 always.
func TestSRCCBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(12)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		rho, err := SRCC(x, y)
		if err != nil {
			return false
		}
		return rho >= -1-1e-12 && rho <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSRCCErrors(t *testing.T) {
	if _, err := SRCC([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := SRCC([]float64{1}, []float64{2}); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := SRCC([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("constant vector (all-tied ranks) should fail as undefined")
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	rho, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("Pearson of linear data = %v, want 1", rho)
	}
}

func TestAveragePairwiseSRCC(t *testing.T) {
	vectors := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{3, 2, 1},
	}
	// Pairs: (0,1)=1, (0,2)=-1, (1,2)=-1 → mean = -1/3.
	got, err := AveragePairwiseSRCC(vectors)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-1.0/3)) > 1e-12 {
		t.Errorf("AveragePairwiseSRCC = %v, want -1/3", got)
	}
	if _, err := AveragePairwiseSRCC(vectors[:1]); err == nil {
		t.Error("fewer than 2 vectors should fail")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want 32/7", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Error("empty-input statistics should be 0")
	}
}

func TestVarianceSingle(t *testing.T) {
	if Variance([]float64{42}) != 0 {
		t.Error("single-observation variance should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive for non-constant data")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Errorf("Summarize(nil) = %+v", empty)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all zero", []float64{0, 0}, 1},
		{"equal", []float64{2, 2, 2, 2}, 1},
		{"one hog", []float64{4, 0, 0, 0}, 0.25},
		{"half", []float64{1, 1, 0, 0}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainIndex(tt.xs); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("JainIndex(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

// TestJainIndexBounds: the index always lies in [1/n, 1] for non-negative
// non-zero allocations.
func TestJainIndexBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		idx := JainIndex(xs)
		return idx >= 1/float64(n)-1e-12 && idx <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty input must give 0")
	}
	one := []float64{7}
	if Quantile(one, 0) != 7 || Quantile(one, 1) != 7 {
		t.Error("single sample must be every quantile")
	}
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5}, // interpolated
		{-1, 1}, {2, 5}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}
