// Package stability verifies the solution concepts of §III-C/D against a
// concrete matching: interference-freeness, individual rationality (Def. 2),
// Nash stability (Def. 3) and pairwise stability (Def. 4). The checkers
// return the witnessing violation, so tests and CLIs can print exactly which
// buyer or seller-buyer pair blocks a matching.
//
// Checking pairwise stability naively quantifies over subsets S ⊆ µ(i), but
// for a fixed (i, j) the seller-optimal sacrifice set is always
// S* = µ(i) \ N_i(j) — keeping every current member compatible with j — so a
// blocking pair exists iff b_{i,j} exceeds the total price of the members j
// would displace. That makes the check polynomial.
package stability

import (
	"fmt"

	"specmatch/internal/market"
	"specmatch/internal/matching"
)

// InterferenceViolation reports two interfering buyers sharing a channel.
type InterferenceViolation struct {
	Seller int
	BuyerA int
	BuyerB int
}

// String implements fmt.Stringer.
func (v InterferenceViolation) String() string {
	return fmt.Sprintf("buyers %d and %d interfere on channel %d", v.BuyerA, v.BuyerB, v.Seller)
}

// CheckInterferenceFree returns all pairs of interfering buyers matched to
// the same seller; nil means the matching satisfies constraint (3).
func CheckInterferenceFree(m *market.Market, mu *matching.Matching) []InterferenceViolation {
	var out []InterferenceViolation
	for i := 0; i < mu.M(); i++ {
		coalition := mu.Coalition(i)
		for a := 0; a < len(coalition); a++ {
			for b := a + 1; b < len(coalition); b++ {
				if m.Interferes(i, coalition[a], coalition[b]) {
					out = append(out, InterferenceViolation{Seller: i, BuyerA: coalition[a], BuyerB: coalition[b]})
				}
			}
		}
	}
	return out
}

// IRViolation reports an individual-rationality block (Def. 2): either a
// seller who prefers dropping some matched buyers, or a buyer who prefers
// being unmatched.
type IRViolation struct {
	// Seller is set (with Buyer = -1) when the seller blocks by preferring
	// to drop Drop; Buyer is set (with Seller = her match) when the buyer
	// blocks.
	Seller int
	Buyer  int
	Drop   []int
}

// String implements fmt.Stringer.
func (v IRViolation) String() string {
	if v.Buyer == -1 {
		return fmt.Sprintf("seller %d prefers dropping buyers %v", v.Seller, v.Drop)
	}
	return fmt.Sprintf("buyer %d prefers being unmatched to seller %d", v.Buyer, v.Seller)
}

// CheckIndividualRational returns all individual-rationality violations; nil
// means the matching is individually rational.
//
// For an interference-free matching neither side can block: every matched
// buyer enjoys positive utility, and dropping buyers only lowers a seller's
// total price. A seller can block only when her coalition contains
// interference, in which case dropping one side of an interfering pair is an
// improvement; that is the case this checker hunts for.
func CheckIndividualRational(m *market.Market, mu *matching.Matching) []IRViolation {
	var out []IRViolation
	for i := 0; i < mu.M(); i++ {
		coalition := mu.Coalition(i)
		if len(coalition) == 0 {
			continue
		}
		if m.Graph(i).IsIndependent(coalition) {
			continue
		}
		// The coalition has interference: the seller prefers any
		// interference-free sub-coalition, e.g. greedily keeping a maximal
		// independent prefix; dropping the rest blocks the matching.
		keep := make([]int, 0, len(coalition))
		var drop []int
		for _, j := range coalition {
			if m.Graph(i).ConflictsWith(j, keep) {
				drop = append(drop, j)
			} else {
				keep = append(keep, j)
			}
		}
		out = append(out, IRViolation{Seller: i, Buyer: -1, Drop: drop})
	}
	for j := 0; j < mu.N(); j++ {
		i := mu.SellerOf(j)
		if i == market.Unmatched {
			continue
		}
		// The buyer blocks iff her peer-effect utility is zero, i.e. an
		// interferer shares her coalition, making unmatched weakly better;
		// Def. 2 blocks on strict preference, and the paper treats
		// zero-utility membership as blocked (she is indifferent at zero but
		// pays her offered price, so participation is irrational).
		if matching.BuyerUtilityIn(m, mu, j) == 0 {
			out = append(out, IRViolation{Seller: i, Buyer: j})
		}
	}
	return out
}

// NashDeviation is a profitable unilateral move (Def. 3): buyer j would gain
// by joining seller To's coalition (leaving her current seller From, which
// may be market.Unmatched).
type NashDeviation struct {
	Buyer   int
	From    int
	To      int
	Gain    float64 // utility in the target coalition minus current utility
	Current float64
}

// String implements fmt.Stringer.
func (d NashDeviation) String() string {
	return fmt.Sprintf("buyer %d gains %.4f moving from seller %d to seller %d", d.Buyer, d.Gain, d.From, d.To)
}

// CheckNashStable returns all profitable unilateral deviations; nil means
// the matching is Nash-stable (Def. 3).
func CheckNashStable(m *market.Market, mu *matching.Matching) []NashDeviation {
	var out []NashDeviation
	for j := 0; j < mu.N(); j++ {
		cur := matching.BuyerUtilityIn(m, mu, j)
		from := mu.SellerOf(j)
		for i := 0; i < mu.M(); i++ {
			if i == from {
				continue
			}
			target := mu.Coalition(i)
			gain := matching.BuyerUtility(m, i, j, target) - cur
			if gain > 0 {
				out = append(out, NashDeviation{Buyer: j, From: from, To: i, Gain: gain, Current: cur})
			}
		}
	}
	return out
}

// BlockingPair is a pairwise-stability block (Def. 4): seller Seller and
// buyer Buyer both improve if the seller sacrifices Sacrifice ⊆ µ(Seller)
// and admits Buyer.
type BlockingPair struct {
	Seller     int
	Buyer      int
	Sacrifice  []int
	SellerGain float64
	BuyerGain  float64
}

// String implements fmt.Stringer.
func (b BlockingPair) String() string {
	return fmt.Sprintf("seller %d and buyer %d block (sacrificing %v; seller +%.4f, buyer +%.4f)",
		b.Seller, b.Buyer, b.Sacrifice, b.SellerGain, b.BuyerGain)
}

// CheckPairwiseStable returns all blocking seller-buyer pairs; nil means the
// matching is pairwise stable (Def. 4). The paper shows the proposed
// algorithm does not guarantee this property (Figs. 4–5), so a non-empty
// result on its output is expected in general.
func CheckPairwiseStable(m *market.Market, mu *matching.Matching) []BlockingPair {
	var out []BlockingPair
	for i := 0; i < mu.M(); i++ {
		coalition := mu.Coalition(i)
		for j := 0; j < mu.N(); j++ {
			if mu.Contains(i, j) {
				continue
			}
			// Seller-optimal sacrifice: displace exactly j's interfering
			// neighbors inside µ(i).
			var keep, sacrifice []int
			var sacrificePrice float64
			for _, j2 := range coalition {
				if m.Interferes(i, j, j2) {
					sacrifice = append(sacrifice, j2)
					sacrificePrice += m.Price(i, j2)
				} else {
					keep = append(keep, j2)
				}
			}
			sellerGain := m.Price(i, j) - sacrificePrice
			if sellerGain <= 0 {
				continue
			}
			buyerGain := matching.BuyerUtility(m, i, j, keep) - matching.BuyerUtilityIn(m, mu, j)
			if buyerGain <= 0 {
				continue
			}
			out = append(out, BlockingPair{
				Seller:     i,
				Buyer:      j,
				Sacrifice:  sacrifice,
				SellerGain: sellerGain,
				BuyerGain:  buyerGain,
			})
		}
	}
	return out
}

// Report summarizes every §III property of a matching in one shot.
type Report struct {
	InterferenceFree     bool
	IndividuallyRational bool
	NashStable           bool
	PairwiseStable       bool

	Interference []InterferenceViolation
	IR           []IRViolation
	Nash         []NashDeviation
	Blocking     []BlockingPair
}

// Check runs every checker and assembles a Report.
func Check(m *market.Market, mu *matching.Matching) Report {
	r := Report{
		Interference: CheckInterferenceFree(m, mu),
		IR:           CheckIndividualRational(m, mu),
		Nash:         CheckNashStable(m, mu),
		Blocking:     CheckPairwiseStable(m, mu),
	}
	r.InterferenceFree = len(r.Interference) == 0
	r.IndividuallyRational = len(r.IR) == 0
	r.NashStable = len(r.Nash) == 0
	r.PairwiseStable = len(r.Blocking) == 0
	return r
}

// String renders the report as a short multi-line summary.
func (r Report) String() string {
	flag := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "NO"
	}
	return fmt.Sprintf("interference-free: %s (%d)\nindividually rational: %s (%d)\nnash-stable: %s (%d)\npairwise-stable: %s (%d)",
		flag(r.InterferenceFree), len(r.Interference),
		flag(r.IndividuallyRational), len(r.IR),
		flag(r.NashStable), len(r.Nash),
		flag(r.PairwiseStable), len(r.Blocking))
}
