package stability_test

import (
	"reflect"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/paperexample"
	"specmatch/internal/stability"
)

// buildMatching assembles a matching from seller → buyers lists.
func buildMatching(t *testing.T, m, n int, coalitions [][]int) *matching.Matching {
	t.Helper()
	mu := matching.New(m, n)
	for i, buyers := range coalitions {
		for _, j := range buyers {
			if err := mu.Assign(i, j); err != nil {
				t.Fatalf("Assign(%d,%d): %v", i, j, err)
			}
		}
	}
	return mu
}

// TestCounterexampleStageITrace replays Fig. 4: the algorithm must converge
// in 4 rounds to µ(a)={1,5,9}, µ(b)={3,4,7}, µ(c)={2,6,8}, and Stage II must
// leave the matching unchanged (the paper "ignores Stage II since the
// matching result will not change").
func TestCounterexampleStageITrace(t *testing.T) {
	m := paperexample.Counterexample()
	mu1, stats, err := core.RunStageI(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 4 {
		t.Errorf("Stage I rounds = %d, want 4", stats.Rounds)
	}
	want := paperexample.CounterexampleMatching()
	for i, coalition := range want {
		if got := mu1.Coalition(i); !reflect.DeepEqual(got, coalition) {
			t.Errorf("Stage I µ(%d) = %v, want %v", i, got, coalition)
		}
	}

	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matching.Equal(mu1) {
		t.Error("Stage II changed the counterexample matching; paper says it must not")
	}
	if res.Welfare != paperexample.CounterexampleWelfare {
		t.Errorf("welfare = %v, want %v", res.Welfare, paperexample.CounterexampleWelfare)
	}
}

// TestCounterexampleNotPairwiseStable reproduces the paper's Def. 4 claim:
// seller b (index 1) and buyer 2 (index 1) block the outcome with sacrifice
// S = {3, 7} — i.e. only buyer 4 (index 3) is displaced.
func TestCounterexampleNotPairwiseStable(t *testing.T) {
	m := paperexample.Counterexample()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := stability.Check(m, res.Matching)
	if !rep.NashStable {
		t.Fatalf("outcome must be Nash-stable (Prop. 4); deviations: %v", rep.Nash)
	}
	if !rep.IndividuallyRational || !rep.InterferenceFree {
		t.Fatalf("outcome must be IR and interference-free: %v", rep)
	}
	if rep.PairwiseStable {
		t.Fatal("outcome must NOT be pairwise stable (Fig. 4/5 counterexample)")
	}
	found := false
	for _, bp := range rep.Blocking {
		if bp.Seller == 1 && bp.Buyer == 1 {
			found = true
			if !reflect.DeepEqual(bp.Sacrifice, []int{3}) {
				t.Errorf("blocking pair sacrifice = %v, want [3] (only buyer 4 displaced)", bp.Sacrifice)
			}
		}
	}
	if !found {
		t.Errorf("expected blocking pair (seller b, buyer 2); got %v", rep.Blocking)
	}
}

// TestCounterexampleNotBuyerOptimal reproduces the paper's Def. 5 claim:
// swapping buyers 2 and 4 across sellers b and c yields another Nash-stable
// matching in which no buyer is worse off and buyers 2 and 4 are strictly
// better off.
func TestCounterexampleNotBuyerOptimal(t *testing.T) {
	m := paperexample.Counterexample()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	improved := buildMatching(t, m.M(), m.N(), paperexample.CounterexampleImproved())

	if v := stability.CheckInterferenceFree(m, improved); len(v) != 0 {
		t.Fatalf("improved matching infeasible: %v", v)
	}
	if devs := stability.CheckNashStable(m, improved); len(devs) != 0 {
		t.Fatalf("improved matching must be Nash-stable: %v", devs)
	}
	if got := matching.Welfare(m, improved); got != paperexample.CounterexampleImprovedWelfare {
		t.Errorf("improved welfare = %v, want %v", got, paperexample.CounterexampleImprovedWelfare)
	}

	strictlyBetter := 0
	for j := 0; j < m.N(); j++ {
		before := matching.BuyerUtilityIn(m, res.Matching, j)
		after := matching.BuyerUtilityIn(m, improved, j)
		if after < before {
			t.Errorf("buyer %d worse off: %v → %v", j, before, after)
		}
		if after > before {
			strictlyBetter++
		}
	}
	if strictlyBetter != 2 {
		t.Errorf("strictly better buyers = %d, want 2 (buyers 2 and 4)", strictlyBetter)
	}
}

// TestCheckersOnEmptyMatching: an empty matching is trivially
// interference-free and IR, and Nash-unstable whenever anyone values any
// channel.
func TestCheckersOnEmptyMatching(t *testing.T) {
	m := paperexample.Toy()
	mu := matching.New(m.M(), m.N())
	if len(stability.CheckInterferenceFree(m, mu)) != 0 {
		t.Error("empty matching cannot have interference")
	}
	if len(stability.CheckIndividualRational(m, mu)) != 0 {
		t.Error("empty matching is trivially IR")
	}
	if len(stability.CheckNashStable(m, mu)) == 0 {
		t.Error("empty matching of the toy market must have profitable deviations")
	}
}

// TestInterferenceAndIRViolationsDetected plants violations and checks the
// checkers find them.
func TestInterferenceAndIRViolationsDetected(t *testing.T) {
	m := paperexample.Toy()
	mu := matching.New(m.M(), m.N())
	// Buyers 1 and 2 (indices 0,1) interfere on channel a (index 0).
	if err := mu.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := mu.Assign(0, 1); err != nil {
		t.Fatal(err)
	}
	iv := stability.CheckInterferenceFree(m, mu)
	if len(iv) != 1 || iv[0].Seller != 0 || iv[0].BuyerA != 0 || iv[0].BuyerB != 1 {
		t.Errorf("interference violations = %v", iv)
	}
	ir := stability.CheckIndividualRational(m, mu)
	// The seller blocks (coalition has interference) and both buyers block
	// (zero utility).
	var sellerBlocks, buyerBlocks int
	for _, v := range ir {
		if v.Buyer == -1 {
			sellerBlocks++
		} else {
			buyerBlocks++
		}
	}
	if sellerBlocks != 1 || buyerBlocks != 2 {
		t.Errorf("IR violations: %d seller, %d buyer; want 1 and 2 (%v)", sellerBlocks, buyerBlocks, ir)
	}
}

// TestReportString smoke-tests the human-readable summary.
func TestReportString(t *testing.T) {
	m := paperexample.Toy()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := stability.Check(m, res.Matching)
	s := rep.String()
	if s == "" {
		t.Error("empty report string")
	}
}

// TestAlgorithmStableAcrossRandomMarkets is the Prop. 3/4 property test: on
// random geometric markets the algorithm's output is always
// interference-free, individually rational and Nash-stable.
func TestAlgorithmStableAcrossRandomMarkets(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		cfg := market.Config{Sellers: 2 + int(seed%7), Buyers: 5 + int(seed%23), Seed: seed}
		m, err := market.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := stability.Check(m, res.Matching)
		if !rep.InterferenceFree || !rep.IndividuallyRational || !rep.NashStable {
			t.Fatalf("seed %d: %v", seed, rep)
		}
	}
}
