package xrand

import (
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for k := 0; k < 100; k++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must generate the same sequence")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Adjacent stream indices must produce decorrelated seeds, not
	// consecutive ones.
	s0, s1 := Split(1, 0), Split(1, 1)
	if s0 == s1 {
		t.Error("adjacent streams share a seed")
	}
	if d := s1 - s0; d > -16 && d < 16 {
		t.Errorf("adjacent stream seeds differ by only %d; not mixed", d)
	}
}

func TestSplitDeterministic(t *testing.T) {
	if Split(7, 3) != Split(7, 3) {
		t.Error("Split must be a pure function")
	}
	if Split(7, 3) == Split(8, 3) || Split(7, 3) == Split(7, 4) {
		t.Error("Split must depend on both arguments")
	}
}

func TestNewStream(t *testing.T) {
	a := NewStream(5, 2)
	b := New(Split(5, 2))
	for k := 0; k < 20; k++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewStream must equal New(Split(...))")
		}
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := SplitMix64(12345)
	flipped := SplitMix64(12345 ^ 1)
	diff := base ^ flipped
	ones := 0
	for ; diff != 0; diff &= diff - 1 {
		ones++
	}
	if ones < 16 || ones > 48 {
		t.Errorf("avalanche flipped %d bits of 64, want near 32", ones)
	}
}

func TestUniformOpenClosed(t *testing.T) {
	r := New(3)
	for k := 0; k < 10000; k++ {
		v := UniformOpenClosed(r, 5)
		if v <= 0 || v > 5 {
			t.Fatalf("UniformOpenClosed = %v, want in (0, 5]", v)
		}
	}
}

func TestUniformOpenClosedCoverage(t *testing.T) {
	r := New(4)
	low, high := 0, 0
	for k := 0; k < 2000; k++ {
		if v := UniformOpenClosed(r, 1); v < 0.5 {
			low++
		} else {
			high++
		}
	}
	if low < 800 || high < 800 {
		t.Errorf("halves hit %d/%d of 2000; not uniform", low, high)
	}
}

// TestStreamsUncorrelated: first draws of many streams look uniform.
func TestStreamsUncorrelated(t *testing.T) {
	f := func(seed int64) bool {
		var below int
		const streams = 64
		for i := 0; i < streams; i++ {
			if NewStream(seed, i).Float64() < 0.5 {
				below++
			}
		}
		// Allow a wide band; catching only gross correlation.
		return below > 10 && below < 54
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
