// Package xrand provides deterministic, splittable random number generation
// for reproducible experiments.
//
// Every stochastic component in this repository draws randomness through a
// seeded *rand.Rand obtained from this package, never from the global
// math/rand source. Experiments that fan out across goroutines derive one
// independent stream per task with Split, so results are identical regardless
// of scheduling order or degree of parallelism.
package xrand

import "math/rand"

// SplitMix64 advances a SplitMix64 state and returns the next value in the
// sequence. It is the generator recommended by Vigna for seeding other PRNGs:
// consecutive outputs are statistically independent even for adjacent seeds,
// which makes it safe to derive per-task seeds from (baseSeed, taskIndex)
// pairs.
func SplitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a deterministic generator for the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives the seed for the i-th independent stream of a base seed.
// Streams for distinct (seed, i) pairs are decorrelated via SplitMix64.
func Split(seed int64, i int) int64 {
	mixed := SplitMix64(uint64(seed) ^ SplitMix64(uint64(i)+0x5851f42d4c957f2d))
	return int64(mixed)
}

// NewStream returns a generator for the i-th independent stream of seed.
func NewStream(seed int64, i int) *rand.Rand {
	return New(Split(seed, i))
}

// UniformOpenClosed draws from the open-closed interval (0, hi]. The zero
// boundary is excluded by resampling, matching distributions specified as
// "(0, hi]" such as the paper's per-channel transmission range.
func UniformOpenClosed(r *rand.Rand, hi float64) float64 {
	for {
		v := r.Float64() // in [0, 1)
		if v != 0 {
			return (1 - v) * hi // in (0, hi], since 1-v ∈ (0, 1]
		}
	}
}
