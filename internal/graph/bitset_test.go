package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// randomGraph builds a G(n, p) graph and returns it alongside a plain
// map-of-sets reference adjacency built through the same AddEdge calls.
func randomGraph(t *testing.T, r *rand.Rand, n int, p float64) (*Graph, []map[int]bool) {
	t.Helper()
	g := New(n)
	ref := make([]map[int]bool, n)
	for i := range ref {
		ref[i] = make(map[int]bool)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
				}
				ref[u][v], ref[v][u] = true, true
			}
		}
	}
	return g, ref
}

// TestBitsetSliceEquivalence is the metamorphic guard for the bitset
// migration: on random graphs, the word-parallel view (Row, ConflictsMask,
// InducedDegreeMask, IsIndependentMask) and the slice view (Neighbors,
// EachNeighbor, ConflictsWith, InducedDegree, IsIndependent) must agree
// everywhere, and Neighbors must stay sorted ascending — the order the
// engine's float sums depend on.
func TestBitsetSliceEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Sizes straddle the 64-bit word boundary: sub-word, exact words, and
	// word+remainder graphs all exercise different masking paths.
	for _, n := range []int{1, 2, 63, 64, 65, 130} {
		for _, p := range []float64{0, 0.1, 0.5, 1} {
			g, ref := randomGraph(t, r, n, p)
			edges := 0
			for v := 0; v < n; v++ {
				nbrs := g.Neighbors(v)
				if !sort.IntsAreSorted(nbrs) {
					t.Fatalf("n=%d p=%g: Neighbors(%d) not sorted: %v", n, p, v, nbrs)
				}
				if len(nbrs) != len(ref[v]) || len(nbrs) != g.Degree(v) {
					t.Fatalf("n=%d p=%g: Degree(%d)=%d, %d neighbors, ref %d", n, p, v, g.Degree(v), len(nbrs), len(ref[v]))
				}
				edges += len(nbrs)
				// Row bits must be exactly the reference adjacency set, and
				// ForEach must visit them ascending.
				row := g.Row(v)
				if got := row.Count(); got != len(ref[v]) {
					t.Fatalf("n=%d p=%g: Row(%d) popcount %d, want %d", n, p, v, got, len(ref[v]))
				}
				prev := -1
				row.ForEach(func(u int) bool {
					if u <= prev {
						t.Fatalf("Row(%d).ForEach out of order: %d after %d", v, u, prev)
					}
					prev = u
					if !ref[v][u] {
						t.Fatalf("Row(%d) has spurious bit %d", v, u)
					}
					return true
				})
				for u := 0; u < n; u++ {
					if g.HasEdge(v, u) != ref[v][u] {
						t.Fatalf("HasEdge(%d,%d)=%v, ref %v", v, u, g.HasEdge(v, u), ref[v][u])
					}
				}
			}
			if edges != 2*g.M() {
				t.Fatalf("n=%d p=%g: M()=%d but neighbor lists sum to %d", n, p, g.M(), edges)
			}

			// Random subsets: mask kernels vs slice kernels.
			for trial := 0; trial < 20; trial++ {
				var set []int
				mask := NewBits(n)
				in := make([]bool, n)
				for v := 0; v < n; v++ {
					if r.Intn(3) == 0 {
						set = append(set, v)
						mask.Set(v)
						in[v] = true
					}
				}
				if got, want := g.IsIndependentMask(set, mask), g.IsIndependent(set); got != want {
					t.Fatalf("IsIndependentMask=%v, IsIndependent=%v on %v", got, want, set)
				}
				for v := 0; v < n; v++ {
					if got, want := g.ConflictsMask(v, mask), g.ConflictsWith(v, set); got != want {
						t.Fatalf("ConflictsMask(%d)=%v, ConflictsWith=%v", v, got, want)
					}
					if got, want := g.InducedDegreeMask(v, mask), g.InducedDegree(v, in); got != want {
						t.Fatalf("InducedDegreeMask(%d)=%d, InducedDegree=%d", v, got, want)
					}
				}
			}
		}
	}
}

// TestUnionRowsClosure pins the dirty-neighborhood kernel on the shapes the
// online engine's closure must handle: isolated vertices expand to nothing,
// a clique seed saturates to the whole clique, and a seed bit set then
// cleared (back-to-back add/remove of the same buyer) contributes nothing.
func TestUnionRowsClosure(t *testing.T) {
	// 0-1-2 path, 3 isolated, 4-5-6-7 clique.
	g := New(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	closure := func(seedVerts ...int) []int {
		seed := NewBits(8)
		out := NewBits(8)
		for _, v := range seedVerts {
			seed.Set(v)
			out.Set(v)
		}
		g.UnionRowsInto(seed, out)
		var got []int
		out.ForEach(func(v int) bool { got = append(got, v); return true })
		return got
	}
	eq := func(got, want []int) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	if got := closure(3); !eq(got, []int{3}) {
		t.Errorf("isolated vertex closure = %v, want [3]", got)
	}
	if got := closure(4); !eq(got, []int{4, 5, 6, 7}) {
		t.Errorf("clique member closure = %v, want the whole clique", got)
	}
	if got := closure(1); !eq(got, []int{0, 1, 2}) {
		t.Errorf("path center closure = %v, want [0 1 2]", got)
	}
	if got := closure(); got != nil {
		t.Errorf("empty seed closure = %v, want empty", got)
	}

	// Back-to-back add/remove of the same vertex: a Set immediately undone
	// by Clear must leave the seed — and hence the closure — untouched.
	seed := NewBits(8)
	seed.Set(1)
	seed.Set(4)
	seed.Clear(4)
	out := NewBits(8)
	out.Or(seed)
	g.UnionRowsInto(seed, out)
	var got []int
	out.ForEach(func(v int) bool { got = append(got, v); return true })
	if !eq(got, []int{0, 1, 2}) {
		t.Errorf("set-then-clear seed closure = %v, want [0 1 2]", got)
	}

	// A seed wider than the graph (buyer universe larger than this channel's
	// vertex set) must not read past the graph's rows.
	wide := NewBits(1024)
	wide.Set(1)
	wide.Set(900)
	wideOut := NewBits(1024)
	g.UnionRowsInto(wide, wideOut)
	var wideGot []int
	wideOut.ForEach(func(v int) bool { wideGot = append(wideGot, v); return true })
	if !eq(wideGot, []int{0, 2}) {
		t.Errorf("wide seed closure = %v, want [0 2]", wideGot)
	}
}

// TestBitsOps covers the Bits primitives the kernels are built from,
// including the 64-bit word boundaries.
func TestBitsOps(t *testing.T) {
	b := NewBits(130)
	for _, v := range []int{0, 63, 64, 127, 128, 129} {
		if b.Get(v) {
			t.Fatalf("fresh bitset has bit %d", v)
		}
		b.Set(v)
		if !b.Get(v) {
			t.Fatalf("Set(%d) not visible", v)
		}
	}
	if got := b.Count(); got != 6 {
		t.Fatalf("Count=%d, want 6", got)
	}
	if !b.Any() {
		t.Fatal("Any=false on non-empty bitset")
	}
	other := NewBits(130)
	other.Set(63)
	other.Set(64)
	if got := AndCount(b, other); got != 2 {
		t.Fatalf("AndCount=%d, want 2", got)
	}
	if !AndAny(b, other) {
		t.Fatal("AndAny=false with shared bits")
	}
	b.AndNot(other)
	if b.Get(63) || b.Get(64) || !b.Get(127) {
		t.Fatal("AndNot cleared the wrong bits")
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset left bits set")
	}
	if b.Get(-1) || b.Get(1<<20) {
		t.Fatal("out-of-range Get must read unset")
	}
}
