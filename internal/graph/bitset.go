package graph

import "math/bits"

// Bits is a fixed-capacity bitset over vertex IDs, the word-parallel
// representation behind the package's adjacency rows and the scratch masks
// the MWIS solvers and the incremental repair engine operate on. A Bits of
// length WordsFor(n) covers vertices [0, n); all operations are plain word
// loops so the compiler can keep them branch-light.
//
// Iteration order is always ascending vertex ID (word by word, lowest set
// bit first). That order is part of the contract for the same reason the
// Graph's neighbor lists are sorted: floating-point neighborhood sums must
// be bit-for-bit reproducible, so no representation change may reorder
// them.
type Bits []uint64

const wordShift = 6
const wordMask = 63

// WordsFor returns the number of 64-bit words needed to cover n vertices.
func WordsFor(n int) int { return (n + wordMask) >> wordShift }

// NewBits returns an all-zero bitset covering vertices [0, n).
func NewBits(n int) Bits { return make(Bits, WordsFor(n)) }

// Set sets bit v. The caller guarantees v is in range.
func (b Bits) Set(v int) { b[v>>wordShift] |= 1 << (uint(v) & wordMask) }

// Clear clears bit v. The caller guarantees v is in range.
func (b Bits) Clear(v int) { b[v>>wordShift] &^= 1 << (uint(v) & wordMask) }

// Get reports whether bit v is set; out-of-range v reads as unset.
func (b Bits) Get(v int) bool {
	w := v >> wordShift
	if w < 0 || w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(v)&wordMask)) != 0
}

// Reset clears every bit.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Copy overwrites b with src (same length required by the caller).
func (b Bits) Copy(src Bits) { copy(b, src) }

// Or sets b |= x.
func (b Bits) Or(x Bits) {
	for i := range x {
		b[i] |= x[i]
	}
}

// AndNot clears from b every bit set in x (b &^= x).
func (b Bits) AndNot(x Bits) {
	for i := range x {
		b[i] &^= x[i]
	}
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b Bits) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in ascending order, stopping early if
// fn returns false.
func (b Bits) ForEach(fn func(v int) bool) {
	for i, w := range b {
		base := i << wordShift
		for w != 0 {
			v := base + bits.TrailingZeros64(w)
			if !fn(v) {
				return
			}
			w &= w - 1
		}
	}
}

// AndCount returns popcount(a AND b), truncated to the shorter operand.
func AndCount(a, b Bits) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// AndAny reports whether a AND b has any set bit — the word-parallel
// "does this vertex conflict with this set" kernel.
func AndAny(a, b Bits) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}
