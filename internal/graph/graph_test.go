package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"specmatch/internal/geom"
	"specmatch/internal/xrand"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Errorf("New(5) = %v, want n=5 m=0", g)
	}
	if g.HasEdge(0, 1) {
		t.Error("empty graph has an edge")
	}
}

func TestNewNegative(t *testing.T) {
	g := New(-3)
	if g.N() != 0 {
		t.Errorf("New(-3).N() = %d, want 0", g.N())
	}
}

func TestAddEdge(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatalf("AddEdge(0,2): %v", err)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("edge not symmetric")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	for k := 0; k < 3; k++ {
		if err := g.AddEdge(1, 2); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if g.M() != 1 {
		t.Errorf("M() after duplicate inserts = %d, want 1", g.M())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"negative", -1, 0},
		{"out of range", 0, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v); err == nil {
				t.Errorf("AddEdge(%d,%d) succeeded, want error", tt.u, tt.v)
			}
		})
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := Complete(3)
	if g.HasEdge(0, 5) || g.HasEdge(-1, 0) || g.HasEdge(2, 2) {
		t.Error("out-of-range or self queries must be false")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 4}, {3, 4}})
	if got := g.Degree(0); got != 3 {
		t.Errorf("Degree(0) = %d, want 3", got)
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Errorf("Neighbors(0) = %v, want [1 2 4]", got)
	}
	if got := g.Neighbors(3); !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("Neighbors(3) = %v, want [4]", got)
	}
	if g.Neighbors(99) != nil {
		t.Error("Neighbors out of range should be nil")
	}
}

func TestEachNeighborEarlyStop(t *testing.T) {
	g := Complete(6)
	count := 0
	g.EachNeighbor(0, func(int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("EachNeighbor visited %d, want early stop at 2", count)
	}
}

func TestIsIndependent(t *testing.T) {
	g := MustFromEdges(5, [][2]int{{0, 1}, {2, 3}})
	tests := []struct {
		set  []int
		want bool
	}{
		{nil, true},
		{[]int{0}, true},
		{[]int{0, 2}, true},
		{[]int{0, 1}, false},
		{[]int{0, 2, 4}, true},
		{[]int{1, 2, 3}, false},
	}
	for _, tt := range tests {
		if got := g.IsIndependent(tt.set); got != tt.want {
			t.Errorf("IsIndependent(%v) = %v, want %v", tt.set, got, tt.want)
		}
	}
}

func TestConflictsWith(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}})
	if !g.ConflictsWith(0, []int{2, 1}) {
		t.Error("0 should conflict with {2,1}")
	}
	if g.ConflictsWith(0, []int{2, 3}) {
		t.Error("0 should not conflict with {2,3}")
	}
	if g.ConflictsWith(0, nil) {
		t.Error("no conflict with empty set")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{3, 1}, {2, 0}, {1, 0}})
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges() = %v, want %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}})
	c := g.Clone()
	if err := c.AddEdge(1, 2); err != nil {
		t.Fatalf("AddEdge on clone: %v", err)
	}
	if g.HasEdge(1, 2) {
		t.Error("mutating clone mutated original")
	}
	if !c.HasEdge(0, 1) {
		t.Error("clone lost an edge")
	}
}

func TestComplement(t *testing.T) {
	g := Complete(4)
	c := g.Complement()
	if c.M() != 0 {
		t.Errorf("complement of K4 has %d edges, want 0", c.M())
	}
	e := Empty(4).Complement()
	if e.M() != 6 {
		t.Errorf("complement of empty graph has %d edges, want 6", e.M())
	}
}

func TestInducedDegree(t *testing.T) {
	g := Complete(4)
	in := []bool{true, false, true, true}
	if got := g.InducedDegree(0, in); got != 2 {
		t.Errorf("InducedDegree = %d, want 2", got)
	}
	if got := g.InducedDegree(9, in); got != 0 {
		t.Errorf("InducedDegree out of range = %d, want 0", got)
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 {
		t.Errorf("K5 has %d edges, want 10", g.M())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("Degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestGeometricThreshold(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 4}}
	g := Geometric(pts, 3) // distances: 0-1: 3, 0-2: 4, 1-2: 5
	if !g.HasEdge(0, 1) {
		t.Error("boundary distance must interfere (dist ≤ range)")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Error("far points must not interfere")
	}
}

func TestGeometricCoincidentPoints(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	g := Geometric(pts, 0.001)
	if !g.HasEdge(0, 1) {
		t.Error("coincident points interfere at any positive range")
	}
}

func TestGnpExtremes(t *testing.T) {
	r := xrand.New(1)
	if g := Gnp(r, 10, 0); g.M() != 0 {
		t.Errorf("G(10,0) has %d edges, want 0", g.M())
	}
	if g := Gnp(r, 10, 1); g.M() != 45 {
		t.Errorf("G(10,1) has %d edges, want 45", g.M())
	}
}

func TestGnpDensity(t *testing.T) {
	r := xrand.New(7)
	g := Gnp(r, 60, 0.3)
	total := 60 * 59 / 2
	frac := float64(g.M()) / float64(total)
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("G(60,0.3) edge fraction = %.3f, want ≈ 0.3", frac)
	}
}

func TestFromEdgesError(t *testing.T) {
	if _, err := FromEdges(3, [][2]int{{0, 5}}); err == nil {
		t.Error("FromEdges with bad edge should fail")
	}
}

func TestUnionCliques(t *testing.T) {
	g, err := UnionCliques(5, []int{0, 0, 1, 1, 1})
	if err != nil {
		t.Fatalf("UnionCliques: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) || !g.HasEdge(2, 4) || !g.HasEdge(3, 4) {
		t.Error("missing intra-group edges")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 4) {
		t.Error("unexpected inter-group edge")
	}
	if _, err := UnionCliques(3, []int{0}); err == nil {
		t.Error("mismatched group slice should fail")
	}
}

// TestGeometricMonotoneProperty: growing the range never removes edges.
func TestGeometricMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := geom.PaperArea().RandomPoints(r, 12)
		small := Geometric(pts, 2)
		large := Geometric(pts, 4)
		for _, e := range small.Edges() {
			if !large.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCloneEquivalenceProperty: a clone has identical edges.
func TestCloneEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Gnp(r, 15, 0.4)
		return reflect.DeepEqual(g.Edges(), g.Clone().Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGeometricGridEqualsNaive: the grid-accelerated construction produces
// exactly the naive O(n²) graph for random point sets and ranges, including
// coincident points and degenerate ranges.
func TestGeometricGridEqualsNaive(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := xrand.New(seed)
		n := 1 + r.Intn(60)
		pts := geom.PaperArea().RandomPoints(r, n)
		if n > 2 {
			pts[1] = pts[0] // force a coincident pair
		}
		rng := r.Float64() * 6
		fast := Geometric(pts, rng)
		slow := geometricNaive(pts, rng)
		if !reflect.DeepEqual(fast.Edges(), slow.Edges()) {
			t.Fatalf("seed %d (n=%d, r=%.3f): grid and naive graphs differ", seed, n, rng)
		}
	}
}

func TestGeometricDegenerate(t *testing.T) {
	if g := Geometric(nil, 3); g.N() != 0 {
		t.Error("empty point set should give an empty graph")
	}
	pts := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	if g := Geometric(pts, 0); g.M() != 0 {
		t.Error("zero range should give no edges even for coincident points")
	}
}
