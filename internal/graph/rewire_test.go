package graph

import (
	"reflect"
	"testing"

	"specmatch/internal/xrand"
)

// rebuildWith reconstructs g's edge set from scratch with v's neighborhood
// replaced by nbrs — the naive reference RewireVertex must agree with.
func rebuildWith(g *Graph, v int, nbrs []int) *Graph {
	want := New(g.N())
	for _, e := range g.Edges() {
		if e[0] == v || e[1] == v {
			continue
		}
		if err := want.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	for _, u := range nbrs {
		if err := want.AddEdge(v, u); err != nil {
			panic(err)
		}
	}
	return want
}

// sameGraph checks both adjacency views plus the edge count.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.M() != want.M() {
		t.Fatalf("edge count %d, want %d", got.M(), want.M())
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatalf("edges %v, want %v", got.Edges(), want.Edges())
	}
	for v := 0; v < got.N(); v++ {
		if !reflect.DeepEqual(got.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("neighbors(%d) = %v, want %v", v, got.Neighbors(v), want.Neighbors(v))
		}
		gr, wr := got.Row(v), want.Row(v)
		for w := range gr {
			if gr[w] != wr[w] {
				t.Fatalf("row(%d) word %d = %x, want %x", v, w, gr[w], wr[w])
			}
		}
	}
}

// TestRewireVertexAgainstRebuild drives random rewire sequences on random
// graphs and checks the in-place kernel against a from-scratch rebuild after
// every step: bitset rows, sorted neighbor lists, and edge counts all agree.
func TestRewireVertexAgainstRebuild(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := xrand.New(seed)
		n := 5 + r.Intn(80)
		g := New(n)
		for k := 0; k < n*2; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		for step := 0; step < 40; step++ {
			v := r.Intn(n)
			var nbrs []int
			for u := 0; u < n; u++ {
				if u != v && r.Float64() < 0.15 {
					nbrs = append(nbrs, u)
				}
			}
			if r.Intn(4) == 0 && len(nbrs) > 1 {
				nbrs = append(nbrs, nbrs[0]) // duplicate: must be idempotent
			}
			want := rebuildWith(g, v, nbrs)
			if _, err := g.RewireVertex(v, nbrs); err != nil {
				t.Fatal(err)
			}
			sameGraph(t, g, want)
		}
	}
}

// TestRewireVertexOutAndBack moves a vertex out (empty neighborhood) and
// back (original neighborhood) and checks the original rows are restored
// exactly, for every vertex of a random graph.
func TestRewireVertexOutAndBack(t *testing.T) {
	r := xrand.New(11)
	n := 70
	g := New(n)
	for k := 0; k < 3*n; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := g.Clone()
	for v := 0; v < n; v++ {
		orig := g.Neighbors(v)
		changed, err := g.RewireVertex(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		if changed != (len(orig) > 0) {
			t.Fatalf("vertex %d: rewire-to-empty changed=%v with %d neighbors", v, changed, len(orig))
		}
		if g.Degree(v) != 0 {
			t.Fatalf("vertex %d: degree %d after move-out", v, g.Degree(v))
		}
		if _, err := g.RewireVertex(v, orig); err != nil {
			t.Fatal(err)
		}
	}
	sameGraph(t, g, before)
}

// TestRewireVertexNoChange pins the changed=false fast path: rewiring to the
// current neighborhood touches nothing.
func TestRewireVertexNoChange(t *testing.T) {
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {0, 3}, {2, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	changed, err := g.RewireVertex(0, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("rewire to identical neighborhood reported a change")
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("neighbors(0) = %v after no-op rewire", got)
	}
}

// TestRewireVertexErrors pins the atomic error contract: bad inputs leave
// the graph untouched.
func TestRewireVertexErrors(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	before := g.Clone()
	cases := []struct {
		v    int
		nbrs []int
	}{
		{-1, nil},
		{4, nil},
		{0, []int{4}},
		{0, []int{-1}},
		{0, []int{0}}, // self-loop
		{2, []int{3, 2}},
	}
	for _, c := range cases {
		if _, err := g.RewireVertex(c.v, c.nbrs); err == nil {
			t.Errorf("RewireVertex(%d, %v): no error", c.v, c.nbrs)
		}
		sameGraph(t, g, before)
	}
}
