package graph

import (
	"fmt"
	"math/rand"

	"specmatch/internal/geom"
)

// Geometric builds the disk-model interference graph used throughout the
// paper's evaluation (§V-A): buyers u and v interfere on a channel with
// transmission range r iff dist(u, v) ≤ r.
//
// The paper only says the graph is "established based on users' locations and
// the transmission range of the channel"; the disk (protocol) model is the
// standard reading and the one used by the spectrum-auction line of work the
// paper builds on. The predicate is isolated here so ablations can replace it.
//
// Construction uses a uniform bucket grid with cell size r: each point only
// checks the 3×3 neighborhood of its cell, so sparse deployments build in
// near-linear time instead of O(n²) (the naive quadratic scan remains as
// geometricNaive for equivalence testing).
func Geometric(points []geom.Point, rng float64) *Graph {
	g := New(len(points))
	if len(points) == 0 || rng <= 0 {
		return g
	}

	// Bucket points into a grid of r-sized cells anchored at the bounding
	// box; two points within distance r are at most one cell apart on each
	// axis.
	minX, minY := points[0].X, points[0].Y
	for _, p := range points[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
	}
	type cell struct{ cx, cy int32 }
	cellOf := func(p geom.Point) cell {
		return cell{cx: int32((p.X - minX) / rng), cy: int32((p.Y - minY) / rng)}
	}
	buckets := make(map[cell][]int, len(points))
	for v, p := range points {
		c := cellOf(p)
		buckets[c] = append(buckets[c], v)
	}

	r2 := rng * rng
	for v, p := range points {
		c := cellOf(p)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, u := range buckets[cell{cx: c.cx + dx, cy: c.cy + dy}] {
					// Visit each pair once.
					if u <= v {
						continue
					}
					if p.DistSq(points[u]) <= r2 {
						_ = g.AddEdge(v, u) // vertices in range by construction
					}
				}
			}
		}
	}
	return g
}

// geometricNaive is the O(n²) reference construction, kept for equivalence
// testing of the grid-based Geometric.
func geometricNaive(points []geom.Point, rng float64) *Graph {
	g := New(len(points))
	r2 := rng * rng
	for u := 0; u < len(points); u++ {
		for v := u + 1; v < len(points); v++ {
			if points[u].DistSq(points[v]) <= r2 {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Gnp builds an Erdős–Rényi random graph G(n, p), used by tests and
// synthetic ablations that need interference structure independent of
// geometry.
func Gnp(r *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Complete builds the complete graph K_n. With complete interference graphs
// spectrum matching degenerates to one-to-one matching (Prop. 1's worst
// case), which tests exploit to cross-check against classic deferred
// acceptance.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// Empty builds the edgeless graph on n vertices: unlimited reuse.
func Empty(n int) *Graph { return New(n) }

// FromEdges builds a graph on n vertices with the given edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graph: building from edge list: %w", err)
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges for statically known-correct edge lists (fixture
// construction in tests and the paper's worked examples). It panics on a bad
// edge, which can only indicate a programming error in the fixture itself.
func MustFromEdges(n int, edges [][2]int) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// UnionCliques builds a graph that is a disjoint union of cliques, one per
// group. Group membership is given by group[v]; vertices sharing a group are
// pairwise adjacent. Used to model "dummies of the same physical buyer
// interfere on every channel" (§II-A) in isolation.
func UnionCliques(n int, group []int) (*Graph, error) {
	if len(group) != n {
		return nil, fmt.Errorf("graph: group slice has length %d, want %d", len(group), n)
	}
	g := New(n)
	byGroup := make(map[int][]int)
	for v, gr := range group {
		byGroup[gr] = append(byGroup[gr], v)
	}
	for _, members := range byGroup {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				if err := g.AddEdge(members[a], members[b]); err != nil {
					return nil, fmt.Errorf("graph: union of cliques: %w", err)
				}
			}
		}
	}
	return g, nil
}
