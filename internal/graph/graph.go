// Package graph implements the undirected interference graphs at the heart of
// spectrum matching (§II-A of the paper). Each channel i has its own graph
// G_i = (V, E_i) over the set of virtual buyers; an edge connects two buyers
// that may not reuse channel i simultaneously.
//
// Vertices are dense integer IDs [0, N). The representation keeps two views
// of the adjacency structure, both maintained on every mutation:
//
//   - a word-parallel bitset row per vertex (Row), which makes edge queries,
//     independence checks, conflict screening and the MWIS kernels in
//     package mwis AND/ANDNOT/popcount word loops rather than per-neighbor
//     branches, and
//   - sorted neighbor slices (Neighbors, EachNeighbor), the compatibility
//     view every order-sensitive consumer iterates — the ascending order is
//     load-bearing, because downstream floating-point neighborhood sums must
//     be bit-for-bit reproducible across runs and representations.
package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..n-1. The zero value is
// not usable; construct with New.
type Graph struct {
	n     int
	words int      // bitset words per adjacency row: WordsFor(n)
	rows  []uint64 // row-major adjacency bitsets: row v is rows[v*words:(v+1)*words]
	nbr   [][]int  // ascending neighbor lists, mirroring the bitset rows
	edges int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	words := WordsFor(n)
	return &Graph{
		n:     n,
		words: words,
		rows:  make([]uint64, n*words),
		nbr:   make([][]int, n),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// Words returns the number of 64-bit words per adjacency row — the length
// callers should size Bits scratch masks to when combining them with Row.
func (g *Graph) Words() int { return g.words }

// Row returns vertex v's adjacency bitset: bit u is set iff {v, u} is an
// edge. The returned slice aliases the graph's storage — callers must treat
// it as read-only. Out-of-range v returns nil (no set bits).
func (g *Graph) Row(v int) Bits {
	if !g.validVertex(v) {
		return nil
	}
	return Bits(g.rows[v*g.words : (v+1)*g.words])
}

// validVertex reports whether v is a vertex of g.
func (g *Graph) validVertex(v int) bool { return v >= 0 && v < g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops and out-of-range
// vertices are reported as errors; duplicate insertions are idempotent.
func (g *Graph) AddEdge(u, v int) error {
	if !g.validVertex(u) || !g.validVertex(v) {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if g.Row(u).Get(v) {
		return nil
	}
	g.Row(u).Set(v)
	g.Row(v).Set(u)
	g.insertNeighbor(u, v)
	g.insertNeighbor(v, u)
	g.edges++
	return nil
}

// insertNeighbor keeps nbr[u] sorted ascending. Neighbor lists are consumed
// in order by every iteration helper, which keeps all downstream arithmetic
// (e.g. the floating-point neighborhood sums in package mwis) bit-for-bit
// reproducible across runs.
func (g *Graph) insertNeighbor(u, v int) {
	lst := g.nbr[u]
	k := sort.SearchInts(lst, v)
	lst = append(lst, 0)
	copy(lst[k+1:], lst[k:])
	lst[k] = v
	g.nbr[u] = lst
}

// HasEdge reports whether {u, v} is an edge. Out-of-range queries and
// self-queries return false.
func (g *Graph) HasEdge(u, v int) bool {
	if !g.validVertex(u) || !g.validVertex(v) || u == v {
		return false
	}
	return g.Row(u).Get(v)
}

// Degree returns the number of neighbors of v, or 0 for out-of-range v.
func (g *Graph) Degree(v int) int {
	if !g.validVertex(v) {
		return 0
	}
	return len(g.nbr[v])
}

// Neighbors returns the neighbors of v in ascending order. The slice is a
// fresh copy the caller may retain.
func (g *Graph) Neighbors(v int) []int {
	if !g.validVertex(v) {
		return nil
	}
	return append([]int(nil), g.nbr[v]...)
}

// EachNeighbor calls fn for every neighbor of v in ascending order, stopping
// early if fn returns false. It performs no allocation. The order is part of
// the contract: callers accumulate floating-point sums over neighborhoods,
// and reproducibility requires a fixed iteration order.
func (g *Graph) EachNeighbor(v int, fn func(u int) bool) {
	if !g.validVertex(v) {
		return
	}
	for _, u := range g.nbr[v] {
		if !fn(u) {
			return
		}
	}
}

// IsIndependent reports whether no two vertices of set are adjacent. The
// empty set and singletons are independent.
func (g *Graph) IsIndependent(set []int) bool {
	for a := 0; a < len(set); a++ {
		for b := a + 1; b < len(set); b++ {
			if g.HasEdge(set[a], set[b]) {
				return false
			}
		}
	}
	return true
}

// IsIndependentMask is the word-parallel IsIndependent: mask must hold
// exactly the candidate set's bits (callers keep it as reusable scratch).
// It runs in O(|set| · words) instead of O(|set|²).
func (g *Graph) IsIndependentMask(set []int, mask Bits) bool {
	for _, v := range set {
		if g.validVertex(v) && AndAny(g.Row(v), mask) {
			return false
		}
	}
	return true
}

// ConflictsWith reports whether vertex v is adjacent to any vertex in set.
func (g *Graph) ConflictsWith(v int, set []int) bool {
	if !g.validVertex(v) {
		return false
	}
	row := g.Row(v)
	for _, u := range set {
		if row.Get(u) {
			return true
		}
	}
	return false
}

// ConflictsMask reports whether vertex v is adjacent to any vertex of the
// mask — one AND-any word loop, the hot screening kernel of the incremental
// repair path.
func (g *Graph) ConflictsMask(v int, mask Bits) bool {
	if !g.validVertex(v) {
		return false
	}
	return AndAny(g.Row(v), mask)
}

// RewireVertex replaces vertex v's entire neighborhood in place: after the
// call, v is adjacent to exactly the vertices in neighbors (duplicates are
// idempotent; self-loops and out-of-range entries are errors, applied
// atomically — a bad input leaves g untouched). Both adjacency views are
// maintained for v and for every vertex whose adjacency to v changed, found
// by one word-parallel XOR pass over v's row rather than per-edge scans.
// This is the mobility kernel: a buyer moving re-derives her interference
// row per channel, and only the symmetric difference of the old and new
// neighborhoods is touched. It reports whether any edge changed.
func (g *Graph) RewireVertex(v int, neighbors []int) (bool, error) {
	if !g.validVertex(v) {
		return false, fmt.Errorf("graph: rewire vertex %d out of range [0,%d)", v, g.n)
	}
	newRow := NewBits(g.n)
	for _, u := range neighbors {
		if !g.validVertex(u) {
			return false, fmt.Errorf("graph: rewire neighbor %d out of range [0,%d)", u, g.n)
		}
		if u == v {
			return false, fmt.Errorf("graph: self-loop on vertex %d", v)
		}
		newRow.Set(u)
	}
	row := g.Row(v)
	changed := false
	for w := 0; w < g.words; w++ {
		diff := row[w] ^ newRow[w]
		if diff == 0 {
			continue
		}
		changed = true
		base := w << 6
		for diff != 0 {
			b := bits.TrailingZeros64(diff)
			diff &^= 1 << uint(b)
			u := base + b
			if newRow.Get(u) {
				g.Row(u).Set(v)
				g.insertNeighbor(u, v)
				g.edges++
			} else {
				g.Row(u).Clear(v)
				g.removeNeighbor(u, v)
				g.edges--
			}
		}
		row[w] = newRow[w]
	}
	if changed {
		lst := g.nbr[v][:0]
		newRow.ForEach(func(u int) bool { lst = append(lst, u); return true })
		g.nbr[v] = lst
	}
	return changed, nil
}

// removeNeighbor drops v from nbr[u], preserving the ascending order.
func (g *Graph) removeNeighbor(u, v int) {
	lst := g.nbr[u]
	k := sort.SearchInts(lst, v)
	if k < len(lst) && lst[k] == v {
		g.nbr[u] = append(lst[:k], lst[k+1:]...)
	}
}

// UnionRowsInto ORs the adjacency rows of every vertex set in seed into out:
// out becomes (out ∪ N(seed)), the one-hop interference neighborhood. This
// is the kernel behind the online engine's dirty-neighborhood closure —
// isolated vertices contribute nothing, a clique seed saturates out with the
// whole clique. out must have at least Words() words; seed may be shorter.
func (g *Graph) UnionRowsInto(seed Bits, out Bits) {
	seed.ForEach(func(v int) bool {
		if v >= g.n {
			return false // seed may cover a larger universe than g
		}
		out.Or(g.Row(v))
		return true
	})
}

// Edges returns all edges as ordered pairs (u < v), sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.nbr[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	copy(c.rows, g.rows)
	for u := 0; u < g.n; u++ {
		c.nbr[u] = append([]int(nil), g.nbr[u]...)
	}
	c.edges = g.edges
	return c
}

// Complement returns the complement graph on the same vertex set.
func (g *Graph) Complement() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(u, v) {
				// Vertices are in range by construction, so AddEdge cannot fail.
				_ = c.AddEdge(u, v)
			}
		}
	}
	return c
}

// InducedDegree returns the number of neighbors of v inside the given vertex
// subset (membership given as a boolean slice of length N).
func (g *Graph) InducedDegree(v int, in []bool) int {
	if !g.validVertex(v) {
		return 0
	}
	d := 0
	for _, u := range g.nbr[v] {
		if u < len(in) && in[u] {
			d++
		}
	}
	return d
}

// InducedDegreeMask returns the number of neighbors of v inside the mask —
// popcount(Row(v) AND mask), the word-parallel InducedDegree.
func (g *Graph) InducedDegreeMask(v int, mask Bits) int {
	if !g.validVertex(v) {
		return 0
	}
	return AndCount(g.Row(v), mask)
}

// String returns a compact human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.edges)
}
