package eventlog

import (
	"encoding/json"
	"fmt"

	"specmatch/internal/wal"
)

// JSONView renders a record body as its JSON view for humans and tools
// (specwal dump/snap). v0 bodies already are JSON and pass through verbatim;
// binary bodies decode by record type — each typed decoder negotiates the
// versions its record type supports (steps accept the v2 mobility
// extension) — and re-marshal under the same field names, so the view is
// identical across generations.
func JSONView(typ wal.Type, body []byte) (json.RawMessage, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: empty body", ErrMalformed)
	}
	if body[0] == '{' {
		if !json.Valid(body) {
			return nil, fmt.Errorf("%w: v0 body is not valid JSON", ErrMalformed)
		}
		return json.RawMessage(append([]byte(nil), body...)), nil
	}
	var v any
	var err error
	switch typ {
	case wal.TypeCreate:
		v, err = DecodeCreate(body)
	case wal.TypeStep:
		v, err = DecodeStep(body)
	case wal.TypeRebuild, wal.TypeDelete:
		v, err = DecodeRef(body)
	case wal.TypeFork:
		v, err = DecodeFork(body)
	case wal.TypeSnapshot:
		v, err = DecodeCheckpoint(body)
	default:
		return nil, fmt.Errorf("%w: no body schema for %s records", ErrMalformed, typ)
	}
	if err != nil {
		return nil, err
	}
	out, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return out, nil
}
