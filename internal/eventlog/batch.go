package eventlog

import (
	"fmt"

	"specmatch/internal/online"
	"specmatch/internal/wal"
)

// ContentType is the MIME type of the canonical binary batch wire format on
// POST /v1/sessions/{id}/events. Anything else on that route is treated as
// the JSON view.
const ContentType = "application/x-specmatch-eventlog"

// EncodeBatch encodes an event batch in the canonical wire format: the WAL
// magic followed by one framed wal.TypeStep record per event (LSN 0, empty
// session id — the session is addressed out of band, by URL or by log
// position). A batch is therefore byte-compatible with a WAL log file, which
// is what lets specwal inspect wire captures with the same scanner it uses
// on shard logs, and makes the batch format inherit wal.Scan's torn-tail
// versus corruption classification verbatim.
func EncodeBatch(events []online.Event) []byte {
	buf := append(make([]byte, 0, 64*(len(events)+1)), wal.Magic[:]...)
	for _, ev := range events {
		buf = wal.AppendRecord(buf, wal.Record{Type: wal.TypeStep, Body: Step{Event: ev}.Encode()})
	}
	return buf
}

// DecodeBatch decodes a canonical batch. Framing errors pass through from
// wal.ScanFile (so errors.Is against wal.ErrTornTail / wal.ErrCorrupt /
// wal.ErrBadMagic works); a non-step record or an undecodable body inside an
// intact frame is ErrMalformed.
func DecodeBatch(data []byte) ([]online.Event, error) {
	recs, _, err := wal.ScanFile(data)
	if err != nil {
		return nil, fmt.Errorf("eventlog: batch: %w", err)
	}
	events := make([]online.Event, 0, len(recs))
	for k, r := range recs {
		if r.Type != wal.TypeStep {
			return nil, fmt.Errorf("%w: batch record %d is a %s record, want step", ErrMalformed, k, r.Type)
		}
		b, err := DecodeStep(r.Body)
		if err != nil {
			return nil, fmt.Errorf("eventlog: batch record %d: %w", k, err)
		}
		events = append(events, b.Event)
	}
	return events, nil
}
