// Package eventlog is the one versioned encoding for session mutations. The
// same body bytes flow through every surface that carries events: the
// server's WAL records and checkpoints (internal/server logs these bodies
// inside internal/wal frames), the HTTP batch wire format
// (POST /v1/sessions/{id}/events with the binary content type), and the
// specwal inspector. JSON remains a *view* — handlers accept and render it —
// but the durable and canonical form is this package's binary layout, so
// exactly one encode/decode implementation exists for event bodies.
//
// # Byte layout (schema version 1)
//
// Every body starts with a one-byte schema version (0x01). The rest is a
// sequence of primitive fields with no padding:
//
//	uvarint  unsigned LEB128 (encoding/binary Uvarint)
//	varint   zigzag LEB128 (encoding/binary Varint) — used for every int
//	         that can be negative (assignment entries hold -1)
//	f64      IEEE-754 bits as u64 little-endian (exact, no text round-trip)
//	string   uvarint byte length | bytes
//	[]int    uvarint count | count × varint
//	[]f64    uvarint count | count × f64
//
// Composite payloads, in field order:
//
//	event      []int arrive | []int depart | []int channel_up | []int channel_down
//	           | under schema version 2 only, one trailing field:
//	             moves = uvarint count | count × (varint buyer, f64 x, f64 y)
//	spec       uvarint M | uvarint N | M×N f64 prices (row-major)
//	           | M × (uvarint e | e × (varint u, varint v))   interference edges
//	           | []int seller_owner | []int buyer_owner
//	           | uvarint np | np × (f64 x, f64 y)             buyer positions
//	           | []f64 ranges
//	snapshot   uvarint channels | uvarint buyers | uvarint active
//	           | uvarint matched | f64 welfare | uvarint steps
//	           | []int offline_channels | []int active_buyers | []int assignment
//
// Record bodies (the version byte, then):
//
//	create      string id | spec
//	step        string id | event
//	rebuild     string id
//	delete      string id
//	fork        string id | string from | uvarint at_lsn | spec | snapshot
//	checkpoint  uvarint next_id | uvarint n | n × (string id | spec | snapshot)
//
// # Version negotiation
//
// The first body byte discriminates generations: 0x7b ('{') is a v0 JSON
// document (what pre-schema servers logged), 0x01 is schema version 1, 0x02
// (step and bare-event bodies only) is the mobility extension, anything
// else is an unknown future version and an explicit error. Every Decode*
// function in this package accepts all its generations, which is what
// lets a store recover a v0 data dir bit-for-bit while writing v1: readers
// are bilingual, writers emit only the current version. An upgraded store
// rewrites its checkpoints in v1 on the first post-recovery rotation, so v0
// bodies age out of a dir without a migration step; downgrading past a dir
// that already holds v1 bodies is not supported.
//
// Framing (length prefix + CRC32C) is internal/wal's job — bodies here are
// the payloads inside those frames — so torn-tail versus mid-stream
// corruption classification is inherited from wal.Scan wherever a body
// travels (logs, checkpoint files, and the batch wire format all use wal
// frames). A body that fails to decode inside an intact frame is
// ErrMalformed, which callers treat like frame corruption: it cannot be a
// torn write, because the frame's CRC already passed.
package eventlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/online"
)

// Version is the base schema version, and the first byte of every body this
// package encodes that carries no mobility payload.
const Version = 1

// VersionMove is the schema version of step/event bodies that carry buyer
// moves: the v1 field sequence followed by one trailing field,
//
//	moves   uvarint count | count × (varint buyer, f64 x, f64 y)
//
// Writers emit VersionMove only when the event actually holds moves, so
// move-free traffic stays byte-identical to v1 (pre-mobility readers,
// replication streams, and committed goldens are unaffected), while a
// pre-mobility reader faced with a move rejects the version byte cleanly
// instead of misreading the trailing field. Only step and bare-event bodies
// may use it; every other record type rejects it as an unsupported version.
const VersionMove = 2

// Decode errors.
var (
	// ErrMalformed reports a body that does not parse under its declared
	// schema version. Inside an intact CRC frame this is corruption-class
	// damage (or an encoder bug), never a torn write.
	ErrMalformed = errors.New("eventlog: malformed body")
	// ErrVersion reports a body whose first byte is neither a v0 JSON
	// document nor a known binary schema version.
	ErrVersion = errors.New("eventlog: unsupported schema version")
)

// Create is the body of a wal.TypeCreate record. The JSON tags are the v0
// wire names, so marshaling any body type yields exactly the legacy JSON
// view.
type Create struct {
	ID   string      `json:"id"`
	Spec market.Spec `json:"spec"`
}

// Step is the body of a wal.TypeStep record; batch wire records carry the
// same shape with an empty ID (the session is addressed by URL).
type Step struct {
	ID    string       `json:"id"`
	Event online.Event `json:"event"`
}

// Ref is the body of wal.TypeRebuild and wal.TypeDelete records.
type Ref struct {
	ID string `json:"id"`
}

// Fork is the body of a wal.TypeFork record: the complete state of session
// ID as forked from session From at the source shard's LSN AtLSN. It carries
// the full spec and snapshot (not a reference) because the fork lands on the
// child's own shard — replaying the parent's log there is impossible, LSNs
// are shard-local.
type Fork struct {
	ID    string          `json:"id"`
	From  string          `json:"from"`
	AtLSN uint64          `json:"at_lsn"`
	Spec  market.Spec     `json:"spec"`
	State online.Snapshot `json:"state"`
}

// Checkpoint is the body of a wal.TypeSnapshot record: every session on the
// shard plus the store-wide id counter. Sessions are sorted by id by the
// encoder's caller, making the bytes deterministic for a given state.
type Checkpoint struct {
	NextID   uint64         `json:"next_id"`
	Sessions []SessionState `json:"sessions"`
}

// SessionState is one session inside a Checkpoint.
type SessionState struct {
	ID    string          `json:"id"`
	Spec  market.Spec     `json:"spec"`
	State online.Snapshot `json:"state"`
}

// --- encoding primitives ---

func appendInts(b []byte, xs []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = binary.AppendVarint(b, int64(x))
	}
	return b
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendFloats(b []byte, xs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = appendFloat(b, x)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// eventVersion returns the schema version an event encodes under: Version
// when move-free, VersionMove when moves are present (see the constant).
func eventVersion(ev online.Event) byte {
	if len(ev.Move) > 0 {
		return VersionMove
	}
	return Version
}

// appendEvent appends an event's fields under the given schema version; the
// trailing moves field exists only under VersionMove.
func appendEvent(b []byte, ev online.Event, ver byte) []byte {
	b = appendInts(b, ev.Arrive)
	b = appendInts(b, ev.Depart)
	b = appendInts(b, ev.ChannelUp)
	b = appendInts(b, ev.ChannelDown)
	if ver == VersionMove {
		b = binary.AppendUvarint(b, uint64(len(ev.Move)))
		for _, mv := range ev.Move {
			b = binary.AppendVarint(b, int64(mv.Buyer))
			b = appendFloat(b, mv.To.X)
			b = appendFloat(b, mv.To.Y)
		}
	}
	return b
}

func appendSpec(b []byte, sp market.Spec) []byte {
	m := len(sp.Prices)
	n := 0
	if m > 0 {
		n = len(sp.Prices[0])
	}
	b = binary.AppendUvarint(b, uint64(m))
	b = binary.AppendUvarint(b, uint64(n))
	// Exactly M×N prices, row-major, as the layout documents. Ragged rows
	// (inconsistent input; FromSpec rejects them) are padded or truncated to
	// the declared width so the bytes always decode.
	for _, row := range sp.Prices {
		for j := 0; j < n; j++ {
			var p float64
			if j < len(row) {
				p = row[j]
			}
			b = appendFloat(b, p)
		}
	}
	// Exactly M edge rows, per the documented layout. A spec whose Edges
	// length disagrees with Prices is inconsistent (FromSpec rejects it);
	// encoding normalizes it rather than emitting undecodable bytes.
	for i := 0; i < m; i++ {
		var edges [][2]int
		if i < len(sp.Edges) {
			edges = sp.Edges[i]
		}
		b = binary.AppendUvarint(b, uint64(len(edges)))
		for _, e := range edges {
			b = binary.AppendVarint(b, int64(e[0]))
			b = binary.AppendVarint(b, int64(e[1]))
		}
	}
	b = appendInts(b, sp.SellerOwner)
	b = appendInts(b, sp.BuyerOwner)
	b = binary.AppendUvarint(b, uint64(len(sp.BuyerPos)))
	for _, p := range sp.BuyerPos {
		b = appendFloat(b, p.X)
		b = appendFloat(b, p.Y)
	}
	return appendFloats(b, sp.Ranges)
}

func appendSnapshot(b []byte, s online.Snapshot) []byte {
	b = binary.AppendUvarint(b, uint64(s.Channels))
	b = binary.AppendUvarint(b, uint64(s.Buyers))
	b = binary.AppendUvarint(b, uint64(s.Active))
	b = binary.AppendUvarint(b, uint64(s.Matched))
	b = appendFloat(b, s.Welfare)
	b = binary.AppendUvarint(b, uint64(s.Steps))
	b = appendInts(b, s.OfflineChannels)
	b = appendInts(b, s.ActiveBuyers)
	return appendInts(b, s.Assignment)
}

// --- decoding primitives ---

// dec is a bounds-checked cursor over a v1 payload. Every accessor returns a
// zero value once err is set, so decoders read fields unconditionally and
// check err once at the end.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrMalformed, what, d.off)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return int(v)
}

// count reads an element count and rejects any value that could not fit in
// the remaining bytes at elemSize bytes minimum per element — the guard that
// keeps arbitrary input from turning into huge allocations.
func (d *dec) count(elemSize int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off)/uint64(elemSize) {
		d.fail(fmt.Sprintf("count %d exceeds remaining input", v))
		return 0
	}
	return int(v)
}

func (d *dec) ints() []int {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.varint()
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) floats() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *dec) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) event(ver byte) online.Event {
	ev := online.Event{
		Arrive:      d.ints(),
		Depart:      d.ints(),
		ChannelUp:   d.ints(),
		ChannelDown: d.ints(),
	}
	if ver == VersionMove {
		ev.Move = d.moves()
	}
	return ev
}

func (d *dec) moves() []online.BuyerMove {
	n := d.count(17) // varint buyer (≥1 byte) + two f64
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]online.BuyerMove, n)
	for i := range out {
		out[i] = online.BuyerMove{Buyer: d.varint(), To: geom.Point{X: d.f64(), Y: d.f64()}}
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *dec) spec() market.Spec {
	m := int(d.count(1))
	n := 0
	if d.err == nil {
		v := d.uvarint()
		// Each price row costs n×8 bytes; bound n by what one row could hold.
		if m > 0 && v > uint64(len(d.b)-d.off)/8 {
			d.fail(fmt.Sprintf("spec width %d exceeds remaining input", v))
		}
		n = int(v)
	}
	var sp market.Spec
	if d.err != nil {
		return sp
	}
	if uint64(m)*uint64(n) > uint64(len(d.b)-d.off)/8 {
		d.fail(fmt.Sprintf("spec %dx%d exceeds remaining input", m, n))
		return sp
	}
	if m > 0 {
		sp.Prices = make([][]float64, m)
		sp.Edges = make([][][2]int, m)
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = d.f64()
		}
		sp.Prices[i] = row
	}
	for i := 0; i < m; i++ {
		e := d.count(2)
		edges := make([][2]int, e)
		for k := range edges {
			edges[k] = [2]int{d.varint(), d.varint()}
		}
		sp.Edges[i] = edges
	}
	sp.SellerOwner = d.ints()
	sp.BuyerOwner = d.ints()
	if np := d.count(16); np > 0 {
		sp.BuyerPos = make([]geom.Point, np)
		for i := range sp.BuyerPos {
			sp.BuyerPos[i] = geom.Point{X: d.f64(), Y: d.f64()}
		}
	}
	sp.Ranges = d.floats()
	if d.err != nil {
		return market.Spec{}
	}
	return sp
}

func (d *dec) snapshot() online.Snapshot {
	return online.Snapshot{
		Channels:        int(d.uvarint()),
		Buyers:          int(d.uvarint()),
		Active:          int(d.uvarint()),
		Matched:         int(d.uvarint()),
		Welfare:         d.f64(),
		Steps:           int(d.uvarint()),
		OfflineChannels: d.ints(),
		ActiveBuyers:    d.ints(),
		Assignment:      d.ints(),
	}
}

// finish closes a body decode: the declared error if any, otherwise a check
// that every byte was consumed (trailing garbage inside an intact frame is
// corruption, not slack).
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b)-d.off)
	}
	return nil
}
