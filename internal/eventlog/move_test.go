package eventlog

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"specmatch/internal/geom"
	"specmatch/internal/online"
	"specmatch/internal/wal"
)

func movedEvent() online.Event {
	return online.Event{
		Arrive: []int{1},
		Move: []online.BuyerMove{
			{Buyer: 0, To: geom.Point{X: 1.25, Y: 9.5}},
			{Buyer: 3, To: geom.Point{X: 0, Y: 0}},
		},
	}
}

// Move-bearing step and event bodies round-trip under schema version 2;
// move-free bodies keep the v1 leading byte, so pre-mobility traffic stays
// byte-identical.
func TestMoveRoundTrip(t *testing.T) {
	stp := Step{ID: "m00000001", Event: movedEvent()}
	enc := stp.Encode()
	if enc[0] != VersionMove {
		t.Fatalf("move-bearing step leads with 0x%02x, want VersionMove", enc[0])
	}
	got, err := DecodeStep(enc)
	if err != nil || !reflect.DeepEqual(got, stp) {
		t.Fatalf("step round trip: err=%v\n got %+v\nwant %+v", err, got, stp)
	}

	ev := movedEvent()
	bare := EncodeEvent(ev)
	if bare[0] != VersionMove {
		t.Fatalf("move-bearing event leads with 0x%02x, want VersionMove", bare[0])
	}
	gotEv, err := DecodeEvent(bare)
	if err != nil || !reflect.DeepEqual(gotEv, ev) {
		t.Fatalf("event round trip: err=%v\n got %+v\nwant %+v", err, gotEv, ev)
	}

	plain := Step{ID: "m00000001", Event: online.Event{Arrive: []int{1}}}
	if b := plain.Encode(); b[0] != Version {
		t.Fatalf("move-free step leads with 0x%02x, want Version", b[0])
	}
	if b := EncodeEvent(online.Event{Depart: []int{2}}); b[0] != Version {
		t.Fatalf("move-free event leads with 0x%02x, want Version", b[0])
	}
}

// A hand-crafted v2 body with zero moves is accepted and canonicalizes to
// v1 on re-encode — the byte fixed point the fuzz harness relies on.
func TestMoveZeroCountCanonicalizes(t *testing.T) {
	body := append([]byte{VersionMove}, EncodeEvent(online.Event{Arrive: []int{0}})[1:]...)
	body = binary.AppendUvarint(body, 0) // empty trailing moves field
	ev, err := DecodeEvent(body)
	if err != nil {
		t.Fatal(err)
	}
	re := EncodeEvent(ev)
	if re[0] != Version {
		t.Fatalf("re-encode leads with 0x%02x, want Version", re[0])
	}
	if ev2, err := DecodeEvent(re); err != nil || !reflect.DeepEqual(ev2, ev) {
		t.Fatalf("canonical re-decode: err=%v got %+v want %+v", err, ev2, ev)
	}
}

// Truncating a v2 body inside the trailing moves field is malformed, and a
// JSON view of a move-bearing step renders the move payload.
func TestMoveDamageAndView(t *testing.T) {
	enc := Step{ID: "m1", Event: movedEvent()}.Encode()
	for _, cut := range []int{1, 5, 9, 16} {
		if _, err := DecodeStep(enc[:len(enc)-cut]); err == nil {
			t.Errorf("truncation by %d decoded", cut)
		}
	}
	view, err := JSONView(wal.TypeStep, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(view, []byte(`"move"`)) || !bytes.Contains(view, []byte(`"buyer":3`)) {
		t.Errorf("JSON view misses the move payload: %s", view)
	}
}
