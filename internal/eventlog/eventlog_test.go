package eventlog

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"specmatch/internal/market"
	"specmatch/internal/online"
	"specmatch/internal/wal"
)

// sampleSpec is a real generated market spec, so every optional field
// (owners, positions, ranges) is populated and round-trips are tested on
// the shapes production actually produces.
func sampleSpec(t *testing.T) market.Spec {
	t.Helper()
	m, err := market.Generate(market.Config{Sellers: 2, Buyers: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m.Spec()
}

func sampleSnapshot() online.Snapshot {
	return online.Snapshot{
		Channels: 3, Buyers: 5, Active: 2, Matched: 2,
		Welfare: 1.25, Steps: 7,
		OfflineChannels: []int{1},
		ActiveBuyers:    []int{0, 4},
		Assignment:      []int{2, -1, -1, -1, 0},
	}
}

func sampleEvent() online.Event {
	return online.Event{Arrive: []int{0, 3}, Depart: []int{1}, ChannelDown: []int{2}}
}

// Every body type must decode its own canonical encoding back to an equal
// value — decode is the left inverse of encode.
func TestRoundTripAllTypes(t *testing.T) {
	spec := sampleSpec(t)

	cr := Create{ID: "m00000001", Spec: spec}
	if got, err := DecodeCreate(cr.Encode()); err != nil || !reflect.DeepEqual(got, cr) {
		t.Fatalf("create round trip: err=%v\n got %+v\nwant %+v", err, got, cr)
	}
	stp := Step{ID: "m00000002", Event: sampleEvent()}
	if got, err := DecodeStep(stp.Encode()); err != nil || !reflect.DeepEqual(got, stp) {
		t.Fatalf("step round trip: err=%v\n got %+v\nwant %+v", err, got, stp)
	}
	// A batch-wire step has no id and an empty event; both extremes matter.
	empty := Step{}
	if got, err := DecodeStep(empty.Encode()); err != nil || !reflect.DeepEqual(got, empty) {
		t.Fatalf("empty step round trip: err=%v got %+v", err, got)
	}
	ref := Ref{ID: "m0000000a"}
	if got, err := DecodeRef(ref.Encode()); err != nil || !reflect.DeepEqual(got, ref) {
		t.Fatalf("ref round trip: err=%v got %+v", err, got)
	}
	fk := Fork{ID: "m00000009", From: "m00000001", AtLSN: 12345, Spec: spec, State: sampleSnapshot()}
	if got, err := DecodeFork(fk.Encode()); err != nil || !reflect.DeepEqual(got, fk) {
		t.Fatalf("fork round trip: err=%v\n got %+v\nwant %+v", err, got, fk)
	}
	cp := Checkpoint{NextID: 42, Sessions: []SessionState{
		{ID: "m00000001", Spec: spec, State: sampleSnapshot()},
		{ID: "m00000003", Spec: spec, State: online.Snapshot{Channels: 2, Buyers: 6, Assignment: []int{-1, -1, -1, -1, -1, -1}}},
	}}
	if got, err := DecodeCheckpoint(cp.Encode()); err != nil || !reflect.DeepEqual(got, cp) {
		t.Fatalf("checkpoint round trip: err=%v\n got %+v\nwant %+v", err, got, cp)
	}
	if got, err := DecodeCheckpoint(Checkpoint{NextID: 1}.Encode()); err != nil || !reflect.DeepEqual(got, Checkpoint{NextID: 1}) {
		t.Fatalf("empty checkpoint round trip: err=%v got %+v", err, got)
	}
	ev := sampleEvent()
	if got, err := DecodeEvent(EncodeEvent(ev)); err != nil || !reflect.DeepEqual(got, ev) {
		t.Fatalf("event round trip: err=%v got %+v", err, got)
	}
}

// Decoders must accept the v0 generation: the JSON the pre-schema server
// logged, which is exactly what the body structs marshal to (the struct tags
// are the v0 wire names).
func TestDecodeV0JSON(t *testing.T) {
	spec := sampleSpec(t)
	mustJSON := func(v any) []byte {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	cr := Create{ID: "m00000001", Spec: spec}
	if got, err := DecodeCreate(mustJSON(cr)); err != nil || !reflect.DeepEqual(got, cr) {
		t.Fatalf("v0 create: err=%v\n got %+v\nwant %+v", err, got, cr)
	}
	stp := Step{ID: "m00000002", Event: sampleEvent()}
	if got, err := DecodeStep(mustJSON(stp)); err != nil || !reflect.DeepEqual(got, stp) {
		t.Fatalf("v0 step: err=%v got %+v", err, got)
	}
	ref := Ref{ID: "m0000000a"}
	if got, err := DecodeRef(mustJSON(ref)); err != nil || !reflect.DeepEqual(got, ref) {
		t.Fatalf("v0 ref: err=%v got %+v", err, got)
	}
	cp := Checkpoint{NextID: 9, Sessions: []SessionState{{ID: "m00000001", Spec: spec, State: sampleSnapshot()}}}
	if got, err := DecodeCheckpoint(mustJSON(cp)); err != nil || !reflect.DeepEqual(got, cp) {
		t.Fatalf("v0 checkpoint: err=%v\n got %+v\nwant %+v", err, got, cp)
	}
	ev := sampleEvent()
	if got, err := DecodeEvent(mustJSON(ev)); err != nil || !reflect.DeepEqual(got, ev) {
		t.Fatalf("v0 event: err=%v got %+v", err, got)
	}
}

// Version negotiation: empty bodies and unknown leading bytes are explicit,
// classified errors, and trailing garbage after a valid v1 payload is
// malformed rather than silently ignored.
func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeStep(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty body: got %v, want ErrMalformed", err)
	}
	if _, err := DecodeStep([]byte{0x03, 0x00}); !errors.Is(err, ErrVersion) {
		t.Errorf("unknown version byte: got %v, want ErrVersion", err)
	}
	// VersionMove is a step/event-only extension: every other record type
	// still rejects the byte as an unsupported version.
	if _, err := DecodeCreate([]byte{VersionMove, 0x00}); !errors.Is(err, ErrVersion) {
		t.Errorf("v2 create: got %v, want ErrVersion", err)
	}
	if _, err := DecodeRef([]byte{VersionMove, 0x00}); !errors.Is(err, ErrVersion) {
		t.Errorf("v2 ref: got %v, want ErrVersion", err)
	}
	if _, err := DecodeFork([]byte{VersionMove, 0x00}); !errors.Is(err, ErrVersion) {
		t.Errorf("v2 fork: got %v, want ErrVersion", err)
	}
	if _, err := DecodeCheckpoint([]byte{VersionMove, 0x00}); !errors.Is(err, ErrVersion) {
		t.Errorf("v2 checkpoint: got %v, want ErrVersion", err)
	}
	if _, err := DecodeStep([]byte(`{"id": 7}`)); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad v0 json: got %v, want ErrMalformed", err)
	}
	trailing := append(Step{ID: "x"}.Encode(), 0xff)
	if _, err := DecodeStep(trailing); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing bytes: got %v, want ErrMalformed", err)
	}
	truncated := Create{ID: "m1", Spec: sampleSpec(t)}.Encode()
	if _, err := DecodeCreate(truncated[:len(truncated)-3]); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated body: got %v, want ErrMalformed", err)
	}
	// A hostile count must be rejected before allocation, not OOM.
	hostile := append([]byte{Version}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := DecodeRef(hostile); !errors.Is(err, ErrMalformed) {
		t.Errorf("hostile count: got %v, want ErrMalformed", err)
	}
}

// The batch wire format round-trips and inherits the wal package's damage
// taxonomy: truncation is a torn tail, flipped bytes are corruption, and a
// non-step record inside a structurally intact batch is malformed.
func TestBatchRoundTripAndClassification(t *testing.T) {
	events := []online.Event{
		{Arrive: []int{0, 1, 2}},
		{Depart: []int{1}, ChannelUp: []int{0}},
		{},
	}
	data := EncodeBatch(events)
	got, err := DecodeBatch(data)
	if err != nil || !reflect.DeepEqual(got, events) {
		t.Fatalf("batch round trip: err=%v\n got %+v\nwant %+v", err, got, events)
	}
	if got, err := DecodeBatch(EncodeBatch(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: err=%v got %+v", err, got)
	}

	if _, err := DecodeBatch(data[:len(data)-3]); !errors.Is(err, wal.ErrTornTail) {
		t.Errorf("truncated batch: got %v, want wal.ErrTornTail", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(wal.Magic)+9] ^= 0x01 // inside the first frame's payload
	if _, err := DecodeBatch(flipped); !errors.Is(err, wal.ErrCorrupt) {
		t.Errorf("flipped batch byte: got %v, want wal.ErrCorrupt", err)
	}
	if _, err := DecodeBatch([]byte("not a batch at all")); !errors.Is(err, wal.ErrBadMagic) {
		t.Errorf("no magic: got %v, want wal.ErrBadMagic", err)
	}
	wrongType := append([]byte(nil), wal.Magic[:]...)
	wrongType = wal.AppendRecord(wrongType, wal.Record{Type: wal.TypeDelete, Body: Ref{ID: "m1"}.Encode()})
	if _, err := DecodeBatch(wrongType); !errors.Is(err, ErrMalformed) {
		t.Errorf("non-step record: got %v, want ErrMalformed", err)
	}
}

// JSONView renders both generations to the same legacy JSON: v0 bodies pass
// through verbatim, v1 bodies decode and re-marshal to an equivalent
// document (the struct tags are the v0 names, so the views are comparable).
func TestJSONView(t *testing.T) {
	stp := Step{ID: "m00000002", Event: sampleEvent()}
	wantJSON, err := json.Marshal(stp)
	if err != nil {
		t.Fatal(err)
	}
	v1View, err := JSONView(wal.TypeStep, stp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if string(v1View) != string(wantJSON) {
		t.Errorf("v1 view = %s, want %s", v1View, wantJSON)
	}
	v0View, err := JSONView(wal.TypeStep, wantJSON)
	if err != nil {
		t.Fatal(err)
	}
	if string(v0View) != string(wantJSON) {
		t.Errorf("v0 view = %s, want it verbatim %s", v0View, wantJSON)
	}
	if _, err := JSONView(wal.TypeStep, []byte{0x03}); !errors.Is(err, ErrVersion) {
		t.Errorf("unknown version: got %v, want ErrVersion", err)
	}
	if _, err := JSONView(wal.TypeCreate, []byte{0x02}); !errors.Is(err, ErrVersion) {
		t.Errorf("v2 create view: got %v, want ErrVersion", err)
	}
	if _, err := JSONView(wal.Type(99), stp.Encode()); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown record type: got %v, want ErrMalformed", err)
	}
}
