package eventlog

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/online"
	"specmatch/internal/wal"
)

// FuzzEventCodec hammers every body decoder with arbitrary bytes. Whatever
// the input: no decoder may panic; every failure must be classified as
// ErrMalformed or ErrVersion; and any body that does decode must re-encode
// to canonical v1 bytes that decode back to the same value (decode is a left
// inverse of encode, for both generations). Stability is checked on the
// bytes, not the structs, so NaN payloads smuggled in through fuzzed float
// bits cannot false-fail a struct comparison. Batches additionally inherit
// internal/wal's framing taxonomy, which is asserted here too.
func FuzzEventCodec(f *testing.F) {
	m, err := market.Generate(market.Config{Sellers: 2, Buyers: 5, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	spec := m.Spec()
	snap := online.Snapshot{Channels: 2, Buyers: 5, Active: 1, Welfare: 0.5, Steps: 2,
		ActiveBuyers: []int{3}, Assignment: []int{-1, -1, -1, 1, -1}}

	// Canonical v1 bodies of every type.
	f.Add(Create{ID: "m00000001", Spec: spec}.Encode())
	f.Add(Step{ID: "m00000001", Event: online.Event{Arrive: []int{0, 1}, ChannelDown: []int{1}}}.Encode())
	f.Add(Ref{ID: "m00000001"}.Encode())
	f.Add(Fork{ID: "m00000002", From: "m00000001", AtLSN: 7, Spec: spec, State: snap}.Encode())
	f.Add(Checkpoint{NextID: 2, Sessions: []SessionState{{ID: "m00000001", Spec: spec, State: snap}}}.Encode())
	f.Add(EncodeEvent(online.Event{Depart: []int{4}}))
	// v2 mobility bodies: canonical move-bearing step and bare event, plus
	// hand-damaged variants of the new decode path — a ragged trailing point
	// (truncated mid-move), NaN coordinates (valid bytes, the engine layer
	// rejects them), and an out-of-range buyer index (codec-valid too: the
	// codec has no market to validate against).
	moved := Step{ID: "m00000001", Event: online.Event{
		Arrive: []int{0},
		Move:   []online.BuyerMove{{Buyer: 1, To: geom.Point{X: 2.5, Y: -7}}, {Buyer: 4, To: geom.Point{}}},
	}}.Encode()
	f.Add(moved)
	f.Add(moved[:len(moved)-9]) // ragged: second move loses its y coordinate
	f.Add(EncodeEvent(online.Event{Move: []online.BuyerMove{{Buyer: 0, To: geom.Point{X: math.NaN(), Y: math.Inf(1)}}}}))
	f.Add(EncodeEvent(online.Event{Move: []online.BuyerMove{{Buyer: -3, To: geom.Point{X: 1, Y: 1}}}}))
	// v0 JSON bodies — the bilingual path.
	for _, v := range []any{
		Create{ID: "m00000001", Spec: spec},
		Step{ID: "m00000001", Event: online.Event{Arrive: []int{2}}},
		Step{ID: "m00000001", Event: online.Event{Move: []online.BuyerMove{{Buyer: 2, To: geom.Point{X: 3, Y: 4}}}}},
		Ref{ID: "m00000001"},
		Checkpoint{NextID: 2, Sessions: []SessionState{{ID: "m00000001", Spec: spec, State: snap}}},
	} {
		j, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(j)
	}
	// Batch wire format, intact and truncated.
	batch := EncodeBatch([]online.Event{{Arrive: []int{0}}, {Depart: []int{0}}})
	f.Add(batch)
	f.Add(batch[:len(batch)-3])
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 32))

	type codec struct {
		name   string
		decode func([]byte) (reencoded []byte, err error)
	}
	codecs := []codec{
		{"create", func(b []byte) ([]byte, error) {
			v, err := DecodeCreate(b)
			return v.Encode(), err
		}},
		{"step", func(b []byte) ([]byte, error) {
			v, err := DecodeStep(b)
			return v.Encode(), err
		}},
		{"ref", func(b []byte) ([]byte, error) {
			v, err := DecodeRef(b)
			return v.Encode(), err
		}},
		{"fork", func(b []byte) ([]byte, error) {
			v, err := DecodeFork(b)
			return v.Encode(), err
		}},
		{"checkpoint", func(b []byte) ([]byte, error) {
			v, err := DecodeCheckpoint(b)
			return v.Encode(), err
		}},
		{"event", func(b []byte) ([]byte, error) {
			v, err := DecodeEvent(b)
			return EncodeEvent(v), err
		}},
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range codecs {
			re, err := c.decode(data)
			if err != nil {
				if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrVersion) {
					t.Fatalf("%s: unclassified decode error: %v", c.name, err)
				}
				continue
			}
			// Left inverse, byte-stable: the canonical re-encoding must decode
			// to a value that re-encodes to the very same bytes.
			re2, err := c.decode(re)
			if err != nil {
				t.Fatalf("%s: canonical re-encoding does not decode: %v", c.name, err)
			}
			if !bytes.Equal(re, re2) {
				t.Fatalf("%s: canonical encoding is not a fixed point:\n first %x\nsecond %x", c.name, re, re2)
			}
		}

		// The batch decoder shares internal/wal's framing; its failures must
		// stay within the combined taxonomy and its successes must round-trip.
		events, err := DecodeBatch(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, wal.ErrTornTail) && !errors.Is(err, wal.ErrCorrupt) &&
				!errors.Is(err, wal.ErrBadMagic) {
				t.Fatalf("batch: unclassified decode error: %v", err)
			}
			return
		}
		re := EncodeBatch(events)
		events2, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("batch: canonical re-encoding does not decode: %v", err)
		}
		if !bytes.Equal(re, EncodeBatch(events2)) {
			t.Fatalf("batch: canonical encoding is not a fixed point")
		}

		// The JSON view must be equally total: never a panic, always valid
		// JSON or a classified error, across every record type.
		for _, typ := range []wal.Type{wal.TypeCreate, wal.TypeStep, wal.TypeRebuild, wal.TypeDelete, wal.TypeSnapshot, wal.TypeFork} {
			view, err := JSONView(typ, data)
			if err == nil && !json.Valid(view) {
				t.Fatalf("JSONView(%s) returned invalid JSON: %s", typ, view)
			}
		}
	})
}
