package eventlog

// The public codec: Encode methods emit canonical v1 bytes, Decode functions
// accept both generations (v0 JSON and v1 binary) behind one entry point per
// record type. This file is the single place event bodies are serialized —
// the server's WAL glue, the HTTP batch path, and specwal all call these.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"specmatch/internal/online"
)

// schema dispatches on the first body byte: v0 bodies are JSON documents
// and necessarily start with '{'; binary bodies start with their schema
// version, accepted up to maxVer (body types that carry no mobility payload
// stop at Version; step/event bodies accept VersionMove too). An empty body
// or an out-of-range leading byte is an explicit version error so a future
// reader bump can never be misread as data.
func schema(body []byte, maxVer byte) (v0 bool, ver byte, err error) {
	if len(body) == 0 {
		return false, 0, fmt.Errorf("%w: empty body", ErrMalformed)
	}
	switch {
	case body[0] == '{':
		return true, 0, nil
	case body[0] >= Version && body[0] <= maxVer:
		return false, body[0], nil
	}
	return false, 0, fmt.Errorf("%w: leading byte 0x%02x", ErrVersion, body[0])
}

// legacy is schema for the body types that never carry moves.
func legacy(body []byte) (bool, error) {
	v0, _, err := schema(body, Version)
	return v0, err
}

// decodeJSON is the v0 path: a strict unmarshal of the legacy JSON body.
func decodeJSON(body []byte, v any) error {
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: v0 json: %v", ErrMalformed, err)
	}
	return nil
}

// Encode returns the canonical v1 bytes of a create body.
func (b Create) Encode() []byte {
	out := append(make([]byte, 0, 64), Version)
	out = appendString(out, b.ID)
	return appendSpec(out, b.Spec)
}

// DecodeCreate decodes a create body of either generation.
func DecodeCreate(body []byte) (Create, error) {
	var b Create
	if v0, err := legacy(body); err != nil {
		return b, err
	} else if v0 {
		return b, decodeJSON(body, &b)
	}
	d := &dec{b: body[1:]}
	b.ID = d.str()
	b.Spec = d.spec()
	return b, d.finish()
}

// Encode returns the canonical bytes of a step body: v1, or v2 when the
// event carries moves (move-free steps stay byte-identical to v1).
func (b Step) Encode() []byte {
	ver := eventVersion(b.Event)
	out := append(make([]byte, 0, 32), ver)
	out = appendString(out, b.ID)
	return appendEvent(out, b.Event, ver)
}

// DecodeStep decodes a step body of any generation, including the v2
// mobility extension.
func DecodeStep(body []byte) (Step, error) {
	var b Step
	v0, ver, err := schema(body, VersionMove)
	if err != nil {
		return b, err
	}
	if v0 {
		return b, decodeJSON(body, &b)
	}
	d := &dec{b: body[1:]}
	b.ID = d.str()
	b.Event = d.event(ver)
	return b, d.finish()
}

// Encode returns the canonical v1 bytes of a rebuild/delete body.
func (b Ref) Encode() []byte {
	out := append(make([]byte, 0, 16), Version)
	return appendString(out, b.ID)
}

// DecodeRef decodes a rebuild/delete body of either generation.
func DecodeRef(body []byte) (Ref, error) {
	var b Ref
	if v0, err := legacy(body); err != nil {
		return b, err
	} else if v0 {
		return b, decodeJSON(body, &b)
	}
	d := &dec{b: body[1:]}
	b.ID = d.str()
	return b, d.finish()
}

// Encode returns the canonical v1 bytes of a fork body.
func (b Fork) Encode() []byte {
	out := append(make([]byte, 0, 256), Version)
	out = appendString(out, b.ID)
	out = appendString(out, b.From)
	out = binary.AppendUvarint(out, b.AtLSN)
	out = appendSpec(out, b.Spec)
	return appendSnapshot(out, b.State)
}

// DecodeFork decodes a fork body. Fork records postdate the v0 generation,
// but the JSON view is accepted anyway — bilingual decode is uniform.
func DecodeFork(body []byte) (Fork, error) {
	var b Fork
	if v0, err := legacy(body); err != nil {
		return b, err
	} else if v0 {
		return b, decodeJSON(body, &b)
	}
	d := &dec{b: body[1:]}
	b.ID = d.str()
	b.From = d.str()
	b.AtLSN = d.uvarint()
	b.Spec = d.spec()
	b.State = d.snapshot()
	return b, d.finish()
}

// Encode returns the canonical v1 bytes of a checkpoint body.
func (b Checkpoint) Encode() []byte {
	out := append(make([]byte, 0, 1024), Version)
	out = binary.AppendUvarint(out, b.NextID)
	out = binary.AppendUvarint(out, uint64(len(b.Sessions)))
	for _, s := range b.Sessions {
		out = appendString(out, s.ID)
		out = appendSpec(out, s.Spec)
		out = appendSnapshot(out, s.State)
	}
	return out
}

// DecodeCheckpoint decodes a checkpoint body of either generation.
func DecodeCheckpoint(body []byte) (Checkpoint, error) {
	var b Checkpoint
	if v0, err := legacy(body); err != nil {
		return b, err
	} else if v0 {
		return b, decodeJSON(body, &b)
	}
	d := &dec{b: body[1:]}
	b.NextID = d.uvarint()
	n := d.count(1)
	for i := 0; i < n && d.err == nil; i++ {
		b.Sessions = append(b.Sessions, SessionState{
			ID:    d.str(),
			Spec:  d.spec(),
			State: d.snapshot(),
		})
	}
	return b, d.finish()
}

// EncodeEvent returns the canonical bytes of a bare churn event — the
// serialized form of online.Event everywhere one travels alone. Move-free
// events encode as v1, move-bearing ones as v2.
func EncodeEvent(ev online.Event) []byte {
	ver := eventVersion(ev)
	return appendEvent(append(make([]byte, 0, 32), ver), ev, ver)
}

// DecodeEvent decodes a bare event of any generation, including the v2
// mobility extension.
func DecodeEvent(body []byte) (online.Event, error) {
	v0, ver, err := schema(body, VersionMove)
	if err != nil {
		return online.Event{}, err
	}
	if v0 {
		var ev online.Event
		return ev, decodeJSON(body, &ev)
	}
	d := &dec{b: body[1:]}
	ev := d.event(ver)
	return ev, d.finish()
}
