// Package radio provides a physical-layer interference model beyond the
// paper's protocol (disk) rule: log-distance path loss with an SINR-style
// pairwise criterion. The paper's evaluation only says interference graphs
// are "established based on users' locations and the transmission range of
// the channel"; the disk model is the standard reading (and this library's
// default), but real deployments derive conflicts from received powers.
// This package lets the ablation harness swap the predicate and check that
// the paper's conclusions do not hinge on the disk abstraction.
//
// Model: transmit power P decays with distance d as P·(d0/d)^γ for path
// loss exponent γ (free space 2, urban 3–4). Two buyers conflict on a
// channel when the interference either would receive from the other's
// transmitter — evaluated at their own positions, the worst case for
// co-channel operation — exceeds a noise-relative threshold, i.e. when
// interference-to-noise I/N ≥ threshold. Each channel scales its transmit
// power so that its nominal range matches the paper's per-channel range
// parameter, preserving Fig. 6–8's workload shape under the new predicate.
package radio

import (
	"fmt"
	"math"

	"specmatch/internal/geom"
	"specmatch/internal/graph"
)

// Params configures the propagation model.
type Params struct {
	// PathLossExp is γ; zero means 3.5 (urban macro).
	PathLossExp float64
	// ReferenceDist is d0, the close-in reference distance; zero means 0.1.
	ReferenceDist float64
	// INThresholdDB is the interference-to-noise threshold in dB above
	// which two buyers conflict; zero means 6 dB.
	INThresholdDB float64
}

func (p Params) withDefaults() Params {
	if p.PathLossExp == 0 {
		p.PathLossExp = 3.5
	}
	if p.ReferenceDist == 0 {
		p.ReferenceDist = 0.1
	}
	if p.INThresholdDB == 0 {
		p.INThresholdDB = 6
	}
	return p
}

// Normalized applies defaults and validates, returning the effective
// parameters. External consumers (e.g. package outage) use this to share
// the model's defaulting rules.
func (p Params) Normalized() (Params, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

func (p Params) validate() error {
	if p.PathLossExp < 1 || p.PathLossExp > 8 {
		return fmt.Errorf("radio: path loss exponent %v outside [1, 8]", p.PathLossExp)
	}
	if p.ReferenceDist <= 0 {
		return fmt.Errorf("radio: non-positive reference distance %v", p.ReferenceDist)
	}
	return nil
}

// Model evaluates pairwise interference for one channel.
type Model struct {
	params Params
	// conflictDist is the distance below which I/N meets the threshold,
	// precomputed so the pairwise check is a plain comparison.
	conflictDist float64
}

// NewModel builds a model for a channel whose nominal (paper) transmission
// range is nominalRange: transmit power is calibrated so a receiver at
// exactly nominalRange sees I/N equal to the threshold, making the SINR
// predicate agree with the disk predicate at the nominal range and diverge
// smoothly elsewhere as γ and the threshold vary.
func NewModel(nominalRange float64, params Params) (*Model, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	if nominalRange <= 0 {
		return nil, fmt.Errorf("radio: non-positive nominal range %v", nominalRange)
	}
	// With power calibrated so I/N(nominalRange) = threshold, a pair
	// conflicts iff d ≤ nominalRange·(I/N margin)^(1/γ); the margin is 1 at
	// calibration, so conflictDist = nominalRange exactly. The model's
	// value appears when the threshold is varied relative to calibration:
	// ConflictDistFor exposes that.
	return &Model{params: params, conflictDist: nominalRange}, nil
}

// ConflictDistFor returns the conflict distance when the operating
// threshold differs from the calibration threshold by deltaDB: a stricter
// threshold (negative delta) extends the conflict range, a laxer one
// shrinks it, scaled by the path loss exponent: d = d_nom · 10^(−Δ/(10γ)).
func (m *Model) ConflictDistFor(deltaDB float64) float64 {
	return m.conflictDist * math.Pow(10, -deltaDB/(10*m.params.PathLossExp))
}

// PathLossDB returns the propagation loss in dB over distance d.
func (m *Model) PathLossDB(d float64) float64 {
	if d < m.params.ReferenceDist {
		d = m.params.ReferenceDist
	}
	return 10 * m.params.PathLossExp * math.Log10(d/m.params.ReferenceDist)
}

// Interferes reports whether two buyers at p and q conflict under the
// operating threshold offset by deltaDB from calibration.
func (m *Model) Interferes(p, q geom.Point, deltaDB float64) bool {
	limit := m.ConflictDistFor(deltaDB)
	return p.DistSq(q) <= limit*limit
}

// Graph builds the interference graph over the given positions with the
// operating threshold offset deltaDB.
func (m *Model) Graph(points []geom.Point, deltaDB float64) *graph.Graph {
	return graph.Geometric(points, m.ConflictDistFor(deltaDB))
}
