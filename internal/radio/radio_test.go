package radio

import (
	"math"
	"testing"
	"testing/quick"

	"specmatch/internal/geom"
	"specmatch/internal/xrand"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, Params{}); err == nil {
		t.Error("zero nominal range should fail")
	}
	if _, err := NewModel(2, Params{PathLossExp: 0.5}); err == nil {
		t.Error("absurd path loss exponent should fail")
	}
	if _, err := NewModel(2, Params{ReferenceDist: -1}); err == nil {
		t.Error("negative reference distance should fail")
	}
}

func TestCalibrationMatchesDisk(t *testing.T) {
	m, err := NewModel(3, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// At calibration (delta 0) the conflict distance equals the nominal
	// range: the SINR predicate coincides with the paper's disk rule.
	if got := m.ConflictDistFor(0); math.Abs(got-3) > 1e-12 {
		t.Errorf("ConflictDistFor(0) = %v, want 3", got)
	}
	a, b := geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 0}
	if !m.Interferes(a, b, 0) {
		t.Error("boundary pair must conflict at calibration")
	}
	if m.Interferes(a, geom.Point{X: 3.01, Y: 0}, 0) {
		t.Error("beyond-range pair must not conflict at calibration")
	}
}

func TestThresholdScaling(t *testing.T) {
	m, err := NewModel(2, Params{PathLossExp: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A 4 dB laxer threshold with γ = 4 shrinks the range by 10^(4/40).
	want := 2 / math.Pow(10, 0.1)
	if got := m.ConflictDistFor(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("ConflictDistFor(4) = %v, want %v", got, want)
	}
	// Stricter threshold extends it.
	if m.ConflictDistFor(-4) <= 2 {
		t.Error("stricter threshold should extend the conflict range")
	}
}

func TestPathLossMonotone(t *testing.T) {
	m, err := NewModel(2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, d := range []float64{0.05, 0.1, 0.5, 1, 2, 5, 10} {
		loss := m.PathLossDB(d)
		if loss < prev {
			t.Errorf("path loss at %v is %v, below %v", d, loss, prev)
		}
		prev = loss
	}
	if m.PathLossDB(0.1) != 0 {
		t.Errorf("loss at reference distance = %v, want 0", m.PathLossDB(0.1))
	}
	// Below the reference distance the loss clamps at 0, not negative.
	if m.PathLossDB(0.01) != 0 {
		t.Errorf("loss below reference = %v, want clamped 0", m.PathLossDB(0.01))
	}
}

// TestGraphMonotoneInThreshold: stricter thresholds only add edges.
func TestGraphMonotoneInThreshold(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		pts := geom.PaperArea().RandomPoints(r, 15)
		m, err := NewModel(2.5, Params{})
		if err != nil {
			return false
		}
		lax := m.Graph(pts, 3)
		strict := m.Graph(pts, -3)
		for _, e := range lax.Edges() {
			if !strict.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return strict.M() >= lax.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHigherExponentLocalizes: with a higher path loss exponent, the same
// threshold delta moves the conflict distance less (propagation is more
// local, so dB margins translate to shorter distances).
func TestHigherExponentLocalizes(t *testing.T) {
	low, err := NewModel(3, Params{PathLossExp: 2})
	if err != nil {
		t.Fatal(err)
	}
	high, err := NewModel(3, Params{PathLossExp: 6})
	if err != nil {
		t.Fatal(err)
	}
	if low.ConflictDistFor(6) >= high.ConflictDistFor(6) {
		t.Errorf("γ=2 shrink %v should be below γ=6 shrink %v",
			low.ConflictDistFor(6), high.ConflictDistFor(6))
	}
}
