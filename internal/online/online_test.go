package online

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/stability"
	"specmatch/internal/xrand"
)

func newSession(t *testing.T, sellers, buyers int, seed int64) (*Session, *market.Market) {
	t.Helper()
	m, err := market.Generate(market.Config{Sellers: sellers, Buyers: buyers, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

// checkInvariants asserts the session's §III guarantees over the active
// sub-market.
func checkInvariants(t *testing.T, s *Session) {
	t.Helper()
	em := s.effectiveMarket()
	rep := stability.Check(em, s.Matching())
	if !rep.InterferenceFree {
		t.Fatalf("interference: %v", rep.Interference)
	}
	if !rep.IndividuallyRational {
		t.Fatalf("IR violations: %v", rep.IR)
	}
	if !rep.NashStable {
		t.Fatalf("Nash deviations: %v", rep.Nash)
	}
	if err := s.Matching().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySession(t *testing.T) {
	s, _ := newSession(t, 3, 10, 1)
	if s.ActiveCount() != 0 || s.Welfare() != 0 {
		t.Error("fresh session should be empty")
	}
	st, err := s.Step(Event{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Welfare != 0 || st.Matched != 0 {
		t.Errorf("empty step: %+v", st)
	}
}

func TestArrivalsMatchEveryone(t *testing.T) {
	s, m := newSession(t, 4, 12, 2)
	all := make([]int, m.N())
	for j := range all {
		all[j] = j
	}
	st, err := s.Step(Event{Arrive: all})
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrived != m.N() {
		t.Errorf("arrived %d, want %d", st.Arrived, m.N())
	}
	if st.Welfare <= 0 {
		t.Error("welfare should be positive after everyone arrives")
	}
	checkInvariants(t, s)
}

func TestDepartureReleasesChannel(t *testing.T) {
	s, m := newSession(t, 3, 8, 3)
	all := make([]int, m.N())
	for j := range all {
		all[j] = j
	}
	if _, err := s.Step(Event{Arrive: all}); err != nil {
		t.Fatal(err)
	}
	// Depart a matched buyer.
	var victim int = -1
	for j := 0; j < m.N(); j++ {
		if s.Matching().IsMatched(j) {
			victim = j
			break
		}
	}
	if victim == -1 {
		t.Fatal("nobody matched")
	}
	st, err := s.Step(Event{Depart: []int{victim}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Departed != 1 {
		t.Errorf("departed %d, want 1", st.Departed)
	}
	if s.Matching().IsMatched(victim) || s.Active(victim) {
		t.Error("departed buyer still present")
	}
	checkInvariants(t, s)
}

func TestDuplicateEventsIdempotent(t *testing.T) {
	s, _ := newSession(t, 3, 6, 4)
	if _, err := s.Step(Event{Arrive: []int{0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if s.ActiveCount() != 2 {
		t.Errorf("active %d, want 2", s.ActiveCount())
	}
	st, err := s.Step(Event{Depart: []int{0, 0}, Arrive: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Departed != 1 || st.Arrived != 0 {
		t.Errorf("stats %+v, want 1 departure, 0 arrivals", st)
	}
}

func TestEventValidation(t *testing.T) {
	s, _ := newSession(t, 3, 6, 5)
	if _, err := s.Step(Event{Arrive: []int{99}}); err == nil {
		t.Error("out-of-range arrival should fail")
	}
	if _, err := s.Step(Event{Depart: []int{-1}}); err == nil {
		t.Error("out-of-range departure should fail")
	}
}

// TestChurnMaintainsStability runs a long random churn trace and checks the
// §III invariants after every event.
func TestChurnMaintainsStability(t *testing.T) {
	s, m := newSession(t, 5, 30, 6)
	r := xrand.New(77)
	for step := 0; step < 60; step++ {
		var ev Event
		for j := 0; j < m.N(); j++ {
			if s.Active(j) {
				if r.Float64() < 0.15 {
					ev.Depart = append(ev.Depart, j)
				}
			} else if r.Float64() < 0.3 {
				ev.Arrive = append(ev.Arrive, j)
			}
		}
		if _, err := s.Step(ev); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkInvariants(t, s)
	}
}

// TestIncumbentsNeverEvicted: an arrival never costs an incumbent her
// channel (the design's service-continuity property).
func TestIncumbentsNeverEvicted(t *testing.T) {
	s, m := newSession(t, 4, 20, 7)
	half := make([]int, 0, m.N()/2)
	for j := 0; j < m.N()/2; j++ {
		half = append(half, j)
	}
	if _, err := s.Step(Event{Arrive: half}); err != nil {
		t.Fatal(err)
	}
	em := s.effectiveMarket()
	before := make(map[int]float64)
	for _, j := range half {
		before[j] = matching.BuyerUtilityIn(em, s.Matching(), j)
	}
	rest := make([]int, 0, m.N()-len(half))
	for j := m.N() / 2; j < m.N(); j++ {
		rest = append(rest, j)
	}
	if _, err := s.Step(Event{Arrive: rest}); err != nil {
		t.Fatal(err)
	}
	em = s.effectiveMarket()
	for _, j := range half {
		if after := matching.BuyerUtilityIn(em, s.Matching(), j); after < before[j]-1e-12 {
			t.Errorf("incumbent %d utility dropped %v → %v on arrivals", j, before[j], after)
		}
	}
}

// TestRebuildAtLeastAsGood: the fresh two-stage run over the active
// sub-market is a (weak) upper reference for the drifted incremental state
// in aggregate across churn traces. Individual instants can go either way
// (both algorithms are heuristics), so compare summed welfare.
func TestRebuildReference(t *testing.T) {
	s, m := newSession(t, 5, 25, 8)
	r := xrand.New(5)
	var incSum, freshSum float64
	for step := 0; step < 25; step++ {
		var ev Event
		for j := 0; j < m.N(); j++ {
			if s.Active(j) {
				if r.Float64() < 0.2 {
					ev.Depart = append(ev.Depart, j)
				}
			} else if r.Float64() < 0.35 {
				ev.Arrive = append(ev.Arrive, j)
			}
		}
		st, err := s.Step(ev)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := s.Rebuild(false)
		if err != nil {
			t.Fatal(err)
		}
		incSum += st.Welfare
		freshSum += fresh
	}
	if incSum > freshSum*1.02 {
		t.Errorf("incremental welfare %.3f implausibly above fresh %.3f", incSum, freshSum)
	}
	if incSum < freshSum*0.8 {
		t.Errorf("incremental welfare %.3f drifted more than 20%% below fresh %.3f", incSum, freshSum)
	}
	t.Logf("incremental %.2f vs fresh %.2f (ratio %.3f)", incSum, freshSum, incSum/freshSum)
}

// TestRebuildAdopt replaces the session state.
func TestRebuildAdopt(t *testing.T) {
	s, m := newSession(t, 4, 16, 9)
	all := make([]int, m.N())
	for j := range all {
		all[j] = j
	}
	if _, err := s.Step(Event{Arrive: all}); err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Rebuild(true)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Welfare(); got != fresh {
		t.Errorf("adopted welfare %v != rebuild welfare %v", got, fresh)
	}
	checkInvariants(t, s)
}

// TestChannelReclaim: a seller taking her channel back displaces its
// coalition; repair re-seats whoever fits elsewhere, and the channel
// returning re-opens it.
func TestChannelReclaim(t *testing.T) {
	s, m := newSession(t, 3, 12, 10)
	all := make([]int, m.N())
	for j := range all {
		all[j] = j
	}
	if _, err := s.Step(Event{Arrive: all}); err != nil {
		t.Fatal(err)
	}
	before := s.Matching().Coalition(0)
	if len(before) == 0 {
		t.Skip("channel 0 empty on this seed")
	}
	st, err := s.Step(Event{ChannelDown: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ChannelsDown != 1 || st.Displaced != len(before) {
		t.Errorf("stats %+v, want 1 channel down and %d displaced", st, len(before))
	}
	if s.Matching().CoalitionSize(0) != 0 {
		t.Error("reclaimed channel still has occupants")
	}
	if s.ChannelOnline(0) {
		t.Error("channel 0 should be offline")
	}
	checkInvariants(t, s)

	st, err = s.Step(Event{ChannelUp: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ChannelsUp != 1 {
		t.Errorf("stats %+v, want 1 channel up", st)
	}
	checkInvariants(t, s)
	// With the channel back and repair done, somebody profitable should
	// reoccupy it whenever anyone values it most among her options; at
	// minimum the matching stays valid and Nash-stable (checked above).
}

// TestChannelChurnTrace: mixed buyer and channel churn keeps every
// invariant.
func TestChannelChurnTrace(t *testing.T) {
	s, m := newSession(t, 4, 20, 11)
	r := xrand.New(13)
	for step := 0; step < 40; step++ {
		var ev Event
		for j := 0; j < m.N(); j++ {
			if s.Active(j) {
				if r.Float64() < 0.1 {
					ev.Depart = append(ev.Depart, j)
				}
			} else if r.Float64() < 0.3 {
				ev.Arrive = append(ev.Arrive, j)
			}
		}
		for i := 0; i < m.M(); i++ {
			if s.ChannelOnline(i) {
				if r.Float64() < 0.08 {
					ev.ChannelDown = append(ev.ChannelDown, i)
				}
			} else if r.Float64() < 0.4 {
				ev.ChannelUp = append(ev.ChannelUp, i)
			}
		}
		if _, err := s.Step(ev); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkInvariants(t, s)
		// Nobody may occupy an offline channel.
		for i := 0; i < m.M(); i++ {
			if !s.ChannelOnline(i) && s.Matching().CoalitionSize(i) != 0 {
				t.Fatalf("step %d: offline channel %d occupied", step, i)
			}
		}
	}
}

// TestChannelEventValidation rejects out-of-range channels.
func TestChannelEventValidation(t *testing.T) {
	s, _ := newSession(t, 3, 6, 12)
	if _, err := s.Step(Event{ChannelDown: []int{9}}); err == nil {
		t.Error("out-of-range channel down should fail")
	}
	if _, err := s.Step(Event{ChannelUp: []int{-1}}); err == nil {
		t.Error("out-of-range channel up should fail")
	}
}

// checkServiceInvariants asserts the guarantees that hold after *every*
// repair from an arbitrary churn state: interference-freeness, individual
// rationality, and structural validity. Nash stability is deliberately not
// asserted here — Phase 1's per-buyer preference cursor never rewinds, so a
// buyer rejected by a coalition that later shrinks (e.g. after a channel
// comes back online and reshuffles demand) can be left with a profitable
// unilateral move. A fresh two-stage run (Rebuild) restores it; the
// seeded traces in TestChurnMaintainsStability still pin the common case
// where repair does too.
func checkServiceInvariants(t *testing.T, s *Session) {
	t.Helper()
	em := s.effectiveMarket()
	rep := stability.Check(em, s.Matching())
	if !rep.InterferenceFree {
		t.Fatalf("interference: %v", rep.Interference)
	}
	if !rep.IndividuallyRational {
		t.Fatalf("IR violations: %v", rep.IR)
	}
	if err := s.Matching().Validate(); err != nil {
		t.Fatal(err)
	}
}

// randomChurn draws one mixed buyer/channel churn event against the
// session's current state. Mobility rides along on every trace: random
// waypoints over the deployment area, an occasional same-point move (a
// position report that changes nothing), and moves of inactive buyers whose
// interference rows must still rewire.
func randomChurn(s *Session, m *market.Market, r *rand.Rand) Event {
	var ev Event
	for j := 0; j < m.N(); j++ {
		if s.Active(j) {
			if r.Float64() < 0.12 {
				ev.Depart = append(ev.Depart, j)
			}
		} else if r.Float64() < 0.3 {
			ev.Arrive = append(ev.Arrive, j)
		}
	}
	for i := 0; i < m.M(); i++ {
		if s.ChannelOnline(i) {
			if r.Float64() < 0.06 {
				ev.ChannelDown = append(ev.ChannelDown, i)
			}
		} else if r.Float64() < 0.4 {
			ev.ChannelUp = append(ev.ChannelUp, i)
		}
	}
	for j := 0; j < m.N(); j++ {
		if r.Float64() >= 0.08 {
			continue
		}
		to := geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}
		if r.Float64() < 0.15 {
			to, _ = s.Market().BuyerPos(j)
		}
		ev.Move = append(ev.Move, BuyerMove{Buyer: j, To: to})
	}
	return ev
}

// TestLongRunChurnInvariants is the serving-path endurance test: hundreds
// of randomized churn steps per seed, interference-freeness and individual
// rationality asserted after every single Step, with periodic adopting
// rebuilds interleaved the way a deployed specserved session would see
// them.
func TestLongRunChurnInvariants(t *testing.T) {
	steps := 150
	if testing.Short() {
		steps = 40
	}
	for _, seed := range []int64{21, 22, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			s, m := newSession(t, 5, 28, seed)
			r := xrand.New(seed * 1000)
			applied := 0
			for step := 0; step < steps; step++ {
				ev := randomChurn(s, m, r)
				if _, err := s.Step(ev); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				applied++
				checkServiceInvariants(t, s)
				if step%25 == 24 {
					if _, err := s.Rebuild(true); err != nil {
						t.Fatalf("rebuild at step %d: %v", step, err)
					}
					checkServiceInvariants(t, s)
				}
			}
			if s.Steps() != applied {
				t.Errorf("Steps() = %d, want %d", s.Steps(), applied)
			}
		})
	}
}

// TestRebuildAdoptNeverLowersWelfare: across a drifting churn trace, an
// adopting rebuild must never report (or leave behind) lower welfare than
// the incremental state it considered replacing — the monotonicity that
// makes scheduled rebuilds safe to run against live sessions.
func TestRebuildAdoptNeverLowersWelfare(t *testing.T) {
	for _, seed := range []int64{31, 32, 33, 34} {
		s, m := newSession(t, 5, 24, seed)
		r := xrand.New(seed)
		for step := 0; step < 30; step++ {
			if _, err := s.Step(randomChurn(s, m, r)); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			before := s.Welfare()
			got, err := s.Rebuild(true)
			if err != nil {
				t.Fatalf("seed %d step %d: rebuild: %v", seed, step, err)
			}
			if got < before-1e-9 {
				t.Fatalf("seed %d step %d: adopting rebuild reported %.6f < incremental %.6f",
					seed, step, got, before)
			}
			if after := s.Welfare(); math.Abs(after-got) > 1e-9 {
				t.Fatalf("seed %d step %d: session welfare %.6f != reported %.6f",
					seed, step, after, got)
			}
			checkServiceInvariants(t, s)
		}
	}
}

// TestFailedStepLeavesSessionUntouched: Step validates the whole event
// before mutating, so a batch with one bad index applies none of its valid
// churn.
func TestFailedStepLeavesSessionUntouched(t *testing.T) {
	s, m := newSession(t, 4, 12, 13)
	all := make([]int, m.N())
	for j := range all {
		all[j] = j
	}
	if _, err := s.Step(Event{Arrive: all}); err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	bad := Event{
		Depart:      []int{0, 1},
		ChannelDown: []int{0},
		Arrive:      []int{m.N()}, // out of range — poisons the whole batch
	}
	if _, err := s.Step(bad); err == nil {
		t.Fatal("invalid batch should fail")
	}
	if after := s.Snapshot(); !reflect.DeepEqual(before, after) {
		t.Errorf("failed Step mutated the session:\n before %+v\n after  %+v", before, after)
	}
	if s.Steps() != 1 {
		t.Errorf("Steps() = %d after a failed step, want 1", s.Steps())
	}
}

// TestSnapshot checks the JSON-ready view against the session's accessors
// and that it survives an encode/decode round trip.
func TestSnapshot(t *testing.T) {
	s, m := newSession(t, 4, 10, 14)
	if _, err := s.Step(Event{Arrive: []int{0, 1, 2, 3, 4, 5}, ChannelDown: []int{2}}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Channels != m.M() || snap.Buyers != m.N() {
		t.Errorf("dims (%d,%d), want (%d,%d)", snap.Channels, snap.Buyers, m.M(), m.N())
	}
	if snap.Active != s.ActiveCount() || snap.Matched != s.Matching().MatchedCount() {
		t.Errorf("active/matched %d/%d disagree with session %d/%d",
			snap.Active, snap.Matched, s.ActiveCount(), s.Matching().MatchedCount())
	}
	if snap.Welfare != s.Welfare() || snap.Steps != s.Steps() {
		t.Errorf("welfare/steps %v/%d disagree with session %v/%d",
			snap.Welfare, snap.Steps, s.Welfare(), s.Steps())
	}
	if !reflect.DeepEqual(snap.OfflineChannels, []int{2}) {
		t.Errorf("offline channels %v, want [2]", snap.OfflineChannels)
	}
	for j, i := range snap.Assignment {
		if i != s.Matching().SellerOf(j) {
			t.Errorf("assignment[%d] = %d, want %d", j, i, s.Matching().SellerOf(j))
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot did not round-trip:\n %+v\n %+v", snap, back)
	}
}

// TestEventHelpers covers Validate and Empty directly.
func TestEventHelpers(t *testing.T) {
	if !(Event{}).Empty() {
		t.Error("zero event should be empty")
	}
	if (Event{ChannelUp: []int{0}}).Empty() {
		t.Error("channel churn is not empty")
	}
	ok := Event{Arrive: []int{0}, Depart: []int{4}, ChannelUp: []int{0}, ChannelDown: []int{2}}
	if err := ok.Validate(3, 5); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	for _, bad := range []Event{
		{Arrive: []int{5}},
		{Depart: []int{-1}},
		{ChannelUp: []int{3}},
		{ChannelDown: []int{-2}},
	} {
		if err := bad.Validate(3, 5); err == nil {
			t.Errorf("event %+v should fail validation", bad)
		}
	}
}
