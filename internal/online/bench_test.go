package online

import (
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
)

// benchmarkChurn drives the same deterministic churn-heavy trace through a
// fresh session per iteration; disable toggles the incremental engine off.
func benchmarkChurn(b *testing.B, sellers, buyers int, disable bool) {
	m, err := market.Generate(market.Config{Sellers: sellers, Buyers: buyers, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	events := SyntheticChurn(m, 99, 64)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		b.StopTimer()
		s, err := NewSession(m, core.Options{DisableIncremental: disable})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, ev := range events {
			if _, err := s.Step(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkChurnIncremental(b *testing.B) { benchmarkChurn(b, 10, 320, false) }
func BenchmarkChurnFullRepair(b *testing.B)  { benchmarkChurn(b, 10, 320, true) }
