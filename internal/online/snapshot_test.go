package online

import (
	"encoding/json"
	"reflect"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
)

// restore round-trips a snapshot through JSON (the form the WAL stores) and
// FromSnapshot, failing the test on any error.
func restore(t *testing.T, m *market.Market, snap Snapshot) *Session {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	s, err := FromSnapshot(m, decoded, core.Options{})
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	return s
}

// Snapshot → JSON → FromSnapshot must be the identity at every point of a
// session's life, under every event type — and the restored session must not
// merely look identical, it must behave identically: stepping the original
// and the restoration with the same subsequent events keeps them
// bit-for-bit equal. That behavioral half is what crash recovery leans on.
func TestSnapshotRoundTripEveryEventType(t *testing.T) {
	s, m := newSession(t, 4, 12, 7)
	script := []Event{
		{Arrive: []int{0, 1, 2, 3, 4, 5}},
		{Depart: []int{1, 3}},
		{ChannelDown: []int{0}},
		{Arrive: []int{6, 7}, Depart: []int{0}},
		{ChannelUp: []int{0}},
		{ChannelDown: []int{1, 2}, Arrive: []int{8}},
		{}, // empty event still counts a step
		{ChannelUp: []int{1}, Depart: []int{4}, Arrive: []int{9, 10}},
	}
	for k, ev := range script {
		if _, err := s.Step(ev); err != nil {
			t.Fatalf("script step %d: %v", k, err)
		}
		snap := s.Snapshot()
		r := restore(t, m, snap)
		if got := r.Snapshot(); !reflect.DeepEqual(got, snap) {
			t.Fatalf("step %d: restored snapshot diverges:\n got %+v\nwant %+v", k, got, snap)
		}
		// Behavioral equivalence: both sessions run the rest of the script
		// plus a rebuild, and must stay identical throughout.
		if k == len(script)/2 {
			cont := append(script[k+1:len(script):len(script)], Event{Arrive: []int{11}})
			for kk, next := range cont {
				sStats, sErr := s.Step(next)
				rStats, rErr := r.Step(next)
				if sErr != nil || rErr != nil {
					t.Fatalf("continuation %d: errs %v / %v", kk, sErr, rErr)
				}
				if sStats != rStats {
					t.Fatalf("continuation %d: stats diverge: %+v vs %+v", kk, sStats, rStats)
				}
				if !reflect.DeepEqual(s.Snapshot(), r.Snapshot()) {
					t.Fatalf("continuation %d: snapshots diverge", kk)
				}
			}
			sw, err1 := s.Rebuild(true)
			rw, err2 := r.Rebuild(true)
			if err1 != nil || err2 != nil {
				t.Fatalf("rebuild: %v / %v", err1, err2)
			}
			if sw != rw || !reflect.DeepEqual(s.Snapshot(), r.Snapshot()) {
				t.Fatalf("rebuild diverges: welfare %v vs %v", sw, rw)
			}
			return
		}
	}
}

// An event that fails Validate must leave the snapshot unchanged — the
// server relies on this to keep rejected events out of the WAL: what was
// not applied must not be replayed.
func TestSnapshotUnchangedByFailedEvent(t *testing.T) {
	s, m := newSession(t, 3, 10, 3)
	if _, err := s.Step(Event{Arrive: []int{0, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	bad := []Event{
		{Arrive: []int{10}},                   // buyer out of range
		{Depart: []int{-1}},                   // negative buyer
		{ChannelDown: []int{99}},              // channel out of range
		{ChannelUp: []int{-2}},                // negative channel
		{Arrive: []int{4}, Depart: []int{77}}, // valid part must not apply either
	}
	for k, ev := range bad {
		if _, err := s.Step(ev); err == nil {
			t.Fatalf("bad event %d was accepted", k)
		}
		after := s.Snapshot()
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("bad event %d mutated the session:\nbefore %+v\nafter  %+v", k, before, after)
		}
	}
	// And the untouched snapshot still round-trips.
	r := restore(t, m, before)
	if !reflect.DeepEqual(r.Snapshot(), before) {
		t.Fatal("snapshot after rejected events does not round-trip")
	}
}

// FromSnapshot must reject snapshots that do not describe a reachable state
// of the given market; recovery uses it as a checksum over checkpoint data.
func TestFromSnapshotRejectsInconsistency(t *testing.T) {
	s, m := newSession(t, 3, 10, 5)
	if _, err := s.Step(Event{Arrive: []int{0, 1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	good := s.Snapshot()
	if _, err := FromSnapshot(m, good, core.Options{}); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	mutate := func(name string, f func(snap *Snapshot)) {
		snap := good
		// Deep-copy the slices so mutations don't leak across cases.
		snap.OfflineChannels = append([]int(nil), good.OfflineChannels...)
		snap.ActiveBuyers = append([]int(nil), good.ActiveBuyers...)
		snap.Assignment = append([]int(nil), good.Assignment...)
		f(&snap)
		if _, err := FromSnapshot(m, snap, core.Options{}); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", name)
		}
	}
	mutate("wrong channel count", func(snap *Snapshot) { snap.Channels++ })
	mutate("wrong buyer count", func(snap *Snapshot) { snap.Buyers-- })
	mutate("short assignment", func(snap *Snapshot) { snap.Assignment = snap.Assignment[:3] })
	mutate("negative steps", func(snap *Snapshot) { snap.Steps = -1 })
	mutate("assignment out of range", func(snap *Snapshot) { snap.Assignment[0] = 99 })
	mutate("offline channel out of range", func(snap *Snapshot) { snap.OfflineChannels = []int{7} })
	mutate("active buyer out of range", func(snap *Snapshot) { snap.ActiveBuyers = append(snap.ActiveBuyers, 10) })
	mutate("matched but inactive buyer", func(snap *Snapshot) {
		for j, ch := range snap.Assignment {
			if ch != market.Unmatched {
				snap.ActiveBuyers = removeInt(snap.ActiveBuyers, j)
				snap.Active--
				return
			}
		}
		t.Fatal("no matched buyer in fixture")
	})
	mutate("matched on offline channel", func(snap *Snapshot) {
		for _, ch := range snap.Assignment {
			if ch != market.Unmatched {
				snap.OfflineChannels = append(snap.OfflineChannels, ch)
				return
			}
		}
		t.Fatal("no matched buyer in fixture")
	})
	mutate("welfare drift", func(snap *Snapshot) { snap.Welfare += 1e-9 })
	mutate("matched count drift", func(snap *Snapshot) { snap.Matched++ })
	mutate("active count drift", func(snap *Snapshot) { snap.Active++ })
}

func removeInt(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
