package online

import (
	"math"

	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/xrand"
)

// SyntheticChurn generates a deterministic churn-heavy event trace for the
// given market: per step a mix of arrivals, departures, and occasional
// channel reclaims/re-offers, drawn against a simulated (active, offline)
// state so the trace stays balanced instead of saturating. The same
// (market shape, seed, steps) always yields the same trace — cmd/specbench
// records churn baselines over it and the benchguard test replays it, so
// the two must never derive workloads independently.
func SyntheticChurn(m *market.Market, seed int64, steps int) []Event {
	r := xrand.New(seed)
	active := make([]bool, m.N())
	offline := make([]bool, m.M())
	events := make([]Event, steps)
	for k := range events {
		var ev Event
		for j := 0; j < m.N(); j++ {
			if active[j] {
				if r.Float64() < 0.10 {
					ev.Depart = append(ev.Depart, j)
					active[j] = false
				}
			} else if r.Float64() < 0.25 {
				ev.Arrive = append(ev.Arrive, j)
				active[j] = true
			}
		}
		for i := 0; i < m.M(); i++ {
			if offline[i] {
				if r.Float64() < 0.35 {
					ev.ChannelUp = append(ev.ChannelUp, i)
					offline[i] = false
				}
			} else if r.Float64() < 0.05 {
				ev.ChannelDown = append(ev.ChannelDown, i)
				offline[i] = true
			}
		}
		events[k] = ev
	}
	return events
}

// SyntheticMobileChurn is SyntheticChurn plus mobility: each step a slice of
// the population advances a bounded stride along a random-waypoint leg over
// the paper's deployment area — the same trajectory model specload's
// scenario mode drives live. Strides are short on the area's scale, so each
// move rewires a handful of interference edges rather than teleporting a
// buyer across the map; moves cover active and inactive buyers alike (a
// parked buyer's rows still rewire). The same (market shape, seed, steps)
// always yields the same trace: the churn+mobility benchmark baseline is
// recorded over this generator and the benchguard replays it, under the same
// never-derive-independently contract as SyntheticChurn. The market must
// retain geometry (market.HasGeometry) for the trace to be steppable.
func SyntheticMobileChurn(m *market.Market, seed int64, steps int) []Event {
	const stride = 0.6
	r := xrand.New(seed)
	area := geom.PaperArea()
	active := make([]bool, m.N())
	offline := make([]bool, m.M())
	pos := make([]geom.Point, m.N())
	wp := make([]geom.Point, m.N())
	for j := range pos {
		pos[j], _ = m.BuyerPos(j)
		wp[j] = area.RandomPoint(r)
	}
	events := make([]Event, steps)
	for k := range events {
		var ev Event
		for j := 0; j < m.N(); j++ {
			if active[j] {
				if r.Float64() < 0.10 {
					ev.Depart = append(ev.Depart, j)
					active[j] = false
				}
			} else if r.Float64() < 0.25 {
				ev.Arrive = append(ev.Arrive, j)
				active[j] = true
			}
		}
		for i := 0; i < m.M(); i++ {
			if offline[i] {
				if r.Float64() < 0.35 {
					ev.ChannelUp = append(ev.ChannelUp, i)
					offline[i] = false
				}
			} else if r.Float64() < 0.05 {
				ev.ChannelDown = append(ev.ChannelDown, i)
				offline[i] = true
			}
		}
		for j := 0; j < m.N(); j++ {
			if r.Float64() >= 0.05 {
				continue
			}
			dx, dy := wp[j].X-pos[j].X, wp[j].Y-pos[j].Y
			if d := math.Hypot(dx, dy); d <= stride {
				pos[j] = wp[j]
				wp[j] = area.RandomPoint(r)
			} else {
				pos[j] = geom.Point{X: pos[j].X + dx/d*stride, Y: pos[j].Y + dy/d*stride}
			}
			ev.Move = append(ev.Move, BuyerMove{Buyer: j, To: pos[j]})
		}
		events[k] = ev
	}
	return events
}
