package online

import (
	"specmatch/internal/market"
	"specmatch/internal/xrand"
)

// SyntheticChurn generates a deterministic churn-heavy event trace for the
// given market: per step a mix of arrivals, departures, and occasional
// channel reclaims/re-offers, drawn against a simulated (active, offline)
// state so the trace stays balanced instead of saturating. The same
// (market shape, seed, steps) always yields the same trace — cmd/specbench
// records churn baselines over it and the benchguard test replays it, so
// the two must never derive workloads independently.
func SyntheticChurn(m *market.Market, seed int64, steps int) []Event {
	r := xrand.New(seed)
	active := make([]bool, m.N())
	offline := make([]bool, m.M())
	events := make([]Event, steps)
	for k := range events {
		var ev Event
		for j := 0; j < m.N(); j++ {
			if active[j] {
				if r.Float64() < 0.10 {
					ev.Depart = append(ev.Depart, j)
					active[j] = false
				}
			} else if r.Float64() < 0.25 {
				ev.Arrive = append(ev.Arrive, j)
				active[j] = true
			}
		}
		for i := 0; i < m.M(); i++ {
			if offline[i] {
				if r.Float64() < 0.35 {
					ev.ChannelUp = append(ev.ChannelUp, i)
					offline[i] = false
				}
			} else if r.Float64() < 0.05 {
				ev.ChannelDown = append(ev.ChannelDown, i)
				offline[i] = true
			}
		}
		events[k] = ev
	}
	return events
}
