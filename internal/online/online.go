// Package online extends spectrum matching to dynamic markets, where
// service providers' demand changes over time — the operating regime that
// motivates DSA in the paper's introduction, though its evaluation is
// static. A Session holds a long-running matching over a fixed buyer
// population of which only a subset is active; arrivals and departures are
// handled *incrementally* with the Stage II repair operator (core.Repair)
// instead of re-running the whole algorithm:
//
//   - a departure releases the buyer's channel,
//   - an arrival joins unmatched and competes through transfer applications
//     and invitations, which never evict incumbents.
//
// Incremental repair keeps every §III guarantee for the active
// sub-market — interference-freeness, individual rationality, Nash
// stability — because Stage II's proofs only need an interference-free
// starting state. The price of incrementality is welfare: incumbents are
// never displaced, so a long-lived session can drift below what a fresh
// two-stage run would achieve; Session.Rebuild and the ablation harness
// quantify that drift.
package online

import (
	"fmt"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/matching"
)

// Event is one batch of market churn, applied atomically before a repair
// pass. Buyer indices refer to the base market's virtual buyers; channel
// indices to its virtual sellers. Channel churn models the paper's core
// motivation — a provider sells spare spectrum while her demand is light
// and reclaims it (ChannelDown) when it grows.
type Event struct {
	Arrive      []int `json:"arrive,omitempty"`
	Depart      []int `json:"depart,omitempty"`
	ChannelUp   []int `json:"channel_up,omitempty"`
	ChannelDown []int `json:"channel_down,omitempty"`
}

// StepStats reports one Step.
type StepStats struct {
	Arrived      int `json:"arrived"`
	Departed     int `json:"departed"`
	ChannelsUp   int `json:"channels_up"`
	ChannelsDown int `json:"channels_down"`
	// Displaced counts buyers who lost their channel to a reclaim this
	// step (before repair re-seats whoever it can).
	Displaced   int     `json:"displaced"`
	Welfare     float64 `json:"welfare"`
	Matched     int     `json:"matched"`
	RepairMoves int     `json:"repair_moves"` // transfer + invitation rounds
}

// Session is a dynamic matching session. The zero value is not usable;
// construct with NewSession.
type Session struct {
	base    *market.Market
	opts    core.Options
	active  []bool
	offline []bool // channels withdrawn from the market
	mu      *matching.Matching
}

// NewSession starts a session on the given market with no active buyers and
// an empty matching.
func NewSession(m *market.Market, opts core.Options) (*Session, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("online: invalid market: %w", err)
	}
	return &Session{
		base:    m,
		opts:    opts,
		active:  make([]bool, m.N()),
		offline: make([]bool, m.M()),
		mu:      matching.New(m.M(), m.N()),
	}, nil
}

// ChannelOnline reports whether channel i is currently offered.
func (s *Session) ChannelOnline(i int) bool { return !s.offline[i] }

// Matching returns the session's current matching. The caller must not
// mutate it; use Step and Rebuild.
func (s *Session) Matching() *matching.Matching { return s.mu }

// Active reports whether buyer j is currently in the market.
func (s *Session) Active(j int) bool { return s.active[j] }

// ActiveCount returns the number of active buyers.
func (s *Session) ActiveCount() int {
	count := 0
	for _, a := range s.active {
		if a {
			count++
		}
	}
	return count
}

// Welfare returns the current social welfare over active buyers.
func (s *Session) Welfare() float64 {
	return matching.Welfare(s.effectiveMarket(), s.mu)
}

// effectiveMarket derives the active sub-market: inactive buyers' price
// rows and offline channels' rows are zeroed, which removes them from every
// mechanism (nobody proposes to a zero-value channel, zero-price buyers
// never qualify for coalitions or invitations) without renumbering anyone.
func (s *Session) effectiveMarket() *market.Market {
	spec := s.base.Spec()
	prices := make([][]float64, len(spec.Prices))
	for i, row := range spec.Prices {
		newRow := make([]float64, len(row))
		if !s.offline[i] {
			for j, p := range row {
				if s.active[j] {
					newRow[j] = p
				}
			}
		}
		prices[i] = newRow
	}
	spec.Prices = prices
	m, err := market.FromSpec(spec)
	if err != nil {
		// The spec came from a validated market and zeroing prices cannot
		// invalidate it; reaching here is a programming error.
		panic(fmt.Sprintf("online: effective market invalid: %v", err))
	}
	return m
}

// Step applies one churn event and repairs the matching incrementally.
func (s *Session) Step(ev Event) (StepStats, error) {
	var st StepStats
	for _, j := range ev.Depart {
		if j < 0 || j >= len(s.active) {
			return st, fmt.Errorf("online: departing buyer %d out of range [0,%d)", j, len(s.active))
		}
		if !s.active[j] {
			continue
		}
		s.active[j] = false
		s.mu.Unassign(j)
		st.Departed++
	}
	for _, j := range ev.Arrive {
		if j < 0 || j >= len(s.active) {
			return st, fmt.Errorf("online: arriving buyer %d out of range [0,%d)", j, len(s.active))
		}
		if s.active[j] {
			continue
		}
		s.active[j] = true
		st.Arrived++
	}
	for _, i := range ev.ChannelDown {
		if i < 0 || i >= len(s.offline) {
			return st, fmt.Errorf("online: channel %d out of range [0,%d)", i, len(s.offline))
		}
		if s.offline[i] {
			continue
		}
		s.offline[i] = true
		st.ChannelsDown++
		// The reclaiming seller displaces her whole coalition.
		for _, j := range s.mu.Coalition(i) {
			s.mu.Unassign(j)
			st.Displaced++
		}
	}
	for _, i := range ev.ChannelUp {
		if i < 0 || i >= len(s.offline) {
			return st, fmt.Errorf("online: channel %d out of range [0,%d)", i, len(s.offline))
		}
		if !s.offline[i] {
			continue
		}
		s.offline[i] = false
		st.ChannelsUp++
	}

	em := s.effectiveMarket()
	res, err := core.Repair(em, s.mu, s.opts)
	if err != nil {
		return st, fmt.Errorf("online: repair: %w", err)
	}
	st.Welfare = res.Welfare
	st.Matched = res.Matched
	st.RepairMoves = res.Phase1.Rounds + res.Phase2.Rounds
	return st, nil
}

// Rebuild discards the incremental state and re-runs the full two-stage
// algorithm over the active sub-market — the "fresh" reference the ablation
// compares incremental repair against. It returns the fresh welfare without
// replacing the session state unless adopt is true.
func (s *Session) Rebuild(adopt bool) (float64, error) {
	em := s.effectiveMarket()
	res, err := core.Run(em, s.opts)
	if err != nil {
		return 0, fmt.Errorf("online: rebuild: %w", err)
	}
	if adopt {
		s.mu = res.Matching
	}
	return res.Welfare, nil
}
