// Package online extends spectrum matching to dynamic markets, where
// service providers' demand changes over time — the operating regime that
// motivates DSA in the paper's introduction, though its evaluation is
// static. A Session holds a long-running matching over a fixed buyer
// population of which only a subset is active; arrivals and departures are
// handled *incrementally* with the Stage II repair operator instead of
// re-running the whole algorithm:
//
//   - a departure releases the buyer's channel,
//   - an arrival joins unmatched and competes through transfer applications
//     and invitations, which never evict incumbents.
//
// By default Step runs the repair on a persistent per-session engine
// (core.Incremental) that keeps effective prices, preference orders, and
// coalition memos alive across steps and charges each step for the event's
// dirty neighborhood rather than a from-scratch market rebuild; see
// internal/core/incremental.go and DESIGN.md for the mechanism.
// Options.DisableIncremental routes every step through an effective-market
// rebuild plus core.Repair instead — the output is bit-identical either way
// (StepStats, matching, welfare floats), which the differential harness in
// this package and the churn benchguard enforce.
//
// Incremental repair keeps interference-freeness and individual
// rationality for the active sub-market after every event, because Stage
// II's mechanisms only need an interference-free starting state. Nash
// stability is restored in the common case but is not guaranteed from an
// arbitrary churn state: Phase 1's per-buyer preference cursor never
// rewinds, so a buyer rejected by a coalition that later shrinks (channel
// churn reshuffling demand) can keep a profitable unilateral move. The
// other price of incrementality is welfare: incumbents are never
// displaced, so a long-lived session can drift below what a fresh
// two-stage run would achieve. Session.Rebuild repairs both — it re-runs
// the full algorithm and (with adopt) keeps the better matching; the
// ablation harness quantifies the drift.
package online

import (
	"fmt"
	"math"

	"specmatch/internal/core"
	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/trace"
)

// BuyerMove relocates one virtual buyer to a new deployment position. The
// session re-derives the buyer's interference edges on every channel from
// the market's radio rule, so a move can both create and dissolve conflicts.
type BuyerMove struct {
	Buyer int        `json:"buyer"`
	To    geom.Point `json:"to"`
}

// Event is one batch of market churn, applied atomically before a repair
// pass. Buyer indices refer to the base market's virtual buyers; channel
// indices to its virtual sellers. Channel churn models the paper's core
// motivation — a provider sells spare spectrum while her demand is light
// and reclaims it (ChannelDown) when it grows.
type Event struct {
	Arrive      []int `json:"arrive,omitempty"`
	Depart      []int `json:"depart,omitempty"`
	ChannelUp   []int `json:"channel_up,omitempty"`
	ChannelDown []int `json:"channel_down,omitempty"`
	// Move relocates buyers (active or not) and rewires their interference
	// rows; it needs a market that retains geometry (market.HasGeometry).
	// Moves are applied in order, after all other churn in the event.
	Move []BuyerMove `json:"move,omitempty"`
}

// Validate checks every index in the event against a market with the given
// numbers of virtual channels and buyers, without applying anything. Step
// validates with it before mutating, so a rejected event leaves the session
// untouched; servers can call it up front to turn bad input into a client
// error before queueing work.
func (ev Event) Validate(channels, buyers int) error {
	for _, j := range ev.Depart {
		if j < 0 || j >= buyers {
			return fmt.Errorf("online: departing buyer %d out of range [0,%d)", j, buyers)
		}
	}
	for _, j := range ev.Arrive {
		if j < 0 || j >= buyers {
			return fmt.Errorf("online: arriving buyer %d out of range [0,%d)", j, buyers)
		}
	}
	for _, i := range ev.ChannelDown {
		if i < 0 || i >= channels {
			return fmt.Errorf("online: channel %d out of range [0,%d)", i, channels)
		}
	}
	for _, i := range ev.ChannelUp {
		if i < 0 || i >= channels {
			return fmt.Errorf("online: channel %d out of range [0,%d)", i, channels)
		}
	}
	for _, mv := range ev.Move {
		if mv.Buyer < 0 || mv.Buyer >= buyers {
			return fmt.Errorf("online: moving buyer %d out of range [0,%d)", mv.Buyer, buyers)
		}
		if !finitePoint(mv.To) {
			return fmt.Errorf("online: buyer %d move to non-finite position %v", mv.Buyer, mv.To)
		}
	}
	return nil
}

// finitePoint rejects NaN and infinite coordinates, which would poison every
// later distance comparison (NaN compares false, so a NaN-positioned buyer
// would silently drop all her geometric edges).
func finitePoint(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Empty reports whether the event carries no churn at all.
func (ev Event) Empty() bool {
	return len(ev.Arrive) == 0 && len(ev.Depart) == 0 &&
		len(ev.ChannelUp) == 0 && len(ev.ChannelDown) == 0 && len(ev.Move) == 0
}

// StepStats reports one Step.
type StepStats struct {
	Arrived      int `json:"arrived"`
	Departed     int `json:"departed"`
	ChannelsUp   int `json:"channels_up"`
	ChannelsDown int `json:"channels_down"`
	// Displaced counts buyers who lost their channel to a reclaim or to a
	// move into conflict this step (before repair re-seats whoever it can).
	Displaced int `json:"displaced"`
	// Moved counts every applied move, including moves to the current
	// position — the count is a pure function of the event, so replays and
	// duplicate deliveries reproduce it exactly.
	Moved       int     `json:"moved"`
	Welfare     float64 `json:"welfare"`
	Matched     int     `json:"matched"`
	RepairMoves int     `json:"repair_moves"` // transfer + invitation rounds
}

// Session is a dynamic matching session. The zero value is not usable;
// construct with NewSession.
type Session struct {
	base    *market.Market
	opts    core.Options
	active  []bool
	offline []bool // channels withdrawn from the market
	mu      *matching.Matching
	steps   int

	// inc is the session's persistent incremental repair engine, created on
	// the first Step unless opts.DisableIncremental. Both paths are
	// bit-identical (the differential harness in this package proves it);
	// the incremental one skips the per-step effective-market rebuild.
	inc *core.Incremental
}

// NewSession starts a session on the given market with no active buyers and
// an empty matching. The session clones the market's mutable state (graphs,
// positions), so Move events never leak into the caller's instance — two
// sessions over one market stay independent, and replaying a trace against
// the same market always starts from the same geometry.
func NewSession(m *market.Market, opts core.Options) (*Session, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("online: invalid market: %w", err)
	}
	return &Session{
		base:    m.Clone(),
		opts:    opts,
		active:  make([]bool, m.N()),
		offline: make([]bool, m.M()),
		mu:      matching.New(m.M(), m.N()),
	}, nil
}

// ChannelOnline reports whether channel i is currently offered.
func (s *Session) ChannelOnline(i int) bool { return !s.offline[i] }

// Market returns the session's base market. The caller must not mutate it.
func (s *Session) Market() *market.Market { return s.base }

// Steps returns the number of successfully applied churn events.
func (s *Session) Steps() int { return s.steps }

// Recorder returns the protocol-event recorder the session's engine runs
// with; nil when event recording is off.
func (s *Session) Recorder() *trace.Recorder { return s.opts.Recorder }

// Matching returns the session's current matching. The caller must not
// mutate it; use Step and Rebuild.
func (s *Session) Matching() *matching.Matching { return s.mu }

// Active reports whether buyer j is currently in the market.
func (s *Session) Active(j int) bool { return s.active[j] }

// ActiveCount returns the number of active buyers.
func (s *Session) ActiveCount() int {
	count := 0
	for _, a := range s.active {
		if a {
			count++
		}
	}
	return count
}

// Welfare returns the current social welfare over active buyers.
func (s *Session) Welfare() float64 {
	return matching.Welfare(s.effectiveMarket(), s.mu)
}

// effectiveMarket derives the active sub-market: inactive buyers' price
// rows and offline channels' rows are zeroed, which removes them from every
// mechanism (nobody proposes to a zero-value channel, zero-price buyers
// never qualify for coalitions or invitations) without renumbering anyone.
func (s *Session) effectiveMarket() *market.Market {
	spec := s.base.Spec()
	prices := make([][]float64, len(spec.Prices))
	for i, row := range spec.Prices {
		newRow := make([]float64, len(row))
		if !s.offline[i] {
			for j, p := range row {
				if s.active[j] {
					newRow[j] = p
				}
			}
		}
		prices[i] = newRow
	}
	spec.Prices = prices
	m, err := market.FromSpec(spec)
	if err != nil {
		// The spec came from a validated market and zeroing prices cannot
		// invalidate it; reaching here is a programming error.
		panic(fmt.Sprintf("online: effective market invalid: %v", err))
	}
	return m
}

// Step applies one churn event and repairs the matching incrementally. The
// event is validated in full before anything is applied, so a failed Step
// leaves the session exactly as it was.
func (s *Session) Step(ev Event) (StepStats, error) {
	return s.StepTraced(ev, trace.SpanContext{})
}

// StepTraced is Step with an explicit trace parent: when the session's
// engine options carry a Flight, the step records an online.step span under
// parent (the serving layer passes its shard-op span) and the repair run's
// core spans nest beneath it.
func (s *Session) StepTraced(ev Event, parent trace.SpanContext) (StepStats, error) {
	span := s.opts.Flight.Start(parent, "online.step")
	defer span.End()
	var st StepStats
	if err := ev.Validate(len(s.offline), len(s.active)); err != nil {
		return st, err
	}
	if len(ev.Move) > 0 && !s.base.HasGeometry() {
		return st, fmt.Errorf("online: move events need a market with geometry (positions and ranges)")
	}
	// ch collects the effective transitions (no-op entries are dropped
	// above each append) for the incremental engine's delta pass.
	var ch core.Churn
	for _, j := range ev.Depart {
		if !s.active[j] {
			continue
		}
		s.active[j] = false
		s.mu.Unassign(j)
		st.Departed++
		ch.Departed = append(ch.Departed, j)
	}
	for _, j := range ev.Arrive {
		if s.active[j] {
			continue
		}
		s.active[j] = true
		st.Arrived++
		ch.Arrived = append(ch.Arrived, j)
	}
	for _, i := range ev.ChannelDown {
		if s.offline[i] {
			continue
		}
		s.offline[i] = true
		st.ChannelsDown++
		ch.ChannelsDown = append(ch.ChannelsDown, i)
		// The reclaiming seller displaces her whole coalition.
		for _, j := range s.mu.Coalition(i) {
			s.mu.Unassign(j)
			st.Displaced++
			ch.Displaced = append(ch.Displaced, j)
		}
	}
	for _, i := range ev.ChannelUp {
		if !s.offline[i] {
			continue
		}
		s.offline[i] = false
		st.ChannelsUp++
		ch.ChannelsUp = append(ch.ChannelsUp, i)
	}
	for _, mv := range ev.Move {
		j := mv.Buyer
		// The pre-move neighborhood seeds the dirty closure alongside the
		// post-move one: dissolved conflicts free the old neighbors too.
		for i := 0; i < s.base.M(); i++ {
			s.base.Graph(i).EachNeighbor(j, func(k int) bool {
				ch.MovedOldNbrs = append(ch.MovedOldNbrs, k)
				return true
			})
		}
		rewired, err := s.base.MoveBuyer(j, mv.To)
		if err != nil {
			// Unreachable after the geometry and Validate checks above.
			return st, fmt.Errorf("online: %w", err)
		}
		st.Moved++
		ch.Moved = append(ch.Moved, j)
		ch.Rewired = append(ch.Rewired, rewired...)
		// Only j's edges changed, so only j's own seat can have become
		// conflicted; the mover, not the incumbent, loses it.
		if i := s.mu.SellerOf(j); i != market.Unmatched {
			if s.base.InterfererIn(i, j, s.mu.Coalition(i)) {
				s.mu.Unassign(j)
				st.Displaced++
				ch.Displaced = append(ch.Displaced, j)
			}
		}
	}

	var res core.Result
	var err error
	if s.opts.DisableIncremental {
		em := s.effectiveMarket()
		opts := s.opts
		opts.SpanParent = span.Context()
		res, err = core.Repair(em, s.mu, opts)
	} else {
		if s.inc == nil {
			s.inc = core.NewIncremental(s.base, s.opts)
		}
		res, err = s.inc.Step(s.mu, ch, s.active, s.offline, span.Context())
	}
	if err != nil {
		return st, fmt.Errorf("online: repair: %w", err)
	}
	s.steps++
	st.Welfare = res.Welfare
	st.Matched = res.Matched
	st.RepairMoves = res.Phase1.Rounds + res.Phase2.Rounds
	if span.Active() {
		span.Annotate(fmt.Sprintf("step=%d arrived=%d departed=%d displaced=%d matched=%d welfare=%.6g",
			s.steps, st.Arrived, st.Departed, st.Displaced, st.Matched, st.Welfare))
	}
	return st, nil
}

// Rebuild re-runs the full two-stage algorithm over the active sub-market —
// the "fresh" reference the ablation compares incremental repair against.
// With adopt false it returns the fresh welfare without touching the session
// state. With adopt true the session keeps whichever matching has higher
// welfare — the fresh run or the incumbent incremental state — and returns
// the kept welfare, so adoption is monotone: both heuristics can win on a
// given instant, and a scheduled Rebuild(true) must never make a live
// session worse.
func (s *Session) Rebuild(adopt bool) (float64, error) {
	return s.RebuildTraced(adopt, trace.SpanContext{})
}

// RebuildTraced is Rebuild with an explicit trace parent, mirroring
// StepTraced: the fresh run's core spans nest under an online.rebuild span.
func (s *Session) RebuildTraced(adopt bool, parent trace.SpanContext) (float64, error) {
	span := s.opts.Flight.Start(parent, "online.rebuild")
	defer span.End()
	em := s.effectiveMarket()
	opts := s.opts
	opts.SpanParent = span.Context()
	res, err := core.Run(em, opts)
	if err != nil {
		return 0, fmt.Errorf("online: rebuild: %w", err)
	}
	welfare := res.Welfare
	adopted := adopt
	switch {
	case !adopt:
	case matching.Welfare(em, s.mu) > res.Welfare:
		welfare = matching.Welfare(em, s.mu)
		adopted = false
	default:
		s.mu = res.Matching
	}
	if span.Active() {
		span.Annotate(fmt.Sprintf("adopt=%t adopted=%t welfare=%.6g", adopt, adopted, welfare))
	}
	return welfare, nil
}

// Snapshot is a JSON-ready view of a session's current state — the payload
// behind specserved's GET /v1/sessions/{id}, and (paired with the market
// spec) the session's complete durable state: FromSnapshot rebuilds a
// Session from it that behaves bit-identically to the original under every
// future Step and Rebuild, which is what specserved's WAL checkpoints rely
// on.
type Snapshot struct {
	Channels int     `json:"channels"`
	Buyers   int     `json:"buyers"`
	Active   int     `json:"active"`
	Matched  int     `json:"matched"`
	Welfare  float64 `json:"welfare"`
	Steps    int     `json:"steps"`
	// OfflineChannels lists channels currently withdrawn by their sellers.
	OfflineChannels []int `json:"offline_channels,omitempty"`
	// ActiveBuyers lists the buyers currently in the market — the matched
	// ones are implied by Assignment, but arrived-yet-unmatched buyers are
	// state too (they compete in every later repair).
	ActiveBuyers []int `json:"active_buyers,omitempty"`
	// Assignment[j] is buyer j's seller, -1 (market.Unmatched) when
	// unmatched or inactive.
	Assignment []int `json:"assignment"`
}

// Snapshot captures the session's current state.
func (s *Session) Snapshot() Snapshot {
	snap := Snapshot{
		Channels: s.base.M(),
		Buyers:   s.base.N(),
		Active:   s.ActiveCount(),
		Matched:  s.mu.MatchedCount(),
		Welfare:  s.Welfare(),
		Steps:    s.steps,
	}
	for i, off := range s.offline {
		if off {
			snap.OfflineChannels = append(snap.OfflineChannels, i)
		}
	}
	for j, a := range s.active {
		if a {
			snap.ActiveBuyers = append(snap.ActiveBuyers, j)
		}
	}
	snap.Assignment = make([]int, s.base.N())
	for j := range snap.Assignment {
		snap.Assignment[j] = s.mu.SellerOf(j)
	}
	return snap
}

// FromSnapshot rebuilds a session from its market and a Snapshot, verifying
// the snapshot's internal consistency on the way in: dimensions must match
// the market, every matched buyer must be active and on an online channel,
// and the recomputed welfare and matched count must equal the recorded ones
// exactly (both survive a JSON round-trip bit-for-bit, so any drift means
// the snapshot does not describe a state this market can be in). The
// restored session is bit-equivalent to the one Snapshot was taken from:
// Step and Rebuild depend only on (market, active, offline, matching,
// opts), all of which are reproduced.
func FromSnapshot(m *market.Market, snap Snapshot, opts core.Options) (*Session, error) {
	if snap.Channels != m.M() || snap.Buyers != m.N() {
		return nil, fmt.Errorf("online: snapshot is %dx%d, market is %dx%d",
			snap.Channels, snap.Buyers, m.M(), m.N())
	}
	if len(snap.Assignment) != m.N() {
		return nil, fmt.Errorf("online: snapshot has %d assignments for %d buyers", len(snap.Assignment), m.N())
	}
	if snap.Steps < 0 {
		return nil, fmt.Errorf("online: snapshot has negative step count %d", snap.Steps)
	}
	s, err := NewSession(m, opts)
	if err != nil {
		return nil, err
	}
	for _, i := range snap.OfflineChannels {
		if i < 0 || i >= m.M() {
			return nil, fmt.Errorf("online: snapshot offline channel %d out of range [0,%d)", i, m.M())
		}
		s.offline[i] = true
	}
	for _, j := range snap.ActiveBuyers {
		if j < 0 || j >= m.N() {
			return nil, fmt.Errorf("online: snapshot active buyer %d out of range [0,%d)", j, m.N())
		}
		s.active[j] = true
	}
	for j, i := range snap.Assignment {
		if i == market.Unmatched {
			continue
		}
		if i < 0 || i >= m.M() {
			return nil, fmt.Errorf("online: snapshot assigns buyer %d to seller %d, out of range [0,%d)", j, i, m.M())
		}
		if !s.active[j] {
			return nil, fmt.Errorf("online: snapshot matches inactive buyer %d", j)
		}
		if s.offline[i] {
			return nil, fmt.Errorf("online: snapshot matches buyer %d to offline channel %d", j, i)
		}
		if err := s.mu.Assign(i, j); err != nil {
			return nil, fmt.Errorf("online: snapshot assignment: %w", err)
		}
	}
	s.steps = snap.Steps
	if got := s.ActiveCount(); got != snap.Active {
		return nil, fmt.Errorf("online: snapshot active count %d, listed buyers give %d", snap.Active, got)
	}
	if got := s.mu.MatchedCount(); got != snap.Matched {
		return nil, fmt.Errorf("online: snapshot matched count %d, assignment gives %d", snap.Matched, got)
	}
	if got := s.Welfare(); got != snap.Welfare {
		return nil, fmt.Errorf("online: snapshot welfare %v, restored state gives %v", snap.Welfare, got)
	}
	return s, nil
}
